"""What-if: accelerator (GPU-class) texture nodes (paper future work).

The paper's related-work section: "A future extension to our work could
investigate how the Haralick-based texture computations could be mapped
onto GPUs; in such an implementation, we anticipate that combined use of
functional decomposition and data parallelism ... will be an efficient
approach."

This study models that future: texture nodes whose co-occurrence /
parameter kernels run 20x faster than a PIII (a conservative GPU-offload
factor), on the same FastEthernet fabric.  With compute collapsed, the
fixed input path (single IIC + 100 Mbit links) dominates — quantifying
how much the *data movement* architecture, not the kernels, limits an
accelerated deployment, which is exactly why the paper argues the
decomposition/placement machinery stays relevant.
"""

from harness import print_table, record

from repro.datacutter.placement import Placement
from repro.sim import ClusterSpec, MBIT, SimCluster, SimPipelineSpec, SimRuntime, paper_workload


def gpu_cluster(n_tex: int) -> SimCluster:
    """PIII-like I/O nodes plus GPU-accelerated texture nodes."""
    io = ClusterSpec("piii", 6, 1, 1.0, 100 * MBIT)
    gpu = ClusterSpec("gpu", n_tex, 1, 20.0, 100 * MBIT)
    return SimCluster([io, gpu], uplinks=[("piii", "gpu", 100 * MBIT)])


def layout(n_tex: int, accelerated: bool):
    if accelerated:
        cluster = gpu_cluster(n_tex)
        tex_nodes = cluster.cluster_nodes("gpu")
    else:
        cluster = SimCluster.piii(6 + n_tex)
        tex_nodes = cluster.cluster_nodes("piii")[6 : 6 + n_tex]
    piii = cluster.cluster_nodes("piii")
    placement = Placement()
    placement.place_copies("RFR", piii[:4])
    placement.place("IIC", 0, piii[4])
    placement.place("USO", 0, piii[5])
    placement.place_copies("HMP", tex_nodes)
    spec = SimPipelineSpec(variant="hmp", num_tex=n_tex)
    return spec, cluster, placement


def sweep():
    wl = paper_workload()
    rows = []
    for n in (2, 4, 8):
        base = SimRuntime(wl, *layout(n, accelerated=False)).run()
        accel = SimRuntime(wl, *layout(n, accelerated=True)).run()
        rows.append(
            {
                "nodes": n,
                "piii_s": base.makespan,
                "gpu_s": accel.makespan,
                "speedup": base.makespan / accel.makespan,
                "gpu_compute_s": accel.filter_busy_mean("HMP"),
            }
        )
    return rows


def test_accelerator_what_if(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "What-if: 20x accelerated texture nodes (HMP pipeline)",
        ["nodes", "PIII (s)", "GPU (s)", "speedup", "GPU compute (s)"],
        [(r["nodes"], r["piii_s"], r["gpu_s"], r["speedup"], r["gpu_compute_s"])
         for r in rows],
    )
    record("ablation_accelerators", rows)
    for r in rows:
        assert r["gpu_s"] < r["piii_s"]
        # Far from the 20x kernel speedup: the input path now dominates.
        assert r["speedup"] < 15
    # Adding accelerated nodes stops helping once data movement binds.
    assert rows[-1]["gpu_s"] > 0.5 * rows[0]["gpu_s"]
    benchmark.extra_info["series"] = rows

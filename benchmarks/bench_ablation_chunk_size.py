"""Ablation: IIC-to-TEXTURE chunk size (paper Section 5.1's design choice).

The paper: "When we conducted tests using smaller chunks, the overlap
between partitions created a volume of communication that was too great
... Larger chunk sizes also produced poor results because the large data
portions could not be distributed to the texture analysis filters fast
enough, which left some texture analysis filters in an idle state.
Therefore, we chose a chunk size that had a tolerable amount of overlap
... and also produced a balanced data distribution."

This sweep varies the in-plane chunk dimension at 8 texture nodes and
reports makespan plus the chunk traffic (overlap redundancy): small
chunks blow up communication, a single giant chunk starves all but one
filter, and the paper's 50x50 sits near the optimum.
"""

from harness import print_table, record

from repro.sim import SimRuntime, paper_workload
from repro.sim.layouts import homogeneous_hmp

CHUNK_XY = (10, 20, 50, 120, 252)


def sweep():
    rows = []
    for cxy in CHUNK_XY:
        wl = paper_workload(chunk_shape=(cxy, cxy, 32, 32))
        rep = SimRuntime(wl, *homogeneous_hmp(8)).run()
        raw_bytes = 256 * 256 * 32 * 32 * 2
        rows.append(
            {
                "chunk_xy": cxy,
                "chunks": len(wl.chunks),
                "time_s": rep.makespan,
                "chunk_traffic_mb": rep.stream_bytes["iic2tex"] / 1e6,
                "overlap_redundancy": rep.stream_bytes["iic2tex"] / raw_bytes,
            }
        )
    return rows


def test_chunk_size_ablation(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Ablation: IIC-to-TEXTURE chunk size (8 HMP nodes)",
        ["chunk xy", "chunks", "time (s)", "traffic MB", "redundancy"],
        [
            (r["chunk_xy"], r["chunks"], r["time_s"], r["chunk_traffic_mb"],
             r["overlap_redundancy"])
            for r in rows
        ],
    )
    record("ablation_chunk_size", rows)
    by_size = {r["chunk_xy"]: r for r in rows}
    # Small chunks: heavy overlap redundancy (>2x the raw data on wire).
    assert by_size[10]["overlap_redundancy"] > 2.0
    assert by_size[50]["overlap_redundancy"] < 1.25
    # The paper's 50x50 beats both the tiny-chunk and one-giant-chunk ends.
    assert by_size[50]["time_s"] < by_size[10]["time_s"]
    assert by_size[50]["time_s"] < by_size[252]["time_s"]
    # One chunk = one busy filter: catastrophic imbalance.
    assert by_size[252]["time_s"] > 3 * by_size[50]["time_s"]
    benchmark.extra_info["series"] = rows

"""Ablations: HCC packet size and the replicated-dataset optimization.

* **Packet size** (Section 5.1): the HCC flushes a packet of matrices
  every 1/8 of a chunk.  "Another possible packet size would be the
  entire chunk.  However ... these settings result in good pipelining of
  data across different stages of the filter group, but do not cause
  excessive communication latencies."  The sweep shows whole-chunk
  packets destroying HCC/HPC pipelining while tiny packets add latency.

* **Replicated dataset** (Section 5.1 footnote 1): "the dataset can be
  replicated on all of the nodes and read into memory as a whole in
  order to eliminate the need for the IIC filter."  Comparing the
  standard disk-resident pipeline against the replicated variant
  quantifies what the IIC stage and input network cost.
"""

from dataclasses import replace

from harness import print_table, record

from repro.sim import SimRuntime, paper_workload
from repro.sim.layouts import homogeneous_hmp, homogeneous_replicated, homogeneous_split


def packet_sweep():
    rows = []
    for fraction, label in ((1.0, "whole chunk"), (1 / 8, "1/8 (paper)"),
                            (1 / 64, "1/64")):
        wl = paper_workload(packet_fraction=fraction)
        rep = SimRuntime(wl, *homogeneous_split(8, sparse=True)).run()
        rows.append(
            {
                "packet": label,
                "fraction": fraction,
                "time_s": rep.makespan,
                "packets": rep.stream_buffers["hcc2hpc"],
            }
        )
    return rows


def replica_sweep():
    rows = []
    for n in (4, 8, 16):
        wl = paper_workload()
        standard = SimRuntime(wl, *homogeneous_hmp(n)).run().makespan
        replicated = SimRuntime(wl, *homogeneous_replicated(n)).run().makespan
        rows.append({"nodes": n, "standard_s": standard, "replicated_s": replicated})
    return rows


def test_packet_size_ablation(benchmark):
    rows = benchmark.pedantic(packet_sweep, rounds=1, iterations=1)
    print_table(
        "Ablation: HCC output packet size (8 nodes, split sparse)",
        ["packet", "time (s)", "packets"],
        [(r["packet"], r["time_s"], r["packets"]) for r in rows],
    )
    record("ablation_packet_size", rows)
    by = {r["packet"]: r["time_s"] for r in rows}
    # Whole-chunk packets lose the HCC->HPC pipelining.
    assert by["1/8 (paper)"] < by["whole chunk"]
    benchmark.extra_info["series"] = rows


def test_replicated_dataset_ablation(benchmark):
    rows = benchmark.pedantic(replica_sweep, rounds=1, iterations=1)
    print_table(
        "Ablation: disk-resident pipeline vs replicated dataset (HMP)",
        ["nodes", "standard (s)", "replicated (s)"],
        [(r["nodes"], r["standard_s"], r["replicated_s"]) for r in rows],
    )
    record("ablation_replicated", rows)
    for r in rows:
        # Dropping RFR/IIC and the input network always helps...
        assert r["replicated_s"] < r["standard_s"]
    # ...and the gap widens as compute shrinks (the IIC fill is fixed).
    gaps = [r["standard_s"] / r["replicated_s"] for r in rows]
    assert gaps[-1] > gaps[0]
    benchmark.extra_info["series"] = rows

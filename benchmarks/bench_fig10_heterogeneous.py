"""Fig. 10: HMP vs. split HCC+HPC in a heterogeneous environment.

Paper setup: input filters on the PIII cluster; texture filters spread
over 13 PIII nodes and the 5 dual-CPU XEON nodes, reachable only through
a shared 100 Mbit/s path.  The HMP arm instantiates one copy per
*processor* (23 copies); the split arm co-locates one HCC and one HPC on
each of the 18 *nodes*.

Paper result: the split implementation wins — fewer chunks cross the
slow inter-cluster link, demand-driven scheduling keeps matrix buffers
inside each cluster, and communication pipelines behind computation.
"""

from harness import print_table, record

from repro.sim import SimRuntime, paper_workload
from repro.sim.layouts import fig10_hmp, fig10_split


def run_both():
    wl = paper_workload()
    hmp = SimRuntime(wl, *fig10_hmp()).run()
    split = SimRuntime(wl, *fig10_split(sparse=True)).run()
    return {
        "hmp_s": hmp.makespan,
        "split_s": split.makespan,
        "hmp_chunk_mb": hmp.stream_bytes["iic2tex"] / 1e6,
        "split_chunk_mb": split.stream_bytes["iic2tex"] / 1e6,
    }


def test_fig10(benchmark):
    row = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print_table(
        "Fig 10: heterogeneous PIII+XEON (simulated seconds)",
        ["implementation", "time"],
        [("HMP (23 copies)", row["hmp_s"]), ("split HCC+HPC (18+18)", row["split_s"])],
    )
    record("fig10", [row])
    assert row["split_s"] < row["hmp_s"]
    benchmark.extra_info["series"] = row

"""Fig. 11: round-robin vs. demand-driven buffer scheduling.

Paper setup: XEON + OPTERON clusters; RFR/IIC/HPC/USO on OPTERON nodes,
4 HCC copies on each cluster (one filter per processor).  The HCC output
is the heavy stream; XEON HCC copies must push it across the shared
inter-cluster path to reach the OPTERON-resident HPC filters.

Paper result: demand-driven wins — the OPTERON HCC copies (fast drain,
local HPC path) receive more data buffers, so less traffic crosses the
inter-cluster link; round-robin forces an even split and pays more
HCC->HPC communication.
"""

from harness import print_table, record

from repro.sim import SimRuntime, paper_workload
from repro.sim.layouts import fig11_layout


def run_both():
    wl = paper_workload()
    out = {}
    for policy in ("round_robin", "demand_driven"):
        spec, cluster, placement = fig11_layout(policy)
        rep = SimRuntime(wl, spec, cluster, placement).run()
        busy = rep.filter_busy("HCC")
        out[policy] = {
            "time_s": rep.makespan,
            "xeon_hcc_busy_s": sum(busy[:4]),
            "opteron_hcc_busy_s": sum(busy[4:]),
        }
    return out


def test_fig11(benchmark):
    out = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print_table(
        "Fig 11: buffer scheduling (simulated seconds)",
        ["policy", "time", "XEON HCC busy", "OPTERON HCC busy"],
        [
            (p, out[p]["time_s"], out[p]["xeon_hcc_busy_s"], out[p]["opteron_hcc_busy_s"])
            for p in ("round_robin", "demand_driven")
        ],
    )
    record("fig11", [dict(policy=p, **v) for p, v in out.items()])
    dd, rr = out["demand_driven"], out["round_robin"]
    assert dd["time_s"] < rr["time_s"]
    # Demand-driven shifts work toward the OPTERON copies (local HPCs).
    assert dd["opteron_hcc_busy_s"] > dd["xeon_hcc_busy_s"]
    dd_share = dd["opteron_hcc_busy_s"] / (dd["opteron_hcc_busy_s"] + dd["xeon_hcc_busy_s"])
    rr_share = rr["opteron_hcc_busy_s"] / (rr["opteron_hcc_busy_s"] + rr["xeon_hcc_busy_s"])
    assert dd_share > rr_share
    benchmark.extra_info["series"] = out

"""Fig. 7(a): HMP implementation — full vs. sparse matrix representation.

Paper result: with the combined HMP filter there is no HCC->HPC
communication to save, so the sparse representation only adds
storing/accessing overhead and *degrades* performance at every node
count, while both curves scale down with more nodes.
"""

from harness import print_table, record

from repro.sim import SimRuntime, paper_workload
from repro.sim.layouts import homogeneous_hmp

NODES = (1, 2, 4, 8, 16)


def sweep():
    wl = paper_workload()
    rows = []
    for n in NODES:
        full = SimRuntime(wl, *homogeneous_hmp(n, sparse=False)).run().makespan
        sparse = SimRuntime(wl, *homogeneous_hmp(n, sparse=True)).run().makespan
        rows.append({"nodes": n, "hmp_full_s": full, "hmp_sparse_s": sparse})
    return rows


def test_fig7a(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Fig 7(a): HMP execution time (simulated seconds)",
        ["nodes", "full", "sparse"],
        [(r["nodes"], r["hmp_full_s"], r["hmp_sparse_s"]) for r in rows],
    )
    record("fig7a", rows)
    for r in rows:
        # Sparse representation performs worse for HMP at every point.
        assert r["hmp_sparse_s"] > r["hmp_full_s"]
    # Good scaling: 16 nodes at least 7x faster than 1 node.
    assert rows[0]["hmp_full_s"] / rows[-1]["hmp_full_s"] > 7
    benchmark.extra_info["series"] = rows

"""Fig. 7(b): split HCC + HPC implementation — full vs. sparse matrices.

Paper result: once matrix computation and parameter computation run in
separate filters, every co-occurrence matrix crosses the network; the
sparse representation cuts that traffic by ~98% (typical G=32 MRI
matrices are ~1% non-zero) and wins decisively, while the full
representation is communication-bound.
"""

from harness import print_table, record

from repro.sim import SimRuntime, paper_workload
from repro.sim.layouts import homogeneous_split

NODES = (1, 2, 4, 8, 16)


def sweep():
    wl = paper_workload()
    rows = []
    for n in NODES:
        full = SimRuntime(wl, *homogeneous_split(n, sparse=False)).run()
        sparse = SimRuntime(wl, *homogeneous_split(n, sparse=True)).run()
        rows.append(
            {
                "nodes": n,
                "split_full_s": full.makespan,
                "split_sparse_s": sparse.makespan,
                "full_matrix_gb": full.stream_bytes["hcc2hpc"] / 1e9,
                "sparse_matrix_gb": sparse.stream_bytes["hcc2hpc"] / 1e9,
            }
        )
    return rows


def test_fig7b(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Fig 7(b): split HCC+HPC execution time (simulated seconds)",
        ["nodes", "full", "sparse", "full GB", "sparse GB"],
        [
            (r["nodes"], r["split_full_s"], r["split_sparse_s"],
             r["full_matrix_gb"], r["sparse_matrix_gb"])
            for r in rows
        ],
    )
    record("fig7b", rows)
    for r in rows[1:]:  # n >= 2: matrices actually cross the network
        assert r["split_sparse_s"] < r["split_full_s"] / 2
    # Sparse wire volume ~2% of full.
    assert rows[-1]["sparse_matrix_gb"] < 0.05 * rows[-1]["full_matrix_gb"]
    # Sparse arm keeps scaling through 16 nodes.
    assert rows[-1]["split_sparse_s"] < rows[1]["split_sparse_s"] / 4
    benchmark.extra_info["series"] = rows

"""Fig. 8: co-locating HCC and HPC vs. separate nodes vs. HMP.

Paper result: running an HCC and an HPC copy on *every* texture node
("Overlap") beats both the separate-node split ("No Overlap", ~4:1 node
partition) and the combined HMP filter — co-location turns the matrix
stream into pointer copies, doubles the copy count, and pipelines
communication behind computation.  At one node the split implementation
also beats HMP (Section 5.2's pipelining observation).
"""

from harness import print_table, record

from repro.sim import SimRuntime, paper_workload
from repro.sim.layouts import homogeneous_hmp, homogeneous_split

NODES = (1, 2, 4, 8, 16)


def sweep():
    wl = paper_workload()
    rows = []
    for n in NODES:
        no_overlap = SimRuntime(
            wl, *homogeneous_split(n, sparse=True, overlap=False)
        ).run().makespan
        overlap = SimRuntime(
            wl, *homogeneous_split(n, sparse=True, overlap=True)
        ).run().makespan
        hmp = SimRuntime(wl, *homogeneous_hmp(n, sparse=False)).run().makespan
        rows.append(
            {"nodes": n, "no_overlap_s": no_overlap, "overlap_s": overlap, "hmp_s": hmp}
        )
    return rows


def test_fig8(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Fig 8: HCC+HPC placement (simulated seconds)",
        ["nodes", "no-overlap", "overlap", "HMP"],
        [(r["nodes"], r["no_overlap_s"], r["overlap_s"], r["hmp_s"]) for r in rows],
    )
    record("fig8", rows)
    for r in rows[1:]:
        assert r["overlap_s"] < r["no_overlap_s"]  # co-location wins
        assert r["overlap_s"] < r["hmp_s"]  # and beats HMP
    # One-node case: split (co-located by necessity) beats HMP.
    assert rows[0]["no_overlap_s"] < rows[0]["hmp_s"]
    benchmark.extra_info["series"] = rows

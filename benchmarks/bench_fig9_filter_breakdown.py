"""Fig. 9: per-filter processing time in the split HCC+HPC pipeline.

Paper result: the read (RFR) and write (USO) filters are negligible; the
HCC and HPC processing times shrink as texture nodes are added; the
single IIC filter's time stays flat, so its *relative* weight grows until
it limits scalability around the 16-node configuration (Section 5.2) —
the remedy, also measured here, is running explicit IIC copies, whose
per-copy time drops almost linearly.
"""

from harness import print_table, record

from repro.sim import SimRuntime, paper_workload
from repro.sim.layouts import homogeneous_split

NODES = (2, 4, 8, 16)
FILTERS = ("RFR", "IIC", "HCC", "HPC", "USO")


def sweep():
    wl = paper_workload()
    rows = []
    for n in NODES:
        rep = SimRuntime(wl, *homogeneous_split(n, sparse=True)).run()
        row = {"nodes": n}
        for f in FILTERS:
            row[f] = rep.filter_busy_mean(f)
        rows.append(row)
    return rows


def iic_copy_sweep():
    wl = paper_workload()
    rows = []
    for n_iic in (1, 2, 4):
        rep = SimRuntime(
            wl, *homogeneous_split(8, sparse=True, num_iic=n_iic)
        ).run()
        rows.append({"iic_copies": n_iic, "iic_per_copy_s": rep.filter_busy_mean("IIC")})
    return rows


def test_fig9_breakdown(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Fig 9: per-filter processing time (simulated seconds, mean per copy)",
        ["nodes"] + list(FILTERS),
        [tuple([r["nodes"]] + [r[f] for f in FILTERS]) for r in rows],
    )
    record("fig9", rows)
    first, last = rows[0], rows[-1]
    for r in rows:
        assert r["RFR"] < 0.1 * r["HCC"]  # read negligible
        assert r["USO"] < 0.5 * r["HCC"]  # write negligible
    assert last["HCC"] < 0.2 * first["HCC"]  # texture time scales down
    assert abs(last["IIC"] - first["IIC"]) < 1e-6 * first["IIC"]  # IIC flat
    # IIC becomes the looming bottleneck: its share grows monotonically.
    shares = [r["IIC"] / r["HCC"] for r in rows]
    assert all(a < b for a, b in zip(shares, shares[1:]))
    benchmark.extra_info["series"] = rows


def test_fig9_iic_copies(benchmark):
    rows = benchmark.pedantic(iic_copy_sweep, rounds=1, iterations=1)
    print_table(
        "Section 5.2: explicit IIC copies (per-copy processing time)",
        ["IIC copies", "seconds"],
        [(r["iic_copies"], r["iic_per_copy_s"]) for r in rows],
    )
    record("fig9_iic_copies", rows)
    # Near-linear decrease with copy count.
    assert rows[1]["iic_per_copy_s"] < 0.6 * rows[0]["iic_per_copy_s"]
    assert rows[2]["iic_per_copy_s"] < 0.35 * rows[0]["iic_per_copy_s"]
    benchmark.extra_info["series"] = rows

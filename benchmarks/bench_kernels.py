"""Throughput benchmarks of the real compute kernels.

Not a paper figure — these measure the building blocks (co-occurrence
scan, feature kernels, quantization) on this machine, and feed the
``measure_costs`` calibration path of the simulator.

``test_kernel_backend_comparison`` and the peak-memory tests need only
numpy and stdlib, so they double as the CI kernel-benchmark smoke job::

    pytest benchmarks/bench_kernels.py -k "backend_comparison or peak_memory"

The comparison writes ``BENCH_kernels.json`` at the repo root with
rois/sec per scan backend (see docs/kernels.md).
"""

import time
import tracemalloc

import numpy as np
import pytest

from harness import record_repo_json
from repro.core.backends import KERNELS, get_kernel, incremental_scan
from repro.core.cooccurrence import cooccurrence_matrix, cooccurrence_scan
from repro.core.features import HARALICK_FEATURES, PAPER_FEATURES, haralick_features
from repro.core.features_sparse import features_from_sparse
from repro.core.gpu import probe_gpu
from repro.core.quantization import quantize_linear
from repro.core.roi import ROISpec, valid_positions_shape
from repro.core.sparse import batch_sparse_from_dense, sparse_from_dense
from repro.core.workspace import WORKSPACE_BYTES

LEVELS = 32
ROI = ROISpec((5, 5, 5, 3))

#: Kernels the comparison times.  "gpu" joins only when a device is
#: present — on CPU-only machines it is megabatch behind a fallback
#: warning, which would just double-count one column.
BENCH_KERNELS = tuple(k for k in KERNELS if k != "gpu") + (
    ("gpu",) if probe_gpu().available else ()
)


@pytest.fixture(scope="module")
def volume():
    rng = np.random.default_rng(0)
    from scipy.ndimage import gaussian_filter

    raw = gaussian_filter(rng.normal(size=(24, 24, 12, 6)), sigma=1.5)
    return quantize_linear(raw, LEVELS)


@pytest.fixture(scope="module")
def matrices(volume):
    batches = [m for _s, m in cooccurrence_scan(volume, ROI, LEVELS, batch=1024)]
    return np.concatenate(batches)[:1024]


def test_cooccurrence_scan_throughput(benchmark, volume):
    def scan():
        total = 0
        for _start, mats in cooccurrence_scan(volume, ROI, LEVELS, batch=2048):
            total += mats.shape[0]
        return total

    total = benchmark(scan)
    benchmark.extra_info["rois"] = total


def test_single_window_matrix(benchmark, volume):
    window = volume[:5, :5, :5, :3]
    benchmark(lambda: cooccurrence_matrix(window, LEVELS))


def test_paper_features_batch(benchmark, matrices):
    benchmark(lambda: haralick_features(matrices, PAPER_FEATURES))


def test_all_fourteen_features_batch(benchmark, matrices):
    benchmark(lambda: haralick_features(matrices, HARALICK_FEATURES))


def test_sparse_conversion(benchmark, matrices):
    benchmark(lambda: batch_sparse_from_dense(matrices[:256]))


def test_sparse_features(benchmark, matrices):
    sparse = batch_sparse_from_dense(matrices[:256])
    benchmark(lambda: [features_from_sparse(sp, PAPER_FEATURES) for sp in sparse])


def test_quantization(benchmark):
    rng = np.random.default_rng(1)
    raw = rng.integers(0, 4096, size=(256, 256, 8, 4)).astype(np.uint16)
    benchmark(lambda: quantize_linear(raw, LEVELS, lo=0, hi=4095))


# --------------------------------------------------------------------------
# Backend comparison + memory bounds: numpy/stdlib only (no scipy, no
# pytest-benchmark), so CI can run them as a smoke job.
# --------------------------------------------------------------------------


def _smoke_volume(levels=LEVELS, shape=(20, 20, 12, 7), seed=0):
    """Quantized paper-config volume without the scipy dependency."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, levels, size=shape, dtype=np.int32)


def _collect(scan, volume, levels=LEVELS, batch=2048):
    out = []
    for _start, mats in scan(volume, ROI, levels, batch=batch):
        out.append(np.array(mats))
    return np.concatenate(out)


def _time_matrix(kernels, volume, levels, repeats):
    """Interleaved best-of-N wall times, one entry per kernel.

    One round times every kernel back to back before the next round
    starts, so slow drift on a shared machine hits all kernels equally
    instead of biasing whichever ran last.
    """
    best = {k: float("inf") for k in kernels}
    rois = {k: 0 for k in kernels}
    for r in range(repeats):
        for k in kernels:
            if r > 0 and k == "reference":
                continue  # one round is plenty for the slow baseline
            scan = get_kernel(k)
            t0 = time.perf_counter()
            rois[k] = sum(
                m.shape[0] for _s, m in scan(volume, ROI, levels, batch=2048)
            )
            best[k] = min(best[k], time.perf_counter() - t0)
    return {
        k: {
            "rois": rois[k],
            "seconds": round(best[k], 6),
            "rois_per_sec": round(rois[k] / best[k], 1),
        }
        for k in kernels
    }


def test_kernel_backend_comparison():
    """All backends bit-identical; megabatch the fastest CPU kernel.

    Paper configuration: 5x5x5x3 ROI, 32 levels, all 40 unique 4D
    directions, distance 1, plus a grey-level sweep over 16/32/64.
    Writes the full kernel x levels throughput matrix to
    ``BENCH_kernels.json`` at the repo root ("backends" holds the
    paper-config 32-level column).
    """
    volume = _smoke_volume()
    mats = {k: _collect(get_kernel(k), volume) for k in BENCH_KERNELS}
    for k in BENCH_KERNELS:
        assert np.array_equal(mats[k], mats["reference"]), (
            f"{k} backend not bit-identical to reference"
        )
    del mats

    sweep = {}
    for levels in (16, 32, 64):
        vol = volume if levels == LEVELS else _smoke_volume(levels=levels)
        sweep[levels] = _time_matrix(BENCH_KERNELS, vol, levels, repeats=3)

    results = sweep[LEVELS]
    payload = {
        "config": {
            "volume_shape": list(volume.shape),
            "roi_shape": list(ROI.shape),
            "levels": LEVELS,
            "distance": 1,
            "directions": "all unique 4D",
            "batch": 2048,
        },
        "backends": results,
        "levels_sweep": {
            str(levels): {k: r["rois_per_sec"] for k, r in row.items()}
            for levels, row in sweep.items()
        },
        "speedup_incremental_vs_batched": round(
            results["incremental"]["rois_per_sec"]
            / results["batched"]["rois_per_sec"],
            2,
        ),
        "speedup_megabatch_vs_incremental": round(
            results["megabatch"]["rois_per_sec"]
            / results["incremental"]["rois_per_sec"],
            2,
        ),
    }
    path = record_repo_json("BENCH_kernels.json", payload)
    print(f"\nwrote {path}")
    for levels, row in sweep.items():
        for k, r in row.items():
            print(f"  G={levels:<3} {k:>11}: {r['rois_per_sec']:>10.1f} rois/sec")

    # CI gates on the paper config: the rolling kernel must not regress
    # below the batched one, and the chunk-at-once kernel must beat the
    # rolling one (its whole reason to exist).
    assert (
        results["incremental"]["rois_per_sec"]
        >= results["batched"]["rois_per_sec"]
    ), payload
    assert (
        results["megabatch"]["rois_per_sec"]
        >= results["incremental"]["rois_per_sec"]
    ), payload


def _scan_peak_bytes(scan, volume, batch):
    """Peak python-allocator bytes during one full scan (max-RSS proxy)."""
    # Warm the cached workspaces so they don't count against the scan.
    for _ in scan(volume, ROI, LEVELS, batch=batch):
        break
    tracemalloc.start()
    try:
        for _start, mats in scan(volume, ROI, LEVELS, batch=batch):
            pass
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


@pytest.mark.parametrize("kernel", ["batched", "incremental", "megabatch"])
def test_scan_peak_memory(kernel):
    """Kernel temporaries stay within the workspace budget.

    The unavoidable output allocation is excluded — for the streaming
    kernels that is one ``batch`` of G x G int64 matrices, for megabatch
    the whole-chunk ``(n_windows, G, G)`` accumulator it yields views
    of.  Everything else — pair-code gathers, bincount inputs and
    outputs, symmetrization scratch — must fit in a small multiple of
    ``WORKSPACE_BYTES``.  Guards the removal of the transpose copy and
    the ``block + shift`` mega-temporary from the batched scan, and the
    lazy GPU gather tables staying out of the CPU path.
    """
    volume = _smoke_volume(shape=(16, 16, 10, 6), seed=1)
    batch = 4096
    if kernel == "megabatch":
        npos = int(np.prod(valid_positions_shape(volume.shape, ROI)))
        mats_bytes = npos * LEVELS * LEVELS * 8
    else:
        mats_bytes = batch * LEVELS * LEVELS * 8
    peak = _scan_peak_bytes(get_kernel(kernel), volume, batch)
    budget = mats_bytes + 3 * WORKSPACE_BYTES
    assert peak < budget, (
        f"{kernel} scan peak {peak / 2**20:.1f} MiB exceeds "
        f"{budget / 2**20:.1f} MiB (output {mats_bytes / 2**20:.1f} MiB "
        f"+ 3x workspace)"
    )

"""Throughput benchmarks of the real compute kernels.

Not a paper figure — these measure the building blocks (co-occurrence
scan, feature kernels, quantization) on this machine, and feed the
``measure_costs`` calibration path of the simulator.
"""

import numpy as np
import pytest

from repro.core.cooccurrence import cooccurrence_matrix, cooccurrence_scan
from repro.core.features import HARALICK_FEATURES, PAPER_FEATURES, haralick_features
from repro.core.features_sparse import features_from_sparse
from repro.core.quantization import quantize_linear
from repro.core.roi import ROISpec
from repro.core.sparse import batch_sparse_from_dense, sparse_from_dense

LEVELS = 32
ROI = ROISpec((5, 5, 5, 3))


@pytest.fixture(scope="module")
def volume():
    rng = np.random.default_rng(0)
    from scipy.ndimage import gaussian_filter

    raw = gaussian_filter(rng.normal(size=(24, 24, 12, 6)), sigma=1.5)
    return quantize_linear(raw, LEVELS)


@pytest.fixture(scope="module")
def matrices(volume):
    batches = [m for _s, m in cooccurrence_scan(volume, ROI, LEVELS, batch=1024)]
    return np.concatenate(batches)[:1024]


def test_cooccurrence_scan_throughput(benchmark, volume):
    def scan():
        total = 0
        for _start, mats in cooccurrence_scan(volume, ROI, LEVELS, batch=2048):
            total += mats.shape[0]
        return total

    total = benchmark(scan)
    benchmark.extra_info["rois"] = total


def test_single_window_matrix(benchmark, volume):
    window = volume[:5, :5, :5, :3]
    benchmark(lambda: cooccurrence_matrix(window, LEVELS))


def test_paper_features_batch(benchmark, matrices):
    benchmark(lambda: haralick_features(matrices, PAPER_FEATURES))


def test_all_fourteen_features_batch(benchmark, matrices):
    benchmark(lambda: haralick_features(matrices, HARALICK_FEATURES))


def test_sparse_conversion(benchmark, matrices):
    benchmark(lambda: batch_sparse_from_dense(matrices[:256]))


def test_sparse_features(benchmark, matrices):
    sparse = batch_sparse_from_dense(matrices[:256])
    benchmark(lambda: [features_from_sparse(sp, PAPER_FEATURES) for sp in sparse])


def test_quantization(benchmark):
    rng = np.random.default_rng(1)
    raw = rng.integers(0, 4096, size=(256, 256, 8, 4)).astype(np.uint16)
    benchmark(lambda: quantize_linear(raw, LEVELS, lo=0, hi=4095))

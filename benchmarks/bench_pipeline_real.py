"""Real threaded-pipeline benchmarks on this machine.

Complements the simulated figures: runs the actual filter network
(threads + queues + real NumPy kernels) end-to-end over a disk-resident
phantom, comparing the HMP and split variants and replicated texture
copies.  Numbers here are wall-clock on the host, not paper hardware.
"""

import numpy as np
import pytest

from repro.data.synthetic import PhantomConfig, generate_phantom
from repro.filters.messages import TextureParams
from repro.pipeline.config import AnalysisConfig
from repro.pipeline.run import run_pipeline
from repro.storage.dataset import write_dataset

from harness import metrics_summary

PARAMS = TextureParams(
    roi_shape=(5, 5, 5, 3),
    levels=16,
    intensity_range=(0.0, 65535.0),
)


@pytest.fixture(scope="module")
def dataset_root(tmp_path_factory):
    vol = generate_phantom(PhantomConfig(shape=(32, 32, 10, 6), seed=0))
    root = str(tmp_path_factory.mktemp("bench_ds") / "data")
    write_dataset(vol, root, num_nodes=2)
    return root


def _config(variant, copies):
    kwargs = dict(
        texture=PARAMS,
        variant=variant,
        texture_chunk_shape=(16, 16, 10, 6),
    )
    if variant == "hmp":
        kwargs["num_texture_copies"] = copies
    else:
        kwargs["num_hcc_copies"] = max(1, copies - 1)
        kwargs["num_hpc_copies"] = 1
    return AnalysisConfig(**kwargs)


@pytest.mark.parametrize("copies", [1, 2, 4])
def test_hmp_pipeline(benchmark, dataset_root, copies):
    result = benchmark.pedantic(
        lambda: run_pipeline(dataset_root, _config("hmp", copies)),
        rounds=1,
        iterations=1,
    )
    assert set(result.volumes) == set(PARAMS.features)
    benchmark.extra_info["copies"] = copies
    benchmark.extra_info["metrics"] = metrics_summary(result.run.metrics)


@pytest.mark.parametrize("sparse", [False, True])
def test_split_pipeline(benchmark, dataset_root, sparse):
    params = TextureParams(
        roi_shape=(5, 5, 5, 3),
        levels=16,
        intensity_range=(0.0, 65535.0),
        sparse=sparse,
    )
    cfg = AnalysisConfig(
        texture=params,
        variant="split",
        texture_chunk_shape=(16, 16, 10, 6),
        num_hcc_copies=3,
        num_hpc_copies=1,
    )
    result = benchmark.pedantic(
        lambda: run_pipeline(dataset_root, cfg), rounds=1, iterations=1
    )
    assert set(result.volumes) == set(params.features)
    benchmark.extra_info["metrics"] = metrics_summary(result.run.metrics)


@pytest.mark.parametrize("trace", [None, "events"])
def test_tracing_overhead(benchmark, dataset_root, trace):
    """Same workload with tracing off vs. on.

    The acceptance bar is that disabled tracing costs (near) nothing;
    compare the two variants' timings in the benchmark report.  The
    traced run also records how many events the workload produces.
    """
    cfg = _config("hmp", 2)
    result = benchmark.pedantic(
        lambda: run_pipeline(dataset_root, cfg, trace=trace),
        rounds=1,
        iterations=1,
    )
    assert set(result.volumes) == set(PARAMS.features)
    benchmark.extra_info["trace"] = trace or "off"
    if trace:
        benchmark.extra_info["trace_events"] = len(result.trace.events)

"""Region data-layer benchmarks: ghost-region reuse and tier throughput.

Not a paper figure — this measures the data layer added on top of the
paper's chunking (Section 4.4): how much of each IIC-to-TEXTURE chunk
is served from staged neighbours instead of disk (the overlap of
Eqs. 1-2 made *reusable*), and what staging/fetching one region costs
per storage tier.

Needs only numpy and stdlib, so the whole module doubles as the CI
regions smoke job::

    pytest benchmarks/bench_regions.py -k smoke

Writes ``BENCH_regions.json`` at the repo root (see docs/data-layer.md).
"""

import shutil
import tempfile
import time

import numpy as np

from harness import record_repo_json
from repro.core.roi import ROISpec
from repro.chunks.chunking import partition
from repro.regions import (
    DiskTier,
    InMemoryRemoteClient,
    RamTier,
    RegionStore,
    RemoteTier,
    ShmTier,
    StagingPolicy,
    read_chunk_staged,
)
from repro.data.volume import Volume4D
from repro.storage.dataset import DiskDataset4D, write_dataset

#: Scaled-down paper configuration: the 5x5x5x3 ROI of Section 5 with a
#: chunk grid that overlaps in every partitioned dimension.
ROI = ROISpec((5, 5, 5, 3))
DATASET_SHAPE = (36, 36, 10, 6)
CHUNK_SHAPE = (16, 16, 10, 6)

#: Per-tier throughput probe: payload size and round count.
PAYLOAD_BYTES = 2 << 20
ROUNDS = 6


def _write_dataset(root):
    rng = np.random.default_rng(7)
    vol = Volume4D(
        rng.integers(0, 1 << 12, size=DATASET_SHAPE).astype(np.uint16)
    )
    write_dataset(vol, root, num_nodes=2)
    return DiskDataset4D.open(root)


def _reuse_pass(dataset, store, chunks):
    """One full sweep; returns (disk_bytes_read, total_bytes_wanted)."""
    read = total = 0
    for chunk in chunks:
        buf, rep = read_chunk_staged(dataset, chunk, store)
        read += rep.read_bytes
        total += buf.nbytes
    return read, total


def _measure_reuse(tmp_root):
    dataset = _write_dataset(tmp_root)
    chunks = partition(dataset.shape, ROI, CHUNK_SHAPE)
    with RegionStore.from_policy(StagingPolicy(ram_bytes=256 << 20)) as store:
        cold = _reuse_pass(dataset, store, chunks)
        warm = _reuse_pass(dataset, store, chunks)
        counters = store.stats.as_dict()
    # Reuse measured in avoided disk traffic: 1 means the whole sweep
    # was served from staged regions, 0 means every byte hit disk.
    return {
        "chunks": len(chunks),
        "cold_reuse_fraction": round(1.0 - cold[0] / cold[1], 4),
        "cold_disk_bytes": cold[0],
        "warm_reuse_fraction": round(1.0 - warm[0] / warm[1], 4),
        "warm_disk_bytes": warm[0],
        "resolve_hit_rate": round(
            counters["hits"] / max(1, counters["hits"] + counters["misses"]), 4
        ),
    }


def _tier_throughput(make_tier):
    """Best-of-N stage/fetch bandwidth for one tier, MB/s."""
    payload = np.random.default_rng(1).integers(
        0, 256, size=PAYLOAD_BYTES, dtype=np.uint8
    )
    tier = make_tier()
    try:
        best_put = best_get = float("inf")
        for r in range(ROUNDS):
            key = f"bench-{r}"
            t0 = time.perf_counter()
            assert tier.put(key, payload)
            best_put = min(best_put, time.perf_counter() - t0)
            t0 = time.perf_counter()
            out = tier.get(key)
            best_get = min(best_get, time.perf_counter() - t0)
            assert out is not None and out.nbytes == payload.nbytes
            tier.remove(key)
        mb = PAYLOAD_BYTES / (1 << 20)
        return {
            "payload_mb": mb,
            "stage_mb_per_sec": round(mb / best_put, 1),
            "fetch_mb_per_sec": round(mb / best_get, 1),
        }
    finally:
        tier.close()


def test_region_reuse_and_tier_throughput_smoke():
    """Overlap reuse > 0 on the (scaled) paper config; tiers all work.

    The headline claims pinned here: adjacent chunks share ghost voxels
    that the store actually serves (cold hit fraction strictly positive,
    warm sweep fully hit), and every tier of the hierarchy sustains
    staging traffic.  Numbers land in ``BENCH_regions.json``.
    """
    tmp_root = tempfile.mkdtemp(prefix="bench-regions-")
    try:
        reuse = _measure_reuse(tmp_root + "/data")
    finally:
        shutil.rmtree(tmp_root, ignore_errors=True)

    assert reuse["cold_reuse_fraction"] > 0.0, "no ghost-region reuse measured"
    assert reuse["warm_reuse_fraction"] == 1.0
    assert reuse["warm_disk_bytes"] == 0
    assert reuse["resolve_hit_rate"] > 0.0

    spill_root = tempfile.mkdtemp(prefix="bench-regions-disk-")
    try:
        tiers = {
            "ram": _tier_throughput(lambda: RamTier()),
            "shm": _tier_throughput(
                lambda: ShmTier(4 * PAYLOAD_BYTES, segment_bytes=PAYLOAD_BYTES)
            ),
            "disk": _tier_throughput(lambda: DiskTier(root=spill_root)),
            "remote": _tier_throughput(
                lambda: RemoteTier(InMemoryRemoteClient())
            ),
        }
    finally:
        shutil.rmtree(spill_root, ignore_errors=True)

    payload = {
        "config": {
            "dataset_shape": list(DATASET_SHAPE),
            "chunk_shape": list(CHUNK_SHAPE),
            "roi_shape": list(ROI.shape),
            "payload_bytes": PAYLOAD_BYTES,
        },
        "overlap_reuse": reuse,
        "tiers": tiers,
    }
    path = record_repo_json("BENCH_regions.json", payload)
    print(f"\nwrote {path}")
    print(
        f"cold reuse fraction {reuse['cold_reuse_fraction']:.1%}, "
        f"warm {reuse['warm_reuse_fraction']:.1%}"
    )
    for name, row in tiers.items():
        print(
            f"{name:>7}: stage {row['stage_mb_per_sec']:.0f} MB/s, "
            f"fetch {row['fetch_mb_per_sec']:.0f} MB/s"
        )

"""Real-runtime comparison: threads vs. processes vs. distributed TCP.

Not a paper figure: quantifies on *this* machine what the simulator
models for the 2004 clusters.  In the process and distributed runtimes
every HCC->HPC buffer is genuinely serialized between address spaces,
so the sparse representation's wire-size collapse (paper Section 4.4.1)
is observable as real bytes — ``RunResult.wire_bytes`` counts the framed
bytes each stream put on its pipe/socket; in the threaded runtime
buffers are pointer copies and sparse only adds conversion overhead —
the Fig. 7a/7b dichotomy on one box.
"""

import pytest

from repro.data.synthetic import PhantomConfig, generate_phantom
from repro.filters.messages import TextureParams
from repro.pipeline.config import AnalysisConfig
from repro.pipeline.run import run_pipeline
from repro.storage.dataset import write_dataset


@pytest.fixture(scope="module")
def dataset_root(tmp_path_factory):
    vol = generate_phantom(PhantomConfig(shape=(28, 28, 8, 5), seed=3))
    root = str(tmp_path_factory.mktemp("rt_ds") / "data")
    write_dataset(vol, root, num_nodes=2)
    return root


def config(sparse: bool) -> AnalysisConfig:
    return AnalysisConfig(
        texture=TextureParams(
            roi_shape=(5, 5, 5, 3),
            levels=16,
            intensity_range=(0.0, 65535.0),
            sparse=sparse,
        ),
        variant="split",
        texture_chunk_shape=(14, 14, 8, 5),
        num_hcc_copies=3,
        num_hpc_copies=1,
    )


@pytest.mark.parametrize("runtime", ["threads", "processes", "distributed"])
def test_split_pipeline_runtime(benchmark, dataset_root, runtime):
    result = benchmark.pedantic(
        lambda: run_pipeline(dataset_root, config(sparse=False), runtime=runtime),
        rounds=1,
        iterations=1,
    )
    assert set(result.volumes) == {"asm", "correlation", "sum_of_squares", "idm"}
    benchmark.extra_info["runtime"] = runtime
    benchmark.extra_info["wire_bytes"] = dict(result.run.wire_bytes)


@pytest.mark.parametrize("runtime", ["processes", "distributed"])
def test_bytes_on_wire_full_vs_sparse(benchmark, dataset_root, runtime):
    """Measured (not declared) per-stream traffic on a real transport.

    The Fig. 7 argument with the codec as the meter: the sparse
    co-occurrence form must collapse the HCC->HPC bytes that actually
    crossed the pipe/socket, not just the sizes filters claimed.
    """
    wire = {}
    for sparse in (False, True):
        run = lambda s=sparse: run_pipeline(
            dataset_root, config(sparse=s), runtime=runtime
        )
        result = benchmark.pedantic(run, rounds=1, iterations=1) if sparse \
            else run()
        wire[("sparse" if sparse else "full")] = dict(result.run.wire_bytes)
    assert wire["sparse"]["HCC:hcc2hpc"] < 0.5 * wire["full"]["HCC:hcc2hpc"]
    benchmark.extra_info["runtime"] = runtime
    benchmark.extra_info["wire_bytes"] = wire


def test_sparse_wire_savings_are_real(benchmark, dataset_root):
    """The declared HCC->HPC wire bytes collapse under the sparse form."""
    from repro.datacutter.runtime_local import LocalRuntime
    from repro.pipeline.builder import build_graph
    from repro.storage.dataset import DiskDataset4D

    ds = DiskDataset4D.open(dataset_root)
    sizes = {}
    for sparse in (False, True):
        graph = build_graph(ds, config(sparse))
        total = {"bytes": 0}
        # Wrap the HCC factory to sum declared wire sizes.
        spec = graph.filters["HCC"]
        orig_factory = spec.factory

        def counting_factory(orig=orig_factory, total=total):
            filt = orig()
            orig_process = filt.process

            def process(stream, buffer, ctx, _orig=orig_process):
                class Spy:
                    def __init__(self, inner):
                        self._inner = inner

                    def send(self, stream, payload, size_bytes=0, metadata=None,
                             dest_copy=None):
                        total["bytes"] += size_bytes
                        self._inner.send(stream, payload, size_bytes, metadata,
                                         dest_copy)

                    def __getattr__(self, name):
                        return getattr(self._inner, name)

                _orig(stream, buffer, Spy(ctx))

            filt.process = process
            return filt

        spec.factory = counting_factory
        if sparse:
            benchmark.pedantic(lambda: LocalRuntime(graph).run(), rounds=1, iterations=1)
        else:
            LocalRuntime(graph).run()
        sizes[sparse] = total["bytes"]
    assert sizes[True] < 0.35 * sizes[False]
    benchmark.extra_info["wire_bytes"] = sizes

"""Analysis-service benchmark: warm pools + result cache vs cold runs.

The acceptance workload of ISSUE 7: 50 jobs from 2 tenants over a mix
of duplicate and distinct configurations, submitted twice —

* **cold** — caching and batching disabled, so every job pays a full
  pipeline pass (the one-shot ``run_pipeline`` cost, amortizing only
  the warm runtime pool);
* **warm** — the service as shipped: content-addressed cache, request
  batching, warm pools.

Records jobs/sec for both phases, the cache hit rate, and the pool
build count in ``BENCH_service.json`` at the repo root, and asserts the
acceptance criteria: >= 50% cache hits on the duplicate-heavy workload,
the runtime built once per distinct configuration, weighted fairness
under saturation, and every returned volume bit-identical to a one-shot
``run_pipeline`` call.

Needs only numpy and the stdlib, so CI runs the smoke variant::

    pytest benchmarks/bench_service.py -k smoke
"""

import os
import sys
import time

import numpy as np
import pytest

from harness import record_repo_json

from repro.data.synthetic import PhantomConfig, generate_phantom
from repro.filters.messages import TextureParams
from repro.pipeline.config import AnalysisConfig
from repro.pipeline.run import run_pipeline
from repro.service import AnalysisRequest, AnalysisService, ServiceConfig
from repro.storage.dataset import write_dataset

SHAPE = (16, 14, 6, 4)
ROI = (3, 3, 3, 2)
FEATURES = ("asm", "idm")
#: 6 distinct configurations (levels x distance); 50 jobs cycle over
#: them, so the workload is duplicate-heavy on purpose.
CONFIG_GRID = [(levels, distance)
               for levels in (6, 8, 10) for distance in (1, 2)]
NUM_JOBS = 50
TENANTS = ("clinical", "batch")
WEIGHTS = {"clinical": 2.0, "batch": 1.0}


def make_dataset(tmpdir):
    root = os.path.join(str(tmpdir), "ds")
    write_dataset(generate_phantom(PhantomConfig(shape=SHAPE, seed=3)),
                  root, num_nodes=2)
    return root


def config_for(levels, distance):
    return AnalysisConfig(
        texture=TextureParams(
            roi_shape=ROI, levels=levels, features=FEATURES,
            distance=distance, intensity_range=(0.0, 65535.0),
        ),
        texture_chunk_shape=(8, 8, 4, 3),
    )


def workload(dataset_root, cacheable):
    """The 50-job mix: tenants alternate, configs cycle over the grid.

    Submitted as two waves — one job per distinct configuration, then
    the duplicate-heavy remainder — so the second wave models tenants
    re-requesting analyses the service has already produced.
    """
    reqs = []
    for i in range(NUM_JOBS):
        levels, distance = CONFIG_GRID[i % len(CONFIG_GRID)]
        reqs.append(AnalysisRequest(
            dataset_root,
            config_for(levels, distance),
            tenant=TENANTS[i % len(TENANTS)],
            use_cache=cacheable,
            batchable=cacheable,
        ))
    return reqs[:len(CONFIG_GRID)], reqs[len(CONFIG_GRID):]


def run_phase(dataset_root, cacheable):
    svc = AnalysisService(ServiceConfig(
        workers=1, max_queued=NUM_JOBS + 8, tenant_weights=WEIGHTS,
        batching=cacheable, cache_bytes=(256 << 20) if cacheable else 0,
        pool_entries=len(CONFIG_GRID) + 2,
    ))
    seed_wave, dup_wave = workload(dataset_root, cacheable)
    t0 = time.perf_counter()
    with svc:
        jobs = [svc.submit(req) for req in seed_wave]
        results = [job.result(timeout=600) for job in jobs]
        jobs += [svc.submit(req) for req in dup_wave]
        results += [job.result(timeout=600) for job in jobs[len(results):]]
        wall = time.perf_counter() - t0
        waits = {
            tenant: [r.queue_wait for j, r in zip(jobs, results)
                     if j.tenant == tenant]
            for tenant in TENANTS
        }
        counters = svc.metrics.snapshot()["counters"]
        stats = {
            "seconds": round(wall, 4),
            "jobs_per_sec": round(NUM_JOBS / wall, 2),
            "pool_builds": int(svc.pool.stats()["builds"]),
            "pool_reuses": int(svc.pool.stats()["reuses"]),
            "pipeline_runs": int(counters.get("service_runs", 0)),
            "batched_jobs": int(counters.get("service_batched_jobs", 0)),
            "cache_hit_rate": round(svc.cache.stats()["hit_rate"], 4),
            "mean_wait": {t: round(float(np.mean(w)), 4)
                          for t, w in waits.items()},
        }
    return jobs, results, stats


def test_service_warm_vs_cold_smoke(tmp_path):
    dataset_root = make_dataset(tmp_path)
    baselines = {
        (levels, distance): run_pipeline(
            dataset_root, config_for(levels, distance)
        ).volumes
        for levels, distance in CONFIG_GRID
    }

    cold_jobs, cold_results, cold = run_phase(dataset_root, cacheable=False)
    warm_jobs, warm_results, warm = run_phase(dataset_root, cacheable=True)

    # Acceptance: every result bit-identical to one-shot run_pipeline.
    for jobs, results in ((cold_jobs, cold_results),
                          (warm_jobs, warm_results)):
        for job, result in zip(jobs, results):
            texture = job.request.config.texture
            want = baselines[(texture.levels, texture.distance)]
            for name in FEATURES:
                np.testing.assert_array_equal(
                    result.volumes[name], want[name],
                    err_msg=f"{job.id}/{name} diverged from run_pipeline",
                )

    # Acceptance: the runtime was built once per distinct configuration.
    assert warm["pool_builds"] == len(CONFIG_GRID)
    # Acceptance: >= 50% cache hits on the duplicate-heavy workload.
    assert warm["cache_hit_rate"] >= 0.5, warm
    # Caching + batching must beat paying a pass per job.
    assert warm["pipeline_runs"] < NUM_JOBS
    assert warm["jobs_per_sec"] > cold["jobs_per_sec"]
    # Acceptance: weighted fairness under saturation — the weight-2
    # tenant waits no longer than the weight-1 tenant (cold phase: no
    # batching, so the queue order is pure weighted fair queuing).
    assert (cold["mean_wait"]["clinical"]
            <= cold["mean_wait"]["batch"] * 1.05), cold["mean_wait"]

    payload = {
        "workload": {
            "jobs": NUM_JOBS,
            "tenants": list(TENANTS),
            "tenant_weights": WEIGHTS,
            "distinct_configs": len(CONFIG_GRID),
            "dataset_shape": list(SHAPE),
            "features": list(FEATURES),
        },
        "cold": cold,
        "warm": warm,
        "speedup": round(warm["jobs_per_sec"] / cold["jobs_per_sec"], 2),
    }
    path = record_repo_json("BENCH_service.json", payload)
    print(f"\ncold: {cold['jobs_per_sec']} jobs/s   "
          f"warm: {warm['jobs_per_sec']} jobs/s   "
          f"hit rate: {warm['cache_hit_rate']:.0%}   -> {path}")


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-q", "-s"]))

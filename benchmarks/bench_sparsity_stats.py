"""Section 4.4.1 sparsity claim: typical G=32 MRI co-occurrence matrices
average ~10.7 non-zero (non-duplicated) entries — about 1% of the matrix.

Measured here on the synthetic DCE-MRI phantom with the paper's ROI
(5x5x5x3) and grey-level count (32), over a sample of raster-scan
positions.
"""

import numpy as np
from harness import print_table, record

from repro.core.cooccurrence import cooccurrence_scan
from repro.core.quantization import quantize_linear
from repro.core.roi import ROISpec
from repro.core.sparse import batch_sparse_from_dense
from repro.data.synthetic import paper_dataset_config, generate_phantom

LEVELS = 32
ROI = ROISpec((5, 5, 5, 3))


def measure(n_sample=4096):
    vol = generate_phantom(paper_dataset_config(scale=0.25, seed=3))
    q = quantize_linear(vol.data, LEVELS, lo=0, hi=4095)
    nnzs = []
    for start, mats in cooccurrence_scan(q, ROI, LEVELS, batch=512):
        nnzs.extend(sp.nnz for sp in batch_sparse_from_dense(mats))
        if len(nnzs) >= n_sample:
            break
    nnzs = np.asarray(nnzs[:n_sample])
    unique_cells = LEVELS * (LEVELS + 1) // 2
    return {
        "matrices_sampled": int(nnzs.size),
        "mean_nnz": float(nnzs.mean()),
        "median_nnz": float(np.median(nnzs)),
        "max_nnz": int(nnzs.max()),
        "mean_density_pct": float(100 * nnzs.mean() / unique_cells),
    }


def test_sparsity(benchmark):
    stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Section 4.4.1: sparse-matrix statistics (G=32, ROI 5x5x5x3)",
        ["metric", "value"],
        [(k, v) for k, v in stats.items()],
    )
    record("sparsity_stats", [stats])
    # The phantom reproduces the regime the paper reports (~10.7 entries,
    # ~1-2% of the 528 unique cells): strongly sparse matrices.
    assert stats["mean_nnz"] < 0.15 * (LEVELS * (LEVELS + 1) // 2)
    assert stats["mean_density_pct"] < 15.0
    benchmark.extra_info["stats"] = stats

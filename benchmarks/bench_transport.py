"""MPRuntime transport comparison: pipe copies vs shared-memory handoff.

Runs the same disk-resident analysis (paper configuration: 5x5x5x3 ROI,
32 grey levels, the four paper features, HMP variant) on the
multiprocessing runtime twice — once with the default pipe transport,
once with ``transport="shm"`` — and records wall time, bytes actually
copied through pipes, bytes handed over via pool slabs, and peak RSS in
``BENCH_transport.json`` at the repo root.

Each transport runs in its own subprocess: the runtime forks one child
per filter copy, and ``resource.getrusage(RUSAGE_CHILDREN)`` only
reports a high-water mark per parent process, so two in-process runs
could not be told apart.

Needs only numpy and the stdlib, so CI can run the smoke variant::

    pytest benchmarks/bench_transport.py -k smoke
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from harness import record_repo_json

ROI = (5, 5, 5, 3)
LEVELS = 32
FEATURES = ("asm", "correlation", "sum_of_squares", "idm")

# One pipeline run inside a fresh interpreter.  Prints a JSON summary on
# stdout and saves the stitched volumes for the bit-identity check.
_WORKER = r"""
import json, resource, sys, time
import numpy as np
cfg = json.loads(sys.stdin.read())
from repro.filters.messages import TextureParams
from repro.pipeline.config import AnalysisConfig
from repro.pipeline.run import run_pipeline
params = TextureParams(
    roi_shape=tuple(cfg["roi"]), levels=cfg["levels"],
    features=tuple(cfg["features"]), intensity_range=(0.0, 65535.0),
)
acfg = AnalysisConfig(
    texture=params, variant="hmp",
    texture_chunk_shape=tuple(cfg["chunk"]),
    num_texture_copies=cfg["copies"],
)
t0 = time.perf_counter()
result = run_pipeline(
    cfg["dataset"], acfg, runtime="processes",
    transport=cfg["transport"], **cfg["shm_kwargs"],
)
wall = time.perf_counter() - t0
np.savez(cfg["out_npz"], **result.volumes)
rss = max(
    resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss,
)
print(json.dumps({
    "wall_seconds": wall,
    "wire_bytes": sum(result.run.wire_bytes.values()),
    "shm_bytes": sum(result.run.shm_bytes.values()),
    "peak_rss_kib": rss,
}))
"""


def _make_dataset(tmpdir, shape, seed=5):
    from repro.data.synthetic import PhantomConfig, generate_phantom
    from repro.storage.dataset import write_dataset

    root = os.path.join(str(tmpdir), "ds")
    write_dataset(generate_phantom(PhantomConfig(shape=shape, seed=seed)),
                  root, num_nodes=3)
    return root


def _run_transport(dataset, transport, chunk, copies, tmpdir,
                   shm_threshold=None):
    out_npz = os.path.join(str(tmpdir), f"volumes_{transport}.npz")
    cfg = {
        "dataset": dataset,
        "transport": transport,
        "roi": list(ROI),
        "levels": LEVELS,
        "features": list(FEATURES),
        "chunk": list(chunk),
        "copies": copies,
        "shm_kwargs": (
            {"shm_threshold": shm_threshold}
            if transport == "shm" and shm_threshold is not None
            else {}
        ),
        "out_npz": out_npz,
    }
    proc = subprocess.run(
        [sys.executable, "-c", _WORKER], input=json.dumps(cfg),
        capture_output=True, text=True, timeout=600, env=os.environ.copy(),
    )
    assert proc.returncode == 0, proc.stderr
    row = json.loads(proc.stdout.strip().splitlines()[-1])
    row["volumes"] = dict(np.load(out_npz))
    return row


def _compare(tmpdir, shape, chunk, copies, shm_threshold=None):
    dataset = _make_dataset(tmpdir, shape)
    rows = {
        t: _run_transport(dataset, t, chunk, copies, tmpdir,
                          shm_threshold=shm_threshold)
        for t in ("pipe", "shm")
    }
    for name in FEATURES:
        np.testing.assert_array_equal(
            rows["pipe"]["volumes"][name], rows["shm"]["volumes"][name],
            err_msg=f"{name}: transports disagree",
        )
    for row in rows.values():
        del row["volumes"]
    return rows


def test_transport_comparison_paper(tmp_path):
    """Paper config: shm must copy >= 5x fewer bytes, outputs identical.

    Writes the headline numbers to ``BENCH_transport.json``.
    """
    shape = (96, 96, 8, 4)
    chunk = (32, 32, 8, 4)
    # 8 KiB threshold: the uint16 image slices (18 KiB), stitched chunks
    # (64 KiB) and feature portions all take the slab path; only control
    # messages and sub-8KiB frames stay in-band.
    threshold = 8 << 10
    rows = _compare(tmp_path, shape, chunk, copies=2, shm_threshold=threshold)

    wire_reduction = rows["pipe"]["wire_bytes"] / rows["shm"]["wire_bytes"]
    payload = {
        "config": {
            "volume_shape": list(shape),
            "chunk_shape": list(chunk),
            "roi_shape": list(ROI),
            "levels": LEVELS,
            "features": list(FEATURES),
            "variant": "hmp",
            "num_texture_copies": 2,
            "runtime": "processes",
            "shm_threshold_bytes": threshold,
        },
        "transports": {
            t: {
                "wall_seconds": round(r["wall_seconds"], 3),
                "wire_bytes": r["wire_bytes"],
                "shm_bytes": r["shm_bytes"],
                "peak_rss_kib": r["peak_rss_kib"],
            }
            for t, r in rows.items()
        },
        "wire_bytes_reduction": round(wire_reduction, 1),
        "wall_speedup_shm_vs_pipe": round(
            rows["pipe"]["wall_seconds"] / rows["shm"]["wall_seconds"], 3
        ),
        "outputs_bit_identical": True,
    }
    path = record_repo_json("BENCH_transport.json", payload)
    print(f"\nwrote {path}")
    for t, r in rows.items():
        print(f"  {t:>4}: {r['wall_seconds']:.2f}s "
              f"wire={r['wire_bytes'] / 2**20:.1f} MiB "
              f"shm={r['shm_bytes'] / 2**20:.1f} MiB "
              f"rss={r['peak_rss_kib'] / 1024:.0f} MiB")

    assert wire_reduction >= 5.0, payload
    assert rows["shm"]["shm_bytes"] > 0


def test_transport_smoke(tmp_path):
    """CI gate: on a small config, shm copies >= 5x fewer bytes through
    pipes and is not slower than the pipe transport (noise margin)."""
    rows = _compare(
        tmp_path, shape=(48, 48, 8, 4), chunk=(24, 24, 8, 4), copies=2,
        # Small chunks and slices: lower the slab threshold so they all
        # take the pool (the 48x48 uint16 slices are only 4.6 KiB).
        shm_threshold=2 << 10,
    )
    assert rows["pipe"]["wire_bytes"] >= 5 * rows["shm"]["wire_bytes"], rows
    assert (
        rows["shm"]["wall_seconds"]
        <= rows["pipe"]["wall_seconds"] * 1.25 + 0.25
    ), rows

"""Self-tuning benchmarks: wakeup latency delta and tuner vs defaults.

Two headline numbers, recorded in ``BENCH_tuning.json`` at the repo
root:

* **Wakeup latency.**  The runtimes used to poll every blocking wait at
  a fixed 0.02s tick, so a buffer crossing an idle edge paid up to one
  tick per hop before its consumer even looked at the queue.  The
  event-driven path wakes consumers on the queue transition itself.  A
  3-hop chain pipeline fed one paced buffer at a time (each send hits an
  idle pipeline — the worst case for wakeups, nothing to amortize)
  measures the per-buffer delivery latency under both modes; the claim
  under test is that event-driven latency lands *below the polled 0.02s
  floor*, not just below polled's measured mean.

* **Tuner vs hand-picked defaults.**  ``repro tune``'s sweep must select
  a profile no slower than the repo's default configuration on the
  pilot workload it measured — the tuner may only help, never hurt —
  and every candidate it tried must produce bit-identical volumes.

Needs only numpy and the stdlib, so CI runs the smoke variant::

    pytest benchmarks/bench_tuning.py -k smoke
"""

import os
import statistics
import time

from harness import record_repo_json

from repro.datacutter.filter import Filter
from repro.datacutter.graph import FilterGraph
from repro.datacutter.runtime_mp import MPRuntime

#: The legacy fixed polling tick (runtime_mp._POLL) — the latency floor
#: the event-driven path must beat.
POLLED_FLOOR = 0.02

CHAIN_HOPS = 3


class PacedProducer(Filter):
    """Sends one timestamped buffer at a time into an idle pipeline.

    Buffers alternate between two streams.  Every filter downstream has
    *two* input edges, which is where the polled loop's latency floor
    actually lives: a single-input consumer blocks directly in
    ``queue.get`` (woken by the OS on arrival), but a multi-input
    consumer rotates over its queues with a ``poll``-long blocking get
    on each — a buffer landing on the stream it is *not* currently
    blocked on waits out the full tick, per hop.  The event-driven path
    sweeps non-blockingly and parks on a wakeup event instead.
    """

    def __init__(self, count=30, pace=0.01):
        self.count = count
        self.pace = pace

    def generate(self, ctx):
        for i in range(self.count):
            time.sleep(self.pace)  # let the chain drain: next send hits idle
            stream = "a" if i % 2 == 0 else "b"
            ctx.send(stream, {"seq": i, "t": time.time()}, size_bytes=64)


class Relay(Filter):
    def process(self, stream, buffer, ctx):
        ctx.send(stream, buffer.payload, size_bytes=64)


class LatencySink(Filter):
    def __init__(self):
        self.latencies = []

    def process(self, stream, buffer, ctx):
        self.latencies.append(time.time() - buffer.payload["t"])

    def finalize(self, ctx):
        ctx.deposit("latencies", self.latencies)


def chain_graph(count, pace):
    g = FilterGraph()
    g.add_filter("P", lambda: PacedProducer(count, pace))
    prev = "P"
    for h in range(CHAIN_HOPS - 1):
        name = f"R{h}"
        g.add_filter(name, Relay)
        g.connect(prev, "a", name)
        g.connect(prev, "b", name)
        prev = name
    g.add_filter("S", LatencySink)
    g.connect(prev, "a", "S")
    g.connect(prev, "b", "S")
    return g


def measure_wakeup(wakeup, count=30, pace=0.01):
    rt = MPRuntime(chain_graph(count, pace), wakeup=wakeup)
    res = rt.run(timeout=120)
    lat = res.deposits("latencies")[0]
    assert len(lat) == count
    return {
        "mean_seconds": statistics.mean(lat),
        "p50_seconds": statistics.median(lat),
        "max_seconds": max(lat),
        "buffers": count,
        "hops": CHAIN_HOPS,
    }


def run_tuner_comparison(runtime, grid, shape=(24, 24, 8, 4)):
    from repro.tuning import PilotSpec, run_sweep

    spec = PilotSpec(phantom_shape=shape, runtime=runtime, seed=7)
    result = run_sweep(spec, grid=grid)
    return {
        "runtime": runtime,
        "candidates": len(result.records),
        "baseline_elapsed_seconds": result.baseline_elapsed,
        "tuned_elapsed_seconds": result.best_elapsed,
        "speedup_vs_defaults": result.baseline_elapsed / result.best_elapsed,
        "bit_identical": result.bit_identical,
        "selected": {
            "chunk_shape": list(result.profile.chunk_shape or ()),
            "copies": dict(result.profile.copies),
            "transport": result.profile.transport,
            "kernel": result.profile.kernel,
        },
    }


def assert_no_shm_leak():
    leftovers = [f for f in os.listdir("/dev/shm") if "reproshm" in f]
    assert not leftovers, f"leaked /dev/shm segments: {leftovers}"


def test_bench_tuning_full():
    """Headline numbers -> BENCH_tuning.json."""
    wakeup = {mode: measure_wakeup(mode) for mode in ("event", "polled")}
    tuner = run_tuner_comparison(
        "processes",
        grid={
            "chunk_shape": [(16, 16, 8, 4), (24, 24, 8, 4)],
            "copies": [{"texture": 1}, {"texture": 2}],
            "transport": ["pipe", "shm"],
            "kernel": ["incremental"],
        },
    )
    payload = {
        "wakeup_latency": {
            "chain_hops": CHAIN_HOPS,
            "polled_floor_seconds": POLLED_FLOOR,
            "modes": {
                m: {k: round(v, 6) if isinstance(v, float) else v
                    for k, v in row.items()}
                for m, row in wakeup.items()
            },
            "event_vs_polled_speedup": round(
                wakeup["polled"]["mean_seconds"]
                / wakeup["event"]["mean_seconds"], 1,
            ),
        },
        "tuner": {
            k: round(v, 4) if isinstance(v, float) else v
            for k, v in tuner.items()
        },
    }
    path = record_repo_json("BENCH_tuning.json", payload)
    print(f"\nwrote {path}")
    print(f"  wakeup: event mean {wakeup['event']['mean_seconds']*1e3:.2f}ms"
          f" vs polled {wakeup['polled']['mean_seconds']*1e3:.2f}ms"
          f" over {CHAIN_HOPS} hops (floor {POLLED_FLOOR*1e3:.0f}ms/hop)")
    print(f"  tuner: defaults {tuner['baseline_elapsed_seconds']:.3f}s ->"
          f" tuned {tuner['tuned_elapsed_seconds']:.3f}s"
          f" ({tuner['speedup_vs_defaults']:.2f}x,"
          f" bit_identical={tuner['bit_identical']})")

    # The acceptance bars, exactly as stated: event-driven wakeup
    # latency measurably below the polled tick floor (per buffer, over
    # an idle 3-hop chain the polled path pays several ticks)...
    assert wakeup["event"]["mean_seconds"] < POLLED_FLOOR
    assert wakeup["event"]["mean_seconds"] < wakeup["polled"]["mean_seconds"]
    # ...and a tuner pick at least as fast as the hand-picked defaults
    # on the pilot it measured (noise margin: same config should tie).
    assert tuner["tuned_elapsed_seconds"] <= tuner[
        "baseline_elapsed_seconds"] * 1.10
    assert tuner["bit_identical"]
    assert_no_shm_leak()


def test_tuning_smoke():
    """CI gate: latency delta holds on a short chain; the pilot sweep
    runs end-to-end bit-identically; no /dev/shm segment leaks."""
    event = measure_wakeup("event", count=10)
    polled = measure_wakeup("polled", count=10)
    assert event["mean_seconds"] < POLLED_FLOOR, event
    assert event["mean_seconds"] < polled["mean_seconds"], (event, polled)

    tuner = run_tuner_comparison(
        "threads",
        grid={
            "chunk_shape": [(16, 16, 8, 4)],
            "copies": [{"texture": 1}, {"texture": 2}],
            "transport": [None],
            "kernel": ["incremental"],
        },
        shape=(16, 16, 8, 4),
    )
    assert tuner["bit_identical"]
    assert tuner["candidates"] == 2
    assert_no_shm_leak()

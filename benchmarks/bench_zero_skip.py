"""Section 4.4.1 zero-skip claim, measured on the real kernels.

The paper: testing each co-occurrence entry for zero before adding it to
the running sums "allowed us to process a typical MRI dataset in
one-fourth the time".  The NumPy analog compares the full-matrix feature
kernel (touches all G*G cells per matrix) against the non-zero-gather
path on the same sparse MRI-like matrices.

The exact ratio depends on vectorization trade-offs (NumPy's full-matrix
kernel amortizes across a batch, the per-matrix gather does not), so the
claim asserted here is directional: per-entry work visited collapses by
~50x, and the entries-visited ratio matches the paper's 4x-regime
mechanism.
"""

import numpy as np
from harness import print_table, record

from repro.core.cooccurrence import cooccurrence_scan
from repro.core.features import PAPER_FEATURES, haralick_features
from repro.core.features_sparse import features_nonzero
from repro.core.quantization import quantize_linear
from repro.core.roi import ROISpec
from repro.data.synthetic import paper_dataset_config, generate_phantom

LEVELS = 32
ROI = ROISpec((5, 5, 5, 3))


def sample_matrices(n=512):
    vol = generate_phantom(paper_dataset_config(scale=0.2, seed=1))
    q = quantize_linear(vol.data, LEVELS, lo=0, hi=4095)
    out = []
    for _start, mats in cooccurrence_scan(q, ROI, LEVELS, batch=256):
        out.append(mats)
        if sum(m.shape[0] for m in out) >= n:
            break
    return np.concatenate(out)[:n]


def test_zero_skip_work_reduction(benchmark):
    mats = sample_matrices()

    def run_nonzero():
        return [features_nonzero(m, PAPER_FEATURES) for m in mats]

    results = benchmark(run_nonzero)
    full_entries = mats.shape[0] * LEVELS * LEVELS
    visited = int(np.count_nonzero(mats))
    stats = {
        "matrices": int(mats.shape[0]),
        "entries_full": full_entries,
        "entries_visited_zero_skip": visited,
        "work_reduction_x": full_entries / max(visited, 1),
    }
    print_table(
        "Section 4.4.1: zero-skip entry-visit reduction",
        ["metric", "value"],
        [(k, v) for k, v in stats.items()],
    )
    record("zero_skip", [stats])
    # The paper's 4x dataset-level speedup rests on skipping >= 3/4 of
    # the entries; our MRI-like matrices skip far more than that.
    assert stats["work_reduction_x"] > 4
    # Results must agree with the full kernel.
    dense = haralick_features(mats, PAPER_FEATURES)
    for k in (0, len(mats) // 2, len(mats) - 1):
        for name in PAPER_FEATURES:
            assert abs(results[k][name] - float(dense[name][k])) < 1e-9


def test_full_kernel_baseline(benchmark):
    """Baseline: the vectorized full-matrix kernel on the same batch."""
    mats = sample_matrices()
    benchmark(lambda: haralick_features(mats, PAPER_FEATURES))

"""Benchmark-suite configuration.

Benchmarks live outside the main test tree; run them with::

    pytest benchmarks/ --benchmark-only

Figure tables are printed to stdout (shown with ``-s`` or in this
suite's default capture mode) and recorded under ``benchmarks/results/``.
"""

import sys
import os

# Make `harness` importable regardless of invocation directory.
sys.path.insert(0, os.path.dirname(__file__))

"""Shared helpers for the figure-reproduction benchmarks.

Each ``bench_fig*.py`` module reproduces one table or figure of the
paper's evaluation (Section 5): it runs the corresponding experiment
(full paper-scale workload on the simulated testbeds, or real kernels
for the compute-level claims), prints the series the paper plots, and
records the numbers in ``benchmarks/results/`` for EXPERIMENTS.md.

Absolute times are *simulated seconds* on the modeled 2004 hardware —
the claim under test is the shape (who wins, by what factor, where
curves cross), not the absolute scale.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def record(name: str, rows: List[Dict]) -> None:
    """Persist a result series for the experiment log."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.json"), "w") as fh:
        json.dump(rows, fh, indent=1)


def record_repo_json(filename: str, payload: Dict) -> str:
    """Write a machine-readable result file at the repository root.

    Used for headline numbers that gate CI or document the repo's
    current performance (e.g. ``BENCH_kernels.json``), as opposed to
    the per-figure series under ``benchmarks/results/``.
    """
    path = os.path.join(REPO_ROOT, filename)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def metrics_summary(metrics: Dict) -> Dict[str, float]:
    """Compact one-level summary of a run's obs metrics snapshot.

    Flattens the pieces worth keeping next to a benchmark number —
    per-filter busy totals, buffers per stream, fault counters — into a
    flat ``{key: number}`` dict that fits in ``benchmark.extra_info``.
    """
    out: Dict[str, float] = {}
    for key, value in (metrics.get("counters") or {}).items():
        if key.startswith(("buffers_sent", "retries", "reroutes",
                           "failed_copies", "wire_frames")):
            out[key] = value
    for key, h in (metrics.get("histograms") or {}).items():
        if key.startswith("busy_seconds"):
            out[key + ".sum"] = h["sum"]
    gauges = metrics.get("gauges") or {}
    if "elapsed_seconds" in gauges:
        out["elapsed_seconds"] = gauges["elapsed_seconds"]["value"]
    return out


def print_table(title: str, headers: Sequence[str], rows: List[Sequence]) -> None:
    """Print a small aligned table (the figure's data series)."""
    widths = [
        max(len(str(h)), max((len(f"{r[i]:.1f}" if isinstance(r[i], float) else str(r[i]))
                              for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    for r in rows:
        cells = [
            (f"{v:.1f}" if isinstance(v, float) else str(v)).rjust(w)
            for v, w in zip(r, widths)
        ]
        print("  ".join(cells))

"""Cluster-scale what-if studies with the discrete-event simulator.

Reproduces the paper's headline comparisons at full dataset scale
(256x256x32x32, 53.3M ROIs) on the modeled 2004 testbeds — something the
real pipeline cannot do on one machine in reasonable time — and then
explores a configuration the paper leaves as future work: how many
explicit IIC copies the 16-node split pipeline needs before the input
stitch stops limiting scalability.

Run:
    python examples/cluster_simulation.py
"""

from repro.sim import SimRuntime, paper_workload
from repro.sim.layouts import (
    fig10_hmp,
    fig10_split,
    homogeneous_hmp,
    homogeneous_split,
)


def main() -> None:
    wl = paper_workload()
    print(f"workload: {wl.dataset_shape}, {wl.total_rois / 1e6:.1f}M ROIs, "
          f"{len(wl.chunks)} chunks")

    print("\n=== scaling on the PIII cluster (simulated seconds) ===")
    print(f"{'nodes':>6} {'HMP full':>10} {'split sparse (overlap)':>24}")
    for n in (1, 2, 4, 8, 16):
        hmp = SimRuntime(wl, *homogeneous_hmp(n)).run().makespan
        split = SimRuntime(
            wl, *homogeneous_split(n, sparse=True, overlap=True)
        ).run().makespan
        print(f"{n:>6} {hmp:>10.1f} {split:>24.1f}")

    print("\n=== heterogeneous PIII + XEON (Fig. 10 setup) ===")
    hmp = SimRuntime(wl, *fig10_hmp()).run().makespan
    split = SimRuntime(wl, *fig10_split(sparse=True)).run().makespan
    print(f"HMP (23 copies):        {hmp:8.1f} s")
    print(f"split (18 HCC + 18 HPC): {split:8.1f} s")

    print("\n=== what-if: IIC copies for the 16-node split pipeline ===")
    print(f"{'IIC copies':>10} {'makespan':>10} {'IIC busy/copy':>14}")
    for n_iic in (1, 2, 4, 8):
        rep = SimRuntime(
            wl, *homogeneous_split(16, sparse=True, num_iic=n_iic)
        ).run()
        print(f"{n_iic:>10} {rep.makespan:>10.1f} "
              f"{rep.filter_busy_mean('IIC'):>14.1f}")
    print("(the paper observes the single IIC becoming the 16-node "
          "bottleneck and proposes explicit copies — Section 5.2)")

    print("\n=== execution timeline (4-node split, 1/4-scale workload) ===")
    from repro.sim import format_timeline

    wl_small = paper_workload(scale=0.25)
    spec, cluster, placement = homogeneous_split(4, sparse=True, overlap=True)
    rep = SimRuntime(wl_small, spec, cluster, placement, trace=True).run()
    print(format_timeline(rep.spans, rep.makespan, width=64))
    print("(the IIC stitch serializes the pipeline fill — the texture "
          "filters idle until chunks start flowing)")


if __name__ == "__main__":
    main()

"""DCE-MRI study workflow: disk-resident dataset + parallel pipeline.

The motivating application of the paper (Section 1): a dynamic
contrast-enhanced MRI study is acquired over many time steps, written as
per-slice raw files distributed round-robin over storage nodes, and
analyzed by the parallel filter pipeline — the split HCC+HPC variant.
(The paper's best cluster configuration also enables the sparse matrix
representation; on a single machine the streams are pointer copies, so
there is no communication to save and the dense vectorized kernels are
the right choice — exactly the trade-off behind the paper's Fig. 7a.)

The output parameter volumes are rendered as normalized PGM image
series via the HIC -> JIW path.

Run:
    python examples/dce_mri_study.py [workdir]
"""

import os
import sys
import tempfile
import time

import numpy as np

from repro.data import Lesion, PhantomConfig, generate_phantom
from repro.filters import TextureParams
from repro.pipeline import AnalysisConfig, format_breakdown, run_pipeline
from repro.storage import write_dataset


def main(workdir: str) -> None:
    # --- acquisition: a study with two lesions of different kinetics ----
    lesions = (
        Lesion(center=(15, 30, 4), radius=5, amplitude=0.8, uptake_rate=1.0,
               washout_rate=0.12),  # malignant-like: fast wash-in/out
        Lesion(center=(33, 14, 8), radius=4, amplitude=0.5, uptake_rate=0.25,
               washout_rate=0.02),  # benign-like: slow persistent uptake
    )
    volume = generate_phantom(
        PhantomConfig(shape=(48, 48, 12, 6), lesions=lesions, seed=7)
    )
    print(f"study: {volume.shape} = {volume.nbytes / 1e6:.1f} MB")

    # --- distribute over 4 storage nodes (paper Section 4.2) -----------
    dataset_root = os.path.join(workdir, "dataset")
    dataset = write_dataset(volume, dataset_root, num_nodes=4)
    print(f"dataset on disk: {dataset.num_nodes} storage nodes, "
          f"{dataset.num_slices * dataset.num_timesteps} slice files")

    # --- parallel analysis: split pipeline, sparse matrices ------------
    params = TextureParams(
        roi_shape=(5, 5, 5, 3),
        levels=32,
        intensity_range=(0.0, 4095.0),
        sparse=False,
    )
    config = AnalysisConfig(
        texture=params,
        variant="split",
        texture_chunk_shape=(24, 24, 12, 6),
        num_hcc_copies=4,
        num_hpc_copies=1,
        num_iic_copies=2,
        output="images",
        output_dir=os.path.join(workdir, "images"),
    )
    t0 = time.perf_counter()
    result = run_pipeline(dataset_root, config)
    elapsed = time.perf_counter() - t0
    print(f"\nparallel analysis finished in {elapsed:.2f}s")
    print(format_breakdown(result.run, order=("RFR", "IIC", "HCC", "HPC", "HIC", "JIW")))

    # --- inspect the texture response at the two lesions ----------------
    print("\nlesion texture signatures (feature at lesion ROI vs background):")
    for name, vol in result.volumes.items():
        malignant = vol[11:17, 26:32, 2:4].mean()
        benign = vol[29:35, 10:16, 6:8].mean()
        background = vol[:6, :6, :2].mean()
        print(
            f"  {name:<16} malignant={malignant:8.4f}  benign={benign:8.4f}  "
            f"background={background:8.4f}"
        )

    images = result.run.deposits("images")
    total = sum(i["count"] for i in images)
    print(f"\nwrote {total} PGM images under {config.output_dir}")

    # --- radiologist views (paper Section 1) ----------------------------
    from repro.viz import save_colormap_ppm, save_montage_pgm, write_curves_csv

    viz_dir = os.path.join(workdir, "viz")
    os.makedirs(viz_dir, exist_ok=True)
    save_montage_pgm(os.path.join(viz_dir, "study_montage.pgm"), volume.data)
    write_curves_csv(
        os.path.join(viz_dir, "curves.csv"),
        volume.data,
        [(15, 30, 4), (33, 14, 8), (2, 2, 0)],  # lesions + background
    )
    # Color-coded IDM map of the central slice at the last time step.
    idm = result.volumes["idm"]
    save_colormap_ppm(
        os.path.join(viz_dir, "idm_map.ppm"),
        idm[:, :, idm.shape[2] // 2, -1],
        cmap="coolwarm",
    )
    print(f"radiologist views (montage, curves, color map) under {viz_dir}")


if __name__ == "__main__":
    if len(sys.argv) > 1:
        os.makedirs(sys.argv[1], exist_ok=True)
        main(sys.argv[1])
    else:
        with tempfile.TemporaryDirectory() as tmp:
            main(tmp)

"""Distributed runtime walkthrough: a three-agent cluster on loopback.

The same FilterGraph the threaded and process runtimes execute runs
here across worker agents connected over TCP — the paper's actual
DataCutter deployment model.  Loopback host entries spawn local agent
processes, so the whole stack (head, agents, wire codec, credit-based
flow control) runs on one machine; swap in real hostnames and start
`python -m repro.datacutter.net.agent` on each to span a cluster.

Four runs:

1. the pipeline over three loopback agents, with per-stream bytes on
   the wire;
2. the sequential reference, to show the volumes are bit-identical;
3. the same run with an injected agent crash after one delivery — the
   head reroutes the dead agent's chunks to the survivors and the
   volumes still match bit-for-bit;
4. the same run under ``codec.forbid_array_copies()``, proving no
   ndarray was serialized through an intermediate copy.

Run:
    python examples/distributed_cluster.py
"""

import tempfile

import numpy as np

from repro.core.analysis import HaralickConfig, haralick_transform
from repro.core.quantization import quantize_linear
from repro.data import PhantomConfig, generate_phantom
from repro.datacutter import FaultPlan
from repro.datacutter.net import codec
from repro.filters.messages import TextureParams
from repro.pipeline.report import failure_summary
from repro.pipeline.run import run_pipeline
from repro.storage.dataset import write_dataset

HOSTS = ["127.0.0.1"] * 3  # hostnames here to span a real cluster


def main() -> None:
    volume = generate_phantom(PhantomConfig(shape=(24, 20, 6, 4), seed=1))
    root = tempfile.mkdtemp(prefix="dist_demo_") + "/data"
    write_dataset(volume, root, num_nodes=2)

    from repro.pipeline.config import AnalysisConfig

    config = AnalysisConfig(
        texture=TextureParams(
            roi_shape=(3, 3, 3, 2), levels=8, features=("asm", "idm"),
            intensity_range=(0.0, 65535.0),
        ),
        variant="hmp",
        texture_chunk_shape=(12, 10, 6, 4),
        num_texture_copies=4,
        num_iic_copies=2,
    )

    print(f"=== 1. distributed run over {len(HOSTS)} loopback agents ===")
    result = run_pipeline(root, config, runtime="distributed", hosts=HOSTS)
    print(f"elapsed: {result.elapsed:.2f}s")
    for stream, nbytes in sorted(result.run.wire_bytes.items()):
        print(f"  {stream:<14} {nbytes / 1e3:8.1f} kB on the wire")

    print("\n=== 2. bit-identical to the sequential reference ===")
    q = quantize_linear(volume.data, 8, lo=0.0, hi=65535.0)
    reference = haralick_transform(
        q,
        HaralickConfig(roi_shape=(3, 3, 3, 2), levels=8,
                       features=("asm", "idm")),
        quantized=True,
    )
    for name in ("asm", "idm"):
        np.testing.assert_array_equal(result.volumes[name], reference[name])
        print(f"  {name}: identical")

    print("\n=== 3. crash an agent mid-run: reroute and still match ===")
    plan = FaultPlan(seed=7).crash_agent(1, after_buffers=1)
    crashed = run_pipeline(root, config, runtime="distributed",
                           hosts=HOSTS, faults=plan)
    for name in ("asm", "idm"):
        np.testing.assert_array_equal(crashed.volumes[name], reference[name])
    summary = failure_summary(crashed.run)
    print(f"  reroutes: {summary['reroutes']}, "
          f"recovered copies: {summary['recovered_copies']}")
    for line in summary["failures"]:
        print(f"  {line}")

    print("\n=== 4. the zero-copy guarantee, enforced ===")
    with codec.forbid_array_copies():
        guarded = run_pipeline(root, config, runtime="distributed",
                               hosts=HOSTS)
    np.testing.assert_array_equal(guarded.volumes["asm"], reference["asm"])
    print("  full pipeline ran with in-band ndarray serialization forbidden")


if __name__ == "__main__":
    main()

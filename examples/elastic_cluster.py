"""Elastic membership walkthrough: join and drain agents in one live run.

A three-agent loopback cluster analyzes a phantom while the membership
schedule changes under it: a fourth agent *joins* 0.2 s into the run
(the head installs a fresh texture copy on it and rebalances pending
chunks onto the newcomer), and 0.5 s in, agent 1 is *drained* — its
in-flight chunks finish, its copies finalize, and it detaches cleanly.

Three things to watch in the output:

1. the feature volumes stay bit-identical to the sequential reference
   even though the cluster changed shape twice mid-run;
2. ``RunResult`` attributes the churn: the joiner in ``joined_agents``,
   the leaver in ``drained_agents``, and — the important part —
   **zero** retries/reroutes/failed copies, because a planned leave is
   not a failure;
3. the trace records every transition (``agent.join``, ``agent.drain``,
   ``agent.detach``) plus each pending chunk the scheduler moved when
   membership changed (``sched.rebalance``).

Run:
    python examples/elastic_cluster.py
"""

import tempfile

import numpy as np

from repro.core.analysis import HaralickConfig, haralick_transform
from repro.core.quantization import quantize_linear
from repro.data import PhantomConfig, generate_phantom
from repro.datacutter import FaultPlan
from repro.datacutter.faults import DrainAgent, JoinAgent
from repro.filters.messages import TextureParams
from repro.pipeline.run import run_pipeline
from repro.storage.dataset import write_dataset

HOSTS = ["127.0.0.1"] * 3


def main() -> None:
    volume = generate_phantom(PhantomConfig(shape=(24, 20, 6, 4), seed=1))
    root = tempfile.mkdtemp(prefix="elastic_demo_") + "/data"
    write_dataset(volume, root, num_nodes=2)

    from repro.pipeline.config import AnalysisConfig

    config = AnalysisConfig(
        texture=TextureParams(
            roi_shape=(3, 3, 3, 2), levels=8, features=("asm", "idm"),
            intensity_range=(0.0, 65535.0),
        ),
        variant="hmp",
        texture_chunk_shape=(6, 5, 3, 2),
        num_texture_copies=4,
        num_iic_copies=2,
    )

    print(f"=== elastic run over {len(HOSTS)} agents (+1 join, -1 drain) ===")
    # A small per-chunk delay keeps the run long enough for churn at
    # 0.2 s / 0.5 s to land mid-flight on any machine.
    stretch = FaultPlan(seed=0).delay_buffers("HMP", delay=0.02)
    result = run_pipeline(
        root, config,
        runtime="distributed", hosts=HOSTS,
        elastic=True,
        schedule=[
            JoinAgent(at=0.2),                          # scale out
            DrainAgent(at=0.5, agent=1, deadline=60.0),  # scale in
        ],
        faults=stretch,
        trace=True,
        max_queue=4,  # keep chunks pending at the head => visible rebalances
    )
    run = result.run
    print(f"elapsed          {run.elapsed:.2f}s")
    print(f"joined_agents    {run.joined_agents}")
    print(f"drained_agents   {run.drained_agents}")
    print(f"rebalances       {run.rebalances}")
    print(f"retries/reroutes {run.retries}/{run.reroutes}  "
          f"failed_copies={len(run.failed_copies)}   <- churn, not failure")

    print("\n=== membership timeline (from the trace) ===")
    t0 = min(ev.ts for ev in run.trace.events)
    for ev in run.trace.events:
        if ev.kind in ("agent.join", "agent.drain", "agent.detach"):
            print(f"  t+{ev.ts - t0:5.2f}s  {ev.kind:<13} "
                  f"agent={ev.attrs['agent']}")
    moved = [ev for ev in run.trace.events if ev.kind == "sched.rebalance"]
    print(f"  {len(moved)} pending chunk(s) re-assigned on membership "
          f"changes")
    for ev in moved[:5]:
        print(f"    chunk={ev.chunk} stream={ev.attrs['stream']} "
              f"-> copy {ev.attrs['dest']}")
    if len(moved) > 5:
        print(f"    ... and {len(moved) - 5} more")

    print("\n=== bit-identity vs the sequential reference ===")
    q = quantize_linear(volume.data, 8, lo=0.0, hi=65535.0)
    want = haralick_transform(
        q,
        HaralickConfig(roi_shape=(3, 3, 3, 2), levels=8,
                       features=("asm", "idm")),
        quantized=True,
    )
    for name in ("asm", "idm"):
        same = bool(np.array_equal(result.volumes[name], want[name]))
        print(f"{name:<4} identical: {same}")
        assert same


if __name__ == "__main__":
    main()

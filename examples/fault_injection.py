"""Fault injection demo: crash a texture copy mid-run and recover.

Builds a small disk-resident dataset, then runs the split (HCC + HPC)
pipeline three times:

1. failure-free, as the baseline;
2. with a FaultPlan that crashes 1 of 4 HCC copies on its first chunk —
   retry + reroute deliver bit-identical volumes anyway;
3. the same crash with retries disabled — the run aborts with a
   structured PipelineError instead of hanging.

Finally the same experiment runs in the cluster simulator: a texture
node fails mid-run and the demand-driven scheduler shifts its work to
the survivors.

Run:
    python examples/fault_injection.py
"""

import tempfile

import numpy as np

from repro.data import PhantomConfig, generate_phantom
from repro.datacutter import NO_RETRY, FaultPlan, PipelineError
from repro.filters.messages import TextureParams
from repro.pipeline.config import AnalysisConfig
from repro.pipeline.report import failure_summary, format_breakdown
from repro.pipeline.run import run_pipeline
from repro.sim import SimFaultPlan, SimRuntime
from repro.sim.layouts import homogeneous_hmp
from repro.sim.workload import paper_workload
from repro.storage.dataset import write_dataset


def main() -> None:
    volume = generate_phantom(PhantomConfig(shape=(24, 20, 6, 4), seed=1))
    root = tempfile.mkdtemp(prefix="fault_demo_") + "/data"
    write_dataset(volume, root, num_nodes=2)

    config = AnalysisConfig(
        texture=TextureParams(
            roi_shape=(3, 3, 3, 2), levels=8, features=("asm", "idm"),
            intensity_range=(0.0, 65535.0),
        ),
        variant="split",
        texture_chunk_shape=(10, 10, 6, 4),
        num_hcc_copies=4,
        num_hpc_copies=1,
    )

    print("== baseline (no faults) ==")
    clean = run_pipeline(root, config)
    print(format_breakdown(clean.run, order=("RFR", "IIC", "HCC", "HPC")))

    print("\n== crash HCC[0] on its first chunk, recover by reroute ==")
    plan = FaultPlan().crash_copy("HCC", copy_index=0, after_buffers=0)
    recovered = run_pipeline(root, config, faults=plan)
    print(format_breakdown(recovered.run, order=("RFR", "IIC", "HCC", "HPC")))
    print("failure summary:", failure_summary(recovered.run))
    identical = all(
        np.array_equal(clean.volumes[n], recovered.volumes[n])
        for n in clean.volumes
    )
    print(f"volumes bit-identical to baseline: {identical}")

    print("\n== same crash with retries disabled ==")
    try:
        run_pipeline(root, config, retry=NO_RETRY, faults=plan)
    except PipelineError as err:
        print(f"PipelineError (as designed): {err}")

    print("\n== simulator: fail a texture node mid-run ==")
    wl = paper_workload(scale=0.25)
    base = SimRuntime(wl, *homogeneous_hmp(4)).run()
    spec, cluster, placement = homogeneous_hmp(4)
    victim = placement.node_of("HMP", 0)
    sim_plan = SimFaultPlan().fail_node(victim, at=base.makespan * 0.1)
    rep = SimRuntime(wl, spec, cluster, placement, faults=sim_plan).run()
    print(f"makespan clean: {base.makespan:10.2f}s")
    print(f"makespan with {victim} failed: {rep.makespan:10.2f}s")
    print(f"buffers rerouted per stream: {rep.stream_rerouted}")


if __name__ == "__main__":
    main()

"""Out-of-core analysis: chunked processing of a disk-resident dataset.

Demonstrates the memory story of the paper: a 4D dataset that should not
be loaded whole is processed chunk by chunk.  The example bounds the
texture filters' working set by the IIC-to-TEXTURE chunk size and shows
the chunk/overlap arithmetic of Section 4.4 (Eqs. 1-2), then verifies
the chunked parallel result against a reference region.  The last
section runs the same dataset through the region data layer
(docs/data-layer.md) with a RAM budget far below the dataset size, so
staged chunks spill to disk instead of growing the process.

Run:
    python examples/out_of_core_dataset.py
"""

import os
import tempfile

import numpy as np

from repro.chunks import overlap, partition
from repro.core import ROISpec, haralick_transform, HaralickConfig
from repro.core.quantization import quantize_linear
from repro.data import PhantomConfig, generate_phantom
from repro.filters import TextureParams
from repro.pipeline import (
    AnalysisConfig,
    plan_chunks,
    run_pipeline,
    transform_disk_dataset,
)
from repro.regions import RegionStore, StagingPolicy
from repro.storage import write_dataset


def main(workdir: str) -> None:
    shape = (96, 96, 12, 8)
    roi = ROISpec((5, 5, 5, 3))
    chunk_shape = (40, 40, 12, 8)

    print("=== chunk arithmetic (paper Section 4.4) ===")
    print(f"dataset {shape}, ROI {roi.shape}, chunk target {chunk_shape}")
    print(f"overlap per dimension (Eqs. 1-2): "
          f"{tuple(overlap(r) for r in roi.shape)}")
    chunks = partition(shape, roi, chunk_shape)
    print(f"{len(chunks)} chunks; input voxels per chunk (with overlap):")
    total_in = sum(c.num_voxels for c in chunks)
    raw = int(np.prod(shape))
    print(f"  total read with overlap: {total_in} vs raw {raw} "
          f"(+{100 * (total_in - raw) / raw:.1f}% redundancy)")
    biggest = max(chunks, key=lambda c: c.num_voxels)
    print(f"  largest chunk holds {biggest.num_voxels * 2 / 1e6:.2f} MB "
          f"(2 B/pixel) of the {raw * 2 / 1e6:.1f} MB dataset in memory")

    print("\n=== out-of-core parallel run ===")
    volume = generate_phantom(PhantomConfig(shape=shape, seed=5))
    dataset_root = os.path.join(workdir, "ds")
    write_dataset(volume, dataset_root, num_nodes=4)

    params = TextureParams(
        roi_shape=roi.shape,
        levels=16,
        features=("asm", "idm"),
        intensity_range=(0.0, 4095.0),
    )
    config = AnalysisConfig(
        texture=params,
        variant="hmp",
        texture_chunk_shape=chunk_shape,
        num_texture_copies=4,
        num_iic_copies=2,
    )
    print(f"chunk plan: {len(plan_chunks(shape, config))} chunks -> "
          f"{config.num_texture_copies} HMP copies")
    result = run_pipeline(dataset_root, config)
    print(f"done in {result.elapsed:.2f}s; output shape "
          f"{result.volumes['asm'].shape}")

    # Spot-check a region against the sequential reference.
    q = quantize_linear(volume.data, 16, lo=0.0, hi=4095.0)
    ref = haralick_transform(
        q[:20, :20, :, :],
        HaralickConfig(roi_shape=roi.shape, levels=16, features=("asm", "idm")),
        quantized=True,
    )
    check = result.volumes["asm"][:16, :16, :, :]
    np.testing.assert_allclose(check, ref["asm"][:16, :16, :, :], atol=1e-12)
    print("verified: chunked parallel output == sequential reference region")

    print("\n=== region staging with a RAM cap below the dataset ===")
    ram_cap = 256 << 10  # ~15% of the 1.77 MB dataset: staging must spill
    print(f"RAM tier capped at {ram_cap >> 10} KiB for the "
          f"{raw * 2 / 1e6:.1f} MB dataset")
    store = RegionStore.from_policy(
        StagingPolicy(ram_bytes=ram_cap, spill_dir=os.path.join(workdir, "spill"))
    )
    with store:
        staged = transform_disk_dataset(dataset_root, config, region_store=store)
        stats = store.stats
        occupancy = store.occupancy()
    print(f"stages={stats.stages} hits={stats.hits} "
          f"evictions={stats.evictions} drops={stats.drops}")
    print(f"tier occupancy at finish: {occupancy}")
    assert stats.evictions > 0, "expected the RAM cap to force spill"
    assert stats.drops == 0, "spilled regions must not be lost"
    assert occupancy.get("ram", 0) <= ram_cap
    for name in ("asm", "idm"):
        np.testing.assert_array_equal(staged[name], result.volumes[name])
    print("verified: staged out-of-core output == unbounded parallel output")


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as tmp:
        main(tmp)

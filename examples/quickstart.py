"""Quickstart: sequential 4D Haralick texture analysis in memory.

Generates a small synthetic DCE-MRI study, runs the paper's default
analysis (5x5x5x3 ROI, 32 grey levels, four Haralick parameters), and
prints summary statistics of each output feature volume.

Run:
    python examples/quickstart.py

With ``--trace PATH`` the same study is additionally run through the
threaded parallel pipeline with per-chunk tracing on, and a Chrome
trace (open in Perfetto or chrome://tracing) is written to PATH.
"""

import argparse
import tempfile

import numpy as np

from repro import HaralickConfig, haralick_transform
from repro.data import PhantomConfig, Lesion, generate_phantom


def traced_pipeline_run(volume, trace_path: str) -> None:
    """Re-run the study on the parallel pipeline and export its trace."""
    from repro.filters.messages import TextureParams
    from repro.pipeline.config import AnalysisConfig
    from repro.pipeline.run import run_pipeline
    from repro.storage.dataset import write_dataset

    with tempfile.TemporaryDirectory() as td:
        write_dataset(volume, td + "/ds", num_nodes=2)
        config = AnalysisConfig(
            texture=TextureParams(roi_shape=(5, 5, 5, 3), levels=32),
            texture_chunk_shape=(24, 24, 12, 6),
            num_texture_copies=2,
            output="uso",
            output_dir=td + "/out",
        )
        result = run_pipeline(
            td + "/ds", config, trace="chrome", trace_out=trace_path
        )
    print(f"\nparallel pipeline: {result.elapsed:.3f}s, "
          f"{len(result.trace.events)} trace events -> {trace_path}")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace", metavar="PATH",
        help="also run the threaded pipeline and write a Chrome trace here",
    )
    args = parser.parse_args(argv)
    # A 48x48x12x6 study with one strongly enhancing lesion.
    lesion = Lesion(center=(24, 24, 6), radius=7, amplitude=0.7, uptake_rate=0.9)
    volume = generate_phantom(
        PhantomConfig(shape=(48, 48, 12, 6), lesions=(lesion,), seed=42)
    )
    print(f"input volume: {volume.shape}, dtype {volume.data.dtype}")

    config = HaralickConfig(roi_shape=(5, 5, 5, 3), levels=32)
    print(f"analysis: ROI {config.roi_shape}, G={config.levels}, "
          f"features {config.features}")
    print(f"output shape per feature: {config.output_shape(volume.shape)}")

    features = haralick_transform(volume.data, config)

    print("\nfeature volume statistics:")
    for name, vol in features.items():
        print(
            f"  {name:<16} min={vol.min():8.4f}  mean={vol.mean():8.4f}  "
            f"max={vol.max():8.4f}"
        )

    # Texture responds to the lesion: entropy-like heterogeneity measures
    # differ between lesion center and background.
    asm = features["asm"]
    cx, cy, cz = 22, 22, 4  # ROI-origin coords near the lesion center
    lesion_asm = asm[cx, cy, cz].mean()
    corner_asm = asm[:4, :4, :2].mean()
    print(f"\nASM near lesion: {lesion_asm:.4f}  vs background: {corner_asm:.4f}")
    print("(lower ASM = less uniform texture)")

    if args.trace:
        traced_pipeline_run(volume, args.trace)


if __name__ == "__main__":
    main()

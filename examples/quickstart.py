"""Quickstart: sequential 4D Haralick texture analysis in memory.

Generates a small synthetic DCE-MRI study, runs the paper's default
analysis (5x5x5x3 ROI, 32 grey levels, four Haralick parameters), and
prints summary statistics of each output feature volume.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro import HaralickConfig, haralick_transform
from repro.data import PhantomConfig, Lesion, generate_phantom


def main() -> None:
    # A 48x48x12x6 study with one strongly enhancing lesion.
    lesion = Lesion(center=(24, 24, 6), radius=7, amplitude=0.7, uptake_rate=0.9)
    volume = generate_phantom(
        PhantomConfig(shape=(48, 48, 12, 6), lesions=(lesion,), seed=42)
    )
    print(f"input volume: {volume.shape}, dtype {volume.data.dtype}")

    config = HaralickConfig(roi_shape=(5, 5, 5, 3), levels=32)
    print(f"analysis: ROI {config.roi_shape}, G={config.levels}, "
          f"features {config.features}")
    print(f"output shape per feature: {config.output_shape(volume.shape)}")

    features = haralick_transform(volume.data, config)

    print("\nfeature volume statistics:")
    for name, vol in features.items():
        print(
            f"  {name:<16} min={vol.min():8.4f}  mean={vol.mean():8.4f}  "
            f"max={vol.max():8.4f}"
        )

    # Texture responds to the lesion: entropy-like heterogeneity measures
    # differ between lesion center and background.
    asm = features["asm"]
    cx, cy, cz = 22, 22, 4  # ROI-origin coords near the lesion center
    lesion_asm = asm[cx, cy, cz].mean()
    corner_asm = asm[:4, :4, :2].mean()
    print(f"\nASM near lesion: {lesion_asm:.4f}  vs background: {corner_asm:.4f}")
    print("(lower ASM = less uniform texture)")


if __name__ == "__main__":
    main()

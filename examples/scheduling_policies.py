"""Buffer scheduling policies on a heterogeneous testbed.

Shows round-robin vs. demand-driven behaviour (paper Fig. 11) both in
the simulator — where the load split between the XEON and OPTERON HCC
copies can be inspected directly — and on the real threaded runtime,
where a deliberately slowed filter copy demonstrates the demand-driven
scheduler steering buffers toward faster consumers.

Run:
    python examples/scheduling_policies.py
"""

import time

from repro.datacutter import Filter, FilterGraph, LocalRuntime
from repro.sim import SimRuntime, paper_workload
from repro.sim.layouts import fig11_layout


def simulated() -> None:
    print("=== simulated (paper Fig. 11 layout, full scale) ===")
    wl = paper_workload()
    for policy in ("round_robin", "demand_driven"):
        rep = SimRuntime(wl, *fig11_layout(policy)).run()
        busy = rep.filter_busy("HCC")
        xeon, opteron = sum(busy[:4]), sum(busy[4:])
        share = opteron / (opteron + xeon)
        print(f"{policy:>14}: {rep.makespan:8.1f} s   "
              f"OPTERON HCC share of work: {share:.0%}")


class Producer(Filter):
    def generate(self, ctx):
        for i in range(60):
            ctx.send("out", i, size_bytes=64)


class Worker(Filter):
    """Copy 0 is 'fast'; copy 1 sleeps per buffer (a slow node)."""

    def __init__(self):
        self.handled = 0

    def process(self, stream, buffer, ctx):
        self.handled += 1
        if ctx.copy_index == 1:
            time.sleep(0.005)

    def finalize(self, ctx):
        ctx.deposit(f"handled_{ctx.copy_index}", self.handled)


def real_runtime() -> None:
    print("\n=== real threaded runtime: slow vs fast consumer copy ===")
    for policy in ("round_robin", "demand_driven"):
        graph = FilterGraph()
        graph.add_filter("P", Producer)
        graph.add_filter("W", Worker, copies=2)
        graph.connect("P", "out", "W", policy=policy)
        result = LocalRuntime(graph, max_queue=2).run()
        fast = result.deposits("handled_0")[0]
        slow = result.deposits("handled_1")[0]
        print(f"{policy:>14}: fast copy handled {fast}, slow copy handled "
              f"{slow} of 60 buffers")


if __name__ == "__main__":
    simulated()
    real_runtime()

"""Quickstart: the always-on analysis service.

Generates a small synthetic DCE-MRI study on disk, starts an in-process
:class:`repro.service.AnalysisService`, and submits a duplicate-heavy
mix of texture-analysis jobs from two tenants.  The run demonstrates
the three things the service adds over one-shot ``run_pipeline`` calls:

* **warm runtime pools** — the pipeline is prepared and the runtime
  built once per distinct configuration, then reused across jobs;
* **content-addressed result cache** — re-submitting an analysis the
  service has already produced is served from the cache without a
  pipeline pass;
* **weighted fair scheduling** — the ``clinical`` tenant (weight 2)
  gets twice the share of the queue that ``batch`` (weight 1) does.

Run:
    python examples/service_quickstart.py

With ``--serve`` the same service is additionally exposed on a loopback
TCP socket and exercised through :class:`repro.service.ServiceClient`,
the transport behind ``repro serve`` / ``repro submit``.
"""

import argparse
import tempfile

from repro.data import PhantomConfig, generate_phantom
from repro.filters.messages import TextureParams
from repro.pipeline.config import AnalysisConfig
from repro.service import (
    AnalysisRequest,
    AnalysisService,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
)
from repro.storage.dataset import write_dataset


def make_config(levels):
    return AnalysisConfig(
        texture=TextureParams(
            roi_shape=(3, 3, 3, 2), levels=levels,
            features=("asm", "idm"), intensity_range=(0.0, 4095.0),
        ),
        texture_chunk_shape=(8, 8, 4, 3),
    )


def run_service_demo(dataset_root):
    config = ServiceConfig(
        workers=2,
        tenant_weights={"clinical": 2.0, "batch": 1.0},
    )
    with AnalysisService(config) as service:
        # Two distinct configurations, submitted repeatedly by two
        # tenants in three rounds.  Round 1 builds the warm runtimes
        # and fills the cache; later rounds ride on both — waiting
        # between rounds models tenants re-requesting analyses the
        # service has already produced (simultaneous duplicates would
        # instead be packed into one batched pipeline pass).
        jobs, results = [], []
        for round_no in range(3):
            batch = [
                service.submit(AnalysisRequest(
                    dataset_root, make_config(levels), tenant=tenant,
                ))
                for levels in (8, 16)
                for tenant in ("clinical", "batch")
            ]
            jobs += batch
            results += [job.result(timeout=300) for job in batch]

        print(f"ran {len(jobs)} jobs from 2 tenants over 2 configurations")
        for job, result in zip(jobs, results):
            source = ("cache" if result.from_cache_only
                      else "pipeline" + (" (batched)" if result.batch_size > 1
                                         else ""))
            asm = result.volumes["asm"]
            print(f"  {job.id} [{job.tenant:<8}] {source:<20} "
                  f"asm mean={asm.mean():.4f}")

        stats = service.stats()
        print(f"\npool:  {stats['pool']['builds']} builds, "
              f"{stats['pool']['reuses']} reuses "
              f"(one build per distinct configuration)")
        print(f"cache: {stats['cache']['hits']} hits, "
              f"{stats['cache']['misses']} misses "
              f"({stats['cache']['hit_rate']:.0%} hit rate)")
        counters = stats["metrics"]["counters"]
        print(f"runs:  {counters.get('service_runs', 0)} pipeline passes "
              f"for {len(jobs)} jobs "
              f"({counters.get('service_jobs_from_cache', 0)} served "
              f"entirely from cache)")


def run_wire_demo(dataset_root):
    """The same service behind the JSON-lines TCP protocol."""
    with AnalysisService(ServiceConfig(workers=1)) as service:
        with ServiceServer(service, port=0) as server:
            with ServiceClient(port=server.port) as client:
                job_id = client.submit(
                    dataset=dataset_root, features=["asm"],
                    roi=[3, 3, 3, 2], levels=8,
                    intensity_range=[0.0, 4095.0], tenant="clinical",
                )
                resp = client.result(job_id, timeout=300, arrays=True)
                asm = resp["volumes"]["asm"]
                print(f"\nover the wire: {job_id} -> asm {asm.shape}, "
                      f"mean={asm.mean():.4f}")
                print(f"server stats: {client.stats()['cache']}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--serve", action="store_true",
        help="also exercise the loopback TCP server + client",
    )
    args = parser.parse_args(argv)

    volume = generate_phantom(PhantomConfig(shape=(16, 14, 6, 4), seed=11))
    with tempfile.TemporaryDirectory() as td:
        root = td + "/study"
        write_dataset(volume, root, num_nodes=2)
        print(f"dataset: {volume.shape} study at {root}\n")
        run_service_demo(root)
        if args.serve:
            run_wire_demo(root)


if __name__ == "__main__":
    main()

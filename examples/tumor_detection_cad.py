"""Tumor detection: the paper's end-to-end motivating workflow.

Section 1 of the paper: DCE-MRI + 4D Haralick texture analysis + a
neural network trained on annotated studies = a computer-aided diagnosis
tool that flags cancerous tissue.  This example runs that workflow on
synthetic studies:

1. generate annotated training studies (lesion geometry known),
2. run 4D Haralick texture analysis on each,
3. train the MLP classifier on (feature vector, lesion label) pairs,
4. evaluate on an unseen study and print detection metrics,
5. localize the unseen study's lesion from the detection map.

Run:
    python examples/tumor_detection_cad.py
"""

import numpy as np

from repro.cad import TextureClassifier, TrainConfig, build_dataset, roi_labels
from repro.core import HaralickConfig, haralick_transform
from repro.data import Lesion, PhantomConfig, generate_phantom

HARALICK = HaralickConfig(roi_shape=(5, 5, 3, 2), levels=16)


def study(seed: int, center, radius) -> PhantomConfig:
    lesion = Lesion(
        center=center, radius=radius, amplitude=0.9, uptake_rate=1.1,
        washout_rate=0.1,
    )
    return PhantomConfig(
        shape=(28, 28, 10, 5), lesions=(lesion,), seed=seed, noise_sigma=0.015
    )


def main() -> None:
    # --- training corpus: three annotated studies -----------------------
    train_studies = [
        study(1, (10, 10, 4), 4.5),
        study(2, (18, 12, 6), 5.0),
        study(3, (14, 19, 5), 4.0),
    ]
    print("building training data (texture analysis of 3 studies)...")
    parts = [build_dataset(pc, HARALICK) for pc in train_studies]
    x = np.concatenate([p.x for p in parts])
    y = np.concatenate([p.y for p in parts])
    from repro.cad.dataset import TextureDataset

    corpus = TextureDataset(x, y, parts[0].feature_names)
    print(f"  {corpus.n} ROI samples, {corpus.positive_fraction:.1%} tumor")

    # --- train -----------------------------------------------------------
    clf = TextureClassifier(corpus.feature_names, hidden=(16, 8), seed=0)
    train = corpus.balanced_subsample(per_class=600, seed=0)
    clf.fit(train, TrainConfig(epochs=150, seed=0))
    print(f"training-set metrics: {clf.evaluate(corpus)}")

    # --- evaluate on an unseen study -------------------------------------
    test_pc = study(99, (17, 17, 5), 5.5)
    test_ds = build_dataset(test_pc, HARALICK)
    print(f"unseen-study metrics: {clf.evaluate(test_ds)}")

    # --- localize the lesion from the detection map ----------------------
    vol = generate_phantom(test_pc)
    features = haralick_transform(vol.data, HARALICK)
    pmap = clf.detection_map(features)
    # Collapse time, take the strongest ROI position.
    score3d = pmap.mean(axis=3)
    peak = np.unravel_index(np.argmax(score3d), score3d.shape)
    rx, ry, rz, _ = HARALICK.roi_shape
    found = (peak[0] + rx // 2, peak[1] + ry // 2, peak[2] + rz // 2)
    truth = test_pc.lesions[0].center
    err = np.linalg.norm(np.subtract(found, truth))
    print(f"\nlesion localization: truth {truth}, detected {found} "
          f"(error {err:.1f} voxels, radius {test_pc.lesions[0].radius})")
    labels = roi_labels(test_pc, HARALICK).astype(bool)
    print(f"mean detection score inside lesion: {pmap[labels].mean():.3f}, "
          f"outside: {pmap[~labels].mean():.3f}")


if __name__ == "__main__":
    main()

"""repro — parallel 4D Haralick texture analysis for disk-resident datasets.

A production-quality reproduction of Woods, Clymer, Saltz, Kurc,
"A Parallel Implementation of 4-Dimensional Haralick Texture Analysis for
Disk-resident Image Datasets" (SC 2004).

Layers
------
``repro.core``
    Sequential 4D Haralick kernels: quantization, co-occurrence matrices
    (dense + sparse), the fourteen textural features, raster scanning.
``repro.data``
    In-memory 4D volumes, the synthetic DCE-MRI phantom, raw/PGM formats.
``repro.storage``
    Disk-resident datasets: per-slice files, indices, round-robin
    declustering across storage nodes.
``repro.chunks``
    RFR-to-IIC and IIC-to-TEXTURE chunk partitioning with ROI overlap.
``repro.datacutter``
    Filter-stream middleware (DataCutter-style): filters, streams,
    transparent copies, buffer scheduling, a threaded local runtime.
``repro.filters``
    The eight application filters (RFR, IIC, HMP, HCC, HPC, USO, HIC, JIW).
``repro.sim``
    Discrete-event cluster simulator with PIII/XEON/OPTERON presets.
``repro.pipeline``
    End-to-end parallel analysis drivers and per-filter timing reports.

Quickstart
----------
>>> import numpy as np
>>> from repro import HaralickConfig, haralick_transform
>>> vol = np.random.default_rng(0).integers(0, 4096, size=(16, 16, 8, 4))
>>> out = haralick_transform(vol, HaralickConfig(roi_shape=(5, 5, 5, 3)))
>>> sorted(out)
['asm', 'correlation', 'idm', 'sum_of_squares']
"""

from .core import (
    HARALICK_FEATURES,
    PAPER_FEATURES,
    HaralickConfig,
    ROISpec,
    SparseCooc,
    cooccurrence_matrix,
    haralick_features,
    haralick_transform,
    quantize_linear,
    raster_scan,
    sparse_from_dense,
    unique_directions,
)

__version__ = "1.0.0"

__all__ = [
    "HARALICK_FEATURES",
    "PAPER_FEATURES",
    "HaralickConfig",
    "ROISpec",
    "SparseCooc",
    "cooccurrence_matrix",
    "haralick_features",
    "haralick_transform",
    "quantize_linear",
    "raster_scan",
    "sparse_from_dense",
    "unique_directions",
    "__version__",
]

"""Computer-aided diagnosis on Haralick texture features (paper Section 1).

The paper's motivating application: texture analysis results train a
neural network that flags cancerous tissue.  This package provides the
full workflow — feature/label dataset construction from annotated
studies, a from-scratch MLP, and a classifier with clinical metrics
(sensitivity, specificity, ROC AUC).
"""

from .classifier import Metrics, TextureClassifier, roc_auc
from .longitudinal import (
    ProgressionReport,
    assess_progression,
    change_map,
    lesion_burden,
)
from .dataset import TextureDataset, build_dataset, lesion_mask, roi_labels
from .network import MLP, TrainConfig

__all__ = [
    "Metrics",
    "ProgressionReport",
    "assess_progression",
    "change_map",
    "lesion_burden",
    "TextureClassifier",
    "roc_auc",
    "TextureDataset",
    "build_dataset",
    "lesion_mask",
    "roi_labels",
    "MLP",
    "TrainConfig",
]

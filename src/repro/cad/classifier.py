"""Texture-based tumor classifier: standardization, training, metrics.

Ties the pieces of the paper's CAD story together: Haralick feature
vectors in, lesion probability out.  Feature standardization parameters
are learned on the training set and reused at prediction time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .dataset import TextureDataset
from .network import MLP, TrainConfig

__all__ = ["Metrics", "TextureClassifier", "roc_auc"]


def roc_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve (rank statistic, ties averaged)."""
    labels = np.asarray(labels)
    scores = np.asarray(scores, dtype=np.float64)
    pos = scores[labels == 1]
    neg = scores[labels == 0]
    if len(pos) == 0 or len(neg) == 0:
        raise ValueError("AUC requires both classes present")
    # Mann-Whitney U via average ranks.
    all_scores = np.concatenate([pos, neg])
    order = np.argsort(all_scores, kind="mergesort")
    ranks = np.empty_like(order, dtype=np.float64)
    ranks[order] = np.arange(1, len(all_scores) + 1)
    # Average ranks for ties.
    sorted_scores = all_scores[order]
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            avg = ranks[order[i : j + 1]].mean()
            ranks[order[i : j + 1]] = avg
        i = j + 1
    rank_sum_pos = ranks[: len(pos)].sum()
    u = rank_sum_pos - len(pos) * (len(pos) + 1) / 2
    return float(u / (len(pos) * len(neg)))


@dataclass(frozen=True)
class Metrics:
    """Binary-classification metrics at a fixed threshold, plus AUC."""

    accuracy: float
    sensitivity: float  # true-positive rate (tumor found)
    specificity: float  # true-negative rate
    auc: float
    n_positive: int
    n_negative: int

    def __str__(self) -> str:
        return (
            f"acc={self.accuracy:.3f} sens={self.sensitivity:.3f} "
            f"spec={self.specificity:.3f} auc={self.auc:.3f} "
            f"(+{self.n_positive}/-{self.n_negative})"
        )


class TextureClassifier:
    """Lesion detector over Haralick feature vectors."""

    def __init__(
        self,
        feature_names: Sequence[str],
        hidden: Sequence[int] = (16, 8),
        seed: int = 0,
    ):
        self.feature_names = tuple(feature_names)
        if not self.feature_names:
            raise ValueError("need at least one feature")
        self._mlp = MLP([len(self.feature_names), *hidden, 1], seed=seed)
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    # -- standardization ----------------------------------------------------

    def _standardize(self, x: np.ndarray, fit: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if fit:
            self._mean = x.mean(axis=0)
            std = x.std(axis=0)
            self._std = np.where(std > 0, std, 1.0)
        if self._mean is None:
            raise RuntimeError("classifier is not trained")
        return (x - self._mean) / self._std

    # -- API ------------------------------------------------------------------

    def fit(
        self, dataset: TextureDataset, train: Optional[TrainConfig] = None
    ) -> "TextureClassifier":
        if dataset.feature_names != self.feature_names:
            raise ValueError(
                f"dataset features {dataset.feature_names} != "
                f"classifier features {self.feature_names}"
            )
        x = self._standardize(dataset.x, fit=True)
        self._mlp.fit(x, dataset.y, train or TrainConfig())
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return self._mlp.predict_proba(self._standardize(x))

    def predict(self, x: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(x) >= threshold).astype(np.int64)

    def evaluate(
        self, dataset: TextureDataset, threshold: float = 0.5
    ) -> Metrics:
        scores = self.predict_proba(dataset.x)
        pred = scores >= threshold
        y = dataset.y.astype(bool)
        tp = int((pred & y).sum())
        tn = int((~pred & ~y).sum())
        npos = int(y.sum())
        nneg = int((~y).sum())
        return Metrics(
            accuracy=(tp + tn) / max(len(y), 1),
            sensitivity=tp / npos if npos else 0.0,
            specificity=tn / nneg if nneg else 0.0,
            auc=roc_auc(dataset.y, scores),
            n_positive=npos,
            n_negative=nneg,
        )

    def detection_map(self, features: Dict[str, np.ndarray]) -> np.ndarray:
        """Lesion-probability volume from per-feature output volumes."""
        shape = features[self.feature_names[0]].shape
        x = np.stack(
            [features[name].reshape(-1) for name in self.feature_names], axis=1
        )
        return self.predict_proba(x).reshape(shape)

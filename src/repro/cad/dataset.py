"""Training data: texture feature vectors + lesion labels from phantoms.

Builds the supervised dataset the paper's CAD workflow needs: Haralick
feature vectors at every ROI position of a study (the texture analysis
output), labeled by whether the ROI center falls inside a known lesion
(standing in for the radiologist annotations the paper mentions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.analysis import HaralickConfig, haralick_transform
from ..core.roi import valid_positions_shape
from ..data.synthetic import PhantomConfig, generate_phantom
from ..data.volume import Volume4D

__all__ = ["lesion_mask", "roi_labels", "TextureDataset", "build_dataset"]


def lesion_mask(config: PhantomConfig) -> np.ndarray:
    """Boolean 3D (x, y, z) mask of voxels inside any lesion sphere."""
    nx, ny, nz, _ = config.shape
    mask = np.zeros((nx, ny, nz), dtype=bool)
    xs = np.arange(nx)[:, None, None]
    ys = np.arange(ny)[None, :, None]
    zs = np.arange(nz)[None, None, :]
    for lesion in config.lesions:
        cx, cy, cz = lesion.center
        dist2 = (xs - cx) ** 2 + (ys - cy) ** 2 + (zs - cz) ** 2
        mask |= dist2 <= lesion.radius**2
    return mask


def roi_labels(config: PhantomConfig, haralick: HaralickConfig) -> np.ndarray:
    """Label each ROI position: 1 when the ROI center is inside a lesion.

    Shape matches the feature volumes:
    ``valid_positions_shape(config.shape, haralick.roi)``.
    """
    mask = lesion_mask(config)
    grid = valid_positions_shape(config.shape, haralick.roi)
    rx, ry, rz, _rt = haralick.roi_shape
    # ROI origin o covers voxels [o, o + r); its center is o + r // 2.
    out = np.zeros(grid, dtype=np.int64)
    gx, gy, gz, gt = grid
    centers = mask[
        rx // 2 : rx // 2 + gx, ry // 2 : ry // 2 + gy, rz // 2 : rz // 2 + gz
    ]
    out[:] = centers[:, :, :, None]
    return out


@dataclass
class TextureDataset:
    """Flattened (features, labels) pairs ready for classifier training."""

    x: np.ndarray  # (n, n_features)
    y: np.ndarray  # (n,) in {0, 1}
    feature_names: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.x.ndim != 2 or self.x.shape[0] != self.y.shape[0]:
            raise ValueError(f"bad dataset shapes x{self.x.shape} y{self.y.shape}")
        if self.x.shape[1] != len(self.feature_names):
            raise ValueError("feature count != feature_names length")

    @property
    def n(self) -> int:
        return self.x.shape[0]

    @property
    def positive_fraction(self) -> float:
        return float(self.y.mean()) if self.n else 0.0

    def balanced_subsample(
        self, per_class: int, seed: int = 0
    ) -> "TextureDataset":
        """Equal-count random subsample of each class."""
        rng = np.random.default_rng(seed)
        pos = np.flatnonzero(self.y == 1)
        neg = np.flatnonzero(self.y == 0)
        if len(pos) < per_class or len(neg) < per_class:
            raise ValueError(
                f"not enough samples ({len(pos)} pos / {len(neg)} neg) "
                f"for {per_class} per class"
            )
        idx = np.concatenate(
            [rng.choice(pos, per_class, replace=False),
             rng.choice(neg, per_class, replace=False)]
        )
        rng.shuffle(idx)
        return TextureDataset(self.x[idx], self.y[idx], self.feature_names)


def build_dataset(
    phantom_config: PhantomConfig,
    haralick: Optional[HaralickConfig] = None,
    volume: Optional[Volume4D] = None,
    features: Optional[Dict[str, np.ndarray]] = None,
) -> TextureDataset:
    """Texture-feature dataset of one phantom study.

    Generates the phantom and runs the sequential analysis unless the
    caller already has the volume/features (e.g. from the parallel
    pipeline).
    """
    haralick = haralick or HaralickConfig()
    if features is None:
        if volume is None:
            volume = generate_phantom(phantom_config)
        features = haralick_transform(volume.data, haralick)
    names = tuple(haralick.features)
    x = np.stack([features[name].reshape(-1) for name in names], axis=1)
    y = roi_labels(phantom_config, haralick).reshape(-1)
    return TextureDataset(x=x, y=y, feature_names=names)

"""Follow-up study comparison (paper Section 1).

"In addition, follow-up studies, which acquire multiple image datasets
at different dates, can be conducted to monitor the progression and
response to treatment of the tumor."  Given texture-feature volumes (or
CAD detection maps) of a baseline and a follow-up study with the same
acquisition geometry, these helpers quantify change: per-feature change
maps, lesion-burden trajectories, and a simple progression call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = ["change_map", "lesion_burden", "ProgressionReport", "assess_progression"]


def change_map(
    baseline: np.ndarray, followup: np.ndarray, relative: bool = False
) -> np.ndarray:
    """Voxelwise change ``followup - baseline`` of one feature volume.

    With ``relative=True`` the difference is normalized by the pooled
    standard deviation of the baseline (a z-score-like effect size), so
    changes are comparable across features with different scales.
    """
    baseline = np.asarray(baseline, dtype=np.float64)
    followup = np.asarray(followup, dtype=np.float64)
    if baseline.shape != followup.shape:
        raise ValueError(
            f"study shapes differ: {baseline.shape} vs {followup.shape} "
            "(follow-up comparison requires identical acquisition geometry)"
        )
    diff = followup - baseline
    if relative:
        scale = baseline.std()
        diff = diff / scale if scale > 0 else np.zeros_like(diff)
    return diff


def lesion_burden(detection_map: np.ndarray, threshold: float = 0.5) -> Dict[str, float]:
    """Summary of a CAD detection map: suspicious volume and intensity.

    ``volume_fraction`` is the fraction of ROI positions called positive;
    ``mean_score``/``max_score`` summarize the map itself.
    """
    m = np.asarray(detection_map, dtype=np.float64)
    if m.size == 0:
        raise ValueError("empty detection map")
    positive = m >= threshold
    return {
        "volume_fraction": float(positive.mean()),
        "positive_positions": int(positive.sum()),
        "mean_score": float(m.mean()),
        "max_score": float(m.max()),
    }


@dataclass(frozen=True)
class ProgressionReport:
    """Baseline-vs-follow-up assessment of suspicious tissue burden."""

    baseline: Dict[str, float]
    followup: Dict[str, float]
    volume_change: float  # relative change of the positive fraction
    status: str  # "progression" | "regression" | "stable"

    def __str__(self) -> str:
        return (
            f"{self.status}: suspicious volume "
            f"{self.baseline['volume_fraction']:.2%} -> "
            f"{self.followup['volume_fraction']:.2%} "
            f"({self.volume_change:+.1%})"
        )


def assess_progression(
    baseline_map: np.ndarray,
    followup_map: np.ndarray,
    threshold: float = 0.5,
    stability_margin: float = 0.2,
) -> ProgressionReport:
    """Classify change in CAD-detected burden between two studies.

    The call is based on the relative change of the positive-volume
    fraction: beyond ``stability_margin`` either way is progression /
    regression (mirroring response-criteria style thresholds); within it,
    stable.  A burden appearing from zero counts as progression.
    """
    if baseline_map.shape != followup_map.shape:
        raise ValueError("detection maps must share one acquisition geometry")
    if not (0 <= stability_margin):
        raise ValueError("stability_margin must be >= 0")
    b = lesion_burden(baseline_map, threshold)
    f = lesion_burden(followup_map, threshold)
    if b["volume_fraction"] == 0:
        change = np.inf if f["volume_fraction"] > 0 else 0.0
    else:
        change = (f["volume_fraction"] - b["volume_fraction"]) / b["volume_fraction"]
    if change > stability_margin:
        status = "progression"
    elif change < -stability_margin:
        status = "regression"
    else:
        status = "stable"
    return ProgressionReport(
        baseline=b, followup=f, volume_change=float(change), status=status
    )

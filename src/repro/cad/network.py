"""A small from-scratch multilayer perceptron (NumPy only).

The paper's motivating use of texture analysis (Section 1): "Images that
have been analyzed by radiologists can be used along with the results of
texture analysis to train a neural network.  Once trained, the neural
network becomes a convenient tool for discovering cancerous tissue given
the texture analysis results."

This module provides that substrate: a binary classifier MLP with tanh
hidden layers and a sigmoid output, trained by mini-batch gradient
descent on binary cross-entropy.  Deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["MLP", "TrainConfig"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


@dataclass(frozen=True)
class TrainConfig:
    """Mini-batch gradient-descent hyperparameters."""

    epochs: int = 200
    batch_size: int = 64
    learning_rate: float = 0.05
    momentum: float = 0.9
    l2: float = 1e-4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be > 0")
        if not (0 <= self.momentum < 1):
            raise ValueError("momentum must be in [0, 1)")


class MLP:
    """Binary-classification MLP: tanh hidden layers, sigmoid output.

    Parameters
    ----------
    layer_sizes:
        ``[n_inputs, hidden..., 1]``; the final size must be 1.
    seed:
        Weight-initialization seed (Xavier scaling).
    """

    def __init__(self, layer_sizes: Sequence[int], seed: int = 0):
        sizes = [int(s) for s in layer_sizes]
        if len(sizes) < 2:
            raise ValueError("need at least input and output layers")
        if sizes[-1] != 1:
            raise ValueError("binary classifier: output layer size must be 1")
        if any(s < 1 for s in sizes):
            raise ValueError(f"invalid layer sizes {sizes}")
        rng = np.random.default_rng(seed)
        self.sizes = sizes
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(sizes, sizes[1:]):
            scale = np.sqrt(2.0 / (fan_in + fan_out))
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))

    # -- inference ---------------------------------------------------------

    def _forward(self, x: np.ndarray) -> List[np.ndarray]:
        """Activations per layer (input first, output probability last)."""
        acts = [x]
        h = x
        last = len(self.weights) - 1
        for k, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = h @ w + b
            h = _sigmoid(z) if k == last else np.tanh(z)
            acts.append(h)
        return acts

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """P(class 1) for each row of ``x``; shape ``(n,)``."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[1] != self.sizes[0]:
            raise ValueError(f"expected {self.sizes[0]} features, got {x.shape[1]}")
        return self._forward(x)[-1][:, 0]

    def predict(self, x: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(x) >= threshold).astype(np.int64)

    # -- training ----------------------------------------------------------

    def loss(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean binary cross-entropy."""
        p = np.clip(self.predict_proba(x), 1e-12, 1 - 1e-12)
        y = np.asarray(y, dtype=np.float64)
        return float(-(y * np.log(p) + (1 - y) * np.log(1 - p)).mean())

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        config: Optional[TrainConfig] = None,
    ) -> List[float]:
        """Train in place; returns the per-epoch training loss curve."""
        config = config or TrainConfig()
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ValueError(f"bad training shapes x{x.shape} y{y.shape}")
        if set(np.unique(y)) - {0.0, 1.0}:
            raise ValueError("labels must be 0/1")
        rng = np.random.default_rng(config.seed)
        vel_w = [np.zeros_like(w) for w in self.weights]
        vel_b = [np.zeros_like(b) for b in self.biases]
        losses = []
        n = x.shape[0]
        for _epoch in range(config.epochs):
            order = rng.permutation(n)
            for start in range(0, n, config.batch_size):
                idx = order[start : start + config.batch_size]
                self._step(x[idx], y[idx], config, vel_w, vel_b)
            losses.append(self.loss(x, y))
        return losses

    def _step(self, xb, yb, config, vel_w, vel_b) -> None:
        acts = self._forward(xb)
        m = xb.shape[0]
        # Output layer: d(BCE)/dz = p - y for sigmoid output.
        delta = (acts[-1][:, 0] - yb)[:, None] / m
        grads_w = []
        grads_b = []
        for k in range(len(self.weights) - 1, -1, -1):
            grads_w.append(acts[k].T @ delta + config.l2 * self.weights[k])
            grads_b.append(delta.sum(axis=0))
            if k > 0:
                delta = (delta @ self.weights[k].T) * (1.0 - acts[k] ** 2)
        grads_w.reverse()
        grads_b.reverse()
        for k in range(len(self.weights)):
            vel_w[k] = config.momentum * vel_w[k] - config.learning_rate * grads_w[k]
            vel_b[k] = config.momentum * vel_b[k] - config.learning_rate * grads_b[k]
            self.weights[k] += vel_w[k]
            self.biases[k] += vel_b[k]

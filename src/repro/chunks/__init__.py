"""Chunk partitioning with ROI overlap and piece stitching (Section 4.4)."""

from .chunking import ChunkSpec, overlap, partition, partition_grid_shape
from .stitch import ChunkAssembler, ChunkPiece, OutputStitcher

__all__ = [
    "ChunkSpec",
    "overlap",
    "partition",
    "partition_grid_shape",
    "ChunkAssembler",
    "ChunkPiece",
    "OutputStitcher",
]

"""Chunk partitioning with ROI-dependent overlap (paper Section 4.4).

Retrieving data ROI-by-ROI re-reads and re-sends every overlapped voxel
many times (Fig. 6a).  Instead the dataset is partitioned into chunks of
user-specified dimensions; adjacent chunks overlap by

    overlap_d = ROI_d - 1                         (Eqs. 1 and 2)

in every partitioned dimension ``d`` so that each ROI lies entirely
within exactly one chunk (Fig. 6b).  Each chunk *owns* the ROI origins it
is responsible for; ownership tiles the output exactly once.

Two chunk types exist (Section 4.4):

* **RFR-to-IIC** chunks partition the in-plane (x, y) extent of slice
  files for retrieval from disk (default: one whole slice, avoiding
  intra-slice seeks — Section 5.1);
* **IIC-to-TEXTURE** chunks partition the full 4D domain for distribution
  to the texture-analysis filters (default 50 x 50 x 32 x 32).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..core.roi import ROISpec

__all__ = [
    "overlap",
    "ChunkSpec",
    "partition",
    "partition_grid_shape",
    "owned_flat_mask",
    "flat_to_global",
]


def overlap(roi_dim: int) -> int:
    """Required overlap between adjacent chunks along one dimension.

    Paper Eqs. (1)-(2): ``overlap = ROI_len - 1`` (the paper writes the
    equivalent ``chunk_stride = chunk_len - ROI_len + 1`` relation).
    """
    if roi_dim < 1:
        raise ValueError(f"ROI dimension must be >= 1, got {roi_dim}")
    return roi_dim - 1


@dataclass(frozen=True)
class ChunkSpec:
    """One chunk of a partitioned N-D domain.

    Attributes
    ----------
    index:
        Chunk grid coordinates (one per dimension).
    lo, hi:
        Input region covered: ``[lo_d, hi_d)`` per dimension, including
        the overlap voxels shared with neighbouring chunks.
    own_lo, own_hi:
        The ROI-origin (output) positions this chunk owns:
        ``[own_lo_d, own_hi_d)`` in global output coordinates.  Ownership
        regions of all chunks tile the output exactly.
    """

    index: Tuple[int, ...]
    lo: Tuple[int, ...]
    hi: Tuple[int, ...]
    own_lo: Tuple[int, ...]
    own_hi: Tuple[int, ...]

    @property
    def shape(self) -> Tuple[int, ...]:
        """Input extent of the chunk."""
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def own_shape(self) -> Tuple[int, ...]:
        """Output (owned ROI origins) extent."""
        return tuple(h - l for l, h in zip(self.own_lo, self.own_hi))

    @property
    def num_voxels(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def num_rois(self) -> int:
        n = 1
        for s in self.own_shape:
            n *= s
        return n

    @property
    def extent(self):
        """Input region as a :class:`~repro.regions.RegionExtent`.

        The bridge into the region-template data layer: a chunk staged
        under this extent is resolvable by any neighbour whose extent
        overlaps it (the ghost regions of Eqs. 1-2).
        """
        from ..regions.template import RegionExtent

        return RegionExtent(self.lo, self.hi)

    @property
    def own_extent(self):
        """Owned (output) region as a :class:`~repro.regions.RegionExtent`."""
        from ..regions.template import RegionExtent

        return RegionExtent(self.own_lo, self.own_hi)

    def slices(self) -> Tuple[slice, ...]:
        """Slicing tuple selecting this chunk's input region."""
        return tuple(slice(l, h) for l, h in zip(self.lo, self.hi))

    def own_slices(self) -> Tuple[slice, ...]:
        """Slicing tuple selecting the owned region of the global output."""
        return tuple(slice(l, h) for l, h in zip(self.own_lo, self.own_hi))

    def local_own_slices(self, roi: ROISpec) -> Tuple[slice, ...]:
        """Owned region within this chunk's *local* raster-scan output.

        Scanning the chunk's input region with the ROI yields a local
        output of shape ``chunk_shape - roi + 1`` whose position ``q``
        corresponds to global ROI origin ``lo + q``; the owned positions
        are a prefix starting at ``own_lo - lo``.
        """
        return tuple(
            slice(ol - l, oh - l)
            for l, ol, oh in zip(self.lo, self.own_lo, self.own_hi)
        )


def partition_grid_shape(
    dataset_shape: Tuple[int, ...], roi: ROISpec, chunk_shape: Tuple[int, ...]
) -> Tuple[int, ...]:
    """Number of chunks per dimension for the given chunk target size."""
    _validate(dataset_shape, roi, chunk_shape)
    out = []
    for s, r, c in zip(dataset_shape, roi.shape, chunk_shape):
        stride = c - r + 1
        npos = s - r + 1
        out.append((npos + stride - 1) // stride)
    return tuple(out)


def _validate(dataset_shape, roi: ROISpec, chunk_shape) -> None:
    if len(dataset_shape) != roi.ndim or len(chunk_shape) != roi.ndim:
        raise ValueError(
            f"dimensionality mismatch: dataset {len(dataset_shape)}-D, "
            f"ROI {roi.ndim}-D, chunk {len(chunk_shape)}-D"
        )
    for s, r, c in zip(dataset_shape, roi.shape, chunk_shape):
        if c < r:
            raise ValueError(
                f"chunk dimension {c} smaller than ROI dimension {r}: no ROI fits"
            )
        if s < r:
            raise ValueError(f"ROI {roi.shape} does not fit in dataset {dataset_shape}")


def partition(
    dataset_shape: Tuple[int, ...],
    roi: ROISpec,
    chunk_shape: Tuple[int, ...],
) -> List[ChunkSpec]:
    """Partition a dataset into overlapping chunks (paper Fig. 6b).

    Chunks are returned in C (raster) order of their grid index.  Border
    chunks are clipped to the dataset extent, so their input regions may
    be smaller than ``chunk_shape``.
    """
    _validate(dataset_shape, roi, chunk_shape)
    grid = partition_grid_shape(dataset_shape, roi, chunk_shape)
    strides = tuple(c - r + 1 for c, r in zip(chunk_shape, roi.shape))
    out_extent = tuple(s - r + 1 for s, r in zip(dataset_shape, roi.shape))

    chunks: List[ChunkSpec] = []
    import itertools

    for index in itertools.product(*(range(g) for g in grid)):
        lo = tuple(i * st for i, st in zip(index, strides))
        own_lo = lo
        own_hi = tuple(
            min(l + st, oe) for l, st, oe in zip(lo, strides, out_extent)
        )
        # Input region: enough to scan the owned ROIs, clipped to dataset.
        hi = tuple(
            min(oh - 1 + r, s)
            for oh, r, s in zip(own_hi, roi.shape, dataset_shape)
        )
        chunks.append(
            ChunkSpec(index=index, lo=lo, hi=hi, own_lo=own_lo, own_hi=own_hi)
        )
    return chunks


def owned_flat_mask(chunk: ChunkSpec, roi: ROISpec):
    """Boolean mask over the chunk's flattened local scan output.

    ``True`` marks positions the chunk owns; ``False`` marks overlap
    positions owned by a neighbouring chunk (which would otherwise be
    written twice by the output filters).
    """
    import numpy as np

    local_grid = tuple(s - r + 1 for s, r in zip(chunk.shape, roi.shape))
    mask = np.zeros(local_grid, dtype=bool)
    sel = tuple(
        slice(ol - l, oh - l) for l, ol, oh in zip(chunk.lo, chunk.own_lo, chunk.own_hi)
    )
    mask[sel] = True
    return mask.reshape(-1)


def flat_to_global(chunk: ChunkSpec, roi: ROISpec, flat_indices):
    """Map flat local-scan indices to global ROI-origin coordinates.

    Returns an ``(n, ndim)`` integer array; row ``k`` is the global output
    coordinate of local flat position ``flat_indices[k]``.
    """
    import numpy as np

    local_grid = tuple(s - r + 1 for s, r in zip(chunk.shape, roi.shape))
    coords = np.unravel_index(np.asarray(flat_indices, dtype=np.int64), local_grid)
    return np.stack(
        [c + l for c, l in zip(coords, chunk.lo)], axis=-1
    )

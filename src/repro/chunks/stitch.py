"""Stitching: reassembling distributed pieces into complete arrays.

Two stitch points exist in the pipeline (paper Section 4.3):

* **Input stitch (IIC)** — each RFR filter reads only the slices local to
  its storage node, so the pieces of one IIC-to-TEXTURE chunk arrive from
  several RFR filters and must be assembled into the complete 4D chunk
  before texture filters can raster-scan it
  (:class:`ChunkAssembler`).
* **Output stitch (HIC)** — Haralick parameter values arrive as per-chunk
  portions with positional information and are placed into the full 4D
  output volume of each parameter (:class:`OutputStitcher`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from ..core.roi import ROISpec, valid_positions_shape
from .chunking import ChunkSpec

__all__ = ["ChunkPiece", "ChunkAssembler", "OutputStitcher"]


@dataclass
class ChunkPiece:
    """The portion of one chunk read by one RFR filter.

    ``data`` has the chunk's full 4D input shape, zero-filled outside the
    ``(t, z)`` slice planes listed in ``filled`` (the planes stored on the
    originating node and covered by this chunk).
    """

    chunk_index: Tuple[int, ...]
    data: np.ndarray
    filled: List[Tuple[int, int]]  # global (t, z) plane keys present
    source_node: int = 0


class ChunkAssembler:
    """Assembles the pieces of IIC-to-TEXTURE chunks (the IIC filter core).

    Pieces may arrive in any order and interleaved across chunks; a chunk
    is complete when every ``(t, z)`` plane it spans has been filled.
    """

    def __init__(self, chunk: ChunkSpec):
        self.chunk = chunk
        if len(chunk.lo) != 4:
            raise ValueError("ChunkAssembler operates on 4D (x, y, z, t) chunks")
        z0, z1 = chunk.lo[2], chunk.hi[2]
        t0, t1 = chunk.lo[3], chunk.hi[3]
        self._needed: Set[Tuple[int, int]] = {
            (t, z) for t in range(t0, t1) for z in range(z0, z1)
        }
        self._have: Set[Tuple[int, int]] = set()
        self._buffer = np.zeros(chunk.shape, dtype=np.int64)
        self._dtype = None

    @property
    def is_complete(self) -> bool:
        return self._have == self._needed

    @property
    def missing(self) -> Set[Tuple[int, int]]:
        return self._needed - self._have

    def add(self, piece: ChunkPiece) -> None:
        """Merge one piece into the chunk buffer."""
        if piece.chunk_index != self.chunk.index:
            raise ValueError(
                f"piece for chunk {piece.chunk_index} given to assembler "
                f"for chunk {self.chunk.index}"
            )
        if piece.data.shape != self.chunk.shape:
            raise ValueError(
                f"piece shape {piece.data.shape} != chunk shape {self.chunk.shape}"
            )
        if self._dtype is None:
            self._dtype = piece.data.dtype
        z0, t0 = self.chunk.lo[2], self.chunk.lo[3]
        for t, z in piece.filled:
            if (t, z) not in self._needed:
                raise ValueError(f"plane (t={t}, z={z}) not part of chunk {self.chunk.index}")
            if (t, z) in self._have:
                raise ValueError(f"plane (t={t}, z={z}) delivered twice")
            self._buffer[:, :, z - z0, t - t0] = piece.data[:, :, z - z0, t - t0]
            self._have.add((t, z))

    def add_plane(self, t: int, z: int, plane: np.ndarray) -> None:
        """Merge one complete ``(t, z)`` plane of the chunk's (x, y) extent.

        This is the path fed by :class:`SlicePortion` traffic: the IIC
        filter crops each arriving slice rectangle to the chunk's in-plane
        region before calling this.
        """
        if (t, z) not in self._needed:
            raise ValueError(f"plane (t={t}, z={z}) not part of chunk {self.chunk.index}")
        if (t, z) in self._have:
            raise ValueError(f"plane (t={t}, z={z}) delivered twice")
        expected = (self.chunk.shape[0], self.chunk.shape[1])
        if plane.shape != expected:
            raise ValueError(f"plane shape {plane.shape} != chunk in-plane {expected}")
        if self._dtype is None:
            self._dtype = plane.dtype
        z0, t0 = self.chunk.lo[2], self.chunk.lo[3]
        self._buffer[:, :, z - z0, t - t0] = plane
        self._have.add((t, z))

    def result(self) -> np.ndarray:
        """The assembled chunk; raises until assembly is complete."""
        if not self.is_complete:
            raise RuntimeError(
                f"chunk {self.chunk.index} incomplete: missing {sorted(self.missing)}"
            )
        return self._buffer.astype(self._dtype if self._dtype is not None else np.int64)


class OutputStitcher:
    """Places per-chunk feature portions into full output volumes.

    One output volume per Haralick parameter, each of shape
    ``dataset_shape - roi + 1`` (the HIC filter of Section 4.3.3).  Also
    tracks per-feature running min/max, which the JIW filter needs for
    normalization.
    """

    def __init__(
        self,
        dataset_shape: Tuple[int, ...],
        roi: ROISpec,
        features: Sequence[str],
    ):
        self.out_shape = valid_positions_shape(dataset_shape, roi)
        self.roi = roi
        self.features = tuple(features)
        if not self.features:
            raise ValueError("at least one feature required")
        self.volumes: Dict[str, np.ndarray] = {
            name: np.zeros(self.out_shape, dtype=np.float64) for name in self.features
        }
        self._placed = np.zeros(self.out_shape, dtype=bool)

    @property
    def is_complete(self) -> bool:
        return bool(self._placed.all())

    @property
    def coverage(self) -> float:
        return float(self._placed.mean())

    def place(self, chunk: ChunkSpec, values: Dict[str, np.ndarray]) -> None:
        """Place the owned portion of one chunk's local scan output.

        ``values[name]`` must be the full local raster-scan output of the
        chunk (shape ``chunk.shape - roi + 1``); only the owned region is
        copied into the global volume.
        """
        if set(values) != set(self.features):
            raise ValueError(f"features {sorted(values)} != expected {sorted(self.features)}")
        local_shape = tuple(s - r + 1 for s, r in zip(chunk.shape, self.roi.shape))
        sel_local = chunk.local_own_slices(self.roi)
        sel_global = chunk.own_slices()
        if self._placed[sel_global].any():
            raise ValueError(f"chunk {chunk.index} region already placed")
        for name in self.features:
            arr = np.asarray(values[name])
            if arr.shape != local_shape:
                raise ValueError(
                    f"{name}: local output shape {arr.shape} != expected {local_shape}"
                )
            self.volumes[name][sel_global] = arr[sel_local]
        self._placed[sel_global] = True

    def result(self) -> Dict[str, np.ndarray]:
        if not self.is_complete:
            raise RuntimeError(
                f"output incomplete: {self.coverage:.1%} of positions placed"
            )
        return self.volumes

    def minmax(self, name: str) -> Tuple[float, float]:
        """Current min/max of one parameter volume (JIW normalization)."""
        vol = self.volumes[name]
        return float(vol.min()), float(vol.max())

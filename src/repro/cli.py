"""Command-line interface.

Subcommands::

    repro phantom  --out DIR [--shape X Y Z T] [--nodes N] [--format raw|dicom]
    repro info     DATASET_DIR
    repro analyze  DATASET_DIR [--variant hmp|split] [--copies N] ...
    repro tune     [--out PROFILE.json] [--runtime threads|processes] ...
    repro kernels  [--refresh]
    repro simulate [--figure 7a|7b|8|9|10|11] [--scale S]
    repro serve    [--port P] [--workers N] [--weights tenant=W ...] ...
    repro submit   DATASET_DIR [--connect HOST:PORT] [--features ...] ...

``phantom`` generates a synthetic DCE-MRI study and writes it as a
disk-resident dataset; ``analyze`` runs the parallel pipeline over a
dataset on this machine; ``tune`` sweeps a pilot workload across the
configuration grid and writes a :class:`~repro.tuning.TuningProfile`
that ``analyze --profile`` loads back; ``simulate`` regenerates a paper
figure's series on the simulated 2004 testbeds; ``serve`` hosts the
always-on analysis service (:mod:`repro.service`) and ``submit`` sends
it jobs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    from .core.backends import DEFAULT_KERNEL, KERNELS

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel 4D Haralick texture analysis (SC 2004 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("phantom", help="generate a synthetic study on disk")
    p.add_argument("--out", required=True, help="dataset directory to create")
    p.add_argument("--shape", nargs=4, type=int, default=[64, 64, 16, 8],
                   metavar=("X", "Y", "Z", "T"))
    p.add_argument("--lesions", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--nodes", type=int, default=4, help="storage nodes")
    p.add_argument("--format", choices=("raw", "dicom"), default="raw")

    p = sub.add_parser("info", help="describe a disk-resident dataset")
    p.add_argument("dataset", help="dataset directory")

    p = sub.add_parser("analyze", help="run the parallel pipeline")
    p.add_argument("dataset", help="dataset directory")
    p.add_argument("--variant", choices=("hmp", "split"), default="hmp")
    p.add_argument("--copies", type=int, default=2, help="texture filter copies")
    p.add_argument("--iic-copies", type=int, default=1)
    p.add_argument("--levels", type=int, default=32)
    p.add_argument("--roi", nargs=4, type=int, default=[5, 5, 5, 3],
                   metavar=("RX", "RY", "RZ", "RT"))
    p.add_argument("--features", nargs="+",
                   default=["asm", "correlation", "sum_of_squares", "idm"])
    p.add_argument("--sparse", action="store_true",
                   help="use the sparse co-occurrence representation")
    p.add_argument("--kernel", choices=KERNELS, default=DEFAULT_KERNEL,
                   help="co-occurrence scan backend (all are bit-identical; "
                        "incremental is the fast rolling kernel)")
    p.add_argument("--scheduling", choices=("demand_driven", "round_robin"),
                   default="demand_driven")
    p.add_argument("--intensity-max", type=float, default=4095.0)
    p.add_argument("--images-out", help="also write PGM image series here")
    p.add_argument("--runtime", choices=("threads", "processes", "distributed"),
                   default="threads",
                   help="execution backend: threads (LocalRuntime), "
                        "processes (MPRuntime), or distributed "
                        "(DistRuntime over TCP worker agents)")
    p.add_argument("--transport", choices=("pipe", "shm"), default="pipe",
                   help="processes runtime: pipe (copy payloads through "
                        "OS pipes) or shm (hand large payloads over via "
                        "a shared-memory slab pool, zero-copy receive)")
    p.add_argument("--hosts", nargs="+", metavar="HOST",
                   help="distributed runtime: one worker agent per host "
                        "(loopback hosts are spawned locally)")
    p.add_argument("--agents", type=int, metavar="N",
                   help="distributed runtime shorthand: N loopback agents "
                        "(equivalent to --hosts 127.0.0.1 x N)")
    p.add_argument("--elastic", action="store_true",
                   help="distributed runtime: keep the head listening so "
                        "agents can join the run live (and be drained "
                        "again) via DistRuntime.add_agent/drain_agent")
    p.add_argument("--heartbeat-timeout", type=float, metavar="SECONDS",
                   help="distributed runtime: seconds of agent silence "
                        "before it is declared dead (default: the "
                        "REPRO_DIST_HEARTBEAT_TIMEOUT environment "
                        "variable, else 5)")
    p.add_argument("--staging", metavar="SPEC",
                   help="region-staging policy: comma-separated key=value "
                        "pairs, e.g. ram=64M,shm=32M,disk=1G,dir=/tmp/x,"
                        "evict=lru,promote=on.  Assembled chunks stage "
                        "through the RAM>shm>disk hierarchy and overlap "
                        "regions are served from it (see docs/data-layer.md)")
    p.add_argument("--trace", choices=("chrome", "jsonl", "live"),
                   help="collect per-chunk trace events: chrome "
                        "(Perfetto/chrome://tracing JSON), jsonl (flat "
                        "JSON lines), or live (terminal summary)")
    p.add_argument("--trace-out", metavar="PATH",
                   help="output file for --trace chrome/jsonl "
                        "(default trace.json / trace.jsonl)")
    p.add_argument("--metrics", action="store_true",
                   help="print the run's metrics snapshot "
                        "(counters/gauges/histograms)")
    p.add_argument("--profile", metavar="PROFILE.json",
                   help="apply a tuning profile written by `repro tune`: "
                        "its chunk shape / copy counts / kernel / "
                        "scheduling replace the corresponding defaults, "
                        "and its runtime / transport / queue bound fill "
                        "in any of those flags you did not pass")
    p.add_argument("--autotune", action="store_true",
                   help="processes runtime: enable the online controller "
                        "(adapts per-edge credit windows and active-copy "
                        "masks from live queue-depth gauges, emitting "
                        "tune.adjust events; outputs stay bit-identical)")
    p.add_argument("--poll-interval", type=float, metavar="SECONDS",
                   help="watchdog granularity for blocking waits; with "
                        "event-driven wakeups (the default) this only "
                        "bounds a missed-wakeup stall")
    p.add_argument("--wakeup", choices=("event", "polled"),
                   help="queue wakeup mode (default event; polled "
                        "restores the legacy fixed-tick loops, kept for "
                        "benchmarking the latency delta)")

    p = sub.add_parser(
        "tune", help="sweep a pilot workload and write a tuning profile"
    )
    p.add_argument("--out", default="tuning_profile.json",
                   metavar="PROFILE.json",
                   help="where to write the selected profile")
    p.add_argument("--dataset", metavar="DIR",
                   help="pilot dataset directory (default: generate a "
                        "small phantom in a temp dir)")
    p.add_argument("--shape", nargs=4, type=int, default=[24, 24, 8, 4],
                   metavar=("X", "Y", "Z", "T"),
                   help="phantom pilot shape when --dataset is omitted")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--repeats", type=int, default=1,
                   help="timed runs per candidate (best is kept)")
    p.add_argument("--runtime", choices=("threads", "processes"),
                   default="processes",
                   help="runtime whose knobs to sweep")
    p.add_argument("--max-queue", type=int, default=16)
    p.add_argument("--timeout", type=float, default=120.0,
                   help="per-candidate run timeout in seconds")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-candidate progress lines")

    p = sub.add_parser(
        "kernels", help="list scan kernels and probe the GPU backend"
    )
    p.add_argument("--refresh", action="store_true",
                   help="re-run the device probe instead of using the "
                        "cached result")

    p = sub.add_parser("simulate", help="regenerate a paper figure series")
    p.add_argument("--figure", choices=("7a", "7b", "8", "9", "10", "11"),
                   default="8")
    p.add_argument("--scale", type=float, default=1.0,
                   help="workload scale (1.0 = paper's dataset)")

    p = sub.add_parser("serve", help="host the always-on analysis service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7461)
    p.add_argument("--workers", type=int, default=2,
                   help="concurrent pipeline passes")
    p.add_argument("--max-queued", type=int, default=64,
                   help="admission bound: queued jobs beyond this are "
                        "rejected with a reason")
    p.add_argument("--weights", nargs="+", metavar="TENANT=W", default=[],
                   help="per-tenant fair-share weights, e.g. clinical=3 "
                        "batch=1 (unlisted tenants get 1)")
    p.add_argument("--cache-mb", type=int, default=256,
                   help="result cache budget in MB (0 disables)")
    p.add_argument("--cache-spill-mb", type=int, metavar="MB",
                   help="spill result-cache entries evicted from RAM to "
                        "disk, up to MB megabytes (omit to disable spill)")
    p.add_argument("--cache-spill-dir", metavar="DIR",
                   help="spill directory (default $TMPDIR/repro-regions); "
                        "setting only this enables unbounded spill")
    p.add_argument("--staging", metavar="SPEC",
                   help="default region-staging policy applied to jobs "
                        "(same SPEC syntax as `repro analyze --staging`); "
                        "warm pool entries then cache chunks across jobs")
    p.add_argument("--pool-entries", type=int, default=4,
                   help="warm runtime entries kept across jobs")
    p.add_argument("--no-batching", action="store_true",
                   help="disable packing co-batchable jobs into one pass")

    p = sub.add_parser("submit", help="submit a job to a running service")
    p.add_argument("dataset", help="dataset directory (as seen by the server)")
    p.add_argument("--connect", default="127.0.0.1:7461", metavar="HOST:PORT")
    p.add_argument("--tenant", default="default")
    p.add_argument("--features", nargs="+",
                   default=["asm", "correlation", "sum_of_squares", "idm"])
    p.add_argument("--levels", type=int, default=32)
    p.add_argument("--roi", nargs=4, type=int, default=[5, 5, 5, 3],
                   metavar=("RX", "RY", "RZ", "RT"))
    p.add_argument("--intensity-max", type=float, default=4095.0)
    p.add_argument("--runtime", choices=("threads", "processes", "distributed"),
                   default="threads")
    p.add_argument("--transport", choices=("pipe", "shm"), default="pipe")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the content-addressed result cache")
    p.add_argument("--no-wait", action="store_true",
                   help="print the job id and return instead of waiting")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="seconds to wait for the result")

    return parser


def _cmd_phantom(args) -> int:
    from .data.synthetic import paper_dataset_config, generate_phantom, PhantomConfig
    from .storage.dataset import write_dataset

    base = paper_dataset_config(scale=1.0, seed=args.seed, num_lesions=args.lesions)
    config = PhantomConfig(
        shape=tuple(args.shape), lesions=base.lesions, seed=args.seed
    )
    volume = generate_phantom(config)
    dataset = write_dataset(
        volume, args.out, num_nodes=args.nodes, file_format=args.format
    )
    print(f"wrote {dataset.shape} study ({volume.nbytes / 1e6:.1f} MB) to "
          f"{args.out}: {args.nodes} nodes, format={args.format}")
    return 0


def _cmd_info(args) -> int:
    from .storage.dataset import DiskDataset4D

    ds = DiskDataset4D.open(args.dataset)
    slices = ds.num_slices * ds.num_timesteps
    print(f"dataset:          {args.dataset}")
    print(f"shape (x,y,z,t):  {ds.shape}")
    print(f"bytes per pixel:  {ds.bytes_per_pixel}")
    print(f"file format:      {ds.file_format}")
    print(f"storage nodes:    {ds.num_nodes}")
    print(f"slice files:      {slices}")
    total = slices * ds.shape[0] * ds.shape[1] * ds.bytes_per_pixel
    print(f"total size:       {total / 1e6:.1f} MB")
    for n in range(ds.num_nodes):
        print(f"  node {n}: {len(ds.slices_on_node(n))} slices")
    return 0


def _cmd_analyze(args) -> int:
    from .filters.messages import TextureParams
    from .pipeline.config import AnalysisConfig
    from .pipeline.report import format_breakdown, format_metrics
    from .pipeline.run import run_pipeline

    params = TextureParams(
        roi_shape=tuple(args.roi),
        levels=args.levels,
        features=tuple(args.features),
        intensity_range=(0.0, args.intensity_max),
        sparse=args.sparse,
        kernel=args.kernel,
    )
    kwargs = dict(
        texture=params,
        variant=args.variant,
        num_iic_copies=args.iic_copies,
        scheduling=args.scheduling,
    )
    if args.variant == "hmp":
        kwargs["num_texture_copies"] = args.copies
    else:
        hcc = max(1, args.copies - max(1, args.copies // 5))
        kwargs["num_hcc_copies"] = hcc
        kwargs["num_hpc_copies"] = max(1, args.copies - hcc)
    if args.images_out:
        kwargs["output"] = "images"
        kwargs["output_dir"] = args.images_out
    if args.staging:
        from .regions import parse_staging

        try:
            kwargs["staging"] = parse_staging(args.staging)
        except ValueError as exc:
            print(f"bad --staging spec: {exc}", file=sys.stderr)
            return 2
    config = AnalysisConfig(**kwargs)
    if args.transport != "pipe" and args.runtime != "processes":
        print("--transport shm requires --runtime processes", file=sys.stderr)
        return 2
    if (args.hosts or args.agents) and args.runtime != "distributed":
        print("--hosts/--agents require --runtime distributed", file=sys.stderr)
        return 2
    if (
        args.elastic or args.heartbeat_timeout is not None
    ) and args.runtime != "distributed":
        print("--elastic/--heartbeat-timeout require --runtime distributed",
              file=sys.stderr)
        return 2
    if args.hosts and args.agents:
        print("--hosts and --agents are mutually exclusive", file=sys.stderr)
        return 2
    if args.autotune and args.runtime != "processes" and not args.profile:
        print("--autotune requires --runtime processes", file=sys.stderr)
        return 2
    if args.wakeup and args.runtime == "distributed":
        print("--wakeup applies to the threads/processes runtimes",
              file=sys.stderr)
        return 2
    hosts = None
    if args.hosts:
        hosts = list(args.hosts)
    elif args.agents:
        hosts = ["127.0.0.1"] * args.agents
    if args.trace_out and args.trace not in ("chrome", "jsonl"):
        print("--trace-out requires --trace chrome or jsonl", file=sys.stderr)
        return 2
    result = run_pipeline(
        args.dataset, config, runtime=args.runtime, hosts=hosts,
        trace=args.trace, trace_out=args.trace_out,
        transport=args.transport, elastic=args.elastic,
        heartbeat_timeout=args.heartbeat_timeout,
        profile=args.profile, autotune=args.autotune,
        poll_interval=args.poll_interval, wakeup=args.wakeup,
    )
    print(format_breakdown(result.run, order=("RFR", "IIC", "HMP", "HCC", "HPC")))
    if args.metrics:
        print(format_metrics(result.run))
    if args.trace in ("chrome", "jsonl"):
        default = "trace.json" if args.trace == "chrome" else "trace.jsonl"
        print(f"trace written to {args.trace_out or default}")
    for name, vol in result.volumes.items():
        print(f"{name:<16} shape={vol.shape} min={vol.min():.4f} "
              f"max={vol.max():.4f}")
    return 0


def _cmd_tune(args) -> int:
    from .tuning import PilotSpec, run_sweep

    spec = PilotSpec(
        dataset_root=args.dataset,
        phantom_shape=tuple(args.shape),
        seed=args.seed,
        repeats=args.repeats,
        runtime=args.runtime,
        max_queue=args.max_queue,
        run_timeout=args.timeout,
    )
    try:
        result = run_sweep(spec, progress=None if args.quiet else print)
    except ValueError as exc:
        print(f"tune failed: {exc}", file=sys.stderr)
        return 2
    print(result.summary())
    if not result.bit_identical:
        print("warning: candidates disagreed bit-for-bit; profile NOT "
              "written", file=sys.stderr)
        return 1
    result.profile.save(args.out)
    print(f"profile written to {args.out}")
    return 0


def _cmd_kernels(args) -> int:
    from .core.backends import DEFAULT_KERNEL, KERNEL_INFO, KERNELS
    from .core.gpu import probe_gpu

    width = max(len(k) for k in KERNELS)
    for k in KERNELS:
        mark = "*" if k == DEFAULT_KERNEL else " "
        print(f" {mark} {k:<{width}}  {KERNEL_INFO[k]}")
    print(f"   (* = default kernel)")
    probe = probe_gpu(refresh=args.refresh)
    if probe.available:
        print(f"gpu: available via {probe.provider} ({probe.device})")
    else:
        print("gpu: unavailable — --kernel gpu falls back to megabatch")
    if probe.detail:
        for line in probe.detail.splitlines():
            print(f"     {line}")
    return 0


def _cmd_simulate(args) -> int:
    from .sim import SimRuntime, paper_workload
    from .sim import layouts

    wl = paper_workload(scale=args.scale)
    print(f"workload: {wl.dataset_shape} ({wl.total_rois / 1e6:.1f}M ROIs)")

    def run(layout):
        return SimRuntime(wl, *layout).run()

    fig = args.figure
    if fig in ("7a", "7b", "8", "9"):
        for n in (1, 2, 4, 8, 16):
            if fig == "7a":
                f = run(layouts.homogeneous_hmp(n, sparse=False)).makespan
                s = run(layouts.homogeneous_hmp(n, sparse=True)).makespan
                print(f"n={n:2d}: HMP full={f:9.1f}s sparse={s:9.1f}s")
            elif fig == "7b":
                f = run(layouts.homogeneous_split(n, sparse=False)).makespan
                s = run(layouts.homogeneous_split(n, sparse=True)).makespan
                print(f"n={n:2d}: split full={f:9.1f}s sparse={s:9.1f}s")
            elif fig == "8":
                a = run(layouts.homogeneous_split(n, sparse=True, overlap=False)).makespan
                b = run(layouts.homogeneous_split(n, sparse=True, overlap=True)).makespan
                c = run(layouts.homogeneous_hmp(n, sparse=False)).makespan
                print(f"n={n:2d}: no-overlap={a:8.1f}s overlap={b:8.1f}s HMP={c:8.1f}s")
            else:
                rep = run(layouts.homogeneous_split(n, sparse=True))
                print(f"n={n:2d}: RFR={rep.filter_busy_mean('RFR'):6.1f} "
                      f"IIC={rep.filter_busy_mean('IIC'):6.1f} "
                      f"HCC={rep.filter_busy_mean('HCC'):8.1f} "
                      f"HPC={rep.filter_busy_mean('HPC'):6.1f} "
                      f"USO={rep.filter_busy_mean('USO'):6.1f}")
    elif fig == "10":
        print(f"HMP (23 copies):         {run(layouts.fig10_hmp()).makespan:9.1f}s")
        print(f"split (18 HCC + 18 HPC): "
              f"{run(layouts.fig10_split(sparse=True)).makespan:9.1f}s")
    else:
        for policy in ("round_robin", "demand_driven"):
            print(f"{policy:>14}: {run(layouts.fig11_layout(policy)).makespan:9.1f}s")
    return 0


def _cmd_serve(args) -> int:
    import signal
    import threading

    from .service import AnalysisService, ServiceConfig, ServiceServer

    weights = {}
    for spec in args.weights:
        tenant, _, w = spec.partition("=")
        if not tenant or not w:
            print(f"bad --weights entry {spec!r} (want TENANT=WEIGHT)",
                  file=sys.stderr)
            return 2
        weights[tenant] = float(w)
    staging = None
    if args.staging:
        from .regions import parse_staging

        try:
            staging = parse_staging(args.staging)
        except ValueError as exc:
            print(f"bad --staging spec: {exc}", file=sys.stderr)
            return 2
    config = ServiceConfig(
        workers=args.workers,
        max_queued=args.max_queued,
        tenant_weights=weights,
        batching=not args.no_batching,
        cache_bytes=args.cache_mb << 20,
        cache_spill_bytes=(
            args.cache_spill_mb << 20 if args.cache_spill_mb is not None else None
        ),
        cache_spill_dir=args.cache_spill_dir,
        staging=staging,
        pool_entries=args.pool_entries,
    )
    stop = threading.Event()
    with AnalysisService(config) as service:
        with ServiceServer(service, host=args.host, port=args.port) as server:
            print(f"repro service listening on {server.host}:{server.port} "
                  f"({args.workers} workers, cache {args.cache_mb} MB)")
            try:
                # SIGTERM (and SIGINT where the KeyboardInterrupt path
                # is masked) wake the wait immediately instead of the
                # old time.sleep(3600) tick.
                signal.signal(signal.SIGTERM, lambda *_: stop.set())
            except ValueError:
                pass  # not the main thread (embedding callers)
            try:
                stop.wait()
            except KeyboardInterrupt:
                pass
            print("shutting down")
    return 0


def _cmd_submit(args) -> int:
    from .service import ServiceClient, ServiceClientError

    host, _, port = args.connect.rpartition(":")
    try:
        with ServiceClient(host or "127.0.0.1", int(port)) as client:
            try:
                job_id = client.submit(
                    dataset=args.dataset,
                    tenant=args.tenant,
                    features=list(args.features),
                    levels=args.levels,
                    roi=list(args.roi),
                    intensity_range=[0.0, args.intensity_max],
                    runtime=args.runtime,
                    transport=args.transport,
                    use_cache=not args.no_cache,
                )
            except ServiceClientError as exc:
                print(f"rejected ({exc.kind}): {exc}", file=sys.stderr)
                return 1
            if args.no_wait:
                print(job_id)
                return 0
            resp = client.result(job_id, timeout=args.timeout)
            src = (f"cache+run" if resp["cached"] and resp["computed"]
                   else "cache" if resp["cached"] else "run")
            print(f"{job_id}: done in {resp['elapsed']:.2f}s "
                  f"(waited {resp['queue_wait']:.2f}s, source={src}, "
                  f"batch={resp['batch_size']})")
            for name, vol in resp["volumes"].items():
                print(f"{name:<16} shape={tuple(vol['shape'])} "
                      f"min={vol['min']:.4f} max={vol['max']:.4f}")
            return 0
    except ConnectionError as exc:
        print(f"cannot reach service at {args.connect}: {exc}",
              file=sys.stderr)
        return 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "phantom": _cmd_phantom,
        "info": _cmd_info,
        "analyze": _cmd_analyze,
        "tune": _cmd_tune,
        "kernels": _cmd_kernels,
        "simulate": _cmd_simulate,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

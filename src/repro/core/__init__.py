"""Core 4D Haralick texture analysis kernels (paper Section 3).

Submodules
----------
quantization
    Grey-level requantization (16-bit MRI -> G levels).
directions
    N-dimensional displacement vectors and half-space uniqueness.
roi
    ROI window geometry and raster-scan position grids.
cooccurrence
    Dense co-occurrence matrices: per-window reference kernel and the
    vectorized batched scan.
backends
    Pluggable GLCM scan kernels (batched / incremental / megabatch /
    gpu / reference) and the dispatch registry.
gpu
    Import-guarded CUDA backend (CuPy or Numba) with device probing
    and a clean megabatch fallback.
workspace
    Shared cached scan workspaces (pair-shift arrays, symmetrization
    index tables, mega-batch gather offset tables).
sparse
    Sparse (upper-triangle triplet) co-occurrence representation.
features
    The fourteen Haralick features, vectorized over matrix batches.
features_sparse
    Zero-skip and sparse-form feature computation.
raster
    Sequential raster scan (reference and production paths).
analysis
    ``haralick_transform`` — the high-level sequential API.
"""

from .analysis import HaralickConfig, haralick_transform
from .directional import anisotropy, directional_features, directional_statistics
from .masking import mask_statistics, mask_to_positions, masked_feature_samples
from .multidistance import multi_distance_transform, stack_distance_features
from .backends import (
    DEFAULT_KERNEL,
    KERNEL_INFO,
    KERNELS,
    get_kernel,
    incremental_scan,
    megabatch_scan,
    reference_scan,
    resolve_scan_kernel,
)
from .cooccurrence import check_levels, cooccurrence_matrix, cooccurrence_scan
from .gpu import GpuProbe, GpuUnavailableWarning, gpu_scan, probe_gpu
from .directions import all_directions, direction_count, unique_directions
from .features import (
    HARALICK_FEATURES,
    PAPER_FEATURES,
    haralick_feature_vector,
    haralick_features,
)
from .features_sparse import features_from_sparse, features_nonzero
from .quantization import quantize_equalized, quantize_linear
from .raster import raster_scan, raster_scan_batches, raster_scan_reference
from .roi import ROISpec, iter_roi_origins, valid_positions_shape
from .sparse import SparseCooc, batch_sparse_from_dense, sparse_from_dense

__all__ = [
    "HaralickConfig",
    "haralick_transform",
    "anisotropy",
    "directional_features",
    "directional_statistics",
    "mask_to_positions",
    "masked_feature_samples",
    "mask_statistics",
    "multi_distance_transform",
    "stack_distance_features",
    "DEFAULT_KERNEL",
    "KERNEL_INFO",
    "KERNELS",
    "get_kernel",
    "resolve_scan_kernel",
    "incremental_scan",
    "megabatch_scan",
    "reference_scan",
    "GpuProbe",
    "GpuUnavailableWarning",
    "gpu_scan",
    "probe_gpu",
    "check_levels",
    "cooccurrence_matrix",
    "cooccurrence_scan",
    "all_directions",
    "direction_count",
    "unique_directions",
    "HARALICK_FEATURES",
    "PAPER_FEATURES",
    "haralick_features",
    "haralick_feature_vector",
    "features_from_sparse",
    "features_nonzero",
    "quantize_linear",
    "quantize_equalized",
    "raster_scan",
    "raster_scan_batches",
    "raster_scan_reference",
    "ROISpec",
    "iter_roi_origins",
    "valid_positions_shape",
    "SparseCooc",
    "sparse_from_dense",
    "batch_sparse_from_dense",
]

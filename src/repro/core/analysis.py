"""High-level sequential Haralick texture analysis API.

``haralick_transform`` is the single-machine, in-memory entry point: raw
intensities in, one feature volume per Haralick parameter out.  It wires
together requantization, the raster scan and the feature kernels, and is
the semantic reference for the parallel pipelines in ``repro.pipeline``
(which must produce bit-identical feature volumes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .backends import DEFAULT_KERNEL, get_kernel
from .directions import Direction
from .features import PAPER_FEATURES, feature_index
from .quantization import quantize_linear
from .raster import raster_scan
from .roi import ROISpec, valid_positions_shape

__all__ = ["HaralickConfig", "haralick_transform"]


@dataclass(frozen=True)
class HaralickConfig:
    """Parameters of one 4D Haralick texture analysis run.

    Defaults follow the paper's experimental setup (Section 5.1):
    ``5 x 5 x 5 x 3`` ROI, 32 grey levels, the four most expensive
    parameters (ASM, Correlation, Sum of Squares, IDM), distance 1 over
    all unique 4D directions.

    ``kernel`` selects the co-occurrence scan backend
    (:data:`repro.core.backends.KERNELS`); every backend produces
    bit-identical feature volumes, so this is purely a performance
    knob.  The default is the incremental (rolling) kernel.
    """

    roi_shape: Tuple[int, ...] = (5, 5, 5, 3)
    levels: int = 32
    features: Tuple[str, ...] = PAPER_FEATURES
    distance: int = 1
    directions: Optional[Tuple[Direction, ...]] = None
    kernel: str = DEFAULT_KERNEL

    def __post_init__(self) -> None:
        object.__setattr__(self, "roi_shape", tuple(int(s) for s in self.roi_shape))
        object.__setattr__(self, "features", tuple(self.features))
        for name in self.features:
            feature_index(name)
        if not self.features:
            raise ValueError("at least one Haralick feature must be selected")
        ROISpec(self.roi_shape)  # validates
        if self.distance < 1:
            raise ValueError(f"distance must be >= 1, got {self.distance}")
        get_kernel(self.kernel)  # validates

    @property
    def roi(self) -> ROISpec:
        return ROISpec(self.roi_shape)

    def output_shape(self, dataset_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Shape of each output feature volume for a given input shape."""
        return valid_positions_shape(dataset_shape, self.roi)


def haralick_transform(
    data: np.ndarray,
    config: Optional[HaralickConfig] = None,
    quantized: bool = False,
    batch: int = 2048,
) -> Dict[str, np.ndarray]:
    """Sequential 4D Haralick texture analysis of an in-memory volume.

    Parameters
    ----------
    data:
        Raw image volume.  Any dimensionality matching
        ``config.roi_shape`` (the paper's case is 4D: x, y, z, t).
    config:
        Analysis parameters; defaults to the paper's setup.
    quantized:
        When True, ``data`` is already integer grey levels in
        ``[0, config.levels)`` and is used as-is; otherwise it is
        linearly requantized first.
    batch:
        ROI positions per vectorized batch (working-set bound).

    Returns
    -------
    dict of feature name -> volume of shape ``config.output_shape(...)``.
    """
    config = config or HaralickConfig()
    data = np.asarray(data)
    if data.ndim != len(config.roi_shape):
        raise ValueError(
            f"data ndim {data.ndim} != ROI ndim {len(config.roi_shape)}"
        )
    if quantized:
        q = np.asarray(data, dtype=np.int32)
    else:
        q = quantize_linear(data, config.levels)
    return raster_scan(
        q,
        config.roi,
        config.levels,
        config.features,
        config.directions,
        config.distance,
        batch=batch,
        kernel=config.kernel,
    )

"""Pluggable scan backends for co-occurrence computation.

The paper's dominant cost is GLCM accumulation (Section 4.4.1), so the
scan kernel is dispatchable behind one stable interface — the Region
Templates idea of backend-selectable kernels.  Three backends:

``"batched"``
    :func:`repro.core.cooccurrence.cooccurrence_scan`.  One ``bincount``
    per (direction, sub-batch): every ROI re-counts its full window, so
    per-ROI work is ``O(ROI_volume)`` pair codes per direction plus a
    ``G x G`` histogram accumulation *per direction*.

``"incremental"``
    :func:`incremental_scan` (this module).  The rolling kernel: Eq. (1)
    overlap means adjacent ROIs along the innermost axis share all but
    one hyperplane of pair codes, so the scan histograms each
    code *hyperplane* once and reconstructs every window's GLCM as a
    sliding sum of plane histograms along the axis.  Per-ROI work drops to
    ``O(ROI_face)`` pair codes per direction, and directions are grouped
    by trailing window extent so the dense ``G x G`` accumulation is
    paid once per *group* (2 groups for the paper setup) instead of once
    per direction (40 for 4D) — the dominant saving for ``G = 32``.

``"reference"``
    :func:`reference_scan`.  The paper's Fig. 2 loop — one
    :func:`~repro.core.cooccurrence.cooccurrence_matrix` per ROI window,
    batched only for yield granularity.  Slow and obviously correct;
    the acceptance bar is bit-identical output against this kernel.

All backends share one generator contract::

    scan(data, roi, levels, directions=None, distance=1, batch=2048,
         symmetric=True, validate=True) -> Iterator[(start, (B, G, G))]

with identical batch boundaries and bit-identical count matrices, so
they are interchangeable under every runtime (sequential, threaded,
multiprocess, distributed).  Select one via ``HaralickConfig.kernel`` /
``TextureParams.kernel`` / the CLI ``--kernel`` flag, or grab the
callable directly with :func:`get_kernel`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .cooccurrence import (
    check_levels,
    cooccurrence_matrix,
    cooccurrence_scan,
    pair_code_array,
    resolve_directions,
)
from .directions import Direction
from .quantization import num_levels_ok
from .roi import ROISpec, iter_roi_origins, valid_positions_shape
from .workspace import WORKSPACE_BYTES, pair_shift, symmetrize_inplace

__all__ = [
    "KERNELS",
    "DEFAULT_KERNEL",
    "get_kernel",
    "incremental_scan",
    "reference_scan",
]

ScanKernel = Callable[..., Iterator[Tuple[int, np.ndarray]]]

#: Backend used by the high-level configs when none is requested.
DEFAULT_KERNEL = "incremental"


def reference_scan(
    data: np.ndarray,
    roi: ROISpec,
    levels: int,
    directions: Optional[Sequence[Direction]] = None,
    distance: int = 1,
    batch: int = 2048,
    symmetric: bool = True,
    validate: bool = True,
) -> Iterator[Tuple[int, np.ndarray]]:
    """Fig. 2 loop as a scan backend: one window at a time.

    Ground truth for the other backends; batching exists only to match
    the shared yield contract.
    """
    data = np.asarray(data)
    if validate:
        check_levels(data, levels)
    else:
        num_levels_ok(levels)
    if data.ndim != roi.ndim:
        raise ValueError(f"data ndim {data.ndim} != ROI ndim {roi.ndim}")
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    valid_positions_shape(data.shape, roi)  # raises if the ROI cannot fit
    dirs = resolve_directions(data.ndim, directions, distance)
    start = 0
    buf: List[np.ndarray] = []
    for origin in iter_roi_origins(data.shape, roi):
        window = data[tuple(slice(o, o + r) for o, r in zip(origin, roi.shape))]
        buf.append(
            cooccurrence_matrix(
                window, levels, dirs, distance=1, symmetric=symmetric,
                validate=False,
            )
        )
        if len(buf) == batch:
            yield start, np.stack(buf)
            start += len(buf)
            buf = []
    if buf:
        yield start, np.stack(buf)


def _rolling_groups(
    data: np.ndarray, roi: ROISpec, levels: int, dirs: Sequence[Direction]
) -> Dict[int, List[Tuple[np.ndarray, int]]]:
    """Per-direction hyperplane views, grouped by trailing window extent.

    For direction ``v`` the pair-code window has shape ``W = R - |v|``;
    ``sliding_window_view`` over the *leading* axes only leaves the
    innermost axis whole, so ``view[row_origin][j]`` is the hyperplane of
    codes at innermost index ``j`` for that scan row.  Directions with
    equal ``W[-1]`` share plane alignment and can be histogrammed with a
    single ``bincount``.
    """
    nd = data.ndim
    groups: Dict[int, List[Tuple[np.ndarray, int]]] = {}
    for v in dirs:
        absv = tuple(abs(c) for c in v)
        if any(roi.shape[i] <= absv[i] for i in range(nd)):
            continue  # pairs never fit inside the ROI for this direction
        codes, _ = pair_code_array(data, levels, v)
        w = tuple(roi.shape[i] - absv[i] for i in range(nd))
        view = sliding_window_view(codes, w[:-1], axis=tuple(range(nd - 1)))
        face = 1
        for c in w[:-1]:
            face *= c
        groups.setdefault(w[-1], []).append((view, face))
    return groups


#: Target byte size of one internal row block.  Keeping the per-block
#: histogram working set cache-sized is worth ~20% over maximally large
#: blocks; always additionally capped by ``WORKSPACE_BYTES``.
_BLOCK_TARGET_BYTES = 8 * 2**20


def _rolling_block(
    groups: Dict[int, List[Tuple[np.ndarray, int]]],
    block_bufs: Dict[int, np.ndarray],
    lead: Tuple[int, ...],
    row_len: int,
    r0: int,
    rb: int,
    levels: int,
) -> np.ndarray:
    """Count matrices of ``rb`` whole scan rows starting at row ``r0``.

    Per group: gather every code hyperplane of every row into the pooled
    block buffer, histogram them with one ``bincount``, then accumulate
    the ``W_t`` shifted plane-histogram layers — GLCM ``t`` of a row is
    the sum of planes ``[t, t + W_t)``.
    """
    gg = levels * levels
    mats = np.zeros((rb, row_len, gg), dtype=np.int64)
    idx = (
        np.unravel_index(np.arange(r0, r0 + rb), lead) if lead else None
    )
    for wt, members in groups.items():
        n_planes = row_len - 1 + wt
        block = block_bufs[wt][:rb]
        off = 0
        for view, face in members:
            g = view[idx] if idx is not None else np.array(view[np.newaxis])
            block[:, :, off : off + face] = g.reshape(rb, n_planes, face)
            off += face
        # Disjoint histogram segments per (row, plane), one bincount for
        # the whole group.
        block += pair_shift(rb * n_planes, gg).reshape(rb, n_planes, 1)
        h = np.bincount(block.reshape(-1), minlength=rb * n_planes * gg)
        c = h.reshape(rb, n_planes, gg)
        for k in range(wt):
            mats += c[:, k : k + row_len]
    return mats.reshape(rb * row_len, levels, levels)


def incremental_scan(
    data: np.ndarray,
    roi: ROISpec,
    levels: int,
    directions: Optional[Sequence[Direction]] = None,
    distance: int = 1,
    batch: int = 2048,
    symmetric: bool = True,
    validate: bool = True,
) -> Iterator[Tuple[int, np.ndarray]]:
    """Incremental (rolling) raster scan along the innermost axis.

    Same yield contract and bit-identical matrices as
    :func:`~repro.core.cooccurrence.cooccurrence_scan`; see the module
    docstring for the algorithm and complexity.
    """
    data = np.asarray(data)
    if validate:
        check_levels(data, levels)
    else:
        num_levels_ok(levels)
    if data.ndim != roi.ndim:
        raise ValueError(f"data ndim {data.ndim} != ROI ndim {roi.ndim}")
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    grid = valid_positions_shape(data.shape, roi)
    npos = int(np.prod(grid))
    dirs = resolve_directions(data.ndim, directions, distance)
    gg = levels * levels
    row_len = grid[-1]
    lead = grid[:-1]
    n_rows = npos // row_len
    groups = _rolling_groups(data, roi, levels, dirs)

    # Rows per internal block: each row costs the gathered code block
    # plus the histogram segments, per group, plus its output matrices.
    # Sized for cache residency, and never beyond the workspace budget.
    worst = row_len * gg
    for wt, members in groups.items():
        total_face = sum(face for _view, face in members)
        worst += (row_len - 1 + wt) * (total_face + gg)
    budget = min(WORKSPACE_BYTES, _BLOCK_TARGET_BYTES)
    rows_per_block = max(1, budget // (8 * worst))
    block_bufs = {
        wt: np.empty(
            (
                min(rows_per_block, n_rows),
                row_len - 1 + wt,
                sum(face for _view, face in members),
            ),
            dtype=np.int64,
        )
        for wt, members in groups.items()
    }

    emit_start = 0
    buf: Optional[np.ndarray] = None
    buf_fill = 0
    b_cur = 0
    for r0 in range(0, n_rows, rows_per_block):
        rb = min(rows_per_block, n_rows - r0)
        mats_block = _rolling_block(
            groups, block_bufs, lead, row_len, r0, rb, levels
        )
        if symmetric:
            symmetrize_inplace(mats_block)
        pos = 0
        nblk = mats_block.shape[0]
        while pos < nblk:
            if buf is None:
                b_cur = min(batch, npos - emit_start)
                if nblk - pos >= b_cur:
                    # Whole output batch available in this block: yield a
                    # view, no assembly copy.
                    yield emit_start, mats_block[pos : pos + b_cur]
                    emit_start += b_cur
                    pos += b_cur
                    continue
                buf = np.empty((b_cur, levels, levels), dtype=np.int64)
                buf_fill = 0
            take = min(b_cur - buf_fill, nblk - pos)
            buf[buf_fill : buf_fill + take] = mats_block[pos : pos + take]
            buf_fill += take
            pos += take
            if buf_fill == b_cur:
                yield emit_start, buf
                emit_start += b_cur
                buf = None


_REGISTRY: Dict[str, ScanKernel] = {
    "batched": cooccurrence_scan,
    "incremental": incremental_scan,
    "reference": reference_scan,
}

#: Names of the selectable scan backends.
KERNELS: Tuple[str, ...] = tuple(sorted(_REGISTRY))


def get_kernel(name: str) -> ScanKernel:
    """Resolve a backend name to its scan generator."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scan kernel {name!r}; valid kernels: {KERNELS}"
        ) from None

"""Pluggable scan backends for co-occurrence computation.

The paper's dominant cost is GLCM accumulation (Section 4.4.1), so the
scan kernel is dispatchable behind one stable interface — the Region
Templates idea of backend-selectable kernels.  Five backends:

``"batched"``
    :func:`repro.core.cooccurrence.cooccurrence_scan`.  One ``bincount``
    per (direction, sub-batch): every ROI re-counts its full window, so
    per-ROI work is ``O(ROI_volume)`` pair codes per direction plus a
    ``G x G`` histogram accumulation *per direction*.

``"incremental"``
    :func:`incremental_scan` (this module).  The rolling kernel: Eq. (1)
    overlap means adjacent ROIs along the innermost axis share all but
    one hyperplane of pair codes, so the scan histograms each
    code *hyperplane* once and reconstructs every window's GLCM as a
    sliding sum of plane histograms along the axis.  Per-ROI work drops to
    ``O(ROI_face)`` pair codes per direction, and directions are grouped
    by trailing window extent so the dense ``G x G`` accumulation is
    paid once per *group* (2 groups for the paper setup) instead of once
    per direction (40 for 4D) — the dominant saving for ``G = 32``.

``"megabatch"``
    :func:`megabatch_scan` (this module).  The chunk-at-once kernel:
    the same hyperplane sharing as ``incremental``, but the pair codes
    of every direction are concatenated into *one* flat array per
    chunk, every row's hyperplanes are gathered through precomputed
    flat-index tables (:func:`~repro.core.workspace.scan_offsets`,
    cached per (chunk shape, ROI shape, distance)), and all windows'
    GLCMs accumulate directly into a single ``(n_windows, G*G)``
    output — one mega fancy-gather and one ``bincount`` per direction
    group per row block, no per-ROI dispatch, no emission copies
    (batches are views of the accumulator).

``"gpu"``
    :func:`repro.core.gpu.gpu_scan`.  Import-guarded GPU backend: the
    same pair-code scatter formulation on a CUDA device via CuPy (or a
    Numba-CUDA atomic-add kernel when CuPy is absent), one chunk
    transferred in and one GLCM block out.  Falls back cleanly to
    ``megabatch`` — with a :class:`~repro.core.gpu.GpuUnavailableWarning`
    and a ``kernel.fallback`` obs event from the filters — on machines
    without a device.

``"reference"``
    :func:`reference_scan`.  The paper's Fig. 2 loop — one
    :func:`~repro.core.cooccurrence.cooccurrence_matrix` per ROI window,
    batched only for yield granularity.  Slow and obviously correct;
    the acceptance bar is bit-identical output against this kernel.

All backends share one generator contract::

    scan(data, roi, levels, directions=None, distance=1, batch=2048,
         symmetric=True, validate=True) -> Iterator[(start, (B, G, G))]

with identical batch boundaries and bit-identical count matrices, so
they are interchangeable under every runtime (sequential, threaded,
multiprocess, distributed).  Select one via ``HaralickConfig.kernel`` /
``TextureParams.kernel`` / the CLI ``--kernel`` flag, or grab the
callable directly with :func:`get_kernel`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .cooccurrence import (
    check_levels,
    cooccurrence_matrix,
    cooccurrence_scan,
    pair_code_array,
    resolve_directions,
)
from .directions import Direction
from .quantization import num_levels_ok
from .roi import ROISpec, iter_roi_origins, valid_positions_shape
from .workspace import (
    WORKSPACE_BYTES,
    pair_shift,
    scan_offsets,
    symmetrize_inplace,
)

__all__ = [
    "KERNELS",
    "KERNEL_INFO",
    "DEFAULT_KERNEL",
    "get_kernel",
    "resolve_scan_kernel",
    "incremental_scan",
    "megabatch_scan",
    "reference_scan",
]

ScanKernel = Callable[..., Iterator[Tuple[int, np.ndarray]]]

#: Backend used by the high-level configs when none is requested.
DEFAULT_KERNEL = "incremental"


def reference_scan(
    data: np.ndarray,
    roi: ROISpec,
    levels: int,
    directions: Optional[Sequence[Direction]] = None,
    distance: int = 1,
    batch: int = 2048,
    symmetric: bool = True,
    validate: bool = True,
) -> Iterator[Tuple[int, np.ndarray]]:
    """Fig. 2 loop as a scan backend: one window at a time.

    Ground truth for the other backends; batching exists only to match
    the shared yield contract.
    """
    data = np.asarray(data)
    if validate:
        check_levels(data, levels)
    else:
        num_levels_ok(levels)
    if data.ndim != roi.ndim:
        raise ValueError(f"data ndim {data.ndim} != ROI ndim {roi.ndim}")
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    valid_positions_shape(data.shape, roi)  # raises if the ROI cannot fit
    dirs = resolve_directions(data.ndim, directions, distance)
    start = 0
    buf: List[np.ndarray] = []
    for origin in iter_roi_origins(data.shape, roi):
        window = data[tuple(slice(o, o + r) for o, r in zip(origin, roi.shape))]
        buf.append(
            cooccurrence_matrix(
                window, levels, dirs, distance=1, symmetric=symmetric,
                validate=False,
            )
        )
        if len(buf) == batch:
            yield start, np.stack(buf)
            start += len(buf)
            buf = []
    if buf:
        yield start, np.stack(buf)


def _rolling_groups(
    data: np.ndarray, roi: ROISpec, levels: int, dirs: Sequence[Direction]
) -> Dict[int, List[Tuple[np.ndarray, int]]]:
    """Per-direction hyperplane views, grouped by trailing window extent.

    For direction ``v`` the pair-code window has shape ``W = R - |v|``;
    ``sliding_window_view`` over the *leading* axes only leaves the
    innermost axis whole, so ``view[row_origin][j]`` is the hyperplane of
    codes at innermost index ``j`` for that scan row.  Directions with
    equal ``W[-1]`` share plane alignment and can be histogrammed with a
    single ``bincount``.
    """
    nd = data.ndim
    groups: Dict[int, List[Tuple[np.ndarray, int]]] = {}
    for v in dirs:
        absv = tuple(abs(c) for c in v)
        if any(roi.shape[i] <= absv[i] for i in range(nd)):
            continue  # pairs never fit inside the ROI for this direction
        codes, _ = pair_code_array(data, levels, v)
        w = tuple(roi.shape[i] - absv[i] for i in range(nd))
        view = sliding_window_view(codes, w[:-1], axis=tuple(range(nd - 1)))
        face = 1
        for c in w[:-1]:
            face *= c
        groups.setdefault(w[-1], []).append((view, face))
    return groups


#: Target byte size of one internal row block.  Keeping the per-block
#: histogram working set cache-sized is worth ~20% over maximally large
#: blocks; always additionally capped by ``WORKSPACE_BYTES``.
_BLOCK_TARGET_BYTES = 8 * 2**20


def _rolling_block(
    groups: Dict[int, List[Tuple[np.ndarray, int]]],
    block_bufs: Dict[int, np.ndarray],
    lead: Tuple[int, ...],
    row_len: int,
    r0: int,
    rb: int,
    levels: int,
) -> np.ndarray:
    """Count matrices of ``rb`` whole scan rows starting at row ``r0``.

    Per group: gather every code hyperplane of every row into the pooled
    block buffer, histogram them with one ``bincount``, then accumulate
    the ``W_t`` shifted plane-histogram layers — GLCM ``t`` of a row is
    the sum of planes ``[t, t + W_t)``.
    """
    gg = levels * levels
    mats = np.zeros((rb, row_len, gg), dtype=np.int64)
    idx = (
        np.unravel_index(np.arange(r0, r0 + rb), lead) if lead else None
    )
    for wt, members in groups.items():
        n_planes = row_len - 1 + wt
        block = block_bufs[wt][:rb]
        off = 0
        for view, face in members:
            g = view[idx] if idx is not None else np.array(view[np.newaxis])
            block[:, :, off : off + face] = g.reshape(rb, n_planes, face)
            off += face
        # Disjoint histogram segments per (row, plane), one bincount for
        # the whole group.
        block += pair_shift(rb * n_planes, gg).reshape(rb, n_planes, 1)
        h = np.bincount(block.reshape(-1), minlength=rb * n_planes * gg)
        c = h.reshape(rb, n_planes, gg)
        for k in range(wt):
            mats += c[:, k : k + row_len]
    return mats.reshape(rb * row_len, levels, levels)


def incremental_scan(
    data: np.ndarray,
    roi: ROISpec,
    levels: int,
    directions: Optional[Sequence[Direction]] = None,
    distance: int = 1,
    batch: int = 2048,
    symmetric: bool = True,
    validate: bool = True,
) -> Iterator[Tuple[int, np.ndarray]]:
    """Incremental (rolling) raster scan along the innermost axis.

    Same yield contract and bit-identical matrices as
    :func:`~repro.core.cooccurrence.cooccurrence_scan`; see the module
    docstring for the algorithm and complexity.
    """
    data = np.asarray(data)
    if validate:
        check_levels(data, levels)
    else:
        num_levels_ok(levels)
    if data.ndim != roi.ndim:
        raise ValueError(f"data ndim {data.ndim} != ROI ndim {roi.ndim}")
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    grid = valid_positions_shape(data.shape, roi)
    npos = int(np.prod(grid))
    dirs = resolve_directions(data.ndim, directions, distance)
    gg = levels * levels
    row_len = grid[-1]
    lead = grid[:-1]
    n_rows = npos // row_len
    groups = _rolling_groups(data, roi, levels, dirs)

    # Rows per internal block: each row costs the gathered code block
    # plus the histogram segments, per group, plus its output matrices.
    # Sized for cache residency, and never beyond the workspace budget.
    worst = row_len * gg
    for wt, members in groups.items():
        total_face = sum(face for _view, face in members)
        worst += (row_len - 1 + wt) * (total_face + gg)
    budget = min(WORKSPACE_BYTES, _BLOCK_TARGET_BYTES)
    rows_per_block = max(1, budget // (8 * worst))
    block_bufs = {
        wt: np.empty(
            (
                min(rows_per_block, n_rows),
                row_len - 1 + wt,
                sum(face for _view, face in members),
            ),
            dtype=np.int64,
        )
        for wt, members in groups.items()
    }

    emit_start = 0
    buf: Optional[np.ndarray] = None
    buf_fill = 0
    b_cur = 0
    for r0 in range(0, n_rows, rows_per_block):
        rb = min(rows_per_block, n_rows - r0)
        mats_block = _rolling_block(
            groups, block_bufs, lead, row_len, r0, rb, levels
        )
        if symmetric:
            symmetrize_inplace(mats_block)
        pos = 0
        nblk = mats_block.shape[0]
        while pos < nblk:
            if buf is None:
                b_cur = min(batch, npos - emit_start)
                if nblk - pos >= b_cur:
                    # Whole output batch available in this block: yield a
                    # view, no assembly copy.
                    yield emit_start, mats_block[pos : pos + b_cur]
                    emit_start += b_cur
                    pos += b_cur
                    continue
                buf = np.empty((b_cur, levels, levels), dtype=np.int64)
                buf_fill = 0
            take = min(b_cur - buf_fill, nblk - pos)
            buf[buf_fill : buf_fill + take] = mats_block[pos : pos + take]
            buf_fill += take
            pos += take
            if buf_fill == b_cur:
                yield emit_start, buf
                emit_start += b_cur
                buf = None


def megabatch_scan(
    data: np.ndarray,
    roi: ROISpec,
    levels: int,
    directions: Optional[Sequence[Direction]] = None,
    distance: int = 1,
    batch: int = 2048,
    symmetric: bool = True,
    validate: bool = True,
) -> Iterator[Tuple[int, np.ndarray]]:
    """Chunk-at-once mega-batched scan.

    Builds the pair-code array of the whole chunk once (one flat
    concatenation over all directions), then histograms *every*
    window's GLCM into a single ``(n_windows, G*G)`` accumulator using
    the cached gather geometry of
    :func:`~repro.core.workspace.scan_offsets` — per-direction sliding
    views over each cache-resident code segment, fused with the
    bincount row shift.  The yielded batches are views of the
    accumulator, so there is no per-ROI dispatch and no emission copy.
    Same yield contract and bit-identical matrices as
    ``reference_scan``.
    """
    data = np.asarray(data)
    if validate:
        check_levels(data, levels)
    else:
        num_levels_ok(levels)
    if data.ndim != roi.ndim:
        raise ValueError(f"data ndim {data.ndim} != ROI ndim {roi.ndim}")
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    grid = valid_positions_shape(data.shape, roi)
    npos = int(np.prod(grid))
    dirs = resolve_directions(data.ndim, directions, distance)
    gg = levels * levels
    offs = scan_offsets(data.shape, roi, tuple(dirs))

    # The chunk's pair codes, every direction's array flattened into one
    # buffer so one gather serves the whole direction group.
    codes_cat = np.empty(offs.cat_size, dtype=np.int64)
    for v, seg_start, seg_stop in offs.segments:
        codes, _ = pair_code_array(data, levels, v)
        codes_cat[seg_start:seg_stop] = codes.reshape(-1)

    # No fitting direction (every displacement overflows the ROI): all
    # matrices stay zero.  Otherwise the accumulator is fully written
    # slab by slab, so it can start uninitialized.
    mats = (
        np.zeros((npos, gg), dtype=np.int64)
        if not offs.groups
        else np.empty((npos, gg), dtype=np.int64)
    )
    mrows = mats.reshape(offs.n_rows, offs.row_len, gg)

    # Rows per internal block: the output slab plus, per group, the
    # gathered code block and its bincount segments — sized for cache
    # residency so the slab stays hot from accumulation through
    # symmetrization, and never beyond the workspace budget.
    worst = offs.row_len * gg
    for g in offs.groups:
        worst += g.n_planes * (g.total_face + gg)
    budget = min(WORKSPACE_BYTES, _BLOCK_TARGET_BYTES)
    rows_per_block = max(1, min(offs.n_rows, budget // (8 * worst)))

    # Per-group reusable gather buffers and per-member sliding views over
    # the concatenated code buffer.  Gathering per member segment keeps
    # each gather's source inside one direction's cache-resident slice of
    # ``codes_cat`` — striding the whole buffer per scan row thrashes the
    # cache and measures ~2x slower.
    lead_axes = tuple(range(data.ndim - 1))
    bufs = []
    for g in offs.groups:
        views = []
        for seg_start, cshape, wlead, face in g.members:
            size = 1
            for c in cshape:
                size *= c
            codes = codes_cat[seg_start : seg_start + size].reshape(cshape)
            if data.ndim > 1:
                views.append(
                    (sliding_window_view(codes, wlead, axis=lead_axes), face)
                )
            else:
                views.append((codes, face))
        block_buf = np.empty(
            (rows_per_block, g.n_planes, g.total_face), dtype=np.int64
        )
        bufs.append((g, views, block_buf))

    lead = offs.grid[:-1]
    origins = np.unravel_index(np.arange(offs.n_rows), lead) if lead else None
    # Hot-slab symmetrization scratch: one transposed slab.  ``m += m.T``
    # per matrix through a full (blocked) transpose copy is several times
    # faster than triangle-indexed in-place symmetrization, and with the
    # whole-chunk accumulator the scratch stays bounded by the slab.
    sym_buf = (
        np.empty((rows_per_block * offs.row_len, levels, levels), dtype=np.int64)
        if symmetric
        else None
    )

    out = mats.reshape(npos, levels, levels)
    for r0 in range(0, offs.n_rows, rows_per_block):
        rb = min(rows_per_block, offs.n_rows - r0)
        m = mrows[r0 : r0 + rb]
        idx = (
            tuple(o[r0 : r0 + rb] for o in origins)
            if origins is not None
            else None
        )
        shifts = [
            pair_shift(rb * g.n_planes, gg).reshape(rb, g.n_planes, 1)
            for g, _views, _buf in bufs
        ]
        first = True
        for (g, views, block_buf), shift in zip(bufs, shifts):
            block = block_buf[:rb]
            off = 0
            for vw, face in views:
                src = vw[idx] if idx is not None else vw[np.newaxis]
                # Fused gather + per-(row, plane) bincount-segment shift:
                # one write pass into the block instead of copy-then-add.
                np.add(
                    src.reshape(rb, g.n_planes, face),
                    shift,
                    out=block[:, :, off : off + face],
                )
                off += face
            h = np.bincount(
                block.reshape(-1), minlength=rb * g.n_planes * gg
            ).reshape(rb, g.n_planes, gg)
            # GLCM at row position t is the sum of planes [t, t + W_t).
            for k in range(g.trailing_extent):
                if first:
                    np.copyto(m, h[:, k : k + offs.row_len])
                    first = False
                else:
                    m += h[:, k : k + offs.row_len]
        if symmetric:
            # While the slab is still cache-hot.
            slab = out[r0 * offs.row_len : (r0 + rb) * offs.row_len]
            t = sym_buf[: slab.shape[0]]
            np.copyto(t, slab.transpose(0, 2, 1))
            slab += t
    for start in range(0, npos, batch):
        yield start, out[start : start + batch]


def _gpu_scan(
    data: np.ndarray,
    roi: ROISpec,
    levels: int,
    directions: Optional[Sequence[Direction]] = None,
    distance: int = 1,
    batch: int = 2048,
    symmetric: bool = True,
    validate: bool = True,
) -> Iterator[Tuple[int, np.ndarray]]:
    """Registry shim for the import-guarded GPU backend.

    Deferring the :mod:`repro.core.gpu` import keeps device probing (and
    the optional CuPy/Numba imports behind it) off this module's import
    path.
    """
    from .gpu import gpu_scan

    return gpu_scan(
        data, roi, levels, directions, distance,
        batch=batch, symmetric=symmetric, validate=validate,
    )


_REGISTRY: Dict[str, ScanKernel] = {
    "batched": cooccurrence_scan,
    "gpu": _gpu_scan,
    "incremental": incremental_scan,
    "megabatch": megabatch_scan,
    "reference": reference_scan,
}

#: Names of the selectable scan backends.
KERNELS: Tuple[str, ...] = tuple(sorted(_REGISTRY))

#: One-line description per backend (the ``repro kernels`` listing).
KERNEL_INFO: Dict[str, str] = {
    "batched": "vectorized windowed bincount; O(ROI volume) codes per "
               "ROI per direction",
    "gpu": "CuPy (or Numba-CUDA) pair-code scatter on a CUDA device; "
           "falls back to megabatch without one",
    "incremental": "rolling hyperplane histograms (default); O(ROI face) "
                   "codes per ROI, streams batches as computed",
    "megabatch": "chunk-at-once mega-batch; cached offset tables, "
                 "whole-chunk accumulator, zero-copy batch views",
    "reference": "paper Fig. 2 loop, one window at a time; ground "
                 "truth, slow",
}


def get_kernel(name: str) -> ScanKernel:
    """Resolve a backend name to its scan generator.

    Unknown names raise ``ValueError`` with the closest registered name
    suggested, so a typo'd ``--kernel`` is a one-glance fix.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        import difflib

        close = difflib.get_close_matches(str(name), KERNELS, n=1)
        hint = f"; did you mean {close[0]!r}?" if close else ""
        raise ValueError(
            f"unknown scan kernel {name!r}{hint} (valid kernels: {KERNELS})"
        ) from None


def resolve_scan_kernel(name: str):
    """Resolve a kernel plus its fallback disposition, for the filters.

    Returns ``(scan, fallback)`` where ``fallback`` is ``None`` for a
    kernel that will run as requested, or an attrs dict describing the
    substitution (``requested``/``used``/``reason``) when ``"gpu"`` was
    asked for on a machine without a usable device — the filters emit it
    as a ``kernel.fallback`` obs event so degraded runs are diagnosable
    from the trace alone.
    """
    scan = get_kernel(name)
    if name == "gpu":
        from .gpu import probe_gpu

        probe = probe_gpu()
        if not probe.available:
            return scan, {
                "requested": "gpu",
                "used": "megabatch",
                "reason": probe.detail,
            }
    return scan, None

"""Co-occurrence matrix computation for N-dimensional (incl. 4D) windows.

A grey-level co-occurrence matrix (GLCM) is the joint histogram of grey
levels of pixel pairs separated by a displacement vector (paper Section 3
and Appendix).  Properties reproduced here:

1. Opposite displacements yield the same matrix, so only the canonical
   half-space of directions is enumerated (``repro.core.directions``).
2. Counting both orders of each pair makes the matrix symmetric.
3. The matrix is always ``G x G`` for ``G`` grey levels, independent of
   distance and direction.

Two computation paths are provided:

``cooccurrence_matrix``
    One ROI window -> one dense ``(G, G)`` count matrix.  Simple slicing
    per direction; this is the reference kernel.

``cooccurrence_scan``
    Batched raster scan: all valid ROI positions of a (chunk-sized) array
    at once, using pair-code arrays and ``sliding_window_view`` plus a
    single ``bincount`` per batch — the vectorized equivalent of the
    paper's per-ROI loop, far faster in Python than per-window calls.

A third, incremental (rolling) kernel and the backend-dispatch layer
that selects between all of them live in ``repro.core.backends``.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .directions import Direction, scale_direction, unique_directions
from .quantization import num_levels_ok
from .roi import ROISpec, valid_positions_shape
from .workspace import WORKSPACE_BYTES, pair_shift, symmetrize_inplace

__all__ = [
    "check_levels",
    "cooccurrence_matrix",
    "cooccurrence_scan",
    "pair_code_array",
    "resolve_directions",
]


def resolve_directions(
    ndim: int,
    directions: Optional[Sequence[Direction]] = None,
    distance: int = 1,
) -> list[Direction]:
    """Expand the direction set used for a GLCM.

    ``None`` means all unique directions of the given dimensionality (the
    default used throughout the paper: texture is accumulated over every
    direction at the given distance).
    """
    if directions is None:
        directions = unique_directions(ndim)
    dirs = [scale_direction(v, distance) for v in directions]
    for v in dirs:
        if len(v) != ndim:
            raise ValueError(f"direction {v} has wrong dimensionality (ndim={ndim})")
        if all(c == 0 for c in v):
            raise ValueError("zero displacement is not a valid direction")
    return dirs


def check_levels(data: np.ndarray, levels: int) -> None:
    """Validate that ``data`` is requantized into ``[0, levels)``.

    This is a full min/max pass over the array; callers that scan one
    chunk through many kernel calls should validate the chunk once and
    pass ``validate=False`` to the kernels.
    """
    num_levels_ok(levels)
    if data.size and (data.min() < 0 or data.max() >= levels):
        raise ValueError(
            f"data values must be requantized into [0, {levels - 1}]; "
            f"got range [{data.min()}, {data.max()}]"
        )


_check_levels = check_levels


def cooccurrence_matrix(
    window: np.ndarray,
    levels: int,
    directions: Optional[Sequence[Direction]] = None,
    distance: int = 1,
    symmetric: bool = True,
    validate: bool = True,
) -> np.ndarray:
    """Dense ``(G, G)`` co-occurrence count matrix of one ROI window.

    Counts are accumulated over all supplied directions.  With
    ``symmetric=True`` (the default, matching the paper) each pair is
    counted in both orders.  ``validate=False`` skips the grey-level
    range check (for callers that validated the enclosing array once).
    """
    window = np.asarray(window)
    if validate:
        check_levels(window, levels)
    else:
        num_levels_ok(levels)
    dirs = resolve_directions(window.ndim, directions, distance)
    out = np.zeros((levels, levels), dtype=np.int64)
    for v in dirs:
        lo = tuple(max(0, -c) for c in v)
        hi = tuple(max(0, c) for c in v)
        if any(window.shape[i] <= abs(v[i]) for i in range(window.ndim)):
            continue  # displacement longer than the window in some dim
        a = window[tuple(slice(lo[i], window.shape[i] - hi[i]) for i in range(window.ndim))]
        b = window[tuple(slice(hi[i], window.shape[i] - lo[i]) for i in range(window.ndim))]
        codes = a.reshape(-1).astype(np.int64) * levels + b.reshape(-1)
        out += np.bincount(codes, minlength=levels * levels).reshape(levels, levels)
    if symmetric:
        out = out + out.T
    return out


def pair_code_array(
    data: np.ndarray, levels: int, direction: Direction
) -> Tuple[np.ndarray, Tuple[int, ...]]:
    """Pair-code array ``a*G + b`` for one displacement over a whole array.

    Returns ``(codes, lo)`` where ``codes`` has shape ``data.shape - |v|``
    and ``codes[q]`` encodes the pair at absolute position ``p = q + lo``
    (so the window of ROI origin ``o`` covers codes ``q in [o, o + R - |v|)``).
    """
    v = tuple(int(c) for c in direction)
    lo = tuple(max(0, -c) for c in v)
    hi = tuple(max(0, c) for c in v)
    nd = data.ndim
    a = data[tuple(slice(lo[i], data.shape[i] - hi[i]) for i in range(nd))]
    b = data[tuple(slice(hi[i], data.shape[i] - lo[i]) for i in range(nd))]
    return a.astype(np.int64) * levels + b, lo


def cooccurrence_scan(
    data: np.ndarray,
    roi: ROISpec,
    levels: int,
    directions: Optional[Sequence[Direction]] = None,
    distance: int = 1,
    batch: int = 2048,
    symmetric: bool = True,
    validate: bool = True,
) -> Iterator[Tuple[int, np.ndarray]]:
    """Raster-scan ``data`` with the ROI window, yielding GLCM batches.

    Yields ``(start, matrices)`` pairs where ``matrices`` has shape
    ``(B, G, G)`` and row ``k`` is the co-occurrence matrix of the ROI
    whose origin is the ``start + k``-th position in C (raster) order of
    the valid-position grid (``valid_positions_shape(data.shape, roi)``).

    This is the "batched" backend of ``repro.core.backends``: one
    ``bincount`` per (direction, sub-batch) instead of one per ROI.
    Temporaries are bounded by ``WORKSPACE_BYTES`` — large ``batch``
    values only size the yielded output, not the working set.
    """
    data = np.asarray(data)
    if validate:
        check_levels(data, levels)
    else:
        num_levels_ok(levels)
    if data.ndim != roi.ndim:
        raise ValueError(f"data ndim {data.ndim} != ROI ndim {roi.ndim}")
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    grid = valid_positions_shape(data.shape, roi)
    npos = int(np.prod(grid))
    dirs = resolve_directions(data.ndim, directions, distance)

    # Per direction: sliding windows over the pair-code array.  Window at
    # grid index o corresponds to ROI origin o (same raster order) because
    # codes.shape - (R - |v|) + 1 == data.shape - R + 1 == grid.  The views
    # overlap in memory, so batches are materialized by fancy-indexing only
    # the rows needed (a flat upfront reshape would copy the whole scan).
    win_views = []
    for v in dirs:
        absv = tuple(abs(c) for c in v)
        if any(roi.shape[i] <= absv[i] for i in range(data.ndim)):
            continue  # pairs never fit inside the ROI for this direction
        codes, _ = pair_code_array(data, levels, v)
        wshape = tuple(roi.shape[i] - absv[i] for i in range(data.ndim))
        face = 1
        for c in wshape:
            face *= c
        win_views.append((sliding_window_view(codes, wshape), face))

    gg = levels * levels
    # Sub-batch so the gather block (face codes) and the bincount output
    # (gg-wide histogram segments) stay inside the workspace budget, no
    # matter how large the caller's output batches are.
    max_face = max((face for _view, face in win_views), default=1)
    sub = max(1, min(batch, WORKSPACE_BYTES // (8 * (max_face + gg))))
    for start in range(0, npos, batch):
        stop = min(start + batch, npos)
        b = stop - start
        mats = np.zeros((b, levels, levels), dtype=np.int64)
        flat = mats.reshape(b, gg)
        for s0 in range(start, stop, sub):
            s1 = min(s0 + sub, stop)
            sb = s1 - s0
            idx = np.unravel_index(np.arange(s0, s1), grid)
            shift = pair_shift(sb, gg)
            for view, face in win_views:
                block = view[idx].reshape(sb, face)
                block += shift  # fresh gather: safe to shift in place
                counts = np.bincount(block.reshape(-1), minlength=sb * gg)
                flat[s0 - start : s1 - start] += counts.reshape(sb, gg)
        if symmetric:
            symmetrize_inplace(mats)
        yield start, mats

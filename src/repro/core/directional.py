"""Per-direction Haralick statistics (mean and range over directions).

The default pipeline accumulates one co-occurrence matrix per ROI over
*all* unique directions (rotation-invariant, as in the paper's Fig. 2
pseudo-code).  Haralick's original formulation instead computes each
feature once per direction and reports the **mean and range** over
directions — 28 statistics from the 14 features.  This module provides
that variant for users who need direction-sensitive texture (e.g.
anisotropic structures such as vessels).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .cooccurrence import cooccurrence_matrix, resolve_directions
from .directions import Direction
from .features import PAPER_FEATURES, haralick_features

__all__ = ["directional_features", "directional_statistics", "anisotropy"]


def directional_features(
    window: np.ndarray,
    levels: int,
    features: Optional[Sequence[str]] = None,
    directions: Optional[Sequence[Direction]] = None,
    distance: int = 1,
) -> Dict[str, np.ndarray]:
    """Feature values per direction for one ROI window.

    Returns ``{name: array of shape (n_directions,)}`` in the order of
    the resolved direction list.  Directions whose displacement does not
    fit in the window yield a zero matrix and hence zero features.
    """
    window = np.asarray(window)
    wanted = tuple(features) if features is not None else PAPER_FEATURES
    dirs = resolve_directions(window.ndim, directions, 1)  # unit forms
    mats = np.stack(
        [
            cooccurrence_matrix(window, levels, directions=[v], distance=distance)
            for v in dirs
        ]
    )
    vals = haralick_features(mats, wanted)
    return {name: vals[name] for name in wanted}


def directional_statistics(
    window: np.ndarray,
    levels: int,
    features: Optional[Sequence[str]] = None,
    directions: Optional[Sequence[Direction]] = None,
    distance: int = 1,
) -> Dict[str, Tuple[float, float]]:
    """Haralick's classic per-feature ``(mean, range)`` over directions."""
    per_dir = directional_features(window, levels, features, directions, distance)
    return {
        name: (float(v.mean()), float(v.max() - v.min()))
        for name, v in per_dir.items()
    }


def anisotropy(
    window: np.ndarray,
    levels: int,
    feature: str = "contrast",
    directions: Optional[Sequence[Direction]] = None,
    distance: int = 1,
) -> float:
    """Directional anisotropy of one feature: range / (|mean| + eps).

    0 for perfectly isotropic texture; grows with oriented structure.
    """
    stats = directional_statistics(window, levels, [feature], directions, distance)
    mean, rng = stats[feature]
    return rng / (abs(mean) + 1e-12)

"""Displacement (direction) vectors for N-dimensional co-occurrence.

The co-occurrence matrix counts pixel pairs separated by a displacement
``d * v`` where ``d`` is a distance and ``v`` a unit direction.  In 2D there
are 8 neighbour directions of which only 4 are unique because ``v`` and
``-v`` yield the same (symmetric) matrix — paper Section 3 and Appendix
Fig. 12.  In 4D there are ``3**4 - 1 = 80`` neighbour offsets, of which 40
are unique.

Directions are represented as integer offset tuples, e.g. ``(1, 0, 0, 0)``
or ``(1, -1, 0, 1)``.  The *canonical half-space* representative of
``{v, -v}`` is the one whose first non-zero component is positive.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Sequence, Tuple

import numpy as np

__all__ = [
    "all_directions",
    "unique_directions",
    "canonical_direction",
    "is_canonical",
    "scale_direction",
    "direction_count",
]

Direction = Tuple[int, ...]


def all_directions(ndim: int) -> list[Direction]:
    """All ``3**ndim - 1`` unit-neighbourhood offsets (excluding zero)."""
    if ndim < 1:
        raise ValueError(f"ndim must be >= 1, got {ndim}")
    return [v for v in product((-1, 0, 1), repeat=ndim) if any(c != 0 for c in v)]


def canonical_direction(v: Sequence[int]) -> Direction:
    """Return the canonical representative of ``{v, -v}``.

    The canonical form has a positive first non-zero component, matching
    the paper's observation that opposite angles yield identical
    co-occurrence matrices.
    """
    v = tuple(int(c) for c in v)
    if all(c == 0 for c in v):
        raise ValueError("zero displacement has no direction")
    for c in v:
        if c > 0:
            return v
        if c < 0:
            return tuple(-x for x in v)
    raise AssertionError("unreachable")


def is_canonical(v: Sequence[int]) -> bool:
    """True when ``v`` is the canonical representative of ``{v, -v}``."""
    return tuple(int(c) for c in v) == canonical_direction(v)


def unique_directions(ndim: int) -> list[Direction]:
    """The ``(3**ndim - 1) / 2`` unique directions (half-space canonical).

    2D -> 4 directions, 3D -> 13, 4D -> 40.
    """
    return sorted({canonical_direction(v) for v in all_directions(ndim)})


def direction_count(ndim: int) -> int:
    """Number of unique directions in ``ndim`` dimensions."""
    return (3**ndim - 1) // 2


def scale_direction(v: Sequence[int], distance: int) -> Direction:
    """Scale a unit direction by an integer distance."""
    if distance < 1:
        raise ValueError(f"distance must be >= 1, got {distance}")
    return tuple(int(c) * distance for c in v)


def as_offset_array(directions: Iterable[Sequence[int]]) -> np.ndarray:
    """Stack direction tuples into an ``(n, ndim)`` int array."""
    arr = np.asarray(list(directions), dtype=np.int64)
    if arr.ndim != 2:
        raise ValueError("directions must be a sequence of equal-length tuples")
    return arr

"""The fourteen Haralick textural features (Haralick et al., 1973).

All features operate on the normalized co-occurrence probability matrix
``p(i, j) = counts(i, j) / counts.sum()``.  The implementation is fully
vectorized over batches: input of shape ``(..., G, G)`` produces one value
of shape ``(...,)`` per feature.

Feature names (paper numbering f1..f14):

==== ======================= =====================================
 f1  ``asm``                 angular second moment (energy)
 f2  ``contrast``            contrast
 f3  ``correlation``         correlation
 f4  ``sum_of_squares``      sum of squares: variance
 f5  ``idm``                 inverse difference moment (homogeneity)
 f6  ``sum_average``         sum average
 f7  ``sum_variance``        sum variance
 f8  ``sum_entropy``         sum entropy
 f9  ``entropy``             entropy
 f10 ``difference_variance`` difference variance
 f11 ``difference_entropy``  difference entropy
 f12 ``imc1``                information measure of correlation 1
 f13 ``imc2``                information measure of correlation 2
 f14 ``mcc``                 maximal correlation coefficient
==== ======================= =====================================

The paper's experiments compute the four most expensive of these: ASM,
Correlation, Sum of Squares and Inverse Difference Moment (Section 5.1),
exported as ``PAPER_FEATURES``.

Conventions: entropies use the natural logarithm with ``0 log 0 = 0``;
degenerate statistics (zero variance, empty matrix) yield 0.0.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "HARALICK_FEATURES",
    "PAPER_FEATURES",
    "haralick_features",
    "haralick_feature_vector",
    "feature_index",
]

HARALICK_FEATURES: Tuple[str, ...] = (
    "asm",
    "contrast",
    "correlation",
    "sum_of_squares",
    "idm",
    "sum_average",
    "sum_variance",
    "sum_entropy",
    "entropy",
    "difference_variance",
    "difference_entropy",
    "imc1",
    "imc2",
    "mcc",
)

#: The four parameters used in the paper's evaluation (Section 5.1).
PAPER_FEATURES: Tuple[str, ...] = ("asm", "correlation", "sum_of_squares", "idm")


def feature_index(name: str) -> int:
    """Position of a feature name in ``HARALICK_FEATURES`` (f``i+1``)."""
    try:
        return HARALICK_FEATURES.index(name)
    except ValueError:
        raise KeyError(
            f"unknown Haralick feature {name!r}; valid: {HARALICK_FEATURES}"
        ) from None


def _xlogx(x: np.ndarray) -> np.ndarray:
    """``x * ln(x)`` with the ``0 ln 0 = 0`` convention."""
    out = np.zeros_like(x)
    nz = x > 0
    out[nz] = x[nz] * np.log(x[nz])
    return out


def _sum_diff_operators(levels: int) -> Tuple[np.ndarray, np.ndarray]:
    """One-hot scatter operators mapping ``p.reshape(-1)`` onto the
    ``p_{x+y}`` (length ``2G-1``) and ``p_{x-y}`` (length ``G``) marginals.
    """
    i, j = np.meshgrid(np.arange(levels), np.arange(levels), indexing="ij")
    s = (i + j).reshape(-1)
    d = np.abs(i - j).reshape(-1)
    S = np.zeros((levels * levels, 2 * levels - 1))
    S[np.arange(s.size), s] = 1.0
    D = np.zeros((levels * levels, levels))
    D[np.arange(d.size), d] = 1.0
    return S, D


_OP_CACHE: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}


def _ops(levels: int) -> Tuple[np.ndarray, np.ndarray]:
    if levels not in _OP_CACHE:
        _OP_CACHE[levels] = _sum_diff_operators(levels)
    return _OP_CACHE[levels]


def _mcc(p: np.ndarray, px: np.ndarray, py: np.ndarray) -> float:
    """Maximal correlation coefficient of a single probability matrix.

    sqrt of the second-largest eigenvalue magnitude of
    ``Q(i, j) = sum_k p(i, k) p(j, k) / (px(i) py(k))``, computed on the
    submatrix of levels with non-zero marginals.
    """
    keep = (px > 0) & (py > 0)
    if keep.sum() < 2:
        return 0.0
    psub = p[np.ix_(keep, keep)]
    pxs = px[keep]
    pys = py[keep]
    a = psub / pxs[:, None]
    b = psub / pys[None, :]
    q = a @ b.T
    eig = np.abs(np.linalg.eigvals(q))
    eig.sort()
    second = eig[-2]
    return float(np.sqrt(max(0.0, min(second, 1.0))))


def haralick_features(
    matrices: np.ndarray,
    features: Optional[Sequence[str]] = None,
) -> Dict[str, np.ndarray]:
    """Compute Haralick features of a batch of co-occurrence matrices.

    Parameters
    ----------
    matrices:
        Count (or probability) matrices of shape ``(..., G, G)``.
    features:
        Feature names to compute; defaults to all fourteen.  Computing a
        subset skips unrelated work (e.g. the eigendecompositions behind
        ``mcc``).

    Returns
    -------
    dict mapping feature name -> array of shape ``matrices.shape[:-2]``.
    """
    wanted = tuple(features) if features is not None else HARALICK_FEATURES
    for name in wanted:
        feature_index(name)  # validates

    matrices = np.asarray(matrices, dtype=np.float64)
    if matrices.ndim < 2 or matrices.shape[-1] != matrices.shape[-2]:
        raise ValueError(f"expected (..., G, G) matrices, got {matrices.shape}")
    levels = matrices.shape[-1]
    lead = matrices.shape[:-2]
    flat = matrices.reshape(-1, levels, levels)
    nmat = flat.shape[0]

    totals = flat.sum(axis=(1, 2))
    safe_tot = np.where(totals > 0, totals, 1.0)
    p = flat / safe_tot[:, None, None]

    lev = np.arange(levels, dtype=np.float64)
    px = p.sum(axis=2)  # (..., G) marginal over columns
    py = p.sum(axis=1)
    mu_x = px @ lev
    mu_y = py @ lev
    var_x = px @ (lev**2) - mu_x**2
    var_y = py @ (lev**2) - mu_y**2

    need = set(wanted)
    out: Dict[str, np.ndarray] = {}

    if {"contrast", "sum_average", "sum_variance", "sum_entropy",
        "difference_variance", "difference_entropy"} & need:
        S, D = _ops(levels)
        p2 = p.reshape(nmat, -1)
        p_sum = p2 @ S  # (B, 2G-1)
        p_diff = p2 @ D  # (B, G)
        ks = np.arange(2 * levels - 1, dtype=np.float64)
        kd = np.arange(levels, dtype=np.float64)

    if "asm" in need:
        out["asm"] = (p**2).sum(axis=(1, 2))
    if "contrast" in need:
        out["contrast"] = p_diff @ (kd**2)
    if "correlation" in need:
        ij = np.outer(lev, lev)
        num = (p * ij).sum(axis=(1, 2)) - mu_x * mu_y
        denom = np.sqrt(np.clip(var_x, 0, None) * np.clip(var_y, 0, None))
        out["correlation"] = np.where(denom > 0, num / np.where(denom > 0, denom, 1), 0.0)
    if "sum_of_squares" in need:
        # Variance about the mean of the x-marginal (Haralick f4).
        d2 = (lev[None, :, None] - mu_x[:, None, None]) ** 2
        out["sum_of_squares"] = (p * d2).sum(axis=(1, 2))
    if "idm" in need:
        i, j = np.meshgrid(lev, lev, indexing="ij")
        w = 1.0 / (1.0 + (i - j) ** 2)
        out["idm"] = (p * w[None]).sum(axis=(1, 2))
    if "sum_average" in need or "sum_variance" in need:
        f6 = p_sum @ ks
        if "sum_average" in need:
            out["sum_average"] = f6
    if "sum_variance" in need:
        out["sum_variance"] = (p_sum * (ks[None, :] - f6[:, None]) ** 2).sum(axis=1)
    if "sum_entropy" in need:
        out["sum_entropy"] = -_xlogx(p_sum).sum(axis=1)
    if "entropy" in need or "imc1" in need or "imc2" in need:
        hxy = -_xlogx(p).sum(axis=(1, 2))
        if "entropy" in need:
            out["entropy"] = hxy
    if "difference_variance" in need:
        mean_d = p_diff @ kd
        out["difference_variance"] = (
            p_diff * (kd[None, :] - mean_d[:, None]) ** 2
        ).sum(axis=1)
    if "difference_entropy" in need:
        out["difference_entropy"] = -_xlogx(p_diff).sum(axis=1)
    if "imc1" in need or "imc2" in need:
        # Joint of the independent marginals, with 0 log 0 handling.
        pxy = px[:, :, None] * py[:, None, :]
        log_pxy = np.zeros_like(pxy)
        nz = pxy > 0
        log_pxy[nz] = np.log(pxy[nz])
        hxy1 = -(p * log_pxy).sum(axis=(1, 2))
        hxy2 = -_xlogx(pxy).sum(axis=(1, 2))
        hx = -_xlogx(px).sum(axis=1)
        hy = -_xlogx(py).sum(axis=1)
        if "imc1" in need:
            hmax = np.maximum(hx, hy)
            out["imc1"] = np.where(hmax > 0, (hxy - hxy1) / np.where(hmax > 0, hmax, 1), 0.0)
        if "imc2" in need:
            out["imc2"] = np.sqrt(np.clip(1.0 - np.exp(-2.0 * (hxy2 - hxy)), 0.0, 1.0))
    if "mcc" in need:
        out["mcc"] = np.array(
            [_mcc(p[k], px[k], py[k]) for k in range(nmat)], dtype=np.float64
        )

    empty = totals == 0
    result = {}
    for name in wanted:
        vals = np.where(empty, 0.0, out[name])
        result[name] = vals.reshape(lead)
    return result


def haralick_feature_vector(
    matrices: np.ndarray, features: Optional[Sequence[str]] = None
) -> np.ndarray:
    """Features stacked as an array of shape ``(..., n_features)``.

    Column order follows the ``features`` argument (default: all fourteen
    in ``HARALICK_FEATURES`` order).
    """
    wanted = tuple(features) if features is not None else HARALICK_FEATURES
    vals = haralick_features(matrices, wanted)
    return np.stack([vals[name] for name in wanted], axis=-1)

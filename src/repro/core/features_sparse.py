"""Haralick features computed from sparse / non-zero entries only.

Paper Section 4.4.1 describes two optimizations over the naive full-matrix
feature computation:

* **zero-skip**: on the full (dense) representation, test each entry for
  zero before adding it to the running sums — this alone processed a
  typical MRI dataset in one-fourth the time;
* **sparse form**: store only non-zero, non-duplicated entries, compute
  parameters directly from the triplets (no conversion back to a dense
  array), and ship the smaller representation over the network between
  the HCC and HPC filters.

Both reduce the work to the non-zero entries; the NumPy equivalents here
are ``features_nonzero`` (gathers non-zero entries of a dense matrix, then
computes from the gathered triplets) and ``features_from_sparse`` (computes
directly from a :class:`~repro.core.sparse.SparseCooc`).

Results match :func:`repro.core.features.haralick_features` to floating-
point accuracy; the ``mcc`` feature falls back to a dense submatrix since
it requires an eigendecomposition.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .features import (
    HARALICK_FEATURES,
    PAPER_FEATURES,
    feature_index,
    haralick_features,
)
from .sparse import SparseCooc

__all__ = [
    "batch_features_from_sparse",
    "features_from_entries",
    "features_from_sparse",
    "features_nonzero",
]


def _entropy_terms(w: np.ndarray) -> np.ndarray:
    out = np.zeros_like(w)
    nz = w > 0
    out[nz] = w[nz] * np.log(w[nz])
    return out


def _mcc_from_entries(
    i: np.ndarray, j: np.ndarray, w: np.ndarray, levels: int
) -> float:
    """Dense-submatrix fallback for the maximal correlation coefficient."""
    from .features import _mcc  # shared implementation

    p = np.zeros((levels, levels))
    np.add.at(p, (i, j), w)
    px = p.sum(axis=1)
    py = p.sum(axis=0)
    return _mcc(p, px, py)


def features_from_entries(
    i: np.ndarray,
    j: np.ndarray,
    weights: np.ndarray,
    levels: int,
    features: Optional[Sequence[str]] = None,
) -> Dict[str, float]:
    """Haralick features from an explicit entry list of one matrix.

    ``weights`` are probabilities or raw counts at cells ``(i[k], j[k])``
    (normalized internally); duplicate cells are allowed and accumulate.
    """
    wanted = tuple(features) if features is not None else HARALICK_FEATURES
    for name in wanted:
        feature_index(name)

    i = np.asarray(i, dtype=np.int64)
    j = np.asarray(j, dtype=np.int64)
    w = np.asarray(weights, dtype=np.float64)
    if not (i.shape == j.shape == w.shape) or i.ndim != 1:
        raise ValueError("i, j, weights must be 1-D arrays of equal length")
    total = w.sum()
    if total <= 0:
        return {name: 0.0 for name in wanted}
    w = w / total

    fi = i.astype(np.float64)
    fj = j.astype(np.float64)
    px = np.bincount(i, weights=w, minlength=levels)
    py = np.bincount(j, weights=w, minlength=levels)
    lev = np.arange(levels, dtype=np.float64)
    mu_x = float(px @ lev)
    mu_y = float(py @ lev)
    var_x = float(px @ (lev**2)) - mu_x**2
    var_y = float(py @ (lev**2)) - mu_y**2

    need = set(wanted)
    out: Dict[str, float] = {}

    if {"contrast", "sum_average", "sum_variance", "sum_entropy",
        "difference_variance", "difference_entropy"} & need:
        p_sum = np.bincount(i + j, weights=w, minlength=2 * levels - 1)
        p_diff = np.bincount(np.abs(i - j), weights=w, minlength=levels)
        ks = np.arange(2 * levels - 1, dtype=np.float64)
        kd = lev

    if "asm" in need:
        # ASM needs the *cell* probabilities squared; merge duplicates first.
        cell = np.bincount(i * levels + j, weights=w, minlength=levels * levels)
        out["asm"] = float((cell**2).sum())
    if "contrast" in need:
        out["contrast"] = float(p_diff @ (kd**2))
    if "correlation" in need:
        num = float((w * fi * fj).sum()) - mu_x * mu_y
        denom = np.sqrt(max(var_x, 0.0) * max(var_y, 0.0))
        out["correlation"] = num / denom if denom > 0 else 0.0
    if "sum_of_squares" in need:
        out["sum_of_squares"] = float((w * (fi - mu_x) ** 2).sum())
    if "idm" in need:
        out["idm"] = float((w / (1.0 + (fi - fj) ** 2)).sum())
    if "sum_average" in need or "sum_variance" in need:
        f6 = float(p_sum @ ks)
        if "sum_average" in need:
            out["sum_average"] = f6
    if "sum_variance" in need:
        out["sum_variance"] = float((p_sum * (ks - f6) ** 2).sum())
    if "sum_entropy" in need:
        out["sum_entropy"] = float(-_entropy_terms(p_sum).sum())
    if "entropy" in need or "imc1" in need or "imc2" in need:
        cell = np.bincount(i * levels + j, weights=w, minlength=levels * levels)
        hxy = float(-_entropy_terms(cell).sum())
        if "entropy" in need:
            out["entropy"] = hxy
    if "difference_variance" in need:
        mean_d = float(p_diff @ kd)
        out["difference_variance"] = float((p_diff * (kd - mean_d) ** 2).sum())
    if "difference_entropy" in need:
        out["difference_entropy"] = float(-_entropy_terms(p_diff).sum())
    if "imc1" in need or "imc2" in need:
        pxy = np.outer(px, py)
        hxy1_terms = np.zeros_like(pxy)
        nz = pxy > 0
        cellm = np.bincount(i * levels + j, weights=w, minlength=levels * levels)
        cellm = cellm.reshape(levels, levels)
        hxy1_terms[nz] = cellm[nz] * np.log(pxy[nz])
        hxy1 = float(-hxy1_terms.sum())
        hxy2 = float(-_entropy_terms(pxy).sum())
        hx = float(-_entropy_terms(px).sum())
        hy = float(-_entropy_terms(py).sum())
        if "imc1" in need:
            hmax = max(hx, hy)
            out["imc1"] = (hxy - hxy1) / hmax if hmax > 0 else 0.0
        if "imc2" in need:
            out["imc2"] = float(
                np.sqrt(np.clip(1.0 - np.exp(-2.0 * (hxy2 - hxy)), 0.0, 1.0))
            )
    if "mcc" in need:
        out["mcc"] = _mcc_from_entries(i, j, w, levels)

    return {name: out[name] for name in wanted}


def _expand_sparse(sp: SparseCooc) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand upper-triangle triplets into symmetric entry lists."""
    diag = sp.rows == sp.cols
    off = ~diag
    half = sp.counts[off] / 2.0
    i = np.concatenate([sp.rows[diag], sp.rows[off], sp.cols[off]])
    j = np.concatenate([sp.cols[diag], sp.cols[off], sp.rows[off]])
    w = np.concatenate([sp.counts[diag].astype(np.float64), half, half])
    return i, j, w


def features_from_sparse(
    sp: SparseCooc, features: Optional[Sequence[str]] = None
) -> Dict[str, float]:
    """Haralick features directly from a sparse co-occurrence matrix.

    No dense ``(G, G)`` array is materialized (except for ``mcc``),
    matching the paper's "processed directly from the sparse form"
    optimization.  Default feature set: the paper's four parameters.
    """
    wanted = tuple(features) if features is not None else PAPER_FEATURES
    i, j, w = _expand_sparse(sp)
    return features_from_entries(i, j, w, sp.levels, wanted)


def batch_features_from_sparse(
    mats: Sequence[SparseCooc],
    features: Optional[Sequence[str]] = None,
    block_bytes: int = 64 << 20,
) -> Dict[str, np.ndarray]:
    """Haralick features for a whole packet of sparse matrices at once.

    The per-matrix :func:`features_from_sparse` loop dominated the HPC
    filter's time on sparse packets: each call re-derives marginals and
    feature sums for a single ~10-entry matrix in Python.  This batched
    form densifies the packet in blocks — one vectorized ``bincount``
    scatter builds a ``(B, G, G)`` stack, then the existing vectorized
    batch kernel (:func:`~repro.core.features.haralick_features`)
    computes every matrix's parameters together.  ``block_bytes`` caps
    the transient dense stack so arbitrarily large packets stay within a
    fixed memory budget.

    Returns ``{name: (len(mats),) float array}``, matching the dense
    path's output shape; zero-total matrices yield 0.0 everywhere, like
    :func:`features_from_entries`.
    """
    wanted = tuple(features) if features is not None else PAPER_FEATURES
    for name in wanted:
        feature_index(name)
    mats = list(mats)
    n = len(mats)
    out = {name: np.empty(n) for name in wanted}
    if n == 0:
        return out
    levels = mats[0].levels
    for sp in mats:
        if sp.levels != levels:
            raise ValueError(
                f"mixed grey-level counts in one batch: {sp.levels} != {levels}"
            )
    cells = levels * levels
    block = max(1, int(block_bytes) // (cells * 8))
    for lo in range(0, n, block):
        chunk = mats[lo : lo + block]
        idx_parts = []
        w_parts = []
        for k, sp in enumerate(chunk):
            base = k * cells
            # Scatter half the symmetric-total count at (r, c) and at
            # (c, r): off-diagonal mirrors each get counts/2, diagonal
            # halves land on the same cell and re-sum to the full count
            # — exactly ``SparseCooc.to_dense`` without the loop.
            half = sp.counts * 0.5
            idx_parts.append(base + sp.rows * levels + sp.cols)
            idx_parts.append(base + sp.cols * levels + sp.rows)
            w_parts.append(half)
            w_parts.append(half)
        dense = np.bincount(
            np.concatenate(idx_parts),
            weights=np.concatenate(w_parts),
            minlength=len(chunk) * cells,
        ).reshape(len(chunk), levels, levels)
        vals = haralick_features(dense, wanted)
        for name in wanted:
            out[name][lo : lo + len(chunk)] = vals[name]
    return out


def features_nonzero(
    matrix: np.ndarray, features: Optional[Sequence[str]] = None
) -> Dict[str, float]:
    """Zero-skip feature computation on a dense matrix.

    Gathers the non-zero entries first and runs all sums over them only —
    the NumPy analog of the paper's "check each entry for zero before
    adding" optimization that yielded a 4x speedup on sparse MRI data.
    """
    wanted = tuple(features) if features is not None else PAPER_FEATURES
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {matrix.shape}")
    i, j = np.nonzero(matrix)
    return features_from_entries(i, j, matrix[i, j], matrix.shape[0], wanted)

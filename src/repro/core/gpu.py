"""Import-guarded GPU GLCM scan backend (CuPy, with a Numba-CUDA fallback).

The CUDA GLCM formulation (Hong, Zheng & Pan, arXiv:1710.06189) maps the
co-occurrence scan onto massively parallel histogramming: encode every
grey-level pair as a scalar *pair code* ``a*G + b``, then scatter the
codes of each window into that window's ``G x G`` histogram with atomic
adds.  This module implements exactly that, reusing the host-side
geometry of the mega-batched kernel:

* the pair codes of the whole chunk are built once (one concatenated
  array over all directions),
* the cached flat-index offset tables of
  :func:`repro.core.workspace.scan_offsets` say which codes belong to
  which window,
* the device accumulates all windows' GLCMs in one
  ``(n_windows, G*G)`` buffer — via ``cupy.bincount`` over disjoint
  per-plane segments (which lowers to the same atomic-histogram kernel)
  on the CuPy path, or an explicit ``cuda.atomic.add`` scatter kernel on
  the Numba path.

Exactly one chunk is transferred to the device per scan and one GLCM
block back, so PCIe traffic is two bulk copies per chunk.

Nothing here imports CuPy or Numba at module import time.  The first
call to :func:`probe_gpu` attempts the imports and caches the outcome;
:func:`gpu_scan` falls back to the CPU ``megabatch`` kernel — emitting a
:class:`GpuUnavailableWarning` (and the filters a ``kernel.fallback``
obs event) — whenever no usable device is found, so ``--kernel gpu`` is
always safe to request.  ``repro kernels`` prints the probe outcome,
including the import or driver error, to make failures diagnosable.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from .cooccurrence import check_levels, pair_code_array, resolve_directions
from .directions import Direction
from .quantization import num_levels_ok
from .roi import ROISpec, valid_positions_shape
from .workspace import WORKSPACE_BYTES, scan_offsets, symmetrize_inplace

__all__ = [
    "GpuProbe",
    "GpuUnavailableWarning",
    "gpu_fallback_count",
    "gpu_scan",
    "probe_gpu",
]


class GpuUnavailableWarning(UserWarning):
    """``--kernel gpu`` requested but no usable CUDA device was found."""


@dataclass(frozen=True)
class GpuProbe:
    """Outcome of one GPU availability probe.

    ``detail`` carries the human-readable evidence either way: provider
    and library versions when a device is usable, or the accumulated
    import/driver errors when not — ``repro kernels`` prints it
    verbatim so a failing ``--kernel gpu`` is diagnosable.
    """

    available: bool
    provider: Optional[str]  # "cupy" | "numba" | None
    device: Optional[str]
    detail: str


_probe_cache: Optional[GpuProbe] = None
_fallbacks = 0


def _decode(name) -> str:
    return name.decode() if isinstance(name, bytes) else str(name)


def _run_probe() -> GpuProbe:
    errors = []
    try:
        import cupy as cp  # type: ignore

        try:
            count = int(cp.cuda.runtime.getDeviceCount())
            if count > 0:
                props = cp.cuda.runtime.getDeviceProperties(0)
                name = _decode(props.get("name", "CUDA device"))
                return GpuProbe(
                    available=True,
                    provider="cupy",
                    device=name,
                    detail=f"cupy {cp.__version__}, {count} device(s)",
                )
            errors.append(f"cupy {cp.__version__}: no CUDA devices")
        except Exception as exc:  # driver/runtime errors, not import
            errors.append(f"cupy {cp.__version__}: {exc}")
    except Exception as exc:
        errors.append(f"cupy: {exc}")
    try:
        import numba  # type: ignore
        from numba import cuda  # type: ignore

        try:
            if cuda.is_available():
                name = _decode(cuda.get_current_device().name)
                return GpuProbe(
                    available=True,
                    provider="numba",
                    device=name,
                    detail=f"numba {numba.__version__}",
                )
            errors.append(f"numba {numba.__version__}: CUDA not available")
        except Exception as exc:
            errors.append(f"numba {numba.__version__}: {exc}")
    except Exception as exc:
        errors.append(f"numba: {exc}")
    return GpuProbe(
        available=False, provider=None, device=None, detail="; ".join(errors)
    )


def probe_gpu(refresh: bool = False) -> GpuProbe:
    """Probe (once, cached) for a usable CUDA device.

    Tries CuPy first, then Numba-CUDA.  ``refresh=True`` re-runs the
    probe — useful after installing a driver in a live session.
    """
    global _probe_cache
    if _probe_cache is None or refresh:
        _probe_cache = _run_probe()
    return _probe_cache


def gpu_fallback_count() -> int:
    """How many ``gpu`` scans fell back to ``megabatch`` this process."""
    return _fallbacks


def gpu_scan(
    data: np.ndarray,
    roi: ROISpec,
    levels: int,
    directions: Optional[Sequence[Direction]] = None,
    distance: int = 1,
    batch: int = 2048,
    symmetric: bool = True,
    validate: bool = True,
) -> Iterator[Tuple[int, np.ndarray]]:
    """GPU pair-code-scatter scan; clean ``megabatch`` fallback.

    Same yield contract and bit-identical matrices as the CPU backends
    (integer count arithmetic on both sides — there is nothing to
    round).
    """
    probe = probe_gpu()
    if not probe.available:
        global _fallbacks
        _fallbacks += 1
        warnings.warn(
            f"scan kernel 'gpu' unavailable ({probe.detail}); "
            "falling back to 'megabatch'",
            GpuUnavailableWarning,
            stacklevel=3,
        )
        from .backends import megabatch_scan

        yield from megabatch_scan(
            data, roi, levels, directions, distance,
            batch=batch, symmetric=symmetric, validate=validate,
        )
        return
    mats = _device_glcms(
        np.asarray(data), roi, levels, directions, distance,
        validate=validate, provider=probe.provider,
    )
    if symmetric:
        symmetrize_inplace(mats)
    npos = mats.shape[0]
    for start in range(0, npos, batch):
        yield start, mats[start : start + batch]


def _host_geometry(data, roi, levels, directions, distance, validate):
    """Shared host-side prep: validation, offsets, concatenated codes."""
    if validate:
        check_levels(data, levels)
    else:
        num_levels_ok(levels)
    if data.ndim != roi.ndim:
        raise ValueError(f"data ndim {data.ndim} != ROI ndim {roi.ndim}")
    grid = valid_positions_shape(data.shape, roi)
    npos = int(np.prod(grid))
    dirs = resolve_directions(data.ndim, directions, distance)
    offs = scan_offsets(data.shape, roi, tuple(dirs), with_tables=True)
    codes_cat = np.empty(offs.cat_size, dtype=np.int64)
    for v, seg_start, seg_stop in offs.segments:
        codes, _ = pair_code_array(data, levels, v)
        codes_cat[seg_start:seg_stop] = codes.reshape(-1)
    return npos, offs, codes_cat


def _device_glcms(
    data, roi, levels, directions, distance, validate, provider
) -> np.ndarray:
    """All windows' GLCMs of one chunk, computed on the device.

    Returns the dense ``(n_windows, G, G)`` int64 block (unsymmetrized);
    exactly one host-to-device chunk upload and one device-to-host block
    download.
    """
    npos, offs, codes_cat = _host_geometry(
        data, roi, levels, directions, distance, validate
    )
    gg = levels * levels
    if offs.cat_size == 0 or not offs.groups:
        # No direction fits the window: all-zero matrices, no transfer.
        return np.zeros((npos, levels, levels), dtype=np.int64)
    if provider == "cupy":
        flat = _cupy_glcms(offs, codes_cat, npos, gg)
    else:
        flat = _numba_glcms(offs, codes_cat, npos, gg)
    return flat.reshape(npos, levels, levels)


def _cupy_glcms(offs, codes_cat, npos, gg) -> np.ndarray:
    """CuPy path: segmented device bincounts over the gather tables.

    ``cupy.bincount`` over disjoint per-(row, plane) segments is the
    library spelling of the paper's atomic-histogram kernel: every code
    becomes one global-memory ``atomicAdd`` into its segment.
    """
    import cupy as cp

    d_codes = cp.asarray(codes_cat)  # the one chunk upload
    d_mats = cp.zeros((npos, gg), dtype=cp.int64)
    d_rows = d_mats.reshape(offs.n_rows, offs.row_len, gg)
    # Device memory is the constraint here, not cache: size row blocks
    # so the index + gather + histogram working set stays well under the
    # free-memory headroom while keeping the grid saturated.
    budget = 8 * WORKSPACE_BYTES
    for g in offs.groups:
        d_table = cp.asarray(g.table)
        per_row = 8 * g.n_planes * (2 * g.total_face + gg)
        rows_per_block = max(1, min(offs.n_rows, budget // max(per_row, 1)))
        j = cp.arange(g.n_planes, dtype=d_table.dtype)[None, :, None]
        for r0 in range(0, offs.n_rows, rows_per_block):
            rb = min(rows_per_block, offs.n_rows - r0)
            idx = d_table[r0 : r0 + rb, None, :] + j
            block = d_codes[idx]
            seg = cp.arange(rb * g.n_planes, dtype=cp.int64) * gg
            block += seg.reshape(rb, g.n_planes, 1)
            h = cp.bincount(
                block.reshape(-1), minlength=rb * g.n_planes * gg
            ).reshape(rb, g.n_planes, gg)
            m = d_rows[r0 : r0 + rb]
            for k in range(g.trailing_extent):
                m += h[:, k : k + offs.row_len]
    return cp.asnumpy(d_mats)  # the one block download


def _numba_glcms(offs, codes_cat, npos, gg) -> np.ndarray:
    """Numba-CUDA path: explicit atomic-add scatter per the CUDA paper.

    One thread per (window, plane, face) element: read the pair code
    through the offset table, ``cuda.atomic.add`` it into the window's
    histogram row.  No segmenting tricks needed — the atomics *are* the
    histogram.
    """
    from numba import cuda

    kernel = _numba_kernel()
    d_codes = cuda.to_device(codes_cat)  # the one chunk upload
    d_mats = cuda.to_device(np.zeros((npos, gg), dtype=np.int64))
    for g in offs.groups:
        d_table = cuda.to_device(np.ascontiguousarray(g.table, dtype=np.int64))
        n_threads = offs.n_rows * offs.row_len * g.trailing_extent * g.total_face
        if n_threads == 0:
            continue
        block = 256
        kernel[(n_threads + block - 1) // block, block](
            d_codes, d_table, offs.row_len, g.trailing_extent,
            g.total_face, d_mats,
        )
    return d_mats.copy_to_host()  # the one block download


_numba_kernel_cache = None


def _numba_kernel():
    global _numba_kernel_cache
    if _numba_kernel_cache is None:
        from numba import cuda

        @cuda.jit
        def scatter(codes, table, row_len, wt, total_face, mats):
            i = cuda.grid(1)
            per_win = wt * total_face
            n_win = table.shape[0] * row_len
            if i >= n_win * per_win:
                return
            w = i // per_win
            rem = i - w * per_win
            j = rem // total_face
            f = rem - j * total_face
            r = w // row_len
            t = w - r * row_len
            code = codes[table[r, f] + t + j]
            cuda.atomic.add(mats, (w, code), 1)

        _numba_kernel_cache = scatter
    return _numba_kernel_cache

"""Masked analysis: restrict attention to a spatial region of interest.

Clinical studies rarely analyze a whole field of view — a breast mask, a
prostate contour.  These helpers map a voxel-level 3D mask onto the ROI
output grid (a position is *in* when its ROI center voxel is masked) and
extract masked feature samples for downstream statistics or CAD
training.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from .roi import ROISpec, valid_positions_shape

__all__ = ["mask_to_positions", "masked_feature_samples", "mask_statistics"]


def mask_to_positions(
    mask: np.ndarray, dataset_shape: Tuple[int, ...], roi: ROISpec
) -> np.ndarray:
    """Map a 3D (x, y, z) voxel mask onto the 4D ROI-position grid.

    Position ``o`` is selected when the spatial center voxel of its
    window, ``o_d + roi_d // 2``, lies inside the mask; the mask applies
    to every time step.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 3:
        raise ValueError(f"expected a 3-D (x, y, z) mask, got {mask.ndim}-D")
    if roi.ndim != 4 or len(dataset_shape) != 4:
        raise ValueError("mask_to_positions operates on 4-D analyses")
    if mask.shape != dataset_shape[:3]:
        raise ValueError(
            f"mask shape {mask.shape} != dataset spatial shape {dataset_shape[:3]}"
        )
    grid = valid_positions_shape(dataset_shape, roi)
    rx, ry, rz, _rt = roi.shape
    gx, gy, gz, gt = grid
    centers = mask[
        rx // 2 : rx // 2 + gx, ry // 2 : ry // 2 + gy, rz // 2 : rz // 2 + gz
    ]
    return np.broadcast_to(centers[:, :, :, None], grid).copy()


def masked_feature_samples(
    features: Dict[str, np.ndarray], positions: np.ndarray
) -> Dict[str, np.ndarray]:
    """Flattened per-feature values at the selected positions."""
    positions = np.asarray(positions, dtype=bool)
    out = {}
    for name, vol in features.items():
        if vol.shape != positions.shape:
            raise ValueError(
                f"{name}: feature shape {vol.shape} != mask shape {positions.shape}"
            )
        out[name] = vol[positions]
    return out


def mask_statistics(
    features: Dict[str, np.ndarray], positions: np.ndarray
) -> Dict[str, Dict[str, float]]:
    """Per-feature summary statistics inside the masked region."""
    samples = masked_feature_samples(features, positions)
    stats = {}
    for name, vals in samples.items():
        if vals.size == 0:
            stats[name] = {"n": 0, "mean": 0.0, "std": 0.0, "min": 0.0, "max": 0.0}
        else:
            stats[name] = {
                "n": int(vals.size),
                "mean": float(vals.mean()),
                "std": float(vals.std()),
                "min": float(vals.min()),
                "max": float(vals.max()),
            }
    return stats

"""Multi-distance texture analysis.

Haralick texture is scale-sensitive: distance-1 pairs capture fine
texture, larger displacements coarse structure.  Running the transform
at several distances and concatenating the features is the standard way
to build scale-aware texture signatures (and enlarges CAD feature
vectors).  Each distance requires the ROI to accommodate the scaled
displacement in at least one dimension.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from .analysis import HaralickConfig, haralick_transform

__all__ = ["multi_distance_transform", "stack_distance_features"]


def multi_distance_transform(
    data: np.ndarray,
    config: Optional[HaralickConfig] = None,
    distances: Sequence[int] = (1, 2),
    quantized: bool = False,
) -> Dict[int, Dict[str, np.ndarray]]:
    """Run the analysis once per displacement distance.

    Returns ``{distance: {feature: volume}}``; all outputs share the
    same grid (the ROI size is distance-independent).  Distances whose
    scaled displacement exceeds every ROI dimension would produce empty
    matrices and are rejected.
    """
    config = config or HaralickConfig()
    if not distances:
        raise ValueError("need at least one distance")
    seen = set()
    out: Dict[int, Dict[str, np.ndarray]] = {}
    for d in distances:
        d = int(d)
        if d < 1:
            raise ValueError(f"distance must be >= 1, got {d}")
        if d in seen:
            raise ValueError(f"duplicate distance {d}")
        seen.add(d)
        if all(d >= r for r in config.roi_shape):
            raise ValueError(
                f"distance {d} exceeds every ROI dimension {config.roi_shape}"
            )
        from dataclasses import replace

        out[d] = haralick_transform(
            data, replace(config, distance=d), quantized=quantized
        )
    return out


def stack_distance_features(
    per_distance: Dict[int, Dict[str, np.ndarray]]
) -> Dict[str, np.ndarray]:
    """Flatten ``{distance: {feature: vol}}`` to ``{"feature@d": vol}``."""
    out = {}
    for d in sorted(per_distance):
        for name, vol in per_distance[d].items():
            out[f"{name}@{d}"] = vol
    return out

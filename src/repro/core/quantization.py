"""Grey-level requantization of raw image intensities.

Haralick co-occurrence matrices are ``G x G`` where ``G`` is the number of
grey levels (paper Section 3, Property 3).  Raw MRI data is typically 16-bit
(65536 levels); the paper requantizes to ``G = 32`` levels, noting that
values above 32 rarely improve texture-analysis results (Section 5.1).

Two strategies are provided:

``quantize_linear``
    Uniform binning of the interval ``[lo, hi]`` into ``G`` equal-width
    bins.  This is the scheme assumed by the paper's experiments.

``quantize_equalized``
    Histogram-equalized binning: bin edges are placed at intensity
    quantiles so each output level carries roughly equal mass.  Useful when
    the raw intensity histogram is strongly skewed (common in DCE-MRI).
"""

from __future__ import annotations

import numpy as np

__all__ = ["quantize_linear", "quantize_equalized", "num_levels_ok"]


def num_levels_ok(levels: int) -> None:
    """Validate a grey-level count; raise ``ValueError`` when unusable."""
    if not isinstance(levels, (int, np.integer)):
        raise ValueError(f"levels must be an integer, got {levels!r}")
    if levels < 2:
        raise ValueError(f"need at least 2 grey levels, got {levels}")
    if levels > 65536:
        raise ValueError(f"levels={levels} exceeds 16-bit intensity range")


def quantize_linear(
    data: np.ndarray,
    levels: int,
    lo: float | None = None,
    hi: float | None = None,
) -> np.ndarray:
    """Requantize ``data`` to ``levels`` grey levels by uniform binning.

    Parameters
    ----------
    data:
        Array of raw intensities (any shape, any real dtype).
    levels:
        Number of output grey levels ``G``; output values are in
        ``[0, G-1]``.
    lo, hi:
        Intensity range to map onto the levels.  Defaults to the data
        min/max.  Values outside ``[lo, hi]`` are clipped.

    Returns
    -------
    ``np.ndarray`` of dtype ``int32`` with the same shape as ``data``.
    """
    num_levels_ok(levels)
    data = np.asarray(data)
    if data.size == 0:
        return np.zeros(data.shape, dtype=np.int32)
    lo = float(data.min()) if lo is None else float(lo)
    hi = float(data.max()) if hi is None else float(hi)
    if hi < lo:
        raise ValueError(f"hi={hi} < lo={lo}")
    if hi == lo:
        # Constant image: everything maps to level 0.
        return np.zeros(data.shape, dtype=np.int32)
    scaled = (np.asarray(data, dtype=np.float64) - lo) * (levels / (hi - lo))
    out = np.floor(scaled).astype(np.int32)
    np.clip(out, 0, levels - 1, out=out)
    return out


def quantize_equalized(data: np.ndarray, levels: int) -> np.ndarray:
    """Requantize ``data`` with histogram-equalized (quantile) bin edges.

    Each output level receives approximately ``data.size / levels``
    samples.  Ties at quantile boundaries may skew counts for highly
    discrete inputs.
    """
    num_levels_ok(levels)
    data = np.asarray(data)
    if data.size == 0:
        return np.zeros(data.shape, dtype=np.int32)
    flat = data.reshape(-1).astype(np.float64)
    # Interior bin edges at the 1/G .. (G-1)/G quantiles.
    qs = np.linspace(0.0, 1.0, levels + 1)[1:-1]
    edges = np.quantile(flat, qs)
    out = np.searchsorted(edges, flat, side="right").astype(np.int32)
    return out.reshape(data.shape)

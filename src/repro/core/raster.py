"""4D raster scanning: the sequential Haralick algorithm of paper Fig. 2.

Two implementations:

``raster_scan_reference``
    A direct transcription of the pseudo-code — nested loops over every
    valid ROI origin, one co-occurrence matrix per ROI, one feature
    evaluation per matrix.  Deliberately simple; used as ground truth for
    property-based tests and kept slow-but-obviously-correct.

``raster_scan``
    The production path: a GLCM scan backend (``repro.core.backends``,
    selected by the ``kernel`` argument — batched or incremental)
    feeding the vectorized feature kernels, with a bounded per-batch
    working set so arbitrarily large chunks can be scanned without
    densifying all matrices at once.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from .backends import get_kernel
from .cooccurrence import check_levels, cooccurrence_matrix
from .directions import Direction
from .features import PAPER_FEATURES, haralick_features
from .roi import ROISpec, iter_roi_origins, valid_positions_shape

__all__ = ["raster_scan", "raster_scan_reference", "raster_scan_batches"]


def raster_scan_reference(
    data: np.ndarray,
    roi: ROISpec,
    levels: int,
    features: Optional[Sequence[str]] = None,
    directions: Optional[Sequence[Direction]] = None,
    distance: int = 1,
) -> Dict[str, np.ndarray]:
    """Reference sequential scan (paper Fig. 2): one ROI at a time.

    Returns one output array per feature, each of shape
    ``valid_positions_shape(data.shape, roi)`` — the paper's "4D dataset
    for each Haralick parameter computed".
    """
    data = np.asarray(data)
    check_levels(data, levels)  # once for the whole scan, not per window
    wanted = tuple(features) if features is not None else PAPER_FEATURES
    grid = valid_positions_shape(data.shape, roi)
    out = {name: np.zeros(grid, dtype=np.float64) for name in wanted}
    for origin in iter_roi_origins(data.shape, roi):
        window = data[tuple(slice(o, o + r) for o, r in zip(origin, roi.shape))]
        mat = cooccurrence_matrix(window, levels, directions, distance, validate=False)
        vals = haralick_features(mat, wanted)
        for name in wanted:
            out[name][origin] = vals[name]
    return out


def raster_scan_batches(
    data: np.ndarray,
    roi: ROISpec,
    levels: int,
    features: Optional[Sequence[str]] = None,
    directions: Optional[Sequence[Direction]] = None,
    distance: int = 1,
    batch: int = 2048,
    kernel: str = "batched",
    validate: bool = True,
) -> Iterator[Tuple[int, Dict[str, np.ndarray]]]:
    """Stream feature batches in raster order.

    Yields ``(start, {name: values})`` where ``values[k]`` belongs to the
    flattened position ``start + k``.  This is the kernel driven by the
    HMP filter, which forwards each batch downstream as soon as it is
    computed (pipelining).  ``kernel`` selects the scan backend
    (``repro.core.backends``); every backend yields bit-identical
    batches.
    """
    wanted = tuple(features) if features is not None else PAPER_FEATURES
    scan = get_kernel(kernel)
    for start, mats in scan(
        data, roi, levels, directions, distance, batch=batch, validate=validate
    ):
        yield start, haralick_features(mats, wanted)


def raster_scan(
    data: np.ndarray,
    roi: ROISpec,
    levels: int,
    features: Optional[Sequence[str]] = None,
    directions: Optional[Sequence[Direction]] = None,
    distance: int = 1,
    batch: int = 2048,
    kernel: str = "batched",
    validate: bool = True,
) -> Dict[str, np.ndarray]:
    """Vectorized raster scan; same results as ``raster_scan_reference``."""
    data = np.asarray(data)
    wanted = tuple(features) if features is not None else PAPER_FEATURES
    grid = valid_positions_shape(data.shape, roi)
    npos = int(np.prod(grid))
    out = {name: np.zeros(npos, dtype=np.float64) for name in wanted}
    for start, vals in raster_scan_batches(
        data, roi, levels, wanted, directions, distance, batch,
        kernel=kernel, validate=validate,
    ):
        b = next(iter(vals.values())).shape[0]
        for name in wanted:
            out[name][start : start + b] = vals[name]
    return {name: arr.reshape(grid) for name, arr in out.items()}

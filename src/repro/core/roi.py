"""Region-of-interest (ROI) geometry for 4D raster scanning.

The raster scan (paper Fig. 1 / Fig. 2) slides a fixed-size ROI window over
the dataset; the window must lie entirely within the dataset bounds, so a
dataset of shape ``S`` and ROI of shape ``R`` yields ``S - R + 1`` valid
window origins per dimension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

__all__ = ["ROISpec", "valid_positions_shape", "iter_roi_origins"]


@dataclass(frozen=True)
class ROISpec:
    """Fixed ROI window dimensions ``(x, y, z, t)``.

    The paper's experiments use ``5 x 5 x 5 x 3`` (Section 5.1).
    """

    shape: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.shape) == 0:
            raise ValueError("ROI must have at least one dimension")
        if any(int(s) < 1 for s in self.shape):
            raise ValueError(f"ROI dimensions must be >= 1, got {self.shape}")
        object.__setattr__(self, "shape", tuple(int(s) for s in self.shape))

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    def fits_in(self, dataset_shape: Tuple[int, ...]) -> bool:
        """True when at least one ROI window fits inside ``dataset_shape``."""
        if len(dataset_shape) != self.ndim:
            raise ValueError(
                f"dataset ndim {len(dataset_shape)} != ROI ndim {self.ndim}"
            )
        return all(d >= r for d, r in zip(dataset_shape, self.shape))


def valid_positions_shape(
    dataset_shape: Tuple[int, ...], roi: ROISpec
) -> Tuple[int, ...]:
    """Shape of the grid of valid ROI origins: ``S - R + 1`` per dim.

    Raises ``ValueError`` when the ROI does not fit.
    """
    if not roi.fits_in(dataset_shape):
        raise ValueError(f"ROI {roi.shape} does not fit in dataset {dataset_shape}")
    return tuple(d - r + 1 for d, r in zip(dataset_shape, roi.shape))


def iter_roi_origins(
    dataset_shape: Tuple[int, ...], roi: ROISpec
) -> Iterator[Tuple[int, ...]]:
    """Iterate ROI origin coordinates in raster (C) order.

    Mirrors the nested ``foreach x/y/z/t`` loops of the paper's Fig. 2
    pseudo-code.
    """
    grid = valid_positions_shape(dataset_shape, roi)

    def rec(prefix: Tuple[int, ...], dims: Tuple[int, ...]) -> Iterator[Tuple[int, ...]]:
        if not dims:
            yield prefix
            return
        for i in range(dims[0]):
            yield from rec(prefix + (i,), dims[1:])

    return rec((), grid)

"""Sparse co-occurrence matrix representation (paper Section 4.4.1).

Typical requantized (``G = 32``) MRI ROIs produce co-occurrence matrices
with ~1% non-zero entries (the paper measured an average of 10.7 non-zero
entries out of 1024, counting symmetric duplicates once).  The sparse form
stores only non-zero, non-duplicated entries as ``(row, col, count)``
triplets with ``row <= col``; positional information maps each entry back
to its place in the full matrix.

The sparse form both speeds up Haralick parameter computation (only
non-zero entries are visited) and shrinks the network payload between the
HCC and HPC filters when the split-filter pipeline is used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = ["SparseCooc", "sparse_from_dense", "batch_sparse_from_dense"]

# Per-matrix wire header: grey-level count, entry count, pair total.
_HEADER_BYTES = 8


def _entry_bytes(levels: int) -> int:
    """Wire bytes per stored entry: packed linear position + 2 B count.

    The position ``row * G + col`` fits in 2 bytes for G <= 256 (every
    practical requantization, paper uses G = 32); larger grey-level
    counts need a 4-byte position.
    """
    return (2 if levels * levels <= 65536 else 4) + 2


@dataclass(frozen=True)
class SparseCooc:
    """Upper-triangular sparse co-occurrence matrix.

    Attributes
    ----------
    levels:
        Grey-level count ``G`` (the dense matrix is ``G x G``).
    rows, cols:
        Entry coordinates with ``rows[k] <= cols[k]``.
    counts:
        Pair counts.  Off-diagonal counts are the *symmetric total*
        (i.e. the dense matrix holds ``counts[k] / 2`` at ``(r, c)`` and at
        ``(c, r)`` summed to ``counts[k]``); diagonal counts are stored
        as-is.
    """

    levels: int
    rows: np.ndarray
    cols: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        rows = np.asarray(self.rows, dtype=np.int64)
        cols = np.asarray(self.cols, dtype=np.int64)
        counts = np.asarray(self.counts, dtype=np.int64)
        if not (rows.shape == cols.shape == counts.shape) or rows.ndim != 1:
            raise ValueError("rows, cols, counts must be 1-D arrays of equal length")
        if rows.size:
            if rows.min() < 0 or cols.max() >= self.levels:
                raise ValueError("entry coordinates out of range")
            if np.any(rows > cols):
                raise ValueError("sparse form stores the upper triangle (row <= col)")
            if np.any(counts <= 0):
                raise ValueError("sparse form stores only non-zero entries")
        object.__setattr__(self, "rows", rows)
        object.__setattr__(self, "cols", cols)
        object.__setattr__(self, "counts", counts)

    @property
    def nnz(self) -> int:
        """Number of stored (non-zero, non-duplicated) entries."""
        return int(self.rows.size)

    @property
    def total(self) -> int:
        """Total pair count of the underlying dense symmetric matrix."""
        return int(self.counts.sum())

    @property
    def density(self) -> float:
        """Stored entries over unique cells ``G*(G+1)/2``."""
        return self.nnz / (self.levels * (self.levels + 1) / 2)

    def wire_bytes(self) -> int:
        """Serialized size used by the network cost model."""
        return _HEADER_BYTES + self.nnz * _entry_bytes(self.levels)

    def to_dense(self) -> np.ndarray:
        """Reconstruct the full symmetric ``(G, G)`` count matrix."""
        out = np.zeros((self.levels, self.levels), dtype=np.int64)
        diag = self.rows == self.cols
        out[self.rows[diag], self.cols[diag]] = self.counts[diag]
        off = ~diag
        half = self.counts[off] // 2
        out[self.rows[off], self.cols[off]] = half
        out[self.cols[off], self.rows[off]] = half
        return out


def sparse_from_dense(matrix: np.ndarray) -> SparseCooc:
    """Convert a dense symmetric co-occurrence count matrix to sparse form.

    Raises ``ValueError`` if ``matrix`` is not square and symmetric —
    asymmetric matrices cannot be represented by upper-triangle storage.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {matrix.shape}")
    if not np.array_equal(matrix, matrix.T):
        raise ValueError("co-occurrence matrix must be symmetric")
    levels = matrix.shape[0]
    r, c = np.nonzero(np.triu(matrix))
    vals = matrix[r, c]
    # Off-diagonal entries represent both (r, c) and (c, r): store the sum.
    vals = np.where(r == c, vals, 2 * vals)
    return SparseCooc(levels=levels, rows=r, cols=c, counts=vals)


def batch_sparse_from_dense(matrices: np.ndarray) -> List[SparseCooc]:
    """Convert a ``(B, G, G)`` stack of dense matrices to sparse forms."""
    matrices = np.asarray(matrices)
    if matrices.ndim != 3:
        raise ValueError(f"expected (B, G, G), got shape {matrices.shape}")
    return [sparse_from_dense(m) for m in matrices]

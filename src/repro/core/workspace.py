"""Shared, cached workspaces for the co-occurrence scan kernels.

The hot loops of the batched and incremental kernels need a handful of
auxiliary arrays whose contents depend only on ``(levels, batch)``-style
parameters, not on the data being scanned:

``pair_shift``
    The per-row bincount offset ``arange(n) * G**2`` that turns a batch
    of per-window pair codes into disjoint histogram segments for a
    single ``bincount`` call.
``symmetric_index``
    The strict-upper-triangle index pair plus the diagonal used to
    symmetrize count matrices in place (without materializing a full
    transposed copy).
``scan_offsets``
    Precomputed flat-index gather tables for the mega-batched
    chunk-at-once kernel: per scan row and per direction group, the
    flat positions of every pair-code hyperplane inside one
    concatenated pair-code array.  These depend only on
    ``(chunk_shape, roi_shape, directions)`` — in the pipeline every
    interior chunk shares one shape, so the tables are built once and
    reused for every chunk of the run.

Allocating these per call shows up in profiles (they are as large as a
batch row), so they are cached here and shared by every kernel and every
filter copy.  Cached arrays are returned *read-only*; kernels must never
write into them.  The cache is guarded by a lock because the local
runtime executes filter copies on threads.

``WORKSPACE_BYTES`` is the soft bound on transient working-set size the
kernels aim for when they sub-batch internally (it bounds temporaries,
not the caller-visible output batches).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .roi import ROISpec, valid_positions_shape

__all__ = [
    "WORKSPACE_BYTES",
    "GroupOffsets",
    "ScanOffsets",
    "pair_shift",
    "scan_offsets",
    "symmetric_index",
    "symmetrize_inplace",
]

#: Soft cap on kernel-internal temporaries (gather blocks, histogram
#: segments).  Yielded matrix batches are sized by the caller's ``batch``
#: and are not subject to this bound.
WORKSPACE_BYTES = 32 * 2**20

_lock = threading.Lock()
_shift_cache: Dict[int, np.ndarray] = {}
_triu_cache: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}


def pair_shift(n: int, gg: int) -> np.ndarray:
    """Read-only ``(n, 1)`` int64 array of ``arange(n) * gg``.

    Cached per ``gg`` and grown geometrically, so repeated calls from a
    scan loop reuse one allocation.
    """
    with _lock:
        arr = _shift_cache.get(gg)
        if arr is None or arr.shape[0] < n:
            size = max(n, 2 * arr.shape[0] if arr is not None else n)
            arr = (np.arange(size, dtype=np.int64) * gg)[:, None]
            arr.setflags(write=False)
            _shift_cache[gg] = arr
        return arr[:n]


def symmetric_index(levels: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cached ``(iu, ju, diag)`` index arrays for in-place symmetrization."""
    with _lock:
        cached = _triu_cache.get(levels)
        if cached is None:
            iu, ju = np.triu_indices(levels, k=1)
            diag = np.arange(levels)
            for a in (iu, ju, diag):
                a.setflags(write=False)
            cached = (iu, ju, diag)
            _triu_cache[levels] = cached
        return cached


def symmetrize_inplace(mats: np.ndarray) -> np.ndarray:
    """``mats += mats.T`` per matrix, in place and without a full copy.

    ``mats`` has shape ``(B, G, G)``.  The only temporary is the strict
    upper triangle (half a matrix batch), versus the full transposed
    copy the naive ``mats += mats.transpose(0, 2, 1).copy()`` needs.
    """
    iu, ju, diag = symmetric_index(mats.shape[-1])
    if iu.size:
        s = mats[:, iu, ju] + mats[:, ju, iu]
        mats[:, iu, ju] = s
        mats[:, ju, iu] = s
    mats[:, diag, diag] *= 2
    return mats


# --------------------------------------------------------------------------
# Mega-batch gather tables: chunk-shape-keyed flat-index offsets.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class GroupOffsets:
    """Gather table for one trailing-extent group of directions.

    Directions whose pair-code windows share the trailing extent ``W_t``
    are plane-aligned: the window at row position ``t`` covers code
    hyperplanes ``[t, t + W_t)``.  ``table[r, f]`` is the flat index (in
    the concatenated pair-code array of :class:`ScanOffsets`) of the
    hyperplane-0 code at face position ``f`` of scan row ``r``; plane
    ``j`` of that row sits at ``table[r, f] + j`` because every
    pair-code array is C-contiguous along the innermost axis.

    The flat table is what the GPU scatter kernels consume (their gather
    latency is hidden across threads).  The CPU mega-batch kernel instead
    walks ``members`` — per direction, the segment start, the pair-code
    array shape and the leading window shape — and gathers through
    per-segment sliding views, which keeps each gather's source inside
    one direction's cache-resident segment instead of striding across
    the whole concatenated buffer.  Because the tables are
    ``O(n_rows * total_face)`` — easily larger than the chunk itself —
    they are only materialized when :func:`scan_offsets` is called with
    ``with_tables=True``; otherwise ``table`` is ``None``.
    """

    trailing_extent: int  # W_t: planes summed per window
    n_planes: int  # row_len - 1 + W_t: planes gathered per row
    total_face: int  # code faces per plane, summed over members
    table: "np.ndarray | None"  # (n_rows, total_face) read-only intp
    #: per member direction: (segment start, pair-code array shape,
    #: leading window shape, face size)
    members: Tuple[Tuple[int, Tuple[int, ...], Tuple[int, ...], int], ...]


@dataclass(frozen=True)
class ScanOffsets:
    """All cached gather geometry of one (chunk, ROI, directions) scan.

    ``segments`` lists, per direction that fits the window, the slice of
    the concatenated flat pair-code array (size ``cat_size``) that the
    direction's ``pair_code_array`` fills.  The data-dependent codes are
    the only per-chunk work left; everything index-shaped is here.
    """

    grid: Tuple[int, ...]
    n_rows: int
    row_len: int
    cat_size: int
    segments: Tuple[Tuple[Tuple[int, ...], int, int], ...]
    groups: Tuple[GroupOffsets, ...]

    @property
    def nbytes(self) -> int:
        """Resident size of the cached tables (for memory budgeting)."""
        return sum(g.table.nbytes for g in self.groups if g.table is not None)

    @property
    def has_tables(self) -> bool:
        return all(g.table is not None for g in self.groups)


#: Distinct (chunk_shape, roi_shape, directions) entries kept.  The
#: pipeline sees one interior shape plus a handful of edge shapes, so a
#: small LRU bound keeps reuse near-perfect without unbounded growth.
_OFFSETS_CACHE_ENTRIES = 8

_offsets_cache: "OrderedDict[tuple, ScanOffsets]" = OrderedDict()


def _build_scan_offsets(
    data_shape: Tuple[int, ...],
    roi: ROISpec,
    directions: Tuple[Tuple[int, ...], ...],
    with_tables: bool,
) -> ScanOffsets:
    nd = len(data_shape)
    grid = valid_positions_shape(data_shape, roi)
    row_len = grid[-1]
    lead = grid[:-1]
    n_rows = 1
    for c in lead:
        n_rows *= c
    origins = np.unravel_index(np.arange(n_rows), lead) if lead else ()

    segments = []
    per_group: Dict[int, list] = {}
    cat_size = 0
    for v in directions:
        absv = tuple(abs(int(c)) for c in v)
        if any(roi.shape[i] <= absv[i] for i in range(nd)):
            continue  # pairs never fit inside the ROI for this direction
        cshape = tuple(data_shape[i] - absv[i] for i in range(nd))
        # Element strides of the C-contiguous pair-code array.
        strides = [1] * nd
        for i in range(nd - 2, -1, -1):
            strides[i] = strides[i + 1] * cshape[i + 1]
        w = tuple(roi.shape[i] - absv[i] for i in range(nd))
        size = 1
        for c in cshape:
            size *= c
        base = cat_size
        cat_size += size
        segments.append((tuple(int(c) for c in v), base, base + size))
        face = 1
        for e in w[:-1]:
            face *= e
        member = (base, cshape, w[:-1], face)
        if with_tables:
            # Flat offsets of the leading window face (innermost axis
            # left to the per-plane ``+ j`` walk).
            if nd > 1:
                ix = np.ix_(*[np.arange(e, dtype=np.intp) for e in w[:-1]])
                lead_offs = sum(g * s for g, s in zip(ix, strides[:-1]))
                lead_offs = np.asarray(lead_offs, dtype=np.intp).reshape(-1)
            else:
                lead_offs = np.zeros(1, dtype=np.intp)
            if lead:
                row_base = sum(
                    origins[i].astype(np.intp) * strides[i]
                    for i in range(nd - 1)
                )
            else:
                row_base = np.zeros(1, dtype=np.intp)
            cols = base + row_base[:, None] + lead_offs[None, :]
        else:
            cols = None
        per_group.setdefault(w[-1], []).append((cols, member))

    groups = []
    for wt in sorted(per_group):
        total_face = sum(m[3] for _cols, m in per_group[wt])
        if with_tables:
            table = np.ascontiguousarray(
                np.concatenate([cols for cols, _m in per_group[wt]], axis=1),
                dtype=np.intp,
            )
            table.setflags(write=False)
        else:
            table = None
        groups.append(
            GroupOffsets(
                trailing_extent=wt,
                n_planes=row_len - 1 + wt,
                total_face=total_face,
                table=table,
                members=tuple(m for _cols, m in per_group[wt]),
            )
        )
    return ScanOffsets(
        grid=grid,
        n_rows=n_rows,
        row_len=row_len,
        cat_size=cat_size,
        segments=tuple(segments),
        groups=tuple(groups),
    )


def scan_offsets(
    data_shape: Tuple[int, ...],
    roi: ROISpec,
    directions: Tuple[Tuple[int, ...], ...],
    with_tables: bool = False,
) -> ScanOffsets:
    """Cached gather geometry for one (chunk shape, ROI, directions) scan.

    Distance is already baked into ``directions`` (they arrive scaled by
    :func:`~repro.core.cooccurrence.resolve_directions`), so the key is
    exactly the geometry the tables depend on.  Cached arrays are
    read-only and shared across threads, kernels and filter copies.

    ``with_tables=True`` additionally materializes the flat gather
    tables the GPU scatter kernels consume; the CPU kernels leave them
    out because the tables can dwarf the chunk itself.  A cache entry
    built without tables is upgraded in place on the first request that
    needs them.
    """
    key = (tuple(int(s) for s in data_shape), roi.shape, tuple(directions))
    with _lock:
        cached = _offsets_cache.get(key)
        if cached is not None and (not with_tables or cached.has_tables):
            _offsets_cache.move_to_end(key)
            return cached
    built = _build_scan_offsets(key[0], roi, key[2], with_tables)
    with _lock:
        _offsets_cache[key] = built
        _offsets_cache.move_to_end(key)
        while len(_offsets_cache) > _OFFSETS_CACHE_ENTRIES:
            _offsets_cache.popitem(last=False)
    return built

"""Shared, cached workspaces for the co-occurrence scan kernels.

The hot loops of the batched and incremental kernels need a handful of
auxiliary arrays whose contents depend only on ``(levels, batch)``-style
parameters, not on the data being scanned:

``pair_shift``
    The per-row bincount offset ``arange(n) * G**2`` that turns a batch
    of per-window pair codes into disjoint histogram segments for a
    single ``bincount`` call.
``symmetric_index``
    The strict-upper-triangle index pair plus the diagonal used to
    symmetrize count matrices in place (without materializing a full
    transposed copy).

Allocating these per call shows up in profiles (they are as large as a
batch row), so they are cached here and shared by every kernel and every
filter copy.  Cached arrays are returned *read-only*; kernels must never
write into them.  The cache is guarded by a lock because the local
runtime executes filter copies on threads.

``WORKSPACE_BYTES`` is the soft bound on transient working-set size the
kernels aim for when they sub-batch internally (it bounds temporaries,
not the caller-visible output batches).
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

import numpy as np

__all__ = [
    "WORKSPACE_BYTES",
    "pair_shift",
    "symmetric_index",
    "symmetrize_inplace",
]

#: Soft cap on kernel-internal temporaries (gather blocks, histogram
#: segments).  Yielded matrix batches are sized by the caller's ``batch``
#: and are not subject to this bound.
WORKSPACE_BYTES = 32 * 2**20

_lock = threading.Lock()
_shift_cache: Dict[int, np.ndarray] = {}
_triu_cache: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}


def pair_shift(n: int, gg: int) -> np.ndarray:
    """Read-only ``(n, 1)`` int64 array of ``arange(n) * gg``.

    Cached per ``gg`` and grown geometrically, so repeated calls from a
    scan loop reuse one allocation.
    """
    with _lock:
        arr = _shift_cache.get(gg)
        if arr is None or arr.shape[0] < n:
            size = max(n, 2 * arr.shape[0] if arr is not None else n)
            arr = (np.arange(size, dtype=np.int64) * gg)[:, None]
            arr.setflags(write=False)
            _shift_cache[gg] = arr
        return arr[:n]


def symmetric_index(levels: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cached ``(iu, ju, diag)`` index arrays for in-place symmetrization."""
    with _lock:
        cached = _triu_cache.get(levels)
        if cached is None:
            iu, ju = np.triu_indices(levels, k=1)
            diag = np.arange(levels)
            for a in (iu, ju, diag):
                a.setflags(write=False)
            cached = (iu, ju, diag)
            _triu_cache[levels] = cached
        return cached


def symmetrize_inplace(mats: np.ndarray) -> np.ndarray:
    """``mats += mats.T`` per matrix, in place and without a full copy.

    ``mats`` has shape ``(B, G, G)``.  The only temporary is the strict
    upper triangle (half a matrix batch), versus the full transposed
    copy the naive ``mats += mats.transpose(0, 2, 1).copy()`` needs.
    """
    iu, ju, diag = symmetric_index(mats.shape[-1])
    if iu.size:
        s = mats[:, iu, ju] + mats[:, ju, iu]
        mats[:, iu, ju] = s
        mats[:, ju, iu] = s
    mats[:, diag, diag] *= 2
    return mats

"""4D image data: volumes, the synthetic DCE-MRI phantom, file formats."""

from .formats import read_pgm, read_raw_slice, write_pgm, write_raw_slice
from .synthetic import Lesion, PhantomConfig, generate_phantom, paper_dataset_config
from .volume import Volume4D

__all__ = [
    "Volume4D",
    "Lesion",
    "PhantomConfig",
    "generate_phantom",
    "paper_dataset_config",
    "read_pgm",
    "read_raw_slice",
    "write_pgm",
    "write_raw_slice",
]

"""Minimal DICOM file support (explicit VR little endian, uncompressed).

The paper notes the raw-file reader "may be easily replaced by a filter
which reads DICOM format images" (Section 4.3).  This module implements
the minimal, standard-conformant subset needed for that: single-frame
MONOCHROME2 MR images with 8- or 16-bit unsigned pixels, written and
parsed as real DICOM Part-10 files — 128-byte preamble, ``DICM`` magic,
explicit-VR little-endian data elements, even-length values, and an OW
pixel-data element.  Full DICOM (sequences, compressed transfer
syntaxes, implicit VR) is intentionally out of scope.

Slice position metadata travels in Instance Number (z) and Temporal
Position Identifier (t), matching the dataset index tuples of paper
Section 4.2.
"""

from __future__ import annotations

import struct
from typing import Dict, Tuple, Union

import numpy as np

__all__ = ["write_dicom_slice", "read_dicom_slice", "parse_elements", "DicomError"]

# (group, element) tags used by the writer.
TAG_MODALITY = (0x0008, 0x0060)
TAG_INSTANCE_NUMBER = (0x0020, 0x0013)
TAG_TEMPORAL_POSITION = (0x0020, 0x0100)
TAG_SAMPLES_PER_PIXEL = (0x0028, 0x0002)
TAG_PHOTOMETRIC = (0x0028, 0x0004)
TAG_ROWS = (0x0028, 0x0010)
TAG_COLUMNS = (0x0028, 0x0011)
TAG_BITS_ALLOCATED = (0x0028, 0x0100)
TAG_BITS_STORED = (0x0028, 0x0101)
TAG_HIGH_BIT = (0x0028, 0x0102)
TAG_PIXEL_REPRESENTATION = (0x0028, 0x0103)
TAG_PIXEL_DATA = (0x7FE0, 0x0010)

_LONG_VRS = {b"OB", b"OW", b"OF", b"SQ", b"UT", b"UN"}


class DicomError(ValueError):
    """Raised for files outside the supported DICOM subset."""


def _element(tag: Tuple[int, int], vr: bytes, value: bytes) -> bytes:
    """Encode one explicit-VR little-endian data element."""
    if len(value) % 2:
        value += b"\x00" if vr not in (b"CS", b"IS", b"SH", b"LO") else b" "
    head = struct.pack("<HH", tag[0], tag[1]) + vr
    if vr in _LONG_VRS:
        return head + b"\x00\x00" + struct.pack("<I", len(value)) + value
    if len(value) > 0xFFFF:
        raise DicomError(f"value too long for short VR {vr!r}")
    return head + struct.pack("<H", len(value)) + value


def _us(tag: Tuple[int, int], value: int) -> bytes:
    return _element(tag, b"US", struct.pack("<H", value))


def _is(tag: Tuple[int, int], value: int) -> bytes:
    return _element(tag, b"IS", str(int(value)).encode("ascii"))


def _cs(tag: Tuple[int, int], value: str) -> bytes:
    return _element(tag, b"CS", value.encode("ascii"))


def write_dicom_slice(
    path: str, img: np.ndarray, t: int = 0, z: int = 0
) -> int:
    """Write a 2D unsigned image as a DICOM file; returns bytes written.

    ``img`` must be uint8 or uint16; rows map to DICOM Rows (axis 0).
    """
    img = np.asarray(img)
    if img.ndim != 2:
        raise DicomError(f"expected a 2-D image, got shape {img.shape}")
    if img.dtype == np.uint8:
        bits = 8
    elif img.dtype == np.uint16:
        bits = 16
    else:
        raise DicomError(f"unsupported pixel dtype {img.dtype}; use uint8/uint16")
    rows, cols = img.shape
    if rows > 0xFFFF or cols > 0xFFFF:
        raise DicomError(f"image too large for DICOM dimensions: {img.shape}")

    pixel_bytes = np.ascontiguousarray(img, dtype=f"<u{bits // 8}").tobytes()
    body = b"".join(
        [
            _cs(TAG_MODALITY, "MR"),
            _is(TAG_INSTANCE_NUMBER, z),
            _is(TAG_TEMPORAL_POSITION, t),
            _us(TAG_SAMPLES_PER_PIXEL, 1),
            _cs(TAG_PHOTOMETRIC, "MONOCHROME2"),
            _us(TAG_ROWS, rows),
            _us(TAG_COLUMNS, cols),
            _us(TAG_BITS_ALLOCATED, bits),
            _us(TAG_BITS_STORED, bits),
            _us(TAG_HIGH_BIT, bits - 1),
            _us(TAG_PIXEL_REPRESENTATION, 0),
            _element(TAG_PIXEL_DATA, b"OW", pixel_bytes),
        ]
    )
    blob = b"\x00" * 128 + b"DICM" + body
    with open(path, "wb") as fh:
        fh.write(blob)
    return len(blob)


def parse_elements(raw: bytes) -> Dict[Tuple[int, int], Tuple[bytes, bytes]]:
    """Parse explicit-VR LE data elements into ``{tag: (vr, value)}``."""
    if len(raw) < 132 or raw[128:132] != b"DICM":
        raise DicomError("not a DICOM Part-10 file (missing DICM magic)")
    out: Dict[Tuple[int, int], Tuple[bytes, bytes]] = {}
    pos = 132
    n = len(raw)
    while pos + 8 <= n:
        group, element = struct.unpack_from("<HH", raw, pos)
        vr = raw[pos + 4 : pos + 6]
        if not vr.isalpha():
            raise DicomError(
                f"element {(group, element)}: implicit VR or corrupt stream"
            )
        if vr in _LONG_VRS:
            (length,) = struct.unpack_from("<I", raw, pos + 8)
            start = pos + 12
        else:
            (length,) = struct.unpack_from("<H", raw, pos + 6)
            start = pos + 8
        end = start + length
        if end > n:
            raise DicomError(f"element {(group, element)}: truncated value")
        out[(group, element)] = (vr, raw[start:end])
        pos = end
    return out


def _get_us(elements, tag) -> int:
    try:
        vr, value = elements[tag]
    except KeyError:
        raise DicomError(f"missing required tag {tag}") from None
    if vr != b"US" or len(value) != 2:
        raise DicomError(f"tag {tag}: expected US, got {vr!r}")
    return struct.unpack("<H", value)[0]


def read_dicom_slice(path: str) -> Tuple[np.ndarray, Dict[str, int]]:
    """Read a DICOM slice; returns ``(image, {"t": ..., "z": ...})``."""
    with open(path, "rb") as fh:
        raw = fh.read()
    elements = parse_elements(raw)
    rows = _get_us(elements, TAG_ROWS)
    cols = _get_us(elements, TAG_COLUMNS)
    bits = _get_us(elements, TAG_BITS_ALLOCATED)
    if bits not in (8, 16):
        raise DicomError(f"unsupported BitsAllocated {bits}")
    if _get_us(elements, TAG_PIXEL_REPRESENTATION) != 0:
        raise DicomError("signed pixel data not supported")
    vr, pixels = elements.get(TAG_PIXEL_DATA, (None, None))
    if pixels is None:
        raise DicomError("missing PixelData")
    expected = rows * cols * (bits // 8)
    if len(pixels) < expected:
        raise DicomError(
            f"PixelData has {len(pixels)} bytes, expected {expected}"
        )
    dtype = np.dtype(f"<u{bits // 8}")
    img = np.frombuffer(pixels[:expected], dtype=dtype).reshape(rows, cols)
    meta = {}
    for key, tag in (("t", TAG_TEMPORAL_POSITION), ("z", TAG_INSTANCE_NUMBER)):
        if tag in elements:
            meta[key] = int(elements[tag][1].decode("ascii").strip() or 0)
    return img.astype(dtype.newbyteorder("=")), meta

"""Raw slice and PGM image formats.

The paper stores the input dataset as raw 2D image slices, one file per
slice (Section 4.2), and writes visual output as JPEG (JIW filter).  No
JPEG codec is available offline, so the output path writes binary PGM
(P5) — the same normalize-and-write-grayscale behaviour with an
incidental container format (see DESIGN.md substitutions).

Raw slice format: little-endian unsigned integers, C (row-major) order,
no header — dimensions and dtype come from the dataset index.
"""

from __future__ import annotations

import os
from typing import Tuple

import numpy as np

__all__ = ["write_raw_slice", "read_raw_slice", "write_pgm", "read_pgm"]

_DTYPES = {1: np.uint8, 2: np.uint16, 4: np.uint32}


def write_raw_slice(path: str, img: np.ndarray, bytes_per_pixel: int = 2) -> int:
    """Write a 2D slice as headerless little-endian raw data.

    Returns the number of bytes written.
    """
    if bytes_per_pixel not in _DTYPES:
        raise ValueError(f"unsupported bytes_per_pixel {bytes_per_pixel}")
    img = np.asarray(img)
    if img.ndim != 2:
        raise ValueError(f"expected a 2-D slice, got shape {img.shape}")
    dtype = np.dtype(_DTYPES[bytes_per_pixel]).newbyteorder("<")
    buf = np.ascontiguousarray(img, dtype=dtype).tobytes()
    with open(path, "wb") as fh:
        fh.write(buf)
    return len(buf)


def read_raw_slice(
    path: str, shape: Tuple[int, int], bytes_per_pixel: int = 2
) -> np.ndarray:
    """Read a raw 2D slice written by :func:`write_raw_slice`."""
    if bytes_per_pixel not in _DTYPES:
        raise ValueError(f"unsupported bytes_per_pixel {bytes_per_pixel}")
    dtype = np.dtype(_DTYPES[bytes_per_pixel]).newbyteorder("<")
    expected = shape[0] * shape[1] * bytes_per_pixel
    size = os.path.getsize(path)
    if size != expected:
        raise ValueError(
            f"{path}: size {size} B != expected {expected} B for shape {shape}"
        )
    with open(path, "rb") as fh:
        data = np.frombuffer(fh.read(), dtype=dtype)
    return data.reshape(shape).astype(_DTYPES[bytes_per_pixel])


def write_pgm(path: str, img: np.ndarray) -> None:
    """Write a 2D float or integer image as a binary PGM (P5) file.

    Float input is assumed to be normalized to ``[0, 1]`` (the JIW filter
    normalizes with the global parameter min/max first — paper 4.3.3);
    integer input must already be in ``[0, 255]``.
    """
    img = np.asarray(img)
    if img.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {img.shape}")
    if np.issubdtype(img.dtype, np.floating):
        if img.size and (img.min() < -1e-9 or img.max() > 1 + 1e-9):
            raise ValueError("float PGM input must be normalized to [0, 1]")
        pix = np.round(np.clip(img, 0, 1) * 255).astype(np.uint8)
    else:
        if img.size and (img.min() < 0 or img.max() > 255):
            raise ValueError("integer PGM input must be in [0, 255]")
        pix = img.astype(np.uint8)
    header = f"P5\n{img.shape[1]} {img.shape[0]}\n255\n".encode("ascii")
    with open(path, "wb") as fh:
        fh.write(header)
        fh.write(np.ascontiguousarray(pix).tobytes())


def read_pgm(path: str) -> np.ndarray:
    """Read a binary PGM (P5) file written by :func:`write_pgm`."""
    with open(path, "rb") as fh:
        raw = fh.read()
    if not raw.startswith(b"P5"):
        raise ValueError(f"{path}: not a binary PGM file")
    # Header: magic, width, height, maxval — whitespace separated, then
    # exactly one whitespace byte before the pixel data.
    fields = []
    pos = 2
    while len(fields) < 3:
        while pos < len(raw) and raw[pos : pos + 1].isspace():
            pos += 1
        if raw[pos : pos + 1] == b"#":  # comment line
            while pos < len(raw) and raw[pos] != 0x0A:
                pos += 1
            continue
        start = pos
        while pos < len(raw) and not raw[pos : pos + 1].isspace():
            pos += 1
        fields.append(int(raw[start:pos]))
    pos += 1  # single whitespace after maxval
    width, height, maxval = fields
    if maxval != 255:
        raise ValueError(f"{path}: only 8-bit PGM supported, maxval={maxval}")
    pix = np.frombuffer(raw, dtype=np.uint8, count=width * height, offset=pos)
    return pix.reshape(height, width).copy()

"""Synthetic DCE-MRI phantom (substitute for the paper's clinical dataset).

The paper's experiments use a breast DCE-MRI study: 32 time steps, each a
3D volume of 32 slices of 256x256 2-byte pixels (Section 5.1).  Clinical
data is not available offline, so this module generates a phantom with the
same geometry and the physiological structure that motivates the
application (Section 1):

* a smooth tissue background with spatial texture,
* one or more lesions whose intensity follows a contrast-agent
  *uptake/washout* curve over time — fast enhancement then gradual
  elimination, the signature radiologists look for in tumors,
* normally-enhancing vasculature with a slower uptake curve,
* Rician-like acquisition noise.

The phantom preserves the properties the evaluation depends on: smooth
local intensity statistics (so requantized co-occurrence matrices are
~1-2% dense, Section 4.4.1), localized 4D texture changes at lesions, and
the exact data volume / value range of the paper's dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from .volume import Volume4D

__all__ = ["Lesion", "PhantomConfig", "generate_phantom", "paper_dataset_config"]


@dataclass(frozen=True)
class Lesion:
    """A spherical enhancing lesion.

    ``uptake_rate`` controls how quickly the contrast agent accumulates;
    ``washout_rate`` how quickly it is eliminated (paper Section 1: tumors
    take up more agent and wash it out as waste).  Intensity over time
    follows ``A * (1 - exp(-k_in * t)) * exp(-k_out * t)``.
    """

    center: Tuple[float, float, float]
    radius: float
    amplitude: float = 0.6
    uptake_rate: float = 0.5
    washout_rate: float = 0.05

    def enhancement(self, t: np.ndarray) -> np.ndarray:
        """Contrast enhancement factor at (float) time steps ``t``."""
        return (
            self.amplitude
            * (1.0 - np.exp(-self.uptake_rate * t))
            * np.exp(-self.washout_rate * t)
        )


@dataclass(frozen=True)
class PhantomConfig:
    """Geometry and content of a synthetic DCE-MRI study."""

    shape: Tuple[int, int, int, int] = (64, 64, 16, 8)
    lesions: Tuple[Lesion, ...] = ()
    background_smoothness: float = 4.0
    noise_sigma: float = 0.02
    baseline: float = 0.35
    max_value: int = 4095  # 12-bit MRI intensity range, stored as uint16
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.shape) != 4 or any(s < 1 for s in self.shape):
            raise ValueError(f"invalid 4D shape {self.shape}")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be >= 0")


def paper_dataset_config(
    scale: float = 1.0, seed: int = 0, num_lesions: int = 3
) -> PhantomConfig:
    """The paper's dataset geometry (Section 5.1), optionally scaled down.

    ``scale=1.0`` gives 256x256x32x32 (64 Mvoxels, 128 MB at 2 B/pixel) —
    exactly the experimental dataset.  Smaller ``scale`` shrinks the
    in-plane and z/t extents proportionally for fast tests.
    """
    if not (0 < scale <= 1.0):
        raise ValueError("scale must be in (0, 1]")
    nx = max(8, int(round(256 * scale)))
    nz = max(4, int(round(32 * scale)))
    nt = max(4, int(round(32 * scale)))
    rng = np.random.default_rng(seed)
    lesions = []
    for _ in range(num_lesions):
        center = tuple(rng.uniform(0.25, 0.75) * n for n in (nx, nx, nz))
        radius = rng.uniform(0.05, 0.12) * nx
        lesions.append(
            Lesion(
                center=center,
                radius=radius,
                amplitude=rng.uniform(0.4, 0.8),
                uptake_rate=rng.uniform(0.3, 0.8),
                washout_rate=rng.uniform(0.03, 0.1),
            )
        )
    return PhantomConfig(
        shape=(nx, nx, nz, nt), lesions=tuple(lesions), seed=seed
    )


def _smooth_field(rng: np.random.Generator, shape, smoothness: float) -> np.ndarray:
    """Band-limited random field in [0, 1] via low-res upsampling.

    Generating at a coarse grid and resampling with linear interpolation
    produces smooth spatial texture without pulling in FFT machinery; the
    result has the clustered grey-level statistics of soft tissue.
    """
    coarse_shape = tuple(max(2, int(np.ceil(s / max(smoothness, 1.0)))) for s in shape)
    coarse = rng.random(coarse_shape)
    out = coarse
    for axis, (cs, fs) in enumerate(zip(coarse_shape, shape)):
        # Linear interpolation along one axis at a time.
        pos = np.linspace(0, cs - 1, fs)
        lo = np.floor(pos).astype(int)
        hi = np.minimum(lo + 1, cs - 1)
        frac = pos - lo
        take_lo = np.take(out, lo, axis=axis)
        take_hi = np.take(out, hi, axis=axis)
        bshape = [1] * out.ndim
        bshape[axis] = fs
        frac = frac.reshape(bshape)
        out = take_lo * (1 - frac) + take_hi * frac
    return out


def generate_phantom(config: Optional[PhantomConfig] = None) -> Volume4D:
    """Generate a synthetic DCE-MRI study as a ``uint16`` Volume4D."""
    config = config or PhantomConfig()
    rng = np.random.default_rng(config.seed)
    nx, ny, nz, nt = config.shape

    # Static anatomical background, shared by all time steps.
    background = config.baseline + 0.3 * _smooth_field(
        rng, (nx, ny, nz), config.background_smoothness
    )
    vol = np.repeat(background[:, :, :, None], nt, axis=3)

    # Global gentle enhancement of all tissue (vasculature) over time.
    tgrid = np.arange(nt, dtype=np.float64)
    tissue_curve = 0.08 * (1.0 - np.exp(-0.15 * tgrid))
    vol += tissue_curve[None, None, None, :]

    # Lesions: localized spheres with uptake/washout time curves.
    if config.lesions:
        xs = np.arange(nx)[:, None, None]
        ys = np.arange(ny)[None, :, None]
        zs = np.arange(nz)[None, None, :]
        for lesion in config.lesions:
            cx, cy, cz = lesion.center
            dist2 = (xs - cx) ** 2 + (ys - cy) ** 2 + (zs - cz) ** 2
            # Soft-edged sphere membership in [0, 1].
            mask = np.clip(1.0 - np.sqrt(dist2) / max(lesion.radius, 1e-9), 0.0, 1.0)
            curve = lesion.enhancement(tgrid)
            vol += mask[:, :, :, None] * curve[None, None, None, :]

    # Rician-like noise: magnitude of complex Gaussian perturbation.
    if config.noise_sigma > 0:
        re = vol + rng.normal(0, config.noise_sigma, size=vol.shape)
        im = rng.normal(0, config.noise_sigma, size=vol.shape)
        vol = np.sqrt(re**2 + im**2)

    vol = np.clip(vol, 0.0, 1.0)
    data = np.round(vol * config.max_value).astype(np.uint16)
    return Volume4D(data)

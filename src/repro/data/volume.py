"""In-memory 4D image volume container.

A :class:`Volume4D` wraps a ``(x, y, z, t)`` NumPy array together with the
metadata the storage and pipeline layers need (dtype on disk, intensity
range).  MRI convention used throughout the repo: axis 0/1 are in-slice
``x``/``y``, axis 2 is the slice index ``z`` within a 3D volume, axis 3 is
the time step ``t`` (paper Section 4.2: a 4D dataset is a series of 3D
volumes, each a stack of 2D image slices).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["Volume4D"]


@dataclass
class Volume4D:
    """A 4D (x, y, z, t) image volume.

    Attributes
    ----------
    data:
        The voxel array, shape ``(nx, ny, nz, nt)``.
    """

    data: np.ndarray

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data)
        if self.data.ndim != 4:
            raise ValueError(f"Volume4D requires a 4-D array, got {self.data.ndim}-D")

    @property
    def shape(self) -> Tuple[int, int, int, int]:
        return self.data.shape  # type: ignore[return-value]

    @property
    def num_slices(self) -> int:
        """Slices per 3D volume (z extent)."""
        return self.data.shape[2]

    @property
    def num_timesteps(self) -> int:
        return self.data.shape[3]

    @property
    def slice_shape(self) -> Tuple[int, int]:
        """In-plane (x, y) dimensions of one 2D image slice."""
        return self.data.shape[0], self.data.shape[1]

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def get_slice(self, t: int, z: int) -> np.ndarray:
        """The 2D image slice ``z`` of the 3D volume at time step ``t``.

        This is the unit of storage distribution (paper Section 4.2: each
        2D image slice lives in its own file, indexed by ``(t, z)``).
        """
        nz, nt = self.num_slices, self.num_timesteps
        if not (0 <= t < nt):
            raise IndexError(f"time step {t} out of range [0, {nt})")
        if not (0 <= z < nz):
            raise IndexError(f"slice {z} out of range [0, {nz})")
        return self.data[:, :, z, t]

    def set_slice(self, t: int, z: int, img: np.ndarray) -> None:
        """Store a 2D image slice at ``(t, z)``."""
        img = np.asarray(img)
        if img.shape != self.slice_shape:
            raise ValueError(f"slice shape {img.shape} != {self.slice_shape}")
        self.data[:, :, z, t] = img

    def iter_slices(self):
        """Yield ``(t, z, slice)`` in time-major order."""
        for t in range(self.num_timesteps):
            for z in range(self.num_slices):
                yield t, z, self.get_slice(t, z)

    @classmethod
    def empty(
        cls, shape: Tuple[int, int, int, int], dtype=np.uint16
    ) -> "Volume4D":
        return cls(np.zeros(shape, dtype=dtype))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Volume4D):
            return NotImplemented
        return self.data.shape == other.data.shape and bool(
            np.array_equal(self.data, other.data)
        )

"""DataCutter-style filter-stream middleware (paper Section 4.1)."""

from .buffers import DataBuffer, EndOfStream
from .faults import (
    NO_RETRY,
    CopyFailure,
    CrashAgent,
    CrashCopy,
    DelayBuffers,
    DelayConnection,
    DropBuffers,
    DropDeliveries,
    FailProcess,
    FaultPlan,
    PipelineError,
    RetryPolicy,
)
from .filter import Filter, FilterContext
from .graph import FilterGraph, FilterSpec, StreamEdge
from .net import DistRuntime, default_placement
from .obs import (
    MetricsRegistry,
    Trace,
    TraceEvent,
    Tracer,
    lifecycle_counts,
    validate_events,
)
from .placement import Placement
from .runtime_local import LocalRuntime, RunResult
from .runtime_mp import MPRuntime
from .scheduling import (
    CopyState,
    DemandDrivenPolicy,
    ExplicitPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
    make_policy,
)
from .xmlspec import graph_from_xml, graph_to_xml

__all__ = [
    "DataBuffer",
    "EndOfStream",
    "RetryPolicy",
    "NO_RETRY",
    "CopyFailure",
    "PipelineError",
    "FaultPlan",
    "CrashCopy",
    "FailProcess",
    "DelayBuffers",
    "DropBuffers",
    "CrashAgent",
    "DelayConnection",
    "DropDeliveries",
    "Filter",
    "FilterContext",
    "FilterGraph",
    "FilterSpec",
    "StreamEdge",
    "Placement",
    "LocalRuntime",
    "MPRuntime",
    "DistRuntime",
    "default_placement",
    "RunResult",
    "CopyState",
    "SchedulingPolicy",
    "RoundRobinPolicy",
    "DemandDrivenPolicy",
    "ExplicitPolicy",
    "make_policy",
    "graph_from_xml",
    "graph_to_xml",
    "TraceEvent",
    "Tracer",
    "Trace",
    "MetricsRegistry",
    "validate_events",
    "lifecycle_counts",
]

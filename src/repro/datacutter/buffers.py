"""Data buffers exchanged between filters over streams.

DataCutter streams deliver data "in user-defined data chunks (data
buffers)" (paper Section 4.1).  A :class:`DataBuffer` wraps an arbitrary
payload with the bookkeeping both runtimes need:

* ``size_bytes`` — the serialized size, used by the network cost model
  (co-located deliveries are pointer copies and ignore it);
* ``metadata`` — application hints (e.g. ROI counts) read by compute cost
  models and by explicit routing.

``EndOfStream`` markers propagate shutdown: each producer copy emits one
on every outgoing stream when it finishes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["DataBuffer", "EndOfStream"]

_buffer_ids = itertools.count()


@dataclass
class DataBuffer:
    """One unit of data flowing down a stream."""

    payload: Any
    size_bytes: int = 0
    metadata: Dict[str, Any] = field(default_factory=dict)
    buffer_id: int = field(default_factory=lambda: next(_buffer_ids))

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {self.size_bytes}")

    def __repr__(self) -> str:  # compact, payloads can be huge
        return (
            f"DataBuffer(id={self.buffer_id}, size={self.size_bytes}B, "
            f"meta={self.metadata})"
        )


@dataclass(frozen=True)
class EndOfStream:
    """Marker: one producer copy has finished writing a stream."""

    producer: str
    copy_index: int

"""Fault tolerance and fault injection for the filter-stream runtimes.

The paper's DataCutter deployment runs filter copies as independent
executables on cluster nodes, where crashed copies, stragglers and
degraded links are routine.  This module provides the shared vocabulary
both real runtimes (:class:`~repro.datacutter.runtime_local.LocalRuntime`,
:class:`~repro.datacutter.runtime_mp.MPRuntime`) use to survive them:

* :class:`RetryPolicy` — how many times a failed ``process()`` call is
  retried on the same copy (with exponential backoff) and whether, once
  a copy is given up on, its buffers are *rerouted* to a surviving
  transparent copy (at-least-once delivery; the stitching filters
  deduplicate re-delivered chunks by position).
* :class:`CopyFailure` / :class:`PipelineError` — structured per-copy
  failure records; a run that cannot be recovered raises
  :class:`PipelineError` carrying every record instead of deadlocking.
* :class:`FaultPlan` — a declarative, seeded fault-injection harness:
  crash copy *k* after *n* buffers, fail ``process()`` with probability
  *p*, delay or drop buffers.  Installable on all real runtimes (the
  simulator has its own plan in :mod:`repro.sim.faults`).
* Connection-level faults (:class:`CrashAgent`, :class:`DelayConnection`,
  :class:`DropDeliveries`) target a whole worker agent of the
  distributed runtime (:mod:`repro.datacutter.net`): kill the agent
  process outright, delay its inbound deliveries, or drop them (the
  head re-delivers — at-least-once at the transport).  They are
  rejected by the single-host runtimes, which have no connections.

Example::

    plan = (FaultPlan(seed=7)
            .crash_copy("HCC", copy_index=1, after_buffers=3)
            .fail_process("HMP", probability=0.05))
    result = LocalRuntime(graph, faults=plan, retry=RetryPolicy()).run()
    result.failed_copies   # -> [CopyFailure(HCC[1], ...)]
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

__all__ = [
    "RetryPolicy",
    "NO_RETRY",
    "CopyFailure",
    "PipelineError",
    "InjectedFault",
    "InjectedDrop",
    "InjectedCrash",
    "CrashCopy",
    "FailProcess",
    "DelayBuffers",
    "DropBuffers",
    "CrashAgent",
    "DelayConnection",
    "DropDeliveries",
    "JoinAgent",
    "DrainAgent",
    "MembershipAction",
    "validate_schedule",
    "FaultPlan",
    "CopyInjector",
    "ConnectionInjector",
    "NULL_INJECTOR",
    "NULL_CONNECTION_INJECTOR",
]


# ---------------------------------------------------------------------------
# Retry semantics


@dataclass(frozen=True)
class RetryPolicy:
    """How the runtimes respond to a failing ``process()`` call.

    A buffer whose ``process()`` raises is retried on the same copy up to
    ``max_attempts`` times total, sleeping ``backoff * backoff_factor**k``
    between attempts.  If the copy still fails it is declared dead; with
    ``reroute`` enabled (and the stream transparent, with at least one
    surviving copy) the in-hand buffer and everything still queued for
    the dead copy are re-delivered to survivors — at-least-once delivery,
    made idempotent by position-keyed dedup in the stitching filters.
    """

    max_attempts: int = 3
    backoff: float = 0.01
    backoff_factor: float = 2.0
    reroute: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")

    def delay(self, attempt: int) -> float:
        """Sleep before retry number ``attempt + 1`` (attempts are 1-based)."""
        return self.backoff * self.backoff_factor ** (attempt - 1)


#: Fail fast: one attempt, no rerouting — any copy failure aborts the run.
NO_RETRY = RetryPolicy(max_attempts=1, reroute=False)


# ---------------------------------------------------------------------------
# Failure records


@dataclass
class CopyFailure:
    """One filter copy's failure, as reported by a runtime.

    ``kind`` is ``"exception"`` (process/generate/finalize raised),
    ``"crash"`` (copy declared dead, e.g. injected crash),
    ``"exitcode"`` (MP child died without a control message), or
    ``"timeout"``.  ``recovered`` is True when the copy's pending work
    was successfully rerouted to surviving copies.
    """

    filter_name: str
    copy_index: int
    error: str
    kind: str = "exception"
    exitcode: Optional[int] = None
    injected: bool = False
    recovered: bool = False

    def describe(self) -> str:
        extra = f", exitcode={self.exitcode}" if self.exitcode is not None else ""
        return (
            f"{self.filter_name}[{self.copy_index}] ({self.kind}{extra}): "
            f"{self.error}"
        )


class PipelineError(RuntimeError):
    """A pipeline run failed; carries every copy's failure record."""

    def __init__(self, failures: List[CopyFailure], message: Optional[str] = None):
        self.failures = list(failures)
        if message is None:
            message = f"{len(self.failures)} filter copies failed"
            if self.failures:
                message += "; first: " + self.failures[0].describe()
        super().__init__(message)

    def failed_filters(self) -> List[str]:
        return sorted({f.filter_name for f in self.failures})


# ---------------------------------------------------------------------------
# Injected exceptions


class InjectedFault(RuntimeError):
    """A transient injected ``process()`` failure (retryable)."""


class InjectedDrop(InjectedFault):
    """An injected lost delivery; the retry layer re-delivers the buffer."""


class InjectedCrash(RuntimeError):
    """A fatal injected copy crash (the copy never recovers)."""

    def __init__(self, message: str, hard: bool = False):
        super().__init__(message)
        #: MP runtime only: kill the child process outright (no control
        #: message, no EOS) so the parent's exitcode watcher must detect it.
        self.hard = hard


# ---------------------------------------------------------------------------
# Declarative fault specs


@dataclass(frozen=True)
class CrashCopy:
    """Kill one copy after it has successfully processed ``after_buffers``
    buffers.  ``when="before"`` crashes before the next buffer's side
    effects (clean re-delivery); ``when="after"`` crashes after them, so
    the re-delivered buffer produces duplicates downstream and exercises
    the stitch filters' dedup.  ``hard`` (MP runtime) kills the OS
    process without any cleanup."""

    filter_name: str
    copy_index: int
    after_buffers: int = 0
    when: str = "before"
    hard: bool = False

    def __post_init__(self) -> None:
        if self.when not in ("before", "after"):
            raise ValueError(f"when must be 'before' or 'after', got {self.when!r}")
        if self.after_buffers < 0:
            raise ValueError("after_buffers must be >= 0")


@dataclass(frozen=True)
class FailProcess:
    """Fail ``process()`` with probability ``probability`` per attempt
    (seeded; retries re-roll, so transient failures eventually clear)."""

    filter_name: str
    probability: float
    copy_index: Optional[int] = None  # None: every copy
    max_failures: Optional[int] = None

    def __post_init__(self) -> None:
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError("probability must be in [0, 1]")


@dataclass(frozen=True)
class DelayBuffers:
    """Sleep ``delay`` seconds before processing a buffer (straggler)."""

    filter_name: str
    delay: float
    probability: float = 1.0
    copy_index: Optional[int] = None
    max_delays: Optional[int] = None

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError("delay must be >= 0")
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError("probability must be in [0, 1]")


@dataclass(frozen=True)
class DropBuffers:
    """Lose a delivery with probability ``probability``; the retry layer
    re-delivers it (at-least-once), so with retries enabled no data is
    lost — with retries disabled the copy dies on the first drop."""

    filter_name: str
    probability: float
    copy_index: Optional[int] = None
    max_drops: Optional[int] = None

    def __post_init__(self) -> None:
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError("probability must be in [0, 1]")


# ---------------------------------------------------------------------------
# Connection-level fault specs (distributed runtime only)


@dataclass(frozen=True)
class CrashAgent:
    """Kill one worker agent process outright (``os._exit``) after it
    has received ``after_buffers`` data deliveries.  Every filter copy
    the agent hosts dies with it; the head must detect the dead
    connection and reroute the agent's unacknowledged chunks."""

    agent: Union[int, str]
    after_buffers: int = 0

    def __post_init__(self) -> None:
        if self.after_buffers < 0:
            raise ValueError("after_buffers must be >= 0")


@dataclass(frozen=True)
class DelayConnection:
    """Sleep ``delay`` seconds before dispatching an inbound delivery on
    one agent's connection (a congested or distant link)."""

    agent: Union[int, str]
    delay: float
    probability: float = 1.0
    max_delays: Optional[int] = None

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError("delay must be >= 0")
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError("probability must be in [0, 1]")


@dataclass(frozen=True)
class DropDeliveries:
    """Lose an inbound delivery on one agent's connection with
    probability ``probability``.  The agent reports the loss and the
    head re-delivers — at-least-once at the transport level, so with
    surviving credit the run still completes."""

    agent: Union[int, str]
    probability: float
    max_drops: Optional[int] = None

    def __post_init__(self) -> None:
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError("probability must be in [0, 1]")


# ---------------------------------------------------------------------------
# Membership-churn actions (elastic distributed runtime only)
#
# Not faults: a join or a planned drain is healthy cluster behaviour
# (autoscaling, maintenance).  They live here because scenario specs
# mix them freely with FaultPlan entries to script one run's churn.


@dataclass(frozen=True)
class JoinAgent:
    """Attach one new worker agent ``at`` seconds into the run.

    Loopback hosts are forked by the head like startup agents; any other
    host must launch ``python -m repro.datacutter.net.agent`` with the
    command the head prints.  The head installs one new copy of every
    elastic-eligible filter (replicated, all inputs transparent) on the
    joiner and rebalances pending chunk assignments onto it.
    """

    at: float
    host: str = "127.0.0.1"

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("at must be >= 0")
        if not self.host:
            raise ValueError("host must be non-empty")


@dataclass(frozen=True)
class DrainAgent:
    """Gracefully drain one worker agent ``at`` seconds into the run.

    The head stops dispatching new buffers to the agent's copies, lets
    in-flight chunks finish (within ``deadline`` seconds if given),
    closes the copies' input streams so they finalize, then detaches the
    agent with a clean DETACH handshake.  A drain that exceeds its
    deadline — or an agent that goes silent mid-drain — is reclassified
    as a crash and handled by the reroute machinery.
    """

    at: float
    agent: Union[int, str] = -1
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("at must be >= 0")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")


MembershipAction = Union[JoinAgent, DrainAgent]


def validate_schedule(
    schedule: List[MembershipAction], agents: List[str], elastic: bool
) -> None:
    """Reject membership schedules that could never apply.

    ``agents`` names the run's *initial* worker agents.  Drain targets
    may also be integer indices of agents that join later (index >= the
    initial count is only valid when ``elastic``); joins always require
    the elastic listener.
    """
    for action in schedule:
        if isinstance(action, JoinAgent):
            if not elastic:
                raise ValueError(
                    "JoinAgent in the schedule requires elastic=True "
                    "(the listener must stay open for late attach)"
                )
        elif isinstance(action, DrainAgent):
            if isinstance(action.agent, int):
                if action.agent < 0 or (
                    action.agent >= len(agents) and not elastic
                ):
                    raise ValueError(
                        f"DrainAgent targets agent {action.agent} but the "
                        f"runtime starts {len(agents)} agents"
                    )
            elif action.agent not in agents and not elastic:
                raise ValueError(
                    f"DrainAgent targets unknown agent {action.agent!r}; "
                    f"runtime has {agents}"
                )
        else:
            raise ValueError(
                f"unknown membership action {type(action).__name__}"
            )


ConnectionFault = (CrashAgent, DelayConnection, DropDeliveries)

FaultSpec = Union[
    CrashCopy,
    FailProcess,
    DelayBuffers,
    DropBuffers,
    CrashAgent,
    DelayConnection,
    DropDeliveries,
]


class FaultPlan:
    """A seeded, declarative set of faults to inject into one run.

    Builder methods chain::

        plan = (FaultPlan(seed=0)
                .crash_copy("HCC", 1, after_buffers=5)
                .delay_buffers("HMP", delay=0.01, probability=0.2))

    The plan is installed on a runtime (``LocalRuntime(g, faults=plan)``)
    which derives one deterministic :class:`CopyInjector` per filter
    copy; the same plan therefore injects the same faults on both real
    runtimes (modulo scheduling nondeterminism in what each copy sees).
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.faults: List[FaultSpec] = []

    # -- builders ----------------------------------------------------------

    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.faults.append(spec)
        return self

    def crash_copy(
        self,
        filter_name: str,
        copy_index: int,
        after_buffers: int = 0,
        when: str = "before",
        hard: bool = False,
    ) -> "FaultPlan":
        return self.add(CrashCopy(filter_name, copy_index, after_buffers, when, hard))

    def fail_process(
        self,
        filter_name: str,
        probability: float,
        copy_index: Optional[int] = None,
        max_failures: Optional[int] = None,
    ) -> "FaultPlan":
        return self.add(FailProcess(filter_name, probability, copy_index, max_failures))

    def delay_buffers(
        self,
        filter_name: str,
        delay: float,
        probability: float = 1.0,
        copy_index: Optional[int] = None,
        max_delays: Optional[int] = None,
    ) -> "FaultPlan":
        return self.add(
            DelayBuffers(filter_name, delay, probability, copy_index, max_delays)
        )

    def drop_buffers(
        self,
        filter_name: str,
        probability: float,
        copy_index: Optional[int] = None,
        max_drops: Optional[int] = None,
    ) -> "FaultPlan":
        return self.add(DropBuffers(filter_name, probability, copy_index, max_drops))

    def crash_agent(
        self, agent: Union[int, str], after_buffers: int = 0
    ) -> "FaultPlan":
        return self.add(CrashAgent(agent, after_buffers))

    def delay_connection(
        self,
        agent: Union[int, str],
        delay: float,
        probability: float = 1.0,
        max_delays: Optional[int] = None,
    ) -> "FaultPlan":
        return self.add(DelayConnection(agent, delay, probability, max_delays))

    def drop_deliveries(
        self,
        agent: Union[int, str],
        probability: float,
        max_drops: Optional[int] = None,
    ) -> "FaultPlan":
        return self.add(DropDeliveries(agent, probability, max_drops))

    # -- queries -----------------------------------------------------------

    def affects(self, filter_name: str) -> bool:
        return any(
            getattr(f, "filter_name", None) == filter_name for f in self.faults
        )

    def connection_faults(self) -> List[FaultSpec]:
        return [f for f in self.faults if isinstance(f, ConnectionFault)]

    def validate(
        self,
        copies_by_filter: Dict[str, int],
        agents: Optional[List[str]] = None,
        elastic: bool = False,
    ) -> None:
        """Reject faults that target nothing.

        A typo'd filter name or an out-of-range copy index would
        otherwise inject nothing — and a resilience run that quietly
        tested nothing looks exactly like a clean recovery.
        ``agents`` names the distributed runtime's worker agents;
        ``None`` (the single-host runtimes) rejects connection-level
        faults outright, since there is no connection to break.  With
        ``elastic`` the runtime may grow past the initial agent list, so
        out-of-range indices (agents that join later) are allowed.
        """
        for f in self.faults:
            if isinstance(f, ConnectionFault):
                if agents is None:
                    raise ValueError(
                        f"{type(f).__name__} targets a worker agent; "
                        "connection-level faults require the distributed "
                        "runtime"
                    )
                if isinstance(f.agent, int):
                    if f.agent < 0 or (f.agent >= len(agents) and not elastic):
                        raise ValueError(
                            f"fault targets agent {f.agent} but the runtime "
                            f"has {len(agents)} agents"
                        )
                elif f.agent not in agents and not elastic:
                    raise ValueError(
                        f"fault targets unknown agent {f.agent!r}; "
                        f"runtime has {agents}"
                    )
                continue
            if f.filter_name not in copies_by_filter:
                raise ValueError(
                    f"fault targets unknown filter {f.filter_name!r}; "
                    f"graph has {sorted(copies_by_filter)}"
                )
            idx = getattr(f, "copy_index", None)
            if idx is not None and not (0 <= idx < copies_by_filter[f.filter_name]):
                raise ValueError(
                    f"fault targets {f.filter_name}[{idx}] but the filter "
                    f"has {copies_by_filter[f.filter_name]} copies"
                )

    def injector_for(self, filter_name: str, copy_index: int) -> "CopyInjector":
        """The (deterministic) injector for one filter copy."""
        mine = [
            f
            for f in self.faults
            if getattr(f, "filter_name", None) == filter_name
            and (getattr(f, "copy_index", None) is None
                 or f.copy_index == copy_index)
        ]
        if not mine:
            return NULL_INJECTOR
        return CopyInjector(mine, self.seed, filter_name, copy_index)

    def connection_injector_for(
        self, agent_index: int, agent_name: str
    ) -> "ConnectionInjector":
        """The (deterministic) connection injector for one agent."""
        mine = [
            f
            for f in self.connection_faults()
            if f.agent == agent_index or f.agent == agent_name
        ]
        if not mine:
            return NULL_CONNECTION_INJECTOR
        return ConnectionInjector(mine, self.seed, agent_index, agent_name)

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, faults={self.faults!r})"


class CopyInjector:
    """Per-copy fault state: consulted around every ``process()`` call.

    ``before_process`` may sleep (delay), raise :class:`InjectedFault` /
    :class:`InjectedDrop` (retryable) or :class:`InjectedCrash` (fatal);
    ``after_process`` raises crashes configured with ``when="after"``.
    The RNG is seeded from ``(plan seed, filter, copy)`` so runs are
    reproducible.
    """

    active = True

    def __init__(
        self, specs: List[FaultSpec], seed: int, filter_name: str, copy_index: int
    ):
        self._crashes = [s for s in specs if isinstance(s, CrashCopy)]
        self._fails = [s for s in specs if isinstance(s, FailProcess)]
        self._delays = [s for s in specs if isinstance(s, DelayBuffers)]
        self._drops = [s for s in specs if isinstance(s, DropBuffers)]
        self._rng = random.Random(f"{seed}|{filter_name}|{copy_index}")
        self.filter_name = filter_name
        self.copy_index = copy_index
        self.received = 0
        self._fired = {}  # id(spec) -> count

    def _under_cap(self, spec, cap: Optional[int]) -> bool:
        return cap is None or self._fired.get(id(spec), 0) < cap

    def _fire(self, spec) -> None:
        self._fired[id(spec)] = self._fired.get(id(spec), 0) + 1

    def before_process(self, buffer, attempt: int = 1) -> None:
        if attempt == 1:
            self.received += 1
        for spec in self._crashes:
            if spec.when == "before" and self.received > spec.after_buffers:
                raise InjectedCrash(
                    f"injected crash: {self.filter_name}[{self.copy_index}] "
                    f"after {spec.after_buffers} buffers",
                    hard=spec.hard,
                )
        for spec in self._delays:
            if self._under_cap(spec, spec.max_delays) and (
                spec.probability >= 1.0 or self._rng.random() < spec.probability
            ):
                self._fire(spec)
                time.sleep(spec.delay)
        for spec in self._drops:
            if self._under_cap(spec, spec.max_drops) and (
                self._rng.random() < spec.probability
            ):
                self._fire(spec)
                raise InjectedDrop(
                    f"injected drop: buffer lost before "
                    f"{self.filter_name}[{self.copy_index}]"
                )
        for spec in self._fails:
            if self._under_cap(spec, spec.max_failures) and (
                self._rng.random() < spec.probability
            ):
                self._fire(spec)
                raise InjectedFault(
                    f"injected process() failure in "
                    f"{self.filter_name}[{self.copy_index}]"
                )

    def after_process(self, buffer) -> None:
        for spec in self._crashes:
            if spec.when == "after" and self.received > spec.after_buffers:
                raise InjectedCrash(
                    f"injected crash (post-process): "
                    f"{self.filter_name}[{self.copy_index}] after "
                    f"{spec.after_buffers} buffers",
                    hard=spec.hard,
                )


class _NullInjector:
    """Inert injector: the no-fault fast path (no per-buffer branching)."""

    active = False
    received = 0

    def before_process(self, buffer, attempt: int = 1) -> None:
        pass

    def after_process(self, buffer) -> None:
        pass


NULL_INJECTOR = _NullInjector()


class ConnectionInjector:
    """Per-agent connection fault state, consulted once per inbound
    data delivery on the agent's head connection.

    :meth:`on_deliver` may sleep (delayed link) and returns one of
    ``"ok"`` (dispatch normally), ``"drop"`` (lose the delivery; the
    agent nacks it so the head re-delivers) or ``"crash"`` (the agent
    must kill its own process — no goodbye, the head's death detection
    has to catch it).  Seeded from ``(plan seed, agent)`` so runs are
    reproducible.
    """

    active = True

    def __init__(
        self,
        specs: List[FaultSpec],
        seed: int,
        agent_index: int,
        agent_name: str,
    ):
        self._crashes = [s for s in specs if isinstance(s, CrashAgent)]
        self._delays = [s for s in specs if isinstance(s, DelayConnection)]
        self._drops = [s for s in specs if isinstance(s, DropDeliveries)]
        self._rng = random.Random(f"{seed}|agent|{agent_index}|{agent_name}")
        self.agent_index = agent_index
        self.agent_name = agent_name
        self.received = 0
        self._fired: Dict[int, int] = {}

    def _under_cap(self, spec, cap: Optional[int]) -> bool:
        return cap is None or self._fired.get(id(spec), 0) < cap

    def _fire(self, spec) -> None:
        self._fired[id(spec)] = self._fired.get(id(spec), 0) + 1

    def on_deliver(self) -> str:
        self.received += 1
        for spec in self._crashes:
            if self.received > spec.after_buffers:
                return "crash"
        for spec in self._delays:
            if self._under_cap(spec, spec.max_delays) and (
                spec.probability >= 1.0 or self._rng.random() < spec.probability
            ):
                self._fire(spec)
                time.sleep(spec.delay)
        for spec in self._drops:
            if self._under_cap(spec, spec.max_drops) and (
                self._rng.random() < spec.probability
            ):
                self._fire(spec)
                return "drop"
        return "ok"


class _NullConnectionInjector:
    """Inert connection injector (no per-delivery branching)."""

    active = False
    received = 0

    def on_deliver(self) -> str:
        return "ok"


NULL_CONNECTION_INJECTOR = _NullConnectionInjector()

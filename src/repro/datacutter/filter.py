"""Filter base class and execution context.

A DataCutter filter (paper Section 4.1) consumes data buffers from its
input streams, processes them, and writes buffers to its output streams.
Filters never touch the transport directly: the runtime hands each copy a
:class:`FilterContext` whose ``send`` routes buffers to downstream copies
(over "TCP" in the simulator, via queues in the threaded runtime, by
pointer copy when co-located).

Filter lifecycle, identical in both runtimes::

    initialize(ctx)
    # source filters (no input streams):
    generate(ctx)
    # non-source filters, once per arriving buffer, any input stream:
    process(stream_name, buffer, ctx)
    # after every input stream has delivered EndOfStream from every
    # upstream producer copy:
    finalize(ctx)

Copies of a filter are independent (transparent copies, paper 4.1); a
copy learns its identity from ``ctx.copy_index`` / ``ctx.num_copies``.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Optional

from .buffers import DataBuffer

__all__ = ["Filter", "FilterContext"]


class FilterContext(abc.ABC):
    """Runtime services available to a running filter copy."""

    #: True when the hosting runtime is collecting trace events.  Filters
    #: consult this before doing any tracing-only work (extra timers), so
    #: the disabled path costs one attribute read.
    tracing: bool = False

    def __init__(self, filter_name: str, copy_index: int, num_copies: int):
        self.filter_name = filter_name
        self.copy_index = copy_index
        self.num_copies = num_copies

    def event(
        self,
        kind: str,
        *,
        dur: float = 0.0,
        chunk: Optional[tuple] = None,
        **attrs: Any,
    ) -> None:
        """Emit a trace event attributed to this filter copy.

        No-op unless the runtime traces (see
        :mod:`repro.datacutter.obs`); runtimes that trace override this.
        """

    @abc.abstractmethod
    def send(
        self,
        stream: str,
        payload: Any,
        size_bytes: int = 0,
        metadata: Optional[Dict[str, Any]] = None,
        dest_copy: Optional[int] = None,
    ) -> None:
        """Write one buffer to an output stream.

        ``dest_copy`` addresses a specific consumer copy and is only
        valid on streams connected with the *explicit* policy (paper
        4.1: explicit filters give the user control over which consumer
        copy receives which chunk); transparent streams pick the copy via
        their scheduling policy.
        """

    @abc.abstractmethod
    def deposit(self, key: str, value: Any) -> None:
        """Publish a result to the runtime's shared result store.

        Used by terminal filters (USO, JIW) so drivers can retrieve
        outputs after the run.
        """

    def log(self, message: str) -> None:  # pragma: no cover - debug aid
        """Optional diagnostic logging; runtimes may override."""


class Filter(abc.ABC):
    """Base class for all filters.

    Subclasses implement ``generate`` (sources) or ``process`` (others),
    and may override ``initialize`` / ``finalize``.  A filter object is
    instantiated once *per copy*, so instance attributes are copy-local
    state (e.g. the IIC filter's partial-chunk buffers).
    """

    #: Class-level default name; instances may override via constructor.
    name: str = "filter"

    def initialize(self, ctx: FilterContext) -> None:
        """Called once before any data flows."""

    def generate(self, ctx: FilterContext) -> None:
        """Source-filter entry point (filters with no input streams)."""
        raise NotImplementedError(
            f"{type(self).__name__} has no input streams but does not "
            "implement generate()"
        )

    def process(self, stream: str, buffer: DataBuffer, ctx: FilterContext) -> None:
        """Handle one arriving buffer from the named input stream."""
        raise NotImplementedError(
            f"{type(self).__name__} received a buffer on {stream!r} but "
            "does not implement process()"
        )

    def finalize(self, ctx: FilterContext) -> None:
        """Called once after all input streams are exhausted."""

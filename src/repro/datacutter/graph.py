"""Filter graphs: filters, copy counts and stream connections.

A :class:`FilterGraph` is the declarative description of a filter network
(the paper expresses this as an XML document; see
:mod:`repro.datacutter.xmlspec`).  Filters are registered with a factory
(one fresh :class:`~repro.datacutter.filter.Filter` instance is built per
copy) and connected by named unidirectional streams, each with a buffer
scheduling policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .filter import Filter
from .scheduling import make_policy

__all__ = ["FilterGraph", "FilterSpec", "StreamEdge"]

FilterFactory = Callable[[], Filter]


@dataclass
class FilterSpec:
    """One filter in the graph, instantiated as ``copies`` transparent
    (or explicitly addressed) copies at run time."""

    name: str
    factory: FilterFactory
    copies: int = 1

    def __post_init__(self) -> None:
        if self.copies < 1:
            raise ValueError(f"filter {self.name!r}: copies must be >= 1")


@dataclass
class StreamEdge:
    """A unidirectional stream from one filter's output to another."""

    stream: str
    src: str
    dst: str
    policy: str = "demand_driven"

    def __post_init__(self) -> None:
        make_policy(self.policy)  # validate early


class FilterGraph:
    """A network of filters connected by streams."""

    def __init__(self) -> None:
        self.filters: Dict[str, FilterSpec] = {}
        self.edges: List[StreamEdge] = []

    def add_filter(self, name: str, factory: FilterFactory, copies: int = 1) -> None:
        if name in self.filters:
            raise ValueError(f"duplicate filter name {name!r}")
        self.filters[name] = FilterSpec(name=name, factory=factory, copies=copies)

    def connect(
        self, src: str, stream: str, dst: str, policy: str = "demand_driven"
    ) -> None:
        """Connect ``src``'s output stream ``stream`` to filter ``dst``."""
        for name in (src, dst):
            if name not in self.filters:
                raise ValueError(f"unknown filter {name!r}")
        if any(e.stream == stream and e.src == src for e in self.edges):
            raise ValueError(f"stream {stream!r} of {src!r} already connected")
        self.edges.append(StreamEdge(stream=stream, src=src, dst=dst, policy=policy))

    # -- queries -----------------------------------------------------------

    def out_edges(self, name: str) -> List[StreamEdge]:
        return [e for e in self.edges if e.src == name]

    def in_edges(self, name: str) -> List[StreamEdge]:
        return [e for e in self.edges if e.dst == name]

    def sources(self) -> List[str]:
        """Filters with no input streams (run via ``generate``)."""
        return [name for name in self.filters if not self.in_edges(name)]

    def sinks(self) -> List[str]:
        return [name for name in self.filters if not self.out_edges(name)]

    def copies(self, name: str) -> int:
        return self.filters[name].copies

    def validate(self) -> None:
        """Check the graph is runnable: connected, acyclic, has sources."""
        if not self.filters:
            raise ValueError("empty filter graph")
        if not self.sources():
            raise ValueError("graph has no source filters (cycle or no entry)")
        # Cycle check via Kahn's algorithm on filter-level edges.
        indeg = {name: len(self.in_edges(name)) for name in self.filters}
        ready = [n for n, d in indeg.items() if d == 0]
        seen = 0
        while ready:
            n = ready.pop()
            seen += 1
            for e in self.out_edges(n):
                indeg[e.dst] -= 1
                if indeg[e.dst] == 0:
                    ready.append(e.dst)
        if seen != len(self.filters):
            raise ValueError("filter graph contains a cycle")

    def __repr__(self) -> str:
        fl = ", ".join(f"{s.name}x{s.copies}" for s in self.filters.values())
        return f"FilterGraph({fl}; {len(self.edges)} streams)"

"""Distributed TCP transport for the filter-stream middleware.

Three layers, mirroring DataCutter's deployment on a real cluster:

* :mod:`repro.datacutter.net.codec` — the wire format: length-prefixed
  frames whose numpy payloads travel as raw buffers (pickle protocol 5
  out-of-band), never copied into the pickle stream.
* :mod:`repro.datacutter.net.shm` — the same-host fast path: a
  reference-counted shared-memory slab pool plus frame extensions that
  let the multiprocessing runtime hand ndarray payloads over as pool
  descriptors instead of copying them through pipes.
* :mod:`repro.datacutter.net.agent` — the per-host worker: hosts filter
  copies and bridges their streams to the head over one TCP connection.
* :mod:`repro.datacutter.net.runtime_dist` — :class:`DistRuntime`, the
  head-side runtime: ships the graph to agents, routes buffers with
  credit-based flow control, detects dead agents and reroutes their
  chunks, and raises the same structured
  :class:`~repro.datacutter.faults.PipelineError` as the local runtimes.
"""

from .codec import (
    CodecError,
    ConnectionClosed,
    decode,
    dumps,
    encode,
    loads,
    recv_message,
    send_message,
)
from .runtime_dist import DistRuntime, default_placement
from .shm import ShmPool

__all__ = [
    "ShmPool",
    "CodecError",
    "ConnectionClosed",
    "encode",
    "decode",
    "dumps",
    "loads",
    "send_message",
    "recv_message",
    "DistRuntime",
    "default_placement",
]

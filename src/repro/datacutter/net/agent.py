"""Worker agent: hosts filter copies on one machine and bridges their
streams to the head over a single TCP connection.

One agent runs per host of a distributed run.  It connects to the head
(:class:`~repro.datacutter.net.runtime_dist.DistRuntime`), receives its
``setup`` (which filter copies it hosts, retry policy, fault plan), and
runs each copy in its own thread with the same lifecycle as the local
runtimes: ``initialize`` → ``generate``/``process`` per buffer →
``finalize``.  Routing stays at the head — a copy's ``ctx.send`` just
frames the buffer back to the head, which schedules it onto a consumer
copy (possibly on another agent).

Flow control is credit-based end to end:

* Inbound, the head never has more than the per-copy queue depth of
  unacknowledged deliveries outstanding to any copy; the ``ack`` the
  agent sends after a buffer is processed returns the credit.
* Outbound, each producing copy holds a bounded *send window*; the head
  grants a slot back (``scredit``) whenever one of the copy's buffers is
  dispatched to a consumer.  A producer therefore blocks — abort-aware —
  instead of flooding the head's pending queues, which is how bounded
  stream buffers behave in DataCutter.

All frames leave through one writer thread, so they never interleave and
TCP ordering does the protocol work: a copy's ``send`` frames reach the
head strictly before its ``ack``/``done``, so the head's edge-drain
accounting can never miss children of a buffer it believes consumed.

Fault injection: copy-level faults from the shared
:class:`~repro.datacutter.faults.FaultPlan` run inside the copy threads
exactly as in the local runtimes; connection-level faults
(:class:`~repro.datacutter.faults.CrashAgent` & friends) run in the
dispatcher — a crash kills the whole process with ``os._exit`` so the
head's death detection, not a polite goodbye, has to notice.

External hosts launch the agent standalone::

    python -m repro.datacutter.net.agent --connect HEAD:PORT \\
        --index I --token TOKEN

in which case the filter graph arrives pickled inside ``setup`` (filter
factories must then be importable module-level callables, and source
filters that read the dataset need it on a shared filesystem).  Loopback
agents are forked by the head and inherit the graph through process
memory, so tests and CI need no real cluster and no picklable factories.

Elastic membership is head-driven and needs almost nothing here: a
*joining* agent runs exactly this code (the head registers its index
first via ``DistRuntime.add_agent``), and a *draining* agent just honors
two extra control frames — ``drain`` (informational; the head stops
dispatching and closes the copies' inputs early) and ``detach`` (leave
the dispatcher loop cleanly once every hosted copy has reported in).
"""

from __future__ import annotations

import argparse
import os
import queue
import selectors
import socket
import threading
import time
import traceback
from typing import Any, Dict, List, Optional, Tuple

from ..buffers import DataBuffer
from ..faults import (
    NULL_CONNECTION_INJECTOR,
    NULL_INJECTOR,
    CopyFailure,
    InjectedCrash,
    InjectedFault,
    RetryPolicy,
)
from ..filter import FilterContext
from ..graph import FilterGraph
from ..obs import Tracer
from . import codec

__all__ = ["AgentRunner", "run_agent", "spawned_agent_main", "main"]

#: Default watchdog granularity while blocked (seconds).  The head
#: threads the runtime's configured ``poll_interval`` through ``setup``
#: (9th element), which overrides this; every blocking wait in the agent
#: is otherwise event-driven (socket readiness via ``selectors``, queue
#: puts, condition notifies, abort-event waits), so the interval only
#: bounds recovery from a missed wakeup.
_POLL = 0.05
#: Heartbeat period (seconds); the head's timeout is several of these.
HEARTBEAT_INTERVAL = 0.5
#: Exit status for injected agent crashes (mimics an uncaught signal).
CRASH_EXIT = 23


class _Aborted(BaseException):
    """Internal unwind signal raised inside copy threads on shutdown."""


class _CopyDied(Exception):
    """A copy exhausted its retries (or was crashed by injection)."""

    def __init__(self, cause: BaseException, injected: bool):
        super().__init__(str(cause))
        self.cause = cause
        self.injected = injected


class _SendWindow:
    """Bounded outbound window for one producing copy's stream.

    ``acquire`` blocks (abort-aware) while ``limit`` sends await dispatch
    at the head; ``release`` is called when an ``scredit`` grant arrives.
    """

    def __init__(self, limit: int, abort: threading.Event, poll: float = _POLL):
        self.limit = limit
        self.outstanding = 0
        self.cond = threading.Condition()
        self.abort = abort
        self.poll = poll

    def acquire(self) -> None:
        with self.cond:
            while self.outstanding >= self.limit:
                if self.abort.is_set():
                    raise _Aborted()
                # ``release``/``wake`` notify the condition, so this
                # timeout is a watchdog, not the wakeup mechanism.
                self.cond.wait(timeout=self.poll)
            self.outstanding += 1
        if self.abort.is_set():
            raise _Aborted()

    def release(self) -> None:
        with self.cond:
            if self.outstanding > 0:
                self.outstanding -= 1
            self.cond.notify()

    def wake(self) -> None:
        with self.cond:
            self.cond.notify_all()


class _AgentContext(FilterContext):
    """Bridges a filter copy's sends and deposits onto the head link."""

    def __init__(
        self,
        runner: "AgentRunner",
        filter_name: str,
        copy_index: int,
        num_copies: int,
        out_edges: Dict[str, Any],
        tracer: Optional[Tracer] = None,
    ):
        super().__init__(filter_name, copy_index, num_copies)
        self._runner = runner
        self._out = out_edges  # stream name -> StreamEdge
        self._tracer = tracer
        self.tracing = tracer is not None

    def event(self, kind, *, dur=0.0, chunk=None, **attrs):
        if self._tracer is not None:
            self._tracer.emit(
                kind,
                filter=self.filter_name,
                copy=self.copy_index,
                dur=dur,
                chunk=chunk,
                **attrs,
            )

    def send(self, stream, payload, size_bytes=0, metadata=None, dest_copy=None):
        try:
            edge = self._out[stream]
        except KeyError:
            raise RuntimeError(
                f"filter {self.filter_name!r} has no output stream {stream!r}"
            ) from None
        explicit = edge.policy == "explicit"
        if explicit and dest_copy is None:
            raise RuntimeError(
                f"stream {stream!r} is explicit: dest_copy required"
            )
        if not explicit and dest_copy is not None:
            raise RuntimeError(
                f"stream {stream!r} is {edge.policy}: dest_copy only valid "
                "on explicit streams"
            )
        if dest_copy is not None and not (
            0 <= dest_copy < self._runner.graph.copies(edge.dst)
        ):
            raise RuntimeError(
                f"stream {stream!r}: dest copy {dest_copy} out of range"
            )
        buf = DataBuffer(
            payload=payload, size_bytes=size_bytes, metadata=dict(metadata or {})
        )
        window = self._runner.send_window(self.filter_name, self.copy_index, stream)
        window.acquire()
        self._runner.post(
            ("send", self.filter_name, self.copy_index, stream, dest_copy, buf)
        )

    def deposit(self, key, value):
        self._runner.post(("deposit", key, value))


class _CopyWorker:
    """One hosted filter copy: its thread, input queue and life cycle."""

    def __init__(self, runner: "AgentRunner", filter_name: str, copy_index: int):
        self.runner = runner
        self.filter_name = filter_name
        self.copy_index = copy_index
        self.in_q: "queue.Queue" = queue.Queue()
        self.dead = False  # failed; the dispatcher drops later deliveries
        self.retries = 0
        # Per-copy tracer: events batch locally and ride home on the
        # terminal done/copy_failed message, never per-buffer frames.
        self.tracer: Optional[Tracer] = Tracer() if runner.trace else None
        self.thread = threading.Thread(
            target=self._run,
            name=f"{filter_name}[{copy_index}]@agent{runner.agent_index}",
            daemon=True,
        )

    # -- retry loop (mirrors LocalRuntime._process_with_retry) -------------

    def _process_with_retry(self, filt, stream, buffer, ctx, injector) -> float:
        runner = self.runner
        retry = runner.retry
        attempt = 1
        while True:
            try:
                injector.before_process(buffer, attempt)
                t0 = time.perf_counter()
                filt.process(stream, buffer, ctx)
                dt = time.perf_counter() - t0
                injector.after_process(buffer)
                return dt
            except InjectedCrash as exc:
                if exc.hard:
                    # A real machine failure: the whole agent dies with no
                    # goodbye; the head's death detection must catch it.
                    os._exit(CRASH_EXIT)
                raise _CopyDied(exc, injected=True) from exc
            except _Aborted:
                raise
            except BaseException as exc:  # noqa: BLE001 - retried or reported
                if attempt >= retry.max_attempts:
                    raise _CopyDied(exc, injected=isinstance(exc, InjectedFault))
                self.retries += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        "fault.retry",
                        filter=self.filter_name,
                        copy=self.copy_index,
                        attempt=attempt,
                        error=repr(exc),
                    )
                # Event-driven backoff: one wait for the whole delay,
                # interrupted immediately by the runner's abort (this
                # also threads the configured interval instead of the
                # module-global tick the old loop hardwired).
                if runner.abort.wait(timeout=retry.delay(attempt)):
                    raise _Aborted()
                attempt += 1

    # -- life cycle ---------------------------------------------------------

    def _run(self) -> None:
        runner = self.runner
        graph = runner.graph
        spec = graph.filters[self.filter_name]
        injector = (
            runner.faults.injector_for(self.filter_name, self.copy_index)
            if runner.faults is not None
            else NULL_INJECTOR
        )
        t_busy = 0.0
        out_edges = {e.stream: e for e in graph.out_edges(self.filter_name)}
        in_streams = {e.stream for e in graph.in_edges(self.filter_name)}
        try:
            filt = spec.factory()
            ctx = _AgentContext(
                runner,
                self.filter_name,
                self.copy_index,
                spec.copies,
                out_edges,
                self.tracer,
            )
            if self.tracer is not None:
                self.tracer.emit(
                    "copy.start",
                    filter=self.filter_name,
                    copy=self.copy_index,
                    agent=runner.agent_name,
                )
            t0 = time.perf_counter()
            filt.initialize(ctx)
            t_busy += time.perf_counter() - t0
            if not in_streams:
                t0 = time.perf_counter()
                filt.generate(ctx)
                t_busy += time.perf_counter() - t0
            else:
                open_streams = set(in_streams)
                while open_streams:
                    if runner.abort.is_set():
                        raise _Aborted()
                    try:
                        # Every wake is a put (buf/close/stop — the
                        # dispatcher and the abort paths both post
                        # "stop"), so the timeout is a pure watchdog.
                        item = self.in_q.get(timeout=runner.poll)
                    except queue.Empty:
                        continue
                    kind = item[0]
                    if kind == "close":
                        open_streams.discard(item[1])
                        continue
                    if kind == "stop":
                        raise _Aborted()
                    _, stream, seq, buffer = item
                    if self.tracer is not None:
                        enq = buffer.metadata.pop("_obs_enq", None)
                        chunk = buffer.metadata.get("chunk")
                        if enq is not None:
                            self.tracer.emit(
                                "queue.wait",
                                filter=self.filter_name,
                                copy=self.copy_index,
                                dur=max(time.time() - enq, 0.0),
                                chunk=chunk,
                                stream=stream,
                            )
                        self.tracer.emit(
                            "queue.depth",
                            filter=self.filter_name,
                            copy=self.copy_index,
                            depth=self.in_q.qsize(),
                        )
                    try:
                        dt = self._process_with_retry(
                            filt, stream, buffer, ctx, injector
                        )
                        t_busy += dt
                        if self.tracer is not None:
                            self.tracer.emit(
                                "service",
                                filter=self.filter_name,
                                copy=self.copy_index,
                                dur=dt,
                                chunk=buffer.metadata.get("chunk"),
                                stream=stream,
                            )
                        runner.post(("ack", seq))
                    except _CopyDied as died:
                        self.dead = True
                        # The head holds every unacknowledged delivery for
                        # this copy — the in-hand buffer included — in its
                        # in-flight table and reroutes them all, so just
                        # report the death and stop.
                        runner.post(
                            (
                                "copy_failed",
                                CopyFailure(
                                    filter_name=self.filter_name,
                                    copy_index=self.copy_index,
                                    error=repr(died.cause),
                                    kind="crash" if died.injected else "exception",
                                    injected=died.injected,
                                ),
                                t_busy,
                                self.retries,
                                self._drain_events(),
                            )
                        )
                        return
            t0 = time.perf_counter()
            filt.finalize(ctx)
            t_busy += time.perf_counter() - t0
            if self.tracer is not None:
                self.tracer.emit(
                    "copy.done",
                    filter=self.filter_name,
                    copy=self.copy_index,
                    busy=t_busy,
                    dead=False,
                )
            runner.post(
                (
                    "done",
                    self.filter_name,
                    self.copy_index,
                    t_busy,
                    self.retries,
                    self._drain_events(),
                )
            )
        except _Aborted:
            pass
        except BaseException:  # noqa: BLE001 - reported to the head
            self.dead = True
            runner.post(
                (
                    "copy_failed",
                    CopyFailure(
                        filter_name=self.filter_name,
                        copy_index=self.copy_index,
                        error=traceback.format_exc().strip(),
                        kind="exception",
                    ),
                    t_busy,
                    self.retries,
                    self._drain_events(),
                )
            )

    def _drain_events(self):
        return self.tracer.drain() if self.tracer is not None else []


class AgentRunner:
    """Drives one agent connection: dispatcher, writer, copy threads."""

    def __init__(
        self,
        sock: socket.socket,
        agent_index: int,
        token: str,
        graph: Optional[FilterGraph] = None,
    ):
        self.sock = sock
        self.agent_index = agent_index
        self.agent_name = f"agent{agent_index}"
        self.token = token
        self.graph = graph
        self.retry = RetryPolicy()
        self.faults = None
        self.trace = False
        #: Set when the head announced a drain; the copies keep running
        #: until their inputs close, this only records the lifecycle.
        self.draining = False
        self.abort = threading.Event()
        self.poll = _POLL
        self.out_q: "queue.Queue" = queue.Queue()
        self.copies: Dict[Tuple[str, int], _CopyWorker] = {}
        self._windows: Dict[Tuple[str, int, str], _SendWindow] = {}
        self._windows_lock = threading.Lock()
        self._send_window_limit = 16
        self._conn_injector = NULL_CONNECTION_INJECTOR

    # -- outbound -----------------------------------------------------------

    def post(self, msg: Any) -> None:
        self.out_q.put(msg)

    def send_window(
        self, filter_name: str, copy_index: int, stream: str
    ) -> _SendWindow:
        key = (filter_name, copy_index, stream)
        with self._windows_lock:
            win = self._windows.get(key)
            if win is None:
                win = _SendWindow(
                    self._send_window_limit, self.abort, poll=self.poll
                )
                self._windows[key] = win
        return win

    def _writer(self) -> None:
        while True:
            msg = self.out_q.get()
            if msg is None:
                return
            try:
                codec.send_message(self.sock, msg)
            except OSError:
                # The head is gone; nothing left to talk to.
                self.abort.set()
                self._wake_windows()
                self._wake_copies()
                return

    def _heartbeat(self) -> None:
        # abort.wait doubles as the period timer and the shutdown wakeup:
        # the thread exits the instant the abort trips instead of
        # sleeping out the rest of an interval.
        while not self.abort.wait(timeout=HEARTBEAT_INTERVAL):
            self.post(("hb",))

    def _wake_windows(self) -> None:
        with self._windows_lock:
            windows = list(self._windows.values())
        for w in windows:
            w.wake()

    def _wake_copies(self) -> None:
        """Post ``stop`` into every copy's queue: an event-driven abort
        wakeup for workers blocked in their input ``get``."""
        for worker in self.copies.values():
            worker.in_q.put(("stop",))

    # -- setup + dispatch ---------------------------------------------------

    def _apply_setup(self, msg: Tuple) -> None:
        # The optional trailing element is the head's poll_interval
        # (absent from pre-tuning heads; the module default then holds).
        (_, graph, assignments, retry, faults, send_window, agent_name,
         trace, *rest) = msg
        if rest and rest[0]:
            self.poll = float(rest[0])
        if graph is not None:
            self.graph = graph
        if self.graph is None:
            raise RuntimeError(
                "agent received no filter graph: external agents need "
                "picklable filter factories"
            )
        self.retry = retry
        self.faults = faults
        self._send_window_limit = send_window
        self.agent_name = agent_name
        self.trace = bool(trace)
        if faults is not None:
            self._conn_injector = faults.connection_injector_for(
                self.agent_index, agent_name
            )
        for name, idx in assignments:
            self.copies[(name, idx)] = _CopyWorker(self, name, idx)
        for worker in self.copies.values():
            worker.thread.start()

    def run(self) -> None:
        """Dispatcher loop: receive head frames until stop or EOF."""
        writer = threading.Thread(target=self._writer, daemon=True)
        writer.start()
        codec.send_message(
            self.sock,
            codec.make_hello(self.agent_index, self.token, os.getpid()),
        )
        try:
            setup = codec.recv_message(self.sock)
        except codec.ConnectionClosed:
            self.out_q.put(None)
            return
        if not (isinstance(setup, tuple) and setup[0] == "setup"):
            raise RuntimeError(f"expected setup message, got {setup!r}")
        self._apply_setup(setup)
        threading.Thread(target=self._heartbeat, daemon=True).start()
        # Readiness-gated delivery loop: block in the selector (the
        # kernel wakes it the instant head bytes arrive) and re-check the
        # abort between waits, so an abort raised off-thread (writer
        # death) ends the dispatcher even while the socket stays open.
        # recv_message reads straight off the socket with no userspace
        # buffering, so readiness of the fd is readiness of a frame.
        sel = selectors.DefaultSelector()
        sel.register(self.sock, selectors.EVENT_READ)
        try:
            while True:
                if self.abort.is_set():
                    break
                if not sel.select(timeout=self.poll):
                    continue
                try:
                    msg = codec.recv_message(self.sock)
                except codec.ConnectionClosed:
                    break
                kind = msg[0]
                if kind == "buf":
                    _, name, idx, stream, seq, buffer = msg
                    action = self._conn_injector.on_deliver()
                    if action == "crash":
                        # The whole "host" fails: no cleanup, no goodbye.
                        os._exit(CRASH_EXIT)
                    if action == "drop":
                        self.post(("nack", seq))
                        continue
                    worker = self.copies.get((name, idx))
                    if worker is None or worker.dead:
                        # Dead copy: the head reroutes everything it never
                        # got an ack for, so in-transit deliveries are
                        # dropped here, not processed twice.
                        continue
                    worker.in_q.put(("buf", stream, seq, buffer))
                elif kind == "scredit":
                    _, name, idx, stream = msg
                    self.send_window(name, idx, stream).release()
                elif kind == "close":
                    _, name, idx, stream = msg
                    worker = self.copies.get((name, idx))
                    if worker is not None:
                        worker.in_q.put(("close", stream))
                elif kind == "drain":
                    # Planned leave: nothing to do locally but note it —
                    # the head stops dispatching, closes our copies'
                    # input streams early so they finalize normally, and
                    # sends "detach" once every copy reported in.
                    self.draining = True
                elif kind == "detach":
                    # Clean release at the end of a drain: leave the
                    # dispatcher loop the same way "stop" does, but as a
                    # planned goodbye rather than a run-wide shutdown.
                    break
                elif kind == "stop":
                    break
                else:  # pragma: no cover - protocol growth guard
                    raise RuntimeError(f"unknown head message {kind!r}")
        finally:
            sel.close()
            self.abort.set()
            self._wake_windows()
            self._wake_copies()
            for worker in self.copies.values():
                worker.thread.join(timeout=5.0)
            self.out_q.put(None)
            writer.join(timeout=5.0)


def run_agent(
    head_host: str,
    head_port: int,
    agent_index: int,
    token: str,
    graph: Optional[FilterGraph] = None,
    connect_timeout: float = 30.0,
) -> None:
    """Connect to the head and serve one run.  Blocks until it ends."""
    sock = socket.create_connection((head_host, head_port), timeout=connect_timeout)
    sock.settimeout(None)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    try:
        AgentRunner(sock, agent_index, token, graph=graph).run()
    finally:
        try:
            sock.close()
        except OSError:
            pass


def spawned_agent_main(
    head_host: str,
    head_port: int,
    agent_index: int,
    token: str,
    graph: FilterGraph,
) -> None:
    """Entry point for agents the head forks onto loopback hosts.

    The graph (with its possibly unpicklable factories) crosses via fork
    memory, so no serialization is involved.
    """
    try:
        run_agent(head_host, head_port, agent_index, token, graph=graph)
    except Exception:  # noqa: BLE001 - the head sees the dead connection
        traceback.print_exc()
        os._exit(1)


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone agent entry point for real (non-loopback) hosts."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.datacutter.net.agent",
        description="Worker agent for the distributed filter-stream runtime",
    )
    parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="head address to connect to",
    )
    parser.add_argument(
        "--index", type=int, required=True,
        help="this agent's index in the head's host list",
    )
    parser.add_argument(
        "--token", required=True, help="run token issued by the head"
    )
    args = parser.parse_args(argv)
    host, _, port = args.connect.rpartition(":")
    run_agent(host, int(port), args.index, args.token)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())

"""Wire codec: length-prefixed frames with zero-copy numpy payloads.

Every message crossing a distributed stream is one *frame*::

    !4sBII            magic  flags  nbufs  header_len
    nbufs * !Q        raw-buffer lengths
    header_len bytes  pickled message header (protocol 5)
    raw buffers       ndarray memory, sent as-is

The header is pickled with protocol 5 and a ``buffer_callback``: numpy
arrays anywhere inside the message are reduced to out-of-band
:class:`pickle.PickleBuffer` views of their own memory, so the pickle
stream carries only a few bytes of metadata per array and the array
bytes go straight from the array to the socket (``sendall`` on a
``memoryview`` — no intermediate serialization copy).  On receive, each
raw buffer lands in its own preallocated ``bytearray`` and the arrays
are rebuilt with ``np.frombuffer`` over it — again no copy, and the
backing store is writable.

Copies are observable: an array that *cannot* travel zero-copy (it is
non-contiguous, an ndarray subclass, or has object dtype) triggers the
module's array-copy hook.  Tests install a raising hook via
:func:`forbid_array_copies` to assert the no-pickle-of-ndarray
guarantee over a whole pipeline run.

The codec is transport-agnostic: :func:`send_message` /
:func:`recv_message` frame over a socket; :func:`dumps` / :func:`loads`
pack one frame into a single contiguous buffer for byte channels that
cannot scatter/gather (the multiprocessing runtime's pipes).

Trust note: frames embed pickle.  Only connect agents and heads that
already trust each other (the runtime's handshake token gates accidental
cross-talk, not adversaries) — the same trust model as DataCutter's
cluster-internal streams.
"""

from __future__ import annotations

import io
import pickle
import socket
import struct
import threading
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "CodecError",
    "ConnectionClosed",
    "Frame",
    "PROTOCOL_VERSION",
    "Hello",
    "make_hello",
    "parse_hello",
    "encode",
    "decode",
    "dumps",
    "loads",
    "pack_frame",
    "send_message",
    "recv_message",
    "set_array_copy_hook",
    "forbid_array_copies",
]

_MAGIC = b"DCW1"
_PREFIX = struct.Struct("!4sBII")  # magic, flags, nbufs, header_len
_BUFLEN = struct.Struct("!Q")

#: Refuse frames whose declared sizes are absurd (corrupt/foreign peer).
MAX_HEADER_BYTES = 64 * 1024 * 1024
MAX_BUFFER_BYTES = 16 * 1024 * 1024 * 1024
MAX_BUFFERS = 4096


#: Version of the head/agent control protocol spoken over this codec.
#: Version 2 added elastic membership: late-join hellos, and the
#: ``drain`` / ``detach`` control frames of the planned-leave handshake.
#: The head refuses agents announcing a different version — a stale
#: agent build silently missing DRAIN would look exactly like a hang.
PROTOCOL_VERSION = 2


class CodecError(RuntimeError):
    """Malformed frame, or a forbidden in-band array serialization."""


class ConnectionClosed(ConnectionError):
    """Peer closed the connection.

    ``clean`` is True when the close fell on a frame boundary (orderly
    shutdown) and False when it cut a frame short (peer died mid-send).
    """

    def __init__(self, message: str, clean: bool):
        super().__init__(message)
        self.clean = clean


# ---------------------------------------------------------------------------
# Handshake frames

@dataclass(frozen=True)
class Hello:
    """A parsed agent handshake frame.

    ``index`` is the agent's slot in the head's connection table — for
    elastic late joins the head allocates the slot before the agent
    connects, so the same handshake covers both startup and join.
    """

    index: int
    token: str
    pid: int
    version: int


def make_hello(index: int, token: str, pid: int) -> Tuple:
    """The handshake frame an agent sends immediately after connecting."""
    return ("hello", index, token, pid, PROTOCOL_VERSION)


def parse_hello(msg: Any) -> Optional[Hello]:
    """Parse a handshake frame; ``None`` if the frame is no hello at all.

    Version-1 agents (pre-elastic builds) sent a 4-tuple without the
    version field; they parse as ``version=1`` so the head can reject
    them with an accurate reason instead of treating them as strangers.
    """
    if not (isinstance(msg, tuple) and len(msg) in (4, 5) and msg[0] == "hello"):
        return None
    if not (isinstance(msg[1], int) and isinstance(msg[2], str)):
        return None
    version = msg[4] if len(msg) == 5 else 1
    if not isinstance(version, int):
        return None
    return Hello(index=msg[1], token=msg[2], pid=msg[3], version=version)


# ---------------------------------------------------------------------------
# Array-copy observability

_array_copy_hook: Optional[Callable[[Any, str], None]] = None
_hook_lock = threading.Lock()


def set_array_copy_hook(hook: Optional[Callable[[Any, str], None]]) -> None:
    """Install a callback fired whenever an array cannot go zero-copy.

    The hook receives ``(array, reason)``.  Pass ``None`` to uninstall.
    """
    global _array_copy_hook
    with _hook_lock:
        _array_copy_hook = hook


class forbid_array_copies:
    """Context manager: any in-band / copied array serialization raises.

    The test hook behind the zero-copy guarantee: run a whole pipeline
    under it and every ndarray that would be pickled in-band (or copied
    to become contiguous) turns into a hard :class:`CodecError`.
    Installed module-globally, so forked agent processes inherit it.
    """

    def __enter__(self) -> "forbid_array_copies":
        def _raise(arr: Any, reason: str) -> None:
            raise CodecError(
                f"array serialization copy forbidden: {reason} "
                f"(shape={getattr(arr, 'shape', None)}, "
                f"dtype={getattr(arr, 'dtype', None)})"
            )

        self._prev = _array_copy_hook
        set_array_copy_hook(_raise)
        return self

    def __exit__(self, *exc: Any) -> None:
        set_array_copy_hook(self._prev)


def _fire_copy_hook(arr: Any, reason: str) -> None:
    hook = _array_copy_hook
    if hook is not None:
        hook(arr, reason)


# ---------------------------------------------------------------------------
# Pickling with out-of-band ndarrays


def _rebuild_ndarray(
    buf: Any, dtype: np.dtype, shape: Tuple[int, ...], order: str
) -> np.ndarray:
    arr = np.frombuffer(buf, dtype=dtype)
    return arr.reshape(shape, order=order)


class _Pickler(pickle.Pickler):
    """Protocol-5 pickler that forces ndarrays out-of-band.

    Exact ``np.ndarray`` instances with a non-object dtype reduce to a
    :class:`pickle.PickleBuffer` over their own memory (no copy) plus a
    tiny ``(dtype, shape, order)`` header.  Everything else falls back
    to the default machinery; ndarray subclasses and object arrays fire
    the array-copy hook because their bytes end up inside the pickle
    stream.
    """

    def reducer_override(self, obj: Any):  # noqa: ANN001 - pickle API
        if isinstance(obj, np.ndarray):
            if type(obj) is not np.ndarray:
                _fire_copy_hook(obj, f"ndarray subclass {type(obj).__name__}")
                return NotImplemented
            if obj.dtype.hasobject:
                _fire_copy_hook(obj, "object dtype")
                return NotImplemented
            if obj.flags.c_contiguous:
                a, order = obj, "C"
            elif obj.flags.f_contiguous:
                a, order = obj, "F"
            else:
                _fire_copy_hook(obj, "non-contiguous array")
                a, order = np.ascontiguousarray(obj), "C"
            return (
                _rebuild_ndarray,
                (pickle.PickleBuffer(a), a.dtype, a.shape, order),
            )
        return NotImplemented


class Frame:
    """One encoded message: pickled header + raw out-of-band buffers."""

    __slots__ = ("header", "buffers")

    def __init__(self, header: bytes, buffers: List[memoryview]):
        self.header = header
        self.buffers = buffers

    @property
    def header_bytes(self) -> int:
        return len(self.header)

    @property
    def payload_bytes(self) -> int:
        """Raw (out-of-band) bytes — the zero-copy part of the frame."""
        return sum(b.nbytes for b in self.buffers)

    @property
    def wire_bytes(self) -> int:
        """Total bytes this frame occupies on the wire."""
        return (
            _PREFIX.size
            + _BUFLEN.size * len(self.buffers)
            + len(self.header)
            + self.payload_bytes
        )


def encode(obj: Any) -> Frame:
    """Encode one message; array memory is referenced, not copied."""
    out = io.BytesIO()
    raws: List[memoryview] = []

    def _collect(pb: pickle.PickleBuffer) -> None:
        # raw() flattens to 1-d bytes without copying; it accepts both
        # C- and Fortran-contiguous sources.
        raws.append(pb.raw())

    _Pickler(out, protocol=5, buffer_callback=_collect).dump(obj)
    if len(raws) > MAX_BUFFERS:
        raise CodecError(f"message has {len(raws)} buffers (max {MAX_BUFFERS})")
    return Frame(out.getvalue(), raws)


def decode(header: bytes, buffers: Sequence[Any]) -> Any:
    """Inverse of :func:`encode`; buffers may be any buffer objects."""
    return pickle.loads(header, buffers=list(buffers))


# ---------------------------------------------------------------------------
# Socket framing


def send_message(sock: socket.socket, obj: Any) -> int:
    """Frame and send one message; returns the bytes put on the wire.

    Not locked: the runtimes funnel all writes of one connection through
    a single writer thread, which also keeps frames from interleaving.
    """
    frame = encode(obj)
    head = bytearray(_PREFIX.size + _BUFLEN.size * len(frame.buffers))
    _PREFIX.pack_into(head, 0, _MAGIC, 0, len(frame.buffers), len(frame.header))
    off = _PREFIX.size
    for b in frame.buffers:
        _BUFLEN.pack_into(head, off, b.nbytes)
        off += _BUFLEN.size
    sock.sendall(head)
    sock.sendall(frame.header)
    for b in frame.buffers:
        # memoryview straight from the array's memory: the only copy is
        # the kernel's, into the socket buffer.
        sock.sendall(b)
    return len(head) + len(frame.header) + frame.payload_bytes


def _recv_exact(sock: socket.socket, n: int, at_boundary: bool) -> bytearray:
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        k = sock.recv_into(view[got:], n - got)
        if k == 0:
            raise ConnectionClosed(
                "connection closed"
                + ("" if at_boundary and got == 0 else " mid-frame"),
                clean=at_boundary and got == 0,
            )
        got += k
    return buf


def recv_message(sock: socket.socket) -> Any:
    """Receive and decode one frame; raises :class:`ConnectionClosed`."""
    head = _recv_exact(sock, _PREFIX.size, at_boundary=True)
    magic, _flags, nbufs, header_len = _PREFIX.unpack(bytes(head))
    if magic != _MAGIC:
        raise CodecError(f"bad frame magic {bytes(magic)!r}")
    if nbufs > MAX_BUFFERS or header_len > MAX_HEADER_BYTES:
        raise CodecError(f"frame too large: nbufs={nbufs} header={header_len}")
    lens = []
    if nbufs:
        raw = _recv_exact(sock, _BUFLEN.size * nbufs, at_boundary=False)
        for i in range(nbufs):
            (n,) = _BUFLEN.unpack_from(raw, i * _BUFLEN.size)
            if n > MAX_BUFFER_BYTES:
                raise CodecError(f"buffer {i} too large: {n} bytes")
            lens.append(n)
    header = _recv_exact(sock, header_len, at_boundary=False)
    # Each buffer lands in its own writable bytearray: np.frombuffer over
    # it rebuilds the array in place, zero-copy and mutable.
    buffers = [_recv_exact(sock, n, at_boundary=False) for n in lens]
    return decode(bytes(header), buffers)


# ---------------------------------------------------------------------------
# Single-buffer framing (pipes, files, in-memory tests)


def dumps(obj: Any) -> bytes:
    """Pack one frame into a single contiguous buffer.

    For byte channels that cannot scatter/gather (multiprocessing
    pipes).  Array memory is copied exactly once, straight into the
    output frame — never into an intermediate pickle stream.
    """
    return pack_frame(encode(obj))


def pack_frame(frame: Frame) -> bytes:
    """Pack an already-encoded :class:`Frame` (see :func:`dumps`).

    Split out so the shared-memory transport can reuse the in-band
    layout for its sub-threshold / fallback path without re-encoding.
    """
    nbufs = len(frame.buffers)
    total = frame.wire_bytes
    out = bytearray(total)
    _PREFIX.pack_into(out, 0, _MAGIC, 0, nbufs, len(frame.header))
    off = _PREFIX.size
    for b in frame.buffers:
        _BUFLEN.pack_into(out, off, b.nbytes)
        off += _BUFLEN.size
    out[off : off + len(frame.header)] = frame.header
    off += len(frame.header)
    view = memoryview(out)
    for b in frame.buffers:
        view[off : off + b.nbytes] = b
        off += b.nbytes
    return bytes(out)


def loads(data: Any) -> Any:
    """Decode a frame produced by :func:`dumps`.

    Rebuilt arrays are zero-copy views into ``data``; pass a writable
    buffer (``bytearray``) if consumers mutate payload arrays in place.
    """
    view = memoryview(data)
    if len(view) < _PREFIX.size:
        raise CodecError("truncated frame (no prefix)")
    magic, flags, nbufs, header_len = _PREFIX.unpack_from(view, 0)
    if magic != _MAGIC:
        raise CodecError(f"bad frame magic {bytes(magic)!r}")
    if flags:
        # Out-of-band transports (the shm pool) set flag bits; their
        # frames carry descriptors, not buffer bytes, and must be
        # decoded by the transport that knows where the bytes live.
        raise CodecError(
            f"frame flags 0x{flags:02x} need a transport-aware decoder "
            "(repro.datacutter.net.shm.loads)"
        )
    if nbufs > MAX_BUFFERS or header_len > MAX_HEADER_BYTES:
        raise CodecError(f"frame too large: nbufs={nbufs} header={header_len}")
    off = _PREFIX.size
    lens = []
    for i in range(nbufs):
        (n,) = _BUFLEN.unpack_from(view, off)
        lens.append(n)
        off += _BUFLEN.size
    header = bytes(view[off : off + header_len])
    if len(header) != header_len:
        raise CodecError("truncated frame (header)")
    off += header_len
    buffers = []
    for n in lens:
        b = view[off : off + n]
        if b.nbytes != n:
            raise CodecError("truncated frame (buffer)")
        buffers.append(b)
        off += n
    return decode(header, buffers)

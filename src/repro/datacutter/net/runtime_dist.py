"""Distributed head runtime: one filter graph across many hosts over TCP.

:class:`DistRuntime` is the third execution backend (after the threaded
:class:`~repro.datacutter.runtime_local.LocalRuntime` and the
process-based :class:`~repro.datacutter.runtime_mp.MPRuntime`) and the
first that crosses the machine boundary, the way the paper's DataCutter
deployment does.  The head

* turns the host list plus a :class:`~repro.datacutter.placement.Placement`
  into per-agent copy assignments (:func:`default_placement` builds one
  when the caller has none),
* launches one worker agent per host — loopback hosts are forked
  locally, so ``["127.0.0.1"] * N`` needs no real cluster; other hosts
  must start ``python -m repro.datacutter.net.agent`` themselves with
  the address/token the head prints,
* ships graph and configuration to the agents and then routes every
  stream buffer: agents send produced buffers up, the head schedules
  them onto consumer copies per the stream's policy and relays them
  down, zero-copy end to end through the wire codec.

Elastic membership (``elastic=True``) removes the fixed-host-set
assumption: the listener stays open for the whole run, so agents may
*join* mid-run (:meth:`DistRuntime.add_agent`, or a scheduled
:class:`~repro.datacutter.faults.JoinAgent`) — the head authenticates
the late hello against the run token, installs one new copy of every
elastic-eligible filter (replicated, all inputs transparent) on the
joiner, and rebalances pending chunk assignments onto the new copies —
and agents may be *drained* (:meth:`DistRuntime.drain_agent` /
:class:`~repro.datacutter.faults.DrainAgent`): a ``drain`` control
frame stops new dispatch to the agent's copies, in-flight chunks finish
(bounded by the drain deadline), the copies' input streams are closed
early so they finalize and report ``done``, and the agent is released
with a ``detach`` frame and a clean socket shutdown.  A planned drain
is attributed as membership churn (``RunResult.drained_agents``), never
as a failure: it adds nothing to ``retries``/``reroutes``.  A drain
that exceeds its deadline, or an agent that goes silent mid-drain, is
*reclassified* as a crash and recovered by the reroute machinery.

Flow control is credit based, replacing the single-host runtimes'
shared-memory queue counters: a consumer copy never has more than
``max_queue`` unacknowledged deliveries (the post-process ``ack``
returns the credit), and a producer copy never has more than
``send_window`` buffers awaiting dispatch at the head (the ``scredit``
grant returns that slot).  Because the graph is acyclic and sinks never
block, credits always drain and the pipeline cannot deadlock.

Fault tolerance extends PR 1's model across the wire.  The head keeps
every dispatched buffer in an in-flight table until its ack arrives, so
delivery is at-least-once: when a copy fails (reported by its agent) or
a whole agent dies (socket EOF, missed heartbeats, or a spawned
process's exit code), the dead copies' unacknowledged buffers are
rerouted to surviving transparent copies and the stitching filters'
position-keyed dedup absorbs any re-delivery.  Unrecoverable failures —
a dead source or explicitly-addressed copy, no survivors, rerouting
disabled — abort the run, and :meth:`DistRuntime.run` raises the same
structured :class:`~repro.datacutter.faults.PipelineError` as the local
runtimes.  Connection-level faults (:class:`CrashAgent`,
:class:`DelayConnection`, :class:`DropDeliveries`) are injected on the
agent side of each connection; their targets are agent indices or the
node names derived from the host list.
"""

from __future__ import annotations

import binascii
import os
import queue
import socket
import sys
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from ..buffers import DataBuffer
from ..faults import (
    CopyFailure,
    CrashAgent,
    DrainAgent,
    FaultPlan,
    JoinAgent,
    MembershipAction,
    PipelineError,
    RetryPolicy,
    validate_schedule,
)
from ..graph import FilterGraph, StreamEdge
from ..obs import Trace, Tracer, snapshot_run
from ..placement import Placement
from ..runtime_local import LocalRuntime, RunResult
from ..scheduling import CopyState, make_policy
from . import codec

__all__ = ["DistRuntime", "default_placement"]

#: Granularity of the monitor loop (seconds).
_POLL = 0.05

_LOOPBACK = ("127.0.0.1", "localhost", "::1", "loopback")


def _node_names(hosts: List[str]) -> List[str]:
    """Stable node identifiers for a host list (dedup repeated hosts)."""
    if len(set(hosts)) == len(hosts):
        return list(hosts)
    return [f"{h}#{i}" for i, h in enumerate(hosts)]


def default_placement(graph: FilterGraph, nodes: List[str]) -> Placement:
    """Spread a graph over nodes the way the paper's deployments do.

    Replicated filters whose inputs are all transparent (the compute
    filters — their buffers can go to any copy) spread round-robin over
    nodes 1..N-1; everything else — sources, sinks, single copies and
    explicitly addressed filters — stays on node 0 with the head.  The
    split keeps the unrecoverable copies (sources, explicit stitch
    points) off the nodes whose loss the runtime can survive.
    """
    if not nodes:
        raise ValueError("no nodes to place on")
    placement = Placement()
    n = len(nodes)
    for spec in graph.filters.values():
        in_edges = graph.in_edges(spec.name)
        transparent = bool(in_edges) and all(
            e.policy != "explicit" for e in in_edges
        )
        if spec.copies > 1 and transparent and n > 1:
            for i in range(spec.copies):
                placement.place(spec.name, i, nodes[1 + (i % (n - 1))])
        else:
            for i in range(spec.copies):
                placement.place(spec.name, i, nodes[0])
    return placement


class _AgentConn:
    """Head-side state of one worker agent connection."""

    def __init__(self, index: int, name: str, host: str):
        self.index = index
        self.name = name
        self.host = host
        self.sock: Optional[socket.socket] = None
        self.out_q: "queue.Queue" = queue.Queue()
        self.last_seen = 0.0
        self.dead = False
        self.proc = None  # multiprocessing.Process for spawned agents
        self.pid: Optional[int] = None
        self.reader: Optional[threading.Thread] = None
        self.writer: Optional[threading.Thread] = None
        #: Elastic membership: attached after the run started.
        self.joined = False
        #: Planned-leave lifecycle.  ``drain_state`` moves None ->
        #: "draining" -> "drained" (clean) or "failed" (escalated);
        #: ``drained`` is set when the drain reaches either end state.
        self.draining = False
        self.drain_state: Optional[str] = None
        self.drain_deadline: Optional[float] = None
        self.drained = threading.Event()
        #: A detach frame was sent: the agent's clean socket close must
        #: not be mistaken for a crash.
        self.detached = False


class _Pending:
    """One routed buffer: committed to ``target``, awaiting its credit."""

    __slots__ = ("buffer", "target", "explicit", "src_copy")

    def __init__(
        self, buffer: DataBuffer, target: int, explicit: bool, src_copy: int
    ):
        self.buffer = buffer
        self.target = target
        self.explicit = explicit
        self.src_copy = src_copy


class _EdgeState:
    """Head-side routing state of one stream edge."""

    def __init__(self, edge: StreamEdge, n_consumers: int, n_producers: int):
        self.edge = edge
        self.key = f"{edge.src}:{edge.stream}"
        self.policy = make_policy(edge.policy)
        self.states = [CopyState(i) for i in range(n_consumers)]
        self.pending: "deque[_Pending]" = deque()
        self.inflight = 0
        self.n_producers = n_producers
        self.producers_done = 0
        self.sent = 0
        self.closed = False


class DistRuntime:
    """Executes a validated :class:`FilterGraph` across worker agents.

    Parameters
    ----------
    graph:
        The filter network to execute.
    hosts:
        One entry per agent.  Loopback entries (``127.0.0.1`` etc.) are
        forked locally; any other host must launch the agent itself —
        the head prints the exact command when it starts listening.
    placement:
        Copy-to-node assignment over the node names derived from
        ``hosts`` (repeated hosts become ``host#i``); defaults to
        :func:`default_placement`.
    max_queue:
        Per-consumer-copy credit: the bound on unacknowledged deliveries.
    send_window:
        Per-producer-copy bound on buffers awaiting dispatch at the head.
    retry / faults:
        The same objects the single-host runtimes take; connection-level
        faults additionally become valid targets here.
    heartbeat_timeout:
        Seconds without any frame from an agent before it is declared
        dead (agents heartbeat every
        :data:`~repro.datacutter.net.agent.HEARTBEAT_INTERVAL` seconds).
        ``None`` reads the ``REPRO_DIST_HEARTBEAT_TIMEOUT`` environment
        variable and falls back to 5 seconds.
    elastic:
        Keep the listener open for the whole run so agents can join
        live (:meth:`add_agent`) — see the module docstring.  Draining
        needs no flag; only late *attach* does.
    schedule:
        Declarative membership churn: a list of
        :class:`~repro.datacutter.faults.JoinAgent` /
        :class:`~repro.datacutter.faults.DrainAgent` actions fired by
        the monitor loop at their ``at`` offsets (seconds after
        dispatch starts).  Joins require ``elastic=True``.
    port / bind_host:
        Listening endpoint; port 0 picks an ephemeral port (fine for
        loopback runs, external agents need a fixed one).
    trace:
        When true, collect :mod:`repro.datacutter.obs` trace events —
        head-side scheduling and wire frames plus per-copy events the
        agents batch home on their terminal messages.  Timestamps are
        wall clock, so spans from different real hosts are only as
        comparable as those hosts' clocks.
    """

    def __init__(
        self,
        graph: FilterGraph,
        hosts: List[str],
        placement: Optional[Placement] = None,
        max_queue: int = 64,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
        send_window: int = 16,
        heartbeat_timeout: Optional[float] = None,
        port: int = 0,
        bind_host: str = "",
        connect_timeout: float = 30.0,
        trace: bool = False,
        elastic: bool = False,
        schedule: Optional[List[MembershipAction]] = None,
        poll_interval: Optional[float] = None,
    ):
        graph.validate()
        LocalRuntime._check_stream_names(graph)
        if not hosts:
            raise ValueError("distributed runtime needs at least one host")
        if max_queue < 1 or send_window < 1:
            raise ValueError("max_queue and send_window must be >= 1")
        # Watchdog granularity for the monitor loop, threaded through
        # ``setup`` to every agent's blocking waits.  Only ``None`` means
        # "use the default" — an explicit 0 must fail validation.
        self.poll_interval = (
            _POLL if poll_interval is None else float(poll_interval)
        )
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        self.graph = graph
        self.hosts = list(hosts)
        self.node_names = _node_names(self.hosts)
        if placement is None:
            placement = default_placement(graph, self.node_names)
        placement.validate_for(graph)
        unknown = set(placement.nodes()) - set(self.node_names)
        if unknown:
            raise ValueError(
                f"placement uses nodes {sorted(unknown)} not in the host "
                f"list (nodes: {self.node_names})"
            )
        self.placement = placement
        self.max_queue = max_queue
        self.send_window = send_window
        self.retry = retry if retry is not None else RetryPolicy()
        self.faults = faults
        self.elastic = bool(elastic)
        self.schedule = sorted(schedule or [], key=lambda a: a.at)
        validate_schedule(self.schedule, self.node_names, self.elastic)
        if faults is not None:
            faults.validate(
                {name: spec.copies for name, spec in graph.filters.items()},
                agents=self.node_names,
                elastic=self.elastic,
            )
        if heartbeat_timeout is None:
            heartbeat_timeout = float(
                os.environ.get("REPRO_DIST_HEARTBEAT_TIMEOUT", "5.0")
            )
        if heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive")
        self.heartbeat_timeout = heartbeat_timeout
        self.port = port
        self.bind_host = bind_host
        self.connect_timeout = connect_timeout
        self.trace = bool(trace)
        self._run_mutex = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle

    def close(self) -> None:
        """Abort any in-flight run and release its sockets and agents.

        Idempotent, and safe to call from another thread while ``run()``
        is blocked: the run's done event fires, the monitor loop exits,
        and ``run()``'s own teardown closes the listener, the agent
        connections, and any loopback agent processes.  After a finished
        run this is a no-op — ``run()`` already tore everything down.
        """
        done = getattr(self, "_done_event", None)
        if done is not None and not done.is_set():
            with self._lock:
                self._fatal = True
                self._failures.append(
                    CopyFailure(
                        filter_name="<runtime>",
                        copy_index=-1,
                        error="runtime closed while running",
                        kind="exception",
                    )
                )
            done.set()

    def __enter__(self) -> "DistRuntime":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Per-run state (one run at a time, like the single-host runtimes)

    def _reset(self) -> None:
        g = self.graph
        self._tracer = Tracer() if self.trace else None
        self._lock = threading.RLock()
        self._done_event = threading.Event()
        self._fatal = False
        self._stopping = False
        self._running = False
        self._failures: List[CopyFailure] = []
        self._results: Dict[str, List[Any]] = {}
        self._busy: Dict[Tuple[str, int], float] = {}
        self._retries = 0
        self._reroutes = 0
        self._wire: Dict[str, int] = {}
        self._wire_lock = threading.Lock()
        self._next_seq = 0
        self._inflight: Dict[int, Tuple[_EdgeState, _Pending]] = {}
        self._status: Dict[Tuple[str, int], str] = {}
        self._outstanding: Dict[Tuple[str, int], int] = {}
        self._agent_of: Dict[Tuple[str, int], int] = {}
        #: Live copy counts; joins grow these past the graph's static
        #: declarations, so every runtime-side loop over copies must use
        #: this map, not ``graph.copies``.
        self._copies: Dict[str, int] = {
            name: spec.copies for name, spec in g.filters.items()
        }
        for spec in g.filters.values():
            for i in range(spec.copies):
                self._status[(spec.name, i)] = "running"
                self._outstanding[(spec.name, i)] = 0
                node = self.placement.node_of(spec.name, i)
                self._agent_of[(spec.name, i)] = self.node_names.index(node)
        self._edges: Dict[Tuple[str, str], _EdgeState] = {}
        self._edges_into: Dict[str, List[_EdgeState]] = {
            name: [] for name in g.filters
        }
        for edge in g.edges:
            es = _EdgeState(edge, g.copies(edge.dst), g.copies(edge.src))
            self._edges[(edge.src, edge.stream)] = es
            self._edges_into[edge.dst].append(es)
        #: Per-run membership: joins append, so the constructor-time
        #: ``hosts``/``node_names`` stay pristine for the next run.
        self._run_nodes = list(self.node_names)
        self._conns = [
            _AgentConn(i, self.node_names[i], self.hosts[i])
            for i in range(len(self.hosts))
        ]
        self._joined_agents: List[str] = []
        self._drained_agents: List[str] = []
        self._rebalances = 0
        #: (filter, copy, stream) close frames already queued, so the
        #: per-copy early closes a drain sends and the edge-wide closes
        #: ``_maybe_close`` sends never duplicate each other.
        self._closed_sent: set = set()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._token: Optional[str] = None
        self._run_start = 0.0
        self._sched_idx = 0

    def _conn_of(self, filter_name: str, copy_index: int) -> _AgentConn:
        return self._conns[self._agent_of[(filter_name, copy_index)]]

    # ------------------------------------------------------------------
    # Routing (every method below runs with self._lock held)

    def _choose(self, es: _EdgeState, buffer: DataBuffer) -> Optional[int]:
        dst = es.edge.dst
        alive = [
            s for s in es.states if self._status[(dst, s.copy_index)] == "running"
        ]
        if not alive:
            return None
        idx = es.policy.choose(alive, buffer)
        es.states[idx].on_assign(buffer)
        return idx

    def _trigger_fatal(self, message: str) -> None:
        if not self._fatal:
            self._fatal = True
            self._failures.append(
                CopyFailure(
                    filter_name="<runtime>",
                    copy_index=-1,
                    error=message,
                    kind="crash",
                )
            )
        self._done_event.set()

    def _route(
        self,
        src_f: str,
        src_copy: int,
        stream: str,
        dest_copy: Optional[int],
        buffer: DataBuffer,
    ) -> None:
        es = self._edges.get((src_f, stream))
        if es is None:
            self._trigger_fatal(f"send on unknown stream {src_f}:{stream}")
            return
        explicit = es.policy.requires_explicit_dest()
        if explicit:
            # Explicit placement is semantic (all pieces of one chunk
            # meet at one copy); a dead destination is unrecoverable.
            if self._status[(es.edge.dst, dest_copy)] != "running":
                self._trigger_fatal(
                    f"explicit stream {es.key} targets dead copy "
                    f"{es.edge.dst}[{dest_copy}]"
                )
                return
            es.states[dest_copy].on_assign(buffer)
            target = dest_copy
        else:
            target = self._choose(es, buffer)
            if target is None:
                self._trigger_fatal(
                    f"stream {es.key}: no surviving consumer copies"
                )
                return
        if self._tracer is not None:
            self._tracer.emit(
                "sched.pick",
                chunk=buffer.metadata.get("chunk"),
                stream=es.edge.stream,
                policy=es.edge.policy,
                dest=target,
            )
        es.sent += 1
        es.pending.append(_Pending(buffer, target, explicit, src_copy))
        self._pump_edge(es)

    def _dispatch(self, es: _EdgeState, p: _Pending) -> None:
        dst = es.edge.dst
        seq = self._next_seq
        self._next_seq += 1
        if self._tracer is not None:
            # Consumer-side queue wait is measured from head dispatch; on
            # real multi-host runs this spans two wall clocks.
            p.buffer.metadata["_obs_enq"] = time.time()
        self._inflight[seq] = (es, p)
        es.inflight += 1
        self._outstanding[(dst, p.target)] += 1
        self._conn_of(dst, p.target).out_q.put(
            (("buf", dst, p.target, es.edge.stream, seq, p.buffer), es.key)
        )
        # The producer's send-window slot frees as soon as the buffer
        # leaves the head's pending queue.
        pconn = self._conn_of(es.edge.src, p.src_copy)
        if not pconn.dead:
            pconn.out_q.put(
                (("scredit", es.edge.src, p.src_copy, es.edge.stream), None)
            )

    def _pump_edge(self, es: _EdgeState) -> None:
        """Dispatch every pending buffer whose target has credit.

        Entries whose target lacks credit are skipped, not blocked on —
        other producers' buffers for other copies must keep flowing,
        exactly as they do when each producer blocks on its own copy's
        queue in the local runtime.  Per-target FIFO order is preserved.
        """
        dst = es.edge.dst
        if es.pending:
            remaining: "deque[_Pending]" = deque()
            while es.pending:
                p = es.pending.popleft()
                if self._status[(dst, p.target)] != "running":
                    if p.explicit:
                        self._trigger_fatal(
                            f"explicit stream {es.key} targets dead copy "
                            f"{dst}[{p.target}]"
                        )
                        return
                    # Committed but never on the wire: re-pick quietly,
                    # like a producer blocked on a queue whose copy died.
                    es.states[p.target].on_unassign(p.buffer)
                    es.sent -= 1
                    target = self._choose(es, p.buffer)
                    if target is None:
                        self._trigger_fatal(
                            f"stream {es.key}: no surviving consumer copies"
                        )
                        return
                    p.target = target
                    es.sent += 1
                if self._outstanding[(dst, p.target)] < self.max_queue:
                    self._dispatch(es, p)
                else:
                    remaining.append(p)
            es.pending = remaining
        self._maybe_close(es)

    def _maybe_close(self, es: _EdgeState) -> None:
        """Send end-of-stream once the edge is fully drained.

        Drained means every producer copy is done *and* nothing is
        pending or unacknowledged anywhere on the edge — so after the
        close no reroute can ever target this edge again, which is the
        distributed form of the local router's sibling condition.
        """
        if es.closed:
            return
        if es.producers_done < es.n_producers or es.pending or es.inflight:
            return
        es.closed = True
        dst = es.edge.dst
        for i in range(self._copies[dst]):
            # Draining copies still need end-of-stream to finalize.
            if self._status[(dst, i)] in ("running", "draining"):
                self._send_close(dst, i, es.edge.stream)

    def _send_close(self, dst: str, copy: int, stream: str) -> None:
        """Queue one end-of-stream frame, at most once per copy/stream."""
        key = (dst, copy, stream)
        if key in self._closed_sent:
            return
        self._closed_sent.add(key)
        conn = self._conn_of(dst, copy)
        if not conn.dead:
            conn.out_q.put((("close", dst, copy, stream), None))

    # ------------------------------------------------------------------
    # Agent message handling

    def _on_frame(self, conn: _AgentConn, msg: Tuple) -> None:
        """One inbound frame: liveness bookkeeping, then dispatch.

        Frames from a connection already declared dead are dropped
        entirely — in particular a late heartbeat must not refresh
        ``last_seen`` and resurrect an agent whose copies were already
        failed over.
        """
        if conn.dead:
            return
        conn.last_seen = time.monotonic()
        self._handle(conn, msg)

    def _handle(self, conn: _AgentConn, msg: Tuple) -> None:
        kind = msg[0]
        if kind == "hb":
            return
        with self._lock:
            if self._stopping or conn.dead:
                return
            if kind == "send":
                _, src_f, src_copy, stream, dest_copy, buffer = msg
                self._route(src_f, src_copy, stream, dest_copy, buffer)
            elif kind == "ack":
                self._on_ack(msg[1])
            elif kind == "nack":
                self._on_nack(msg[1])
            elif kind == "done":
                _, f, c, busy, retries, events = msg
                if self._tracer is not None:
                    self._tracer.extend(events)
                self._on_done(f, c, busy, retries)
            elif kind == "copy_failed":
                _, failure, busy, retries, events = msg
                if self._tracer is not None:
                    self._tracer.extend(events)
                self._on_copy_failed(failure, busy, retries)
            elif kind == "deposit":
                _, key, value = msg
                self._results.setdefault(key, []).append(value)
            else:  # pragma: no cover - protocol growth guard
                self._trigger_fatal(f"unknown agent message {kind!r}")

    def _on_ack(self, seq: int) -> None:
        entry = self._inflight.pop(seq, None)
        if entry is None:
            return  # late ack for a delivery already rerouted elsewhere
        es, p = entry
        dst = es.edge.dst
        es.inflight -= 1
        self._outstanding[(dst, p.target)] -= 1
        es.states[p.target].on_consume()
        # The freed credit may unblock this edge and any sibling edge
        # into the same consumer filter.
        for other in self._edges_into[dst]:
            self._pump_edge(other)
        conn = self._conn_of(dst, p.target)
        if conn.draining:
            self._advance_drain(conn)

    def _on_nack(self, seq: int) -> None:
        """An injected connection drop: re-deliver to the same copy."""
        entry = self._inflight.pop(seq, None)
        if entry is None:
            return
        es, p = entry
        es.inflight -= 1
        self._outstanding[(es.edge.dst, p.target)] -= 1
        self._retries += 1
        es.pending.appendleft(p)
        self._pump_edge(es)

    def _on_done(self, f: str, c: int, busy: float, retries: int) -> None:
        prev = self._status.get((f, c))
        if prev not in ("running", "draining"):
            return
        self._status[(f, c)] = "drained" if prev == "draining" else "done"
        self._busy[(f, c)] = busy
        self._retries += retries
        for e in self.graph.out_edges(f):
            es = self._edges[(f, e.stream)]
            es.producers_done += 1
            self._maybe_close(es)
        if prev == "draining":
            self._advance_drain(self._conn_of(f, c))
        self._check_complete()

    def _on_copy_failed(
        self, failure: CopyFailure, busy: float, retries: int
    ) -> None:
        key = (failure.filter_name, failure.copy_index)
        if self._status.get(key) not in ("running", "draining"):
            return
        self._busy[key] = busy
        self._retries += retries
        self._status[key] = "failed"
        self._handle_failed(failure)
        conn = self._conn_of(*key)
        if conn.draining:
            # A copy that dies mid-drain taints the drain: the agent
            # still detaches once every copy is terminal, but the leave
            # was not clean and is not attributed as one.
            conn.drain_state = "failed"
            self._advance_drain(conn)
        self._check_complete()

    def _handle_failed(self, failure: CopyFailure) -> None:
        """Recover from one failed copy (status already set to failed)."""
        f, c = failure.filter_name, failure.copy_index
        g = self.graph
        in_edges = g.in_edges(f)
        edges_in = self._edges_into[f]
        recoverable = (
            bool(in_edges)  # a dead source's remaining output is unknowable
            and self.retry.reroute
            and all(not es.policy.requires_explicit_dest() for es in edges_in)
            # All inputs closed means the copy was finalizing; whatever
            # its finalize would have deposited cannot be rerouted.
            and any(not es.closed for es in edges_in)
            and any(
                self._status[(f, i)] == "running"
                for i in range(self._copies[f])
            )
        )
        failure.recovered = recoverable
        self._failures.append(failure)
        if not recoverable:
            self._fatal = True
            self._done_event.set()
            return
        # Reroute every unacknowledged delivery of the dead copy: these
        # were on the wire (or queued at its agent) and never processed.
        for seq in [
            s
            for s, (es, p) in self._inflight.items()
            if es.edge.dst == f and p.target == c
        ]:
            es, p = self._inflight.pop(seq)
            es.inflight -= 1
            self._outstanding[(f, c)] -= 1
            es.states[c].on_unassign(p.buffer)
            es.sent -= 1
            target = self._choose(es, p.buffer)
            if target is None:
                self._trigger_fatal(
                    f"stream {es.key}: no surviving consumer copies"
                )
                return
            self._reroutes += 1
            if self._tracer is not None:
                self._tracer.emit(
                    "fault.reroute",
                    chunk=p.buffer.metadata.get("chunk"),
                    stream=es.edge.stream,
                    dest=target,
                )
            p.target = target
            es.sent += 1
            es.pending.appendleft(p)
        # The dead copy will send no more buffers: tick its out-edges.
        for e in g.out_edges(f):
            self._edges[(f, e.stream)].producers_done += 1
        for es in edges_in:
            self._pump_edge(es)
        for e in g.out_edges(f):
            self._maybe_close(self._edges[(f, e.stream)])

    def _check_complete(self) -> None:
        if all(
            s not in ("running", "draining") for s in self._status.values()
        ):
            self._done_event.set()

    # ------------------------------------------------------------------
    # Agent death

    def _injected_agent_crash(self, conn: _AgentConn) -> bool:
        if self.faults is None:
            return False
        return any(
            isinstance(s, CrashAgent)
            and (s.agent == conn.index or s.agent == conn.name)
            for s in self.faults.connection_faults()
        )

    def _on_agent_gone(self, conn: _AgentConn, reason: str) -> None:
        with self._lock:
            if conn.dead or self._stopping:
                return
            conn.dead = True
            if conn.detached:
                # The head told this agent to go; its socket close (or a
                # missed heartbeat after it) is the expected epilogue of
                # a completed drain, not a crash.
                return
            victims = [
                key
                for key, agent in self._agent_of.items()
                if agent == conn.index
                and self._status[key] in ("running", "draining")
            ]
            if conn.draining and not conn.drained.is_set():
                # Silence mid-drain: the planned leave escalates to a
                # crash and its copies go through normal recovery.
                conn.drain_state = "failed"
                conn.drained.set()
            if not victims:
                return
            injected = self._injected_agent_crash(conn)
            # Mark every victim dead *before* rerouting, so no victim is
            # ever chosen as a reroute target for a sibling copy hosted
            # on the same dead agent.
            for key in victims:
                self._status[key] = "failed"
            for f, c in victims:
                self._handle_failed(
                    CopyFailure(
                        filter_name=f,
                        copy_index=c,
                        error=f"agent {conn.name} died: {reason}",
                        kind="crash",
                        injected=injected,
                    )
                )
            self._check_complete()

    # ------------------------------------------------------------------
    # Elastic membership

    def _elastic_filters(self) -> List[str]:
        """Filters a joining agent can host a new copy of.

        Eligible means replicated (the paper's compute filters), fed
        only by transparent streams (any copy may receive any buffer),
        and not yet finalizing (at least one input stream still open) —
        growing a finished filter would add a copy that can never see a
        buffer and whose ``done`` the completion check would still wait
        for.  Sources and sinks with a single copy are never grown, so
        elastic runs keep bit-identical output order.
        """
        out: List[str] = []
        for name, spec in self.graph.filters.items():
            in_edges = self.graph.in_edges(name)
            if spec.copies <= 1 or not in_edges:
                continue
            if any(e.policy == "explicit" for e in in_edges):
                continue
            if all(es.closed for es in self._edges_into[name]):
                continue
            out.append(name)
        return out

    def _resolve_conn(self, agent: Any) -> _AgentConn:
        if isinstance(agent, int):
            if agent < 0:
                agent += len(self._conns)
            if not 0 <= agent < len(self._conns):
                raise ValueError(f"unknown agent index {agent}")
            return self._conns[agent]
        for conn in self._conns:
            if conn.name == agent:
                return conn
        raise ValueError(f"unknown agent {agent!r}")

    def add_agent(self, host: str = "127.0.0.1") -> str:
        """Admit one more agent into a running elastic run.

        Registers a connection slot and (for loopback hosts) spawns the
        agent process; the open listener authenticates its hello against
        the run token and :meth:`_attach` installs one new copy of every
        elastic-eligible filter on it.  Returns the new node name.
        Requires ``elastic=True`` and an active run.
        """
        with self._lock:
            if not self.elastic:
                raise RuntimeError("add_agent requires elastic=True")
            if not self._running or self._stopping:
                raise RuntimeError("add_agent needs an active run")
            index = len(self._conns)
            name = f"{host}#{index}"
            conn = _AgentConn(index, name, host)
            conn.joined = True
            conn.last_seen = time.monotonic()
            self._conns.append(conn)
            self._run_nodes.append(name)
        if host in _LOOPBACK:
            self._spawn_loopback(conn, self._port, self._token)
        else:
            print(
                f"[DistRuntime] waiting for joining agent {index} on "
                f"{host}: run `python -m repro.datacutter.net.agent "
                f"--connect <head-address>:{self._port} --index {index} "
                f"--token {self._token}`",
                file=sys.stderr,
            )
        return name

    def _attach(
        self, conn: _AgentConn, sock: socket.socket, pid: int
    ) -> None:
        """Wire up an authenticated late joiner (accept-thread side)."""
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        with self._lock:
            if self._stopping or conn.dead:
                sock.close()
                return
            conn.sock = sock
            conn.pid = pid
            conn.last_seen = time.monotonic()
            assignments: List[Tuple[str, int]] = []
            grown = set()
            for f in self._elastic_filters():
                idx = self._copies[f]
                self._copies[f] = idx + 1
                self._status[(f, idx)] = "running"
                self._outstanding[(f, idx)] = 0
                self._agent_of[(f, idx)] = conn.index
                for es in self._edges_into[f]:
                    es.states.append(CopyState(idx))
                for e in self.graph.out_edges(f):
                    self._edges[(f, e.stream)].n_producers += 1
                assignments.append((f, idx))
                grown.add(f)
            graph = None if conn.proc is not None else self.graph
            conn.out_q.put(
                (
                    (
                        "setup",
                        graph,
                        assignments,
                        self.retry,
                        self.faults,
                        self.send_window,
                        conn.name,
                        self.trace,
                        self.poll_interval,
                    ),
                    None,
                )
            )
            conn.writer = threading.Thread(
                target=self._writer,
                args=(conn,),
                name=f"head-writer-{conn.index}",
                daemon=True,
            )
            conn.writer.start()
            conn.reader = threading.Thread(
                target=self._reader,
                args=(conn,),
                name=f"head-reader-{conn.index}",
                daemon=True,
            )
            conn.reader.start()
            # A new copy of a filter with one already-closed input must
            # still get that stream's end-of-stream to finalize.
            for f, idx in assignments:
                for es in self._edges_into[f]:
                    if es.closed:
                        self._send_close(f, idx, es.edge.stream)
            self._joined_agents.append(conn.name)
            if self._tracer is not None:
                self._tracer.emit(
                    "agent.join", agent=conn.name, copies=len(assignments)
                )
            if grown:
                self._rebalance(grown)

    def _rebalance(self, filters: set) -> None:
        """Re-pick every pending non-explicit buffer into ``filters``.

        Called with the lock held after membership changed: a join added
        consumer copies the scheduler should start loading, a drain
        removed some it must stop loading.  Only *pending* entries move
        — buffers already on the wire stay where they are (a drain waits
        for their acks, a join never needs them back).
        """
        moved = 0
        for f in filters:
            for es in self._edges_into[f]:
                for p in es.pending:
                    if p.explicit:
                        continue
                    es.states[p.target].on_unassign(p.buffer)
                    es.sent -= 1
                    target = self._choose(es, p.buffer)
                    if target is None:  # pragma: no cover - defensive
                        es.states[p.target].on_assign(p.buffer)
                        es.sent += 1
                        continue
                    es.sent += 1
                    if target != p.target:
                        moved += 1
                        if self._tracer is not None:
                            self._tracer.emit(
                                "sched.rebalance",
                                chunk=p.buffer.metadata.get("chunk"),
                                stream=es.edge.stream,
                                dest=target,
                            )
                    p.target = target
                self._pump_edge(es)
        self._rebalances += moved

    def drain_agent(
        self, agent: Any, deadline: Optional[float] = None
    ) -> threading.Event:
        """Ask one agent to leave cleanly; returns its completion event.

        New dispatch to the agent's copies stops immediately; pending
        buffers re-pick onto surviving copies; in-flight deliveries
        finish and are acknowledged; then each copy's input streams are
        closed early so it finalizes and reports ``done``, and the agent
        is released with a ``detach`` frame.  ``agent`` is an index
        (negative counts from the end) or node name.  ``deadline`` is
        seconds from now before the drain escalates to a crash (default
        30).  Idempotent: draining an already-draining agent returns the
        same event.  Raises ``ValueError`` when the agent hosts a
        source, an explicitly-addressed copy, or the last live copy of a
        filter with open inputs — those leaves cannot be clean.
        """
        with self._lock:
            if not self._running or self._stopping:
                raise RuntimeError("drain_agent needs an active run")
            conn = self._resolve_conn(agent)
            if conn.draining:
                return conn.drained
            if conn.dead or conn.sock is None:
                raise RuntimeError(f"agent {conn.name} is not attached")
            victims = [
                key
                for key, a in self._agent_of.items()
                if a == conn.index and self._status[key] == "running"
            ]
            for f, c in victims:
                if not self.graph.in_edges(f):
                    raise ValueError(
                        f"cannot drain agent {conn.name}: it hosts "
                        f"source {f}[{c}]"
                    )
                edges_in = self._edges_into[f]
                if any(
                    es.policy.requires_explicit_dest() for es in edges_in
                ):
                    raise ValueError(
                        f"cannot drain agent {conn.name}: {f}[{c}] is "
                        f"explicitly addressed"
                    )
                if any(not es.closed for es in edges_in) and not any(
                    self._status[(f, i)] == "running"
                    and self._agent_of[(f, i)] != conn.index
                    for i in range(self._copies[f])
                ):
                    raise ValueError(
                        f"cannot drain agent {conn.name}: {f}[{c}] is "
                        f"the last live copy of {f} with open inputs"
                    )
            if deadline is None:
                deadline = 30.0
            conn.draining = True
            conn.drain_state = "draining"
            conn.drain_deadline = time.monotonic() + deadline
            for key in victims:
                self._status[key] = "draining"
            conn.out_q.put((("drain",), None))
            if self._tracer is not None:
                self._tracer.emit(
                    "agent.drain", agent=conn.name, copies=len(victims)
                )
            self._rebalance({f for f, _ in victims})
            self._advance_drain(conn)
            return conn.drained

    def _advance_drain(self, conn: _AgentConn) -> None:
        """Advance a draining agent toward detach (lock held).

        Called whenever one of the agent's copies loses outstanding
        work (ack) or reaches a terminal state (done / failed).  A copy
        with no unacknowledged deliveries gets its input streams closed
        early; once every copy is terminal the agent is detached.
        """
        if not conn.draining or conn.dead or conn.drained.is_set():
            return
        waiting = False
        for key, agent in self._agent_of.items():
            if agent != conn.index:
                continue
            if self._status[key] != "draining":
                continue
            waiting = True
            f, c = key
            if self._outstanding[key] == 0:
                for es in self._edges_into[f]:
                    if not es.closed:
                        self._send_close(f, c, es.edge.stream)
        if waiting:
            return
        # Every copy reached a terminal state: release the agent.  The
        # leave is attributed as clean only if nothing failed along the
        # way (an escalated drain is a crash, never a drained agent).
        conn.detached = True
        if conn.drain_state == "draining":
            conn.drain_state = "drained"
            self._drained_agents.append(conn.name)
        conn.out_q.put((("detach",), None))
        if self._tracer is not None:
            self._tracer.emit(
                "agent.detach",
                agent=conn.name,
                clean=conn.drain_state == "drained",
            )
        conn.drained.set()

    def _fire_schedule(self, now: float) -> None:
        """Fire scheduled membership actions whose offset has passed."""
        while self._sched_idx < len(self.schedule):
            action = self.schedule[self._sched_idx]
            if now - self._run_start < action.at:
                return
            self._sched_idx += 1
            try:
                if isinstance(action, JoinAgent):
                    self.add_agent(action.host)
                else:
                    self.drain_agent(action.agent, deadline=action.deadline)
            except (ValueError, RuntimeError) as exc:
                # A schedule that races the run's natural end (or names
                # an undrainable agent) degrades to a no-op, not a
                # failed run: scenarios assert on RunResult attribution.
                print(
                    f"[DistRuntime] scheduled "
                    f"{type(action).__name__} skipped: {exc}",
                    file=sys.stderr,
                )

    # ------------------------------------------------------------------
    # Connection threads

    def _reader(self, conn: _AgentConn) -> None:
        try:
            while True:
                msg = codec.recv_message(conn.sock)
                self._on_frame(conn, msg)
        except (codec.ConnectionClosed, codec.CodecError, OSError) as exc:
            self._on_agent_gone(conn, f"connection lost ({exc})")

    def _writer(self, conn: _AgentConn) -> None:
        while True:
            item = conn.out_q.get()
            if item is None:
                return
            msg, wire_key = item
            try:
                n = codec.send_message(conn.sock, msg)
            except OSError as exc:
                self._on_agent_gone(conn, f"send failed ({exc})")
                return
            if wire_key is not None:
                with self._wire_lock:
                    self._wire[wire_key] = self._wire.get(wire_key, 0) + n
                if self._tracer is not None:
                    # msg is ("buf", dst, target, stream, seq, buffer).
                    self._tracer.emit(
                        "wire.frame",
                        chunk=msg[5].metadata.get("chunk"),
                        stream=msg[3],
                        bytes=n,
                        link=wire_key,
                        agent=conn.name,
                        dest=msg[2],
                    )

    # ------------------------------------------------------------------
    # Startup: listener, spawned agents, handshake

    def _spawn_loopback(self, conn: _AgentConn, port: int, token: str) -> None:
        import multiprocessing

        from .agent import spawned_agent_main

        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(
            target=spawned_agent_main,
            args=("127.0.0.1", port, conn.index, token, self.graph),
            name=f"dc-agent-{conn.index}",
            daemon=True,
        )
        proc.start()
        conn.proc = proc

    def _accept_agents(self, listener: socket.socket, token: str) -> None:
        deadline = time.monotonic() + self.connect_timeout
        waiting = {c.index for c in self._conns}
        listener.settimeout(0.2)
        while waiting:
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"agents {sorted(waiting)} did not connect within "
                    f"{self.connect_timeout}s"
                )
            try:
                sock, _addr = listener.accept()
            except socket.timeout:
                continue
            sock.settimeout(self.connect_timeout)
            try:
                hello = codec.parse_hello(codec.recv_message(sock))
            except (codec.ConnectionClosed, codec.CodecError, OSError):
                sock.close()
                continue
            if (
                hello is None
                or hello.token != token
                or hello.version != codec.PROTOCOL_VERSION
            ):
                # A stranger, a stale agent of another run, or an agent
                # speaking an incompatible protocol revision.
                sock.close()
                continue
            index, pid = hello.index, hello.pid
            if index not in waiting:
                sock.close()
                continue
            sock.settimeout(None)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = self._conns[index]
            conn.sock = sock
            conn.pid = pid
            waiting.discard(index)

    def _accept_late(self, listener: socket.socket, token: str) -> None:
        """Accept-thread body: admit joining agents until the run ends.

        Only agents :meth:`add_agent` registered can attach — the hello
        must carry the run token, the current protocol version, and the
        index of a slot that has no socket yet.
        """
        while not self._done_event.is_set() and not self._stopping:
            try:
                sock, _addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed by teardown
            sock.settimeout(self.connect_timeout)
            try:
                hello = codec.parse_hello(codec.recv_message(sock))
            except (codec.ConnectionClosed, codec.CodecError, OSError):
                sock.close()
                continue
            conn: Optional[_AgentConn] = None
            if (
                hello is not None
                and hello.token == token
                and hello.version == codec.PROTOCOL_VERSION
            ):
                with self._lock:
                    if 0 <= hello.index < len(self._conns):
                        cand = self._conns[hello.index]
                        if cand.sock is None and not cand.dead:
                            conn = cand
            if conn is None:
                sock.close()
                continue
            self._attach(conn, sock, hello.pid)

    # ------------------------------------------------------------------
    # Execution

    def run(self, timeout: Optional[float] = None) -> RunResult:
        # One run at a time per instance: all per-run state lives on
        # ``self`` (``_reset``), so a concurrent ``run()`` would splice
        # two jobs' routing, results, and trace events together.  Raise
        # instead; concurrent jobs use separate runtime instances.
        if not self._run_mutex.acquire(blocking=False):
            raise RuntimeError(
                "DistRuntime.run() is already executing; concurrent runs "
                "need separate runtime instances"
            )
        try:
            return self._run_body(timeout)
        except BaseException:
            # Any exception past this point must not leak agent
            # processes, sockets, or reader/writer threads.  _teardown
            # is idempotent, so the normal-path call below is safe too.
            if hasattr(self, "_conns"):
                self._teardown()
            raise
        finally:
            self._run_mutex.release()

    def _run_body(self, timeout: Optional[float] = None) -> RunResult:
        self._reset()
        token = binascii.hexlify(os.urandom(16)).decode()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.bind_host, self.port))
        listener.listen(len(self._conns))
        port = listener.getsockname()[1]
        start = time.perf_counter()
        try:
            for conn in self._conns:
                if conn.host in _LOOPBACK:
                    self._spawn_loopback(conn, port, token)
                else:
                    print(
                        f"[DistRuntime] waiting for agent {conn.index} on "
                        f"{conn.host}: run `python -m "
                        f"repro.datacutter.net.agent --connect "
                        f"<head-address>:{port} --index {conn.index} "
                        f"--token {token}`",
                        file=sys.stderr,
                    )
            self._accept_agents(listener, token)
        except BaseException:
            self._teardown()
            listener.close()
            raise
        if self.elastic:
            # Keep listening: late joiners authenticate with the same
            # token on the same endpoint.
            self._listener = listener
            self._token = token
            self._port = port
        else:
            listener.close()

        now = time.monotonic()
        # Every connection's setup must be queued before ANY reader runs:
        # a reader relaying the first source buffer could otherwise slip
        # a "buf" ahead of a later connection's setup.
        for conn in self._conns:
            conn.last_seen = now
            assignments = sorted(
                key for key, agent in self._agent_of.items()
                if agent == conn.index
            )
            # Spawned agents got the graph through fork memory; external
            # ones need it pickled (their factories must allow that).
            graph = None if conn.proc is not None else self.graph
            conn.out_q.put(
                (
                    (
                        "setup",
                        graph,
                        assignments,
                        self.retry,
                        self.faults,
                        self.send_window,
                        conn.name,
                        self.trace,
                        self.poll_interval,
                    ),
                    None,
                )
            )
            conn.writer = threading.Thread(
                target=self._writer,
                args=(conn,),
                name=f"head-writer-{conn.index}",
                daemon=True,
            )
            conn.writer.start()
        for conn in self._conns:
            conn.reader = threading.Thread(
                target=self._reader,
                args=(conn,),
                name=f"head-reader-{conn.index}",
                daemon=True,
            )
            conn.reader.start()
        if self.elastic:
            self._accept_thread = threading.Thread(
                target=self._accept_late,
                args=(listener, token),
                name="head-accept",
                daemon=True,
            )
            self._accept_thread.start()
        with self._lock:
            self._running = True
        self._run_start = time.monotonic()

        deadline = None if timeout is None else time.monotonic() + timeout
        timed_out = False
        while not self._done_event.is_set():
            self._done_event.wait(timeout=self.poll_interval)
            if self._done_event.is_set():
                break
            now = time.monotonic()
            if deadline is not None and now > deadline:
                timed_out = True
                with self._lock:
                    self._fatal = True
                self._done_event.set()
                break
            self._fire_schedule(now)
            for conn in list(self._conns):
                if conn.dead:
                    continue
                if conn.sock is None:
                    # A registered joiner that has not attached yet: it
                    # heartbeats nothing, so give it the connect window,
                    # then forget it quietly (nothing was placed on it).
                    if now - conn.last_seen > self.connect_timeout:
                        conn.dead = True
                        print(
                            f"[DistRuntime] joining agent {conn.index} "
                            f"never connected",
                            file=sys.stderr,
                        )
                    continue
                if (
                    conn.draining
                    and not conn.drained.is_set()
                    and conn.drain_deadline is not None
                    and now > conn.drain_deadline
                ):
                    self._on_agent_gone(conn, "drain deadline exceeded")
                elif conn.detached:
                    # Sent on its way; its socket close is not a crash
                    # and its silence needs no heartbeat policing.
                    continue
                elif now - conn.last_seen > self.heartbeat_timeout:
                    self._on_agent_gone(conn, "heartbeat timeout")
                elif (
                    conn.proc is not None
                    and conn.proc.exitcode is not None
                    and now - conn.last_seen > 1.0
                ):
                    self._on_agent_gone(
                        conn, f"process exited with code {conn.proc.exitcode}"
                    )
        elapsed = time.perf_counter() - start
        self._teardown()

        if timed_out:
            raise PipelineError(
                self._failures, f"pipeline did not finish within {timeout}s"
            )
        if self._fatal:
            raise PipelineError(self._failures)
        buffers_sent = {es.key: es.sent for es in self._edges.values()}
        events = self._tracer.drain() if self._tracer is not None else None
        return RunResult(
            results=self._results,
            elapsed=elapsed,
            busy_time=dict(self._busy),
            buffers_sent=buffers_sent,
            retries=self._retries,
            reroutes=self._reroutes,
            failed_copies=list(self._failures),
            wire_bytes=dict(self._wire),
            joined_agents=list(self._joined_agents),
            drained_agents=list(self._drained_agents),
            rebalances=self._rebalances,
            metrics=snapshot_run(
                self._busy,
                buffers_sent,
                self._retries,
                self._reroutes,
                [(f.filter_name, f.copy_index) for f in self._failures],
                self._wire,
                elapsed,
                events,
            ),
            trace=Trace(events) if events is not None else None,
        )

    def _teardown(self) -> None:
        with self._lock:
            self._stopping = True
            self._running = False
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        for conn in self._conns:
            if conn.sock is not None and not conn.dead:
                conn.out_q.put((("stop",), None))
            conn.out_q.put(None)
        for conn in self._conns:
            if conn.writer is not None:
                conn.writer.join(timeout=5.0)
            if conn.sock is not None:
                try:
                    conn.sock.close()
                except OSError:
                    pass
            if conn.reader is not None:
                conn.reader.join(timeout=5.0)
        for conn in self._conns:
            if conn.proc is not None:
                conn.proc.join(timeout=5.0)
                if conn.proc.exitcode is None:
                    conn.proc.terminate()
                    conn.proc.join(timeout=5.0)

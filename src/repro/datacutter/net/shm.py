"""Zero-copy shared-memory transport for same-host runtimes.

The multiprocessing runtime frames every buffer with the wire codec and
pushes the whole frame — payload included — through an OS pipe, so a
chunk crossing an edge is copied three times (into the frame, into the
pipe, out of the pipe) even though producer and consumer share the
machine.  This module turns that into a pointer handoff: ndarray
payloads are written once into a pooled ``multiprocessing.shared_memory``
segment and the pipe carries only a few hundred bytes of header plus a
*shm descriptor* (slot index + buffer lengths); the consumer maps the
segment and rebuilds the arrays in place with ``np.frombuffer`` — zero
copies on the consume side.

Pool design (a slab allocator with a free list):

* The parent creates ``segments`` fixed-size shared-memory slabs before
  forking; children inherit the mappings, so no per-child attach (and no
  resource-tracker double registration) ever happens.  tmpfs commits
  pages lazily, so unused slabs cost address space, not RAM.
* Allocation pops a free slab; payloads smaller than ``threshold`` (or
  larger than a slab, or arriving while the pool is exhausted) fall back
  to the in-band codec path and are counted, so the transport degrades
  gracefully instead of ever blocking or failing.
* Each slab carries a cross-process *refcount*.  The producer's acquire
  holds one reference for the in-flight delivery; on receive the
  reference is taken over by the rebuilt arrays — every carrier array
  registers a ``weakref.finalize`` that releases the slab when the last
  consumer-side view (including filter-held slices, whose ``base`` chain
  keeps the carrier alive) is garbage collected.  A slab returns to the
  free list only at refcount zero, so recycling can never corrupt a
  payload a filter still holds.
* Crash cleanup is parent-side: segments are registered with the
  ``multiprocessing`` resource tracker exactly once (at creation), and
  :meth:`ShmPool.destroy` — run unconditionally when the run ends,
  including the abort path the exitcode watcher triggers for silently
  dead children — closes and unlinks every slab.  If the parent itself
  is killed, the resource tracker unlinks the registered segments at
  exit, so ``/dev/shm`` is clean after crashes either way.

Frame format: the codec's prefix ``flags`` byte gains :data:`FLAG_SHM`.
A shm frame keeps the pickled header and per-buffer lengths in-band but
replaces the raw buffer bytes with a single ``!I`` slot index trailer;
buffers are packed back-to-back in the slab, so offsets follow from the
lengths.  :func:`dumps` / :func:`loads` transparently handle both forms,
which keeps re-delivery and drain-mode rerouting working unchanged.
"""

from __future__ import annotations

import secrets
import struct
import weakref
from multiprocessing import shared_memory
from typing import Any, List, Optional, Tuple

import numpy as np

from . import codec

__all__ = ["ShmPool", "FLAG_SHM", "dumps", "loads"]

#: Prefix ``flags`` bit: the frame's out-of-band buffers live in a pool
#: slab instead of in the frame itself.
FLAG_SHM = 0x01

_SLOT = struct.Struct("!I")

#: Shared-memory segment name prefix; the leak checks (tests and the CI
#: transport job) grep ``/dev/shm`` for it after every run.
NAME_PREFIX = "reproshm"


class ShmPool:
    """Reference-counted pool of fixed-size shared-memory slabs.

    Created by the parent *before* it forks filter-copy processes; all
    bookkeeping (free stack, refcounts, counters) lives in inherited
    shared state, so producers allocate and consumers release without
    any extra IPC.

    Parameters
    ----------
    ctx:
        A ``fork`` multiprocessing context (supplies the shared state).
    segments:
        Number of slabs on the free list.
    segment_bytes:
        Size of each slab; payloads larger than this fall back in-band.
    threshold:
        Payloads strictly smaller than this stay on the in-band codec
        path — tiny buffers are cheaper to copy than to lease a slab.
    """

    def __init__(
        self,
        ctx,
        segments: int = 32,
        segment_bytes: int = 32 << 20,
        threshold: int = 64 << 10,
    ):
        if segments < 1:
            raise ValueError("need at least one segment")
        if segment_bytes < max(threshold, 1):
            raise ValueError(
                f"segment_bytes ({segment_bytes}) must be >= threshold "
                f"({threshold})"
            )
        self.segment_bytes = int(segment_bytes)
        self.threshold = int(threshold)
        self.uid = f"{NAME_PREFIX}_{secrets.token_hex(4)}"
        self._segments: List[shared_memory.SharedMemory] = [
            shared_memory.SharedMemory(
                create=True, name=f"{self.uid}_{i}", size=self.segment_bytes
            )
            for i in range(segments)
        ]
        # Reentrant: a weakref.finalize release can fire from a GC pass
        # triggered while this process already holds the pool lock.
        self._lock = ctx.RLock()
        self._refs = ctx.Array("l", [0] * segments, lock=False)
        free = list(range(segments))
        self._free = ctx.Array("l", free, lock=False)
        self._free_top = ctx.Value("l", segments, lock=False)
        self._hits = ctx.Value("l", 0, lock=False)
        self._fallbacks = ctx.Value("l", 0, lock=False)
        self._fallback_bytes = ctx.Value("l", 0, lock=False)
        self._peak_in_use = ctx.Value("l", 0, lock=False)
        self._destroyed = False

    # -- allocation --------------------------------------------------------

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    def acquire(self, nbytes: int) -> Optional[int]:
        """Lease a slab for ``nbytes`` of payload (refcount := 1).

        Returns ``None`` — caller must use the in-band path — when the
        payload is under the threshold, over the slab size, or the free
        list is empty (never blocks: backpressure belongs to the stream
        queues, not the pool).  Only the latter two count as fallbacks;
        sub-threshold payloads are the intended inline path.
        """
        if nbytes < self.threshold:
            return None
        if nbytes > self.segment_bytes:
            with self._lock:
                self._fallbacks.value += 1
                self._fallback_bytes.value += nbytes
            return None
        with self._lock:
            if self._free_top.value == 0:
                self._fallbacks.value += 1
                self._fallback_bytes.value += nbytes
                return None
            self._free_top.value -= 1
            slot = self._free[self._free_top.value]
            self._refs[slot] = 1
            self._hits.value += 1
            in_use = self.num_segments - self._free_top.value
            if in_use > self._peak_in_use.value:
                self._peak_in_use.value = in_use
        return slot

    def add_refs(self, slot: int, n: int) -> None:
        if n <= 0:
            return
        with self._lock:
            self._refs[slot] += n

    def release(self, slot: int) -> None:
        """Drop one reference; at zero the slab rejoins the free list."""
        with self._lock:
            self._refs[slot] -= 1
            if self._refs[slot] == 0:
                self._free[self._free_top.value] = slot
                self._free_top.value += 1

    def view(self, slot: int, offset: int, nbytes: int) -> memoryview:
        """Writable window into a slab (valid while the pool is alive)."""
        return self._segments[slot].buf[offset : offset + nbytes]

    def carrier(self, slot: int, offset: int, nbytes: int) -> np.ndarray:
        """A uint8 array over slab memory whose death releases one ref.

        Arrays rebuilt over the carrier (and any views derived from
        them) keep it alive through their ``base`` chain, so the slab is
        recycled exactly when the consumer's last reference is gone.
        """
        arr = np.frombuffer(
            self._segments[slot].buf, dtype=np.uint8, count=nbytes, offset=offset
        )
        weakref.finalize(arr, self.release, slot)
        return arr

    # -- lifecycle ---------------------------------------------------------

    def stats(self) -> dict:
        """Occupancy / hit-rate snapshot for the observability layer."""
        with self._lock:
            in_use = self.num_segments - self._free_top.value
            hits = self._hits.value
            fallbacks = self._fallbacks.value
            return {
                "segments": self.num_segments,
                "segment_bytes": self.segment_bytes,
                "threshold": self.threshold,
                "in_use": in_use,
                "peak_in_use": self._peak_in_use.value,
                "hits": hits,
                "fallbacks": fallbacks,
                "fallback_bytes": self._fallback_bytes.value,
                "hit_rate": hits / (hits + fallbacks) if hits + fallbacks else 0.0,
            }

    def destroy(self) -> None:
        """Close and unlink every slab (parent-side, idempotent).

        The MP runtime calls this in a ``finally`` once children are
        reaped — normal completion, ``PipelineError`` aborts, and the
        exitcode-watcher path for silently dead children all funnel
        through it, so no segment outlives its run.
        """
        if self._destroyed:
            return
        self._destroyed = True
        for seg in self._segments:
            try:
                seg.close()
            except BufferError:
                # A live numpy view pins the mapping; unlink still works
                # and the map goes away with the process.
                pass
            try:
                seg.unlink()
            except FileNotFoundError:
                pass


# ---------------------------------------------------------------------------
# Framing


def dumps(obj: Any, pool: Optional[ShmPool]) -> Tuple[bytes, int, int]:
    """Frame one message, placing large payloads into the pool.

    Returns ``(frame, wire_bytes, shm_bytes)``: ``wire_bytes`` is what
    actually crosses the pipe (``len(frame)``), ``shm_bytes`` the
    payload bytes handed over through shared memory (0 on the in-band
    path).  With ``pool=None`` this is exactly :func:`codec.dumps`.
    """
    if pool is None:
        data = codec.dumps(obj)
        return data, len(data), 0
    frame = codec.encode(obj)
    payload = frame.payload_bytes
    slot = pool.acquire(payload) if frame.buffers else None
    if slot is None:
        data = codec.pack_frame(frame)
        return data, len(data), 0
    off = 0
    for b in frame.buffers:
        # The transport's single copy: array memory -> slab.  The
        # consumer side maps the slab and copies nothing.
        pool.view(slot, off, b.nbytes)[:] = b
        off += b.nbytes
    nbufs = len(frame.buffers)
    head = bytearray(
        codec._PREFIX.size + codec._BUFLEN.size * nbufs + len(frame.header)
        + _SLOT.size
    )
    codec._PREFIX.pack_into(
        head, 0, codec._MAGIC, FLAG_SHM, nbufs, len(frame.header)
    )
    pos = codec._PREFIX.size
    for b in frame.buffers:
        codec._BUFLEN.pack_into(head, pos, b.nbytes)
        pos += codec._BUFLEN.size
    head[pos : pos + len(frame.header)] = frame.header
    pos += len(frame.header)
    _SLOT.pack_into(head, pos, slot)
    data = bytes(head)
    return data, len(data), payload


def loads(data: Any, pool: Optional[ShmPool]) -> Any:
    """Decode a frame from :func:`dumps` — either form.

    Shm frames rebuild their arrays zero-copy over the slab through
    refcount-carrying carrier arrays (see :meth:`ShmPool.carrier`); the
    slab is released when the consumer drops its last view.
    """
    view = memoryview(data)
    if len(view) < codec._PREFIX.size:
        raise codec.CodecError("truncated frame (no prefix)")
    magic, flags, nbufs, header_len = codec._PREFIX.unpack_from(view, 0)
    if magic != codec._MAGIC:
        raise codec.CodecError(f"bad frame magic {bytes(magic)!r}")
    if not flags & FLAG_SHM:
        return codec.loads(data)
    if pool is None:
        raise codec.CodecError("shm frame received without a pool")
    if nbufs > codec.MAX_BUFFERS or header_len > codec.MAX_HEADER_BYTES:
        raise codec.CodecError(
            f"frame too large: nbufs={nbufs} header={header_len}"
        )
    off = codec._PREFIX.size
    lens = []
    for _ in range(nbufs):
        (n,) = codec._BUFLEN.unpack_from(view, off)
        lens.append(n)
        off += codec._BUFLEN.size
    header = bytes(view[off : off + header_len])
    if len(header) != header_len:
        raise codec.CodecError("truncated frame (header)")
    off += header_len
    (slot,) = _SLOT.unpack_from(view, off)
    # The delivery's reference is taken over by the first carrier; the
    # remaining carriers each add one, so the slab frees exactly when
    # the last rebuilt array (or derived view) dies.
    pool.add_refs(slot, nbufs - 1)
    buffers = []
    seg_off = 0
    for n in lens:
        buffers.append(pool.carrier(slot, seg_off, n))
        seg_off += n
    return codec.decode(header, buffers)

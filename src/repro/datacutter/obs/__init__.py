"""Structured observability for the filter-stream runtimes.

One event schema (:mod:`~repro.datacutter.obs.events`), one tracer
(:mod:`~repro.datacutter.obs.tracer`), one metrics registry
(:mod:`~repro.datacutter.obs.metrics`) and a set of exporters
(:mod:`~repro.datacutter.obs.export`), shared by the sequential driver,
:class:`~repro.datacutter.runtime_local.LocalRuntime`,
:class:`~repro.datacutter.runtime_mp.MPRuntime`,
:class:`~repro.datacutter.net.DistRuntime` and the cluster simulator —
the measurement layer behind the paper's per-filter evaluation
(Figs. 7-11), available for real runs.  See ``docs/observability.md``.
"""

from .events import (
    LIFECYCLE_KINDS,
    TraceEvent,
    lifecycle_counts,
    validate_event,
    validate_events,
)
from .export import (
    events_from_sim_spans,
    format_summary,
    to_chrome_json,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import MetricsRegistry, parse_metric_key, snapshot_run
from .tracer import NULL_TRACER, Trace, Tracer, resolve_trace_mode

__all__ = [
    "TraceEvent",
    "LIFECYCLE_KINDS",
    "validate_event",
    "validate_events",
    "lifecycle_counts",
    "Tracer",
    "NULL_TRACER",
    "Trace",
    "resolve_trace_mode",
    "MetricsRegistry",
    "snapshot_run",
    "parse_metric_key",
    "to_chrome_json",
    "write_chrome_trace",
    "write_jsonl",
    "format_summary",
    "events_from_sim_spans",
]

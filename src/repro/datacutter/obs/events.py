"""The typed trace-event schema shared by every runtime.

A :class:`TraceEvent` is one observation inside a run: a chunk-lifecycle
span, a queue wait, a service span, a buffer-occupancy sample, a
scheduler decision, or a wire frame.  All four execution backends
(sequential driver, threaded, multiprocessing, distributed TCP) and the
cluster simulator emit events of this one schema, so their traces can be
exported by the same exporters and diffed against each other.

Event timestamps are wall-clock (``time.time()``) seconds.  Span events
are stamped at span *end*: ``ts`` is when the span finished and ``dur``
its length, so the span covered ``[ts - dur, ts]``.  Wall clock is the
only clock that is comparable across forked processes; across real
distributed hosts it is comparable only as far as the hosts' clocks are
synchronized (see ``docs/observability.md``).

Identity fields:

* ``filter`` / ``copy`` — which filter copy observed the event.
* ``chunk`` — the IIC-to-TEXTURE chunk grid index (a tuple), carried in
  buffer metadata headers (:func:`repro.filters.messages.trace_headers`)
  so one chunk's events correlate across filters, processes and sockets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Tuple

__all__ = [
    "TraceEvent",
    "EVENT_KINDS",
    "LIFECYCLE_KINDS",
    "SPAN_KINDS",
    "validate_event",
    "validate_events",
    "lifecycle_counts",
]


@dataclass
class TraceEvent:
    """One observation inside a run (see module docstring)."""

    ts: float
    kind: str
    filter: Optional[str] = None
    copy: Optional[int] = None
    dur: float = 0.0
    chunk: Optional[Tuple[int, ...]] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def start(self) -> float:
        """Span start time (== ``ts`` for instantaneous events)."""
        return self.ts - self.dur

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {"ts": self.ts, "kind": self.kind}
        if self.filter is not None:
            d["filter"] = self.filter
        if self.copy is not None:
            d["copy"] = self.copy
        if self.dur:
            d["dur"] = self.dur
        if self.chunk is not None:
            d["chunk"] = list(self.chunk)
        if self.attrs:
            d["attrs"] = self.attrs
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "TraceEvent":
        chunk = d.get("chunk")
        return cls(
            ts=float(d["ts"]),
            kind=str(d["kind"]),
            filter=d.get("filter"),
            copy=d.get("copy"),
            dur=float(d.get("dur", 0.0)),
            chunk=tuple(chunk) if chunk is not None else None,
            attrs=dict(d.get("attrs", {})),
        )


#: The per-chunk lifecycle, in pipeline order (paper Section 4.3): read
#: raw slices, stitch them into a 4D chunk, compute co-occurrence
#: matrices, compute Haralick parameters, write output records.
LIFECYCLE_KINDS: Tuple[str, ...] = (
    "chunk.read",
    "chunk.stitch",
    "chunk.cooccur",
    "chunk.features",
    "chunk.write",
)

#: kind -> attr keys that must be present in ``attrs``.  Identity fields
#: (``filter``/``copy``) are required for every kind except the
#: head-side routing events, which have no hosting copy.
EVENT_KINDS: Dict[str, Tuple[str, ...]] = {
    # copy lifecycle
    "copy.start": (),
    "copy.done": (),
    # per-chunk lifecycle spans (emitted by the application filters)
    "chunk.read": (),
    "chunk.stitch": (),
    "chunk.cooccur": (),
    "chunk.features": (),
    "chunk.write": (),
    # per-buffer runtime spans
    "queue.wait": ("stream",),
    "service": ("stream",),
    # buffer-occupancy sample (consumer-side queue depth at dequeue)
    "queue.depth": ("depth",),
    # scheduler decision for one buffer on one transparent stream
    "sched.pick": ("stream", "policy", "dest"),
    # one serialized frame put on a pipe/socket
    "wire.frame": ("stream", "bytes"),
    # payload bytes handed over via a shared-memory pool slab (the pipe
    # carried only the descriptor frame, counted by its wire.frame)
    "shm.frame": ("stream", "bytes"),
    # a texture filter substituted a scan kernel for the requested one
    # (today: --kernel gpu on a machine without a usable CUDA device)
    "kernel.fallback": ("requested", "used"),
    # region-template data layer (repro.regions): one region staged into
    # a storage tier, served from a tier (ghost/overlap reuse), or
    # displaced between tiers by the eviction cascade (dst == "dropped"
    # when it fell off the last tier)
    "region.stage": ("tier", "bytes"),
    "region.hit": ("tier", "bytes"),
    "region.evict": ("src", "dst"),
    # fault tolerance
    "fault.retry": (),
    "fault.reroute": ("stream",),
    # elastic membership (distributed runtime): one agent joins the run,
    # is asked to drain, or detaches cleanly after a completed drain
    "agent.join": ("agent",),
    "agent.drain": ("agent",),
    "agent.detach": ("agent",),
    # one pending buffer re-assigned by the scheduler after membership
    # changed (a join added capacity, or a drain removed it) — distinct
    # from fault.reroute, which recovers from a crash
    "sched.rebalance": ("stream", "dest"),
}

#: Kinds whose ``dur`` is meaningful (rendered as complete spans).
SPAN_KINDS = frozenset(LIFECYCLE_KINDS) | {"queue.wait", "service"}

#: Kinds that exist only at the head/router, outside any filter copy.
_ROUTING_KINDS = frozenset(
    {
        "sched.pick",
        "wire.frame",
        "shm.frame",
        "fault.reroute",
        "agent.join",
        "agent.drain",
        "agent.detach",
        "sched.rebalance",
    }
)


def validate_event(ev: TraceEvent) -> None:
    """Raise ``ValueError`` if an event does not conform to the schema."""
    required = EVENT_KINDS.get(ev.kind)
    if required is None:
        raise ValueError(f"unknown event kind {ev.kind!r}")
    if ev.kind not in _ROUTING_KINDS:
        if ev.filter is None or ev.copy is None:
            raise ValueError(f"{ev.kind} event missing filter/copy: {ev}")
    missing = [k for k in required if k not in ev.attrs]
    if missing:
        raise ValueError(f"{ev.kind} event missing attrs {missing}: {ev}")
    if ev.dur < 0:
        raise ValueError(f"negative duration: {ev}")


def validate_events(events: Iterable[TraceEvent]) -> int:
    """Validate a whole trace; returns the number of events checked."""
    n = 0
    for ev in events:
        validate_event(ev)
        n += 1
    return n


def lifecycle_counts(
    events: Iterable[TraceEvent],
) -> Dict[str, Dict[Optional[Tuple[int, ...]], int]]:
    """Count chunk-lifecycle events per ``(kind, chunk id)``.

    The cross-runtime conformance suite compares these maps across
    backends: the same workload must visit the same chunks the same
    number of times no matter which runtime executed it.
    """
    out: Dict[str, Dict[Optional[Tuple[int, ...]], int]] = {
        k: {} for k in LIFECYCLE_KINDS
    }
    for ev in events:
        if ev.kind in out:
            per = out[ev.kind]
            per[ev.chunk] = per.get(ev.chunk, 0) + 1
    return out

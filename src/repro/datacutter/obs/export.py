"""Trace exporters: Chrome ``chrome://tracing`` JSON, flat JSONL, and a
terminal summary — plus the bridge that turns simulator spans into the
shared event schema so simulated and real traces are diffable.

Chrome trace mapping (the "Trace Event Format", loadable in Perfetto or
``chrome://tracing``):

* one *process* per filter (``pid``), one *thread* per copy (``tid``),
  named via ``M`` metadata events;
* span kinds (chunk lifecycle, ``queue.wait``, ``service``) become
  ``ph: "X"`` complete events with microsecond timestamps relative to
  the first event in the trace;
* ``queue.depth`` samples become ``ph: "C"`` counter events, so queue
  occupancy renders as a stacked area chart per filter;
* everything else (scheduler picks, wire frames, faults) becomes
  ``ph: "i"`` instant events on a synthetic ``runtime`` process.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from .events import LIFECYCLE_KINDS, SPAN_KINDS, TraceEvent

__all__ = [
    "to_chrome_json",
    "write_chrome_trace",
    "write_jsonl",
    "read_jsonl",
    "format_summary",
    "events_from_sim_spans",
]

#: pid used for head/router events that have no hosting filter copy.
_RUNTIME_PROC = "runtime"


def to_chrome_json(events: Iterable[TraceEvent]) -> Dict[str, Any]:
    """Build a Chrome Trace Event Format document (as a dict)."""
    evs = sorted(events, key=lambda e: e.start)
    t0 = evs[0].start if evs else 0.0

    pids: Dict[str, int] = {}
    tids: Dict[Tuple[str, int], int] = {}
    out: List[Dict[str, Any]] = []

    def pid_of(name: str) -> int:
        if name not in pids:
            pid = len(pids) + 1
            pids[name] = pid
            out.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": name},
                }
            )
        return pids[name]

    def tid_of(fname: str, copy: int) -> int:
        key = (fname, copy)
        if key not in tids:
            tid = copy + 1
            tids[key] = tid
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid_of(fname),
                    "tid": tid,
                    "args": {"name": f"copy {copy}"},
                }
            )
        return tids[key]

    for ev in evs:
        us = (ev.start - t0) * 1e6
        args: Dict[str, Any] = dict(ev.attrs)
        if ev.chunk is not None:
            args["chunk"] = "/".join(str(i) for i in ev.chunk)
        if ev.kind in SPAN_KINDS and ev.filter is not None:
            name = ev.kind
            if ev.kind in LIFECYCLE_KINDS and ev.chunk is not None:
                name = f"{ev.kind} {args['chunk']}"
            out.append(
                {
                    "name": name,
                    "cat": ev.kind.split(".", 1)[0],
                    "ph": "X",
                    "ts": us,
                    "dur": max(ev.dur * 1e6, 0.01),
                    "pid": pid_of(ev.filter),
                    "tid": tid_of(ev.filter, ev.copy or 0),
                    "args": args,
                }
            )
        elif ev.kind == "queue.depth" and ev.filter is not None:
            out.append(
                {
                    "name": f"queue depth {ev.filter}",
                    "ph": "C",
                    "ts": us,
                    "pid": pid_of(ev.filter),
                    "tid": 0,
                    "args": {"depth": ev.attrs.get("depth", 0)},
                }
            )
        else:
            if ev.filter is not None:
                pid = pid_of(ev.filter)
                tid = tid_of(ev.filter, ev.copy or 0)
            else:
                pid = pid_of(_RUNTIME_PROC)
                tid = 0
            out.append(
                {
                    "name": ev.kind,
                    "cat": ev.kind.split(".", 1)[0],
                    "ph": "i",
                    "s": "g",
                    "ts": us,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )

    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Iterable[TraceEvent], path: str) -> str:
    doc = to_chrome_json(events)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return path


def write_jsonl(events: Iterable[TraceEvent], path: str) -> str:
    """One event per line, in :meth:`TraceEvent.to_dict` form."""
    with open(path, "w") as fh:
        for ev in sorted(events, key=lambda e: e.ts):
            fh.write(json.dumps(ev.to_dict()) + "\n")
    return path


def read_jsonl(path: str) -> List[TraceEvent]:
    out: List[TraceEvent] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(TraceEvent.from_dict(json.loads(line)))
    return out


def format_summary(events: Iterable[TraceEvent]) -> str:
    """Terminal summary: per-filter busy/wait totals and per-stage
    chunk-lifecycle stats, aligned like ``report.format_breakdown``."""
    evs = list(events)
    if not evs:
        return "trace: no events"
    t0 = min(e.start for e in evs)
    t1 = max(e.ts for e in evs)

    per_filter: Dict[str, Dict[str, float]] = {}
    for ev in evs:
        if ev.filter is None:
            continue
        row = per_filter.setdefault(
            ev.filter, {"service": 0.0, "wait": 0.0, "buffers": 0}
        )
        if ev.kind == "service":
            row["service"] += ev.dur
            row["buffers"] += 1
        elif ev.kind == "queue.wait":
            row["wait"] += ev.dur

    stages: Dict[str, List[float]] = {}
    chunks = set()
    for ev in evs:
        if ev.kind in LIFECYCLE_KINDS:
            stages.setdefault(ev.kind, []).append(ev.dur)
            if ev.chunk is not None:
                chunks.add(ev.chunk)

    lines = [
        f"trace: {len(evs)} events over {t1 - t0:.3f}s, "
        f"{len(chunks)} chunks"
    ]
    if per_filter:
        lines.append(
            f"  {'filter':<10} {'buffers':>8} {'service_s':>10} {'wait_s':>10}"
        )
        for fname in sorted(per_filter):
            row = per_filter[fname]
            lines.append(
                f"  {fname:<10} {int(row['buffers']):>8} "
                f"{row['service']:>10.3f} {row['wait']:>10.3f}"
            )
    if stages:
        lines.append(
            f"  {'stage':<16} {'count':>6} {'total_s':>9} "
            f"{'mean_ms':>9} {'max_ms':>9}"
        )
        for kind in LIFECYCLE_KINDS:
            durs = stages.get(kind)
            if not durs:
                continue
            total = sum(durs)
            lines.append(
                f"  {kind:<16} {len(durs):>6} {total:>9.3f} "
                f"{1e3 * total / len(durs):>9.2f} {1e3 * max(durs):>9.2f}"
            )
    return "\n".join(lines)


#: simulator span kind -> shared event kind.  The simulator models the
#: fused TEXTURE computation as one ``compute`` span, which maps onto
#: the co-occurrence stage (its dominant cost, paper Table 2).
_SIM_KIND_MAP = {
    "read": "chunk.read",
    "stitch": "chunk.stitch",
    "compute": "chunk.cooccur",
    "write": "chunk.write",
}


def events_from_sim_spans(
    spans: Mapping[Tuple[str, int], Iterable[Tuple[float, float, str]]],
    t0: float = 0.0,
    chunk_ids: Optional[Mapping[Tuple[str, int], Iterable]] = None,
) -> List[TraceEvent]:
    """Convert ``SimReport.spans`` into shared-schema events.

    Simulated time is kept as-is (seconds since sim start) with ``t0``
    added, so a simulated trace exports through the same
    :func:`write_chrome_trace` / :func:`write_jsonl` as a real one.
    """
    out: List[TraceEvent] = []
    for (fname, copy), rows in spans.items():
        ids = list(chunk_ids.get((fname, copy), [])) if chunk_ids else []
        for i, (s, e, kind) in enumerate(rows):
            ev_kind = _SIM_KIND_MAP.get(kind)
            if ev_kind is None:
                continue
            chunk = tuple(ids[i]) if i < len(ids) else None
            out.append(
                TraceEvent(
                    ts=t0 + e,
                    kind=ev_kind,
                    filter=fname,
                    copy=copy,
                    dur=e - s,
                    chunk=chunk,
                )
            )
    out.sort(key=lambda ev: ev.ts)
    return out

"""Counters, gauges and histograms snapshotted into ``RunResult.metrics``.

The registry is deliberately small: three instrument types, label sets
flattened into stable string keys (``name{k=v,...}``), and a
``snapshot()`` that returns plain dicts/lists so the result can travel
through the wire codec and into JSON without any custom types.

``snapshot_run`` builds the standard snapshot every runtime attaches to
its :class:`RunResult`: the aggregate fields the runtimes already track
(busy seconds per copy, buffers routed, retries, reroutes, wire bytes)
plus event-derived histograms (queue wait, service time, chunk-lifecycle
stage durations) when a trace was collected.  ``filter_breakdown`` in
:mod:`repro.pipeline.report` is rebuilt on top of the
``busy_seconds{filter=...}`` histograms — they observe exactly one value
per filter copy, so count/sum/mean/max reproduce the legacy
``busy_time``-derived table bit-for-bit.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from .events import SPAN_KINDS, TraceEvent

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "flatten_key",
    "parse_metric_key",
    "snapshot_run",
]


def flatten_key(name: str, labels: Mapping[str, Any]) -> str:
    """``("qdepth", {"filter": "IIC"})`` -> ``"qdepth{filter=IIC}"``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_metric_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Inverse of :func:`flatten_key` (labels come back as strings)."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels: Dict[str, str] = {}
    for part in inner[:-1].split(","):
        if part:
            k, _, v = part.partition("=")
            labels[k] = v
    return name, labels


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins); tracks its max."""

    __slots__ = ("value", "max")

    def __init__(self) -> None:
        self.value = 0.0
        self.max = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max:
            self.max = value


class Histogram:
    """Streaming count/sum/min/max/mean (no buckets — runs are short
    enough that exact summary stats beat bucketed approximations)."""

    __slots__ = ("count", "sum", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Thread-safe registry of named, labelled instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        key = flatten_key(name, labels)
        with self._lock:
            inst = self._counters.get(key)
            if inst is None:
                inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = flatten_key(name, labels)
        with self._lock:
            inst = self._gauges.get(key)
            if inst is None:
                inst = self._gauges[key] = Gauge()
        return inst

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = flatten_key(name, labels)
        with self._lock:
            inst = self._histograms.get(key)
            if inst is None:
                inst = self._histograms[key] = Histogram()
        return inst

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-dict view: ``{"counters": {...}, "gauges": {...},
        "histograms": {...}}`` — JSON- and codec-safe."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in self._counters.items()},
                "gauges": {
                    k: {"value": g.value, "max": g.max}
                    for k, g in self._gauges.items()
                },
                "histograms": {
                    k: h.to_dict() for k, h in self._histograms.items()
                },
            }


def _ingest_events(reg: MetricsRegistry, events: Iterable[TraceEvent]) -> None:
    """Fold a finished trace into event-derived instruments."""
    for ev in events:
        f = ev.filter
        if ev.kind == "queue.wait":
            reg.histogram("queue_wait_seconds", filter=f).observe(ev.dur)
        elif ev.kind == "service":
            reg.histogram("service_seconds", filter=f).observe(ev.dur)
        elif ev.kind == "queue.depth":
            reg.gauge("queue_depth", filter=f).set(float(ev.attrs["depth"]))
        elif ev.kind == "sched.pick":
            reg.counter(
                "sched_picks",
                stream=ev.attrs["stream"],
                policy=ev.attrs["policy"],
            ).inc()
        elif ev.kind == "wire.frame":
            reg.counter("wire_frames", stream=ev.attrs["stream"]).inc()
        elif ev.kind == "shm.frame":
            reg.counter("shm_frames", stream=ev.attrs["stream"]).inc()
        elif ev.kind == "region.stage":
            tier = ev.attrs["tier"]
            reg.counter("region_stages", tier=tier).inc()
            reg.counter("region_staged_bytes", tier=tier).inc(
                float(ev.attrs["bytes"])
            )
            for t, b in (ev.attrs.get("tier_bytes") or {}).items():
                reg.gauge("region_tier_bytes", tier=t).set(float(b))
        elif ev.kind == "region.hit":
            tier = ev.attrs["tier"]
            reg.counter("region_hits", tier=tier).inc()
            reg.counter("region_hit_bytes", tier=tier).inc(
                float(ev.attrs["bytes"])
            )
        elif ev.kind == "tune.adjust":
            edge = ev.attrs["edge"]
            knob = ev.attrs["knob"]
            reg.counter("tune_adjustments", edge=edge, knob=knob).inc()
            # Last-written value per knob: the setting the run ended on.
            reg.gauge(f"tune_{knob}", edge=edge).set(float(ev.attrs["new"]))
        elif ev.kind == "region.evict":
            reg.counter(
                "region_evictions", src=ev.attrs["src"], dst=ev.attrs["dst"]
            ).inc()
        elif ev.kind.startswith("chunk.") and ev.kind in SPAN_KINDS:
            stage = ev.kind.split(".", 1)[1]
            reg.histogram("chunk_stage_seconds", stage=stage).observe(ev.dur)
            if stage == "write" and "records" in ev.attrs:
                reg.counter("records_written").inc(float(ev.attrs["records"]))


def snapshot_run(
    busy: Mapping[Tuple[str, int], float],
    buffers_sent: Mapping[str, int],
    retries: int,
    reroutes: int,
    failed_copies: Iterable[Tuple[str, int]],
    wire_bytes: Mapping[Any, int],
    elapsed: float,
    events: Optional[List[TraceEvent]] = None,
    shm_bytes: Optional[Mapping[Any, int]] = None,
    shm_pool: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Dict[str, Any]]:
    """Build the standard ``RunResult.metrics`` snapshot for one run.

    Always derivable from the aggregates every runtime already tracks;
    event-derived instruments are added only when a trace exists.
    ``shm_bytes`` / ``shm_pool`` (per-link slab bytes and a
    :meth:`ShmPool.stats` dict) appear only for shared-memory-transport
    runs of the multiprocessing runtime.
    """
    reg = MetricsRegistry()
    for (fname, copy), dt in busy.items():
        reg.histogram("busy_seconds", filter=fname).observe(dt)
        reg.counter("copies", filter=fname).inc()
    for stream, n in buffers_sent.items():
        reg.counter("buffers_sent", stream=stream).inc(n)
    if retries:
        reg.counter("retries").inc(retries)
    if reroutes:
        reg.counter("reroutes").inc(reroutes)
    for fname, copy in failed_copies:
        reg.counter("failed_copies", filter=fname).inc()
    for key, n in (wire_bytes or {}).items():
        label = key if isinstance(key, str) else "/".join(str(p) for p in key)
        reg.counter("wire_bytes", link=label).inc(n)
    for key, n in (shm_bytes or {}).items():
        label = key if isinstance(key, str) else "/".join(str(p) for p in key)
        reg.counter("shm_bytes", link=label).inc(n)
    if shm_pool is not None:
        reg.counter("shm_pool_hits").inc(shm_pool.get("hits", 0))
        reg.counter("shm_pool_fallbacks").inc(shm_pool.get("fallbacks", 0))
        reg.counter("shm_pool_fallback_bytes").inc(
            shm_pool.get("fallback_bytes", 0)
        )
        reg.gauge("shm_pool_in_use").set(float(shm_pool.get("in_use", 0)))
        reg.gauge("shm_pool_peak_in_use").set(
            float(shm_pool.get("peak_in_use", 0))
        )
        reg.gauge("shm_pool_hit_rate").set(float(shm_pool.get("hit_rate", 0.0)))
    reg.gauge("elapsed_seconds").set(elapsed)
    if events:
        _ingest_events(reg, events)
    return reg.snapshot()

"""Tracers collect :class:`TraceEvent` records during a run.

Design constraints (ISSUE 4): tracing is **opt-in** and must be
near-zero cost when disabled.  Every instrumentation site in the
runtimes is guarded by ``if tracer is not None`` (or the filter-visible
``ctx.tracing`` flag), so a run without a tracer executes the exact
pre-observability code path plus one predictable branch.

A :class:`Tracer` is thread-safe (one lock around an append).  Runtimes
that cross process boundaries give each child its own tracer and merge
the drained events into the parent's at copy completion, so no
cross-process synchronization happens on the hot path.

A :class:`Trace` is the finished, immutable view attached to
``RunResult.trace``: events sorted by timestamp plus convenience
exporters.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from .events import TraceEvent, lifecycle_counts

__all__ = ["Tracer", "NULL_TRACER", "Trace", "resolve_trace_mode"]

#: Exporter names accepted by ``run_pipeline(trace=...)`` / ``--trace``.
TRACE_MODES = ("events", "chrome", "jsonl", "live")


class Tracer:
    """Collects events for one run (or one filter copy of one run).

    ``scope`` labels every event this tracer emits with fixed attrs
    (e.g. ``{"job": "j-000017"}``).  Each run — and in the analysis
    service, each job — gets its *own* tracer, so two concurrent runs in
    one process can never interleave events into one trace; the scope
    keeps that attribution even after traces are merged or exported.
    """

    __slots__ = ("_events", "_lock", "t0", "scope")

    enabled = True

    def __init__(self, scope: Optional[Dict[str, Any]] = None) -> None:
        self._events: List[TraceEvent] = []
        self._lock = threading.Lock()
        self.t0 = time.time()
        self.scope = dict(scope) if scope else None

    def emit(
        self,
        kind: str,
        filter: Optional[str] = None,
        copy: Optional[int] = None,
        dur: float = 0.0,
        chunk: Optional[Tuple[int, ...]] = None,
        **attrs: Any,
    ) -> None:
        if self.scope:
            attrs = {**self.scope, **attrs}
        ev = TraceEvent(
            ts=time.time(),
            kind=kind,
            filter=filter,
            copy=copy,
            dur=dur,
            chunk=tuple(chunk) if chunk is not None else None,
            attrs=attrs,
        )
        with self._lock:
            self._events.append(ev)

    def extend(self, events: List[TraceEvent]) -> None:
        """Merge events drained from another tracer (child process)."""
        if events:
            with self._lock:
                self._events.extend(events)

    def drain(self) -> List[TraceEvent]:
        """Remove and return everything collected so far."""
        with self._lock:
            out = self._events
            self._events = []
        return out

    @property
    def events(self) -> List[TraceEvent]:
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class _NullTracer:
    """Disabled tracer: every operation is a no-op.

    Exists so call sites that *must* hold a tracer object (filter
    contexts) can avoid ``None`` checks; the runtimes themselves pass
    ``None`` and skip instrumentation entirely.
    """

    __slots__ = ()
    enabled = False

    def emit(self, *args: Any, **kwargs: Any) -> None:
        pass

    def extend(self, events: List[TraceEvent]) -> None:
        pass

    def drain(self) -> List[TraceEvent]:
        return []

    @property
    def events(self) -> List[TraceEvent]:
        return []

    def __len__(self) -> int:
        return 0


NULL_TRACER = _NullTracer()


class Trace:
    """The finished trace of one run: sorted events + exporters."""

    def __init__(self, events: List[TraceEvent]):
        self.events: List[TraceEvent] = sorted(events, key=lambda e: e.ts)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def t0(self) -> float:
        return self.events[0].start if self.events else 0.0

    def kinds(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    def lifecycle_counts(self):
        return lifecycle_counts(self.events)

    def to_chrome(self, path: str) -> str:
        from .export import write_chrome_trace

        return write_chrome_trace(self.events, path)

    def to_jsonl(self, path: str) -> str:
        from .export import write_jsonl

        return write_jsonl(self.events, path)

    def summary(self) -> str:
        from .export import format_summary

        return format_summary(self.events)


def resolve_trace_mode(trace: Any) -> Optional[str]:
    """Normalize a ``trace=`` argument to an exporter name or ``None``.

    ``None``/``False`` disable tracing; ``True`` collects events without
    exporting (``"events"``); a string names an exporter
    (:data:`TRACE_MODES`).
    """
    if trace is None or trace is False:
        return None
    if trace is True:
        return "events"
    mode = str(trace)
    if mode not in TRACE_MODES:
        raise ValueError(
            f"unknown trace mode {trace!r}; valid: {', '.join(TRACE_MODES)}"
        )
    return mode

"""Placement of filter copies onto nodes.

Placement drives the paper's performance story: co-locating the HCC and
HPC filters on one node turns their stream into pointer copies (Fig. 8
"Overlap"), while placing them on separate nodes adds network traffic but
dedicates a CPU to each.  A :class:`Placement` maps every
``(filter, copy_index)`` to a node identifier; node identifiers are
resolved by the cluster model (``repro.sim.clusters``) — the threaded
runtime ignores placement except for validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from .graph import FilterGraph

__all__ = ["Placement"]


@dataclass
class Placement:
    """Assignment of filter copies to nodes."""

    assignments: Dict[Tuple[str, int], str] = field(default_factory=dict)

    def place(self, filter_name: str, copy_index: int, node: str) -> None:
        key = (filter_name, int(copy_index))
        if key in self.assignments:
            raise ValueError(f"copy {key} already placed on {self.assignments[key]}")
        self.assignments[key] = node

    def place_copies(self, filter_name: str, nodes: Sequence[str]) -> None:
        """Place copies 0..n-1 of a filter on the listed nodes."""
        for i, node in enumerate(nodes):
            self.place(filter_name, i, node)

    def place_round_robin(
        self, filter_name: str, copies: int, nodes: Sequence[str]
    ) -> None:
        """Spread ``copies`` copies over ``nodes`` in round-robin order."""
        if not nodes:
            raise ValueError("no nodes to place on")
        for i in range(copies):
            self.place(filter_name, i, nodes[i % len(nodes)])

    def node_of(self, filter_name: str, copy_index: int) -> str:
        try:
            return self.assignments[(filter_name, copy_index)]
        except KeyError:
            raise KeyError(
                f"copy ({filter_name!r}, {copy_index}) has no placement"
            ) from None

    def copies_on(self, node: str) -> List[Tuple[str, int]]:
        return sorted(k for k, v in self.assignments.items() if v == node)

    def nodes(self) -> List[str]:
        return sorted(set(self.assignments.values()))

    def colocated(
        self, a: Tuple[str, int], b: Tuple[str, int]
    ) -> bool:
        """True when two copies share a node (stream becomes pointer copy)."""
        return self.node_of(*a) == self.node_of(*b)

    def validate_for(self, graph: FilterGraph) -> None:
        """Every copy of every filter in ``graph`` must be placed."""
        missing = []
        for spec in graph.filters.values():
            for i in range(spec.copies):
                if (spec.name, i) not in self.assignments:
                    missing.append((spec.name, i))
        if missing:
            raise ValueError(f"unplaced filter copies: {missing[:8]}")
        extra = [
            k for k in self.assignments
            if k[0] not in graph.filters or k[1] >= graph.filters[k[0]].copies
        ]
        if extra:
            raise ValueError(f"placements for unknown copies: {extra[:8]}")

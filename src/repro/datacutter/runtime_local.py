"""Threaded local runtime: real concurrent execution of a filter graph.

Each filter copy runs in its own thread with a bounded input queue, so
producers and consumers "run concurrently and process data chunks in a
pipelined fashion" (paper Section 4.1) for real on this machine.  The
NumPy kernels release the GIL in their hot loops, so replicated texture
filters genuinely overlap.

Per-stream routing honours the configured scheduling policy
(:mod:`repro.datacutter.scheduling`).  End-of-stream is tracked at the
edge router rather than with in-band markers: each producer copy ticks a
shared ``producers_done`` counter when it finishes, and a consumer copy
closes the stream only when every producer is done, its own delivery
accounting has drained to zero, *and* no failed sibling copy still holds
undelivered buffers.  The close is atomic with routing (same lock), so a
buffer re-delivered by a dying copy can never race past a survivor's
shutdown — the DataCutter guarantee (consumer finishes once every
producer copy of every input stream completes) extends cleanly to
at-least-once re-delivery.

Fault tolerance (:mod:`repro.datacutter.faults`): every blocking queue
operation is abort-aware, so a failed copy can never wedge the run.  A
``process()`` call that raises is retried per the :class:`RetryPolicy`;
a copy that exhausts its retries is declared dead — its in-hand buffer
and everything still queued for it are *rerouted* to surviving
transparent copies (the dead copy's thread stays alive in drain mode,
re-delivering until its input streams close, so producers never block on
a dead queue).  Unrecoverable failures trigger a shared abort that
unblocks every thread, and ``run()`` raises a structured
:class:`PipelineError` instead of deadlocking.

The runtime records per-copy busy time (time spent inside
``generate``/``process``/``finalize``), giving the per-filter processing
time breakdown of the paper's Fig. 9 for real runs.
"""

from __future__ import annotations

import queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .buffers import DataBuffer
from .faults import (
    NULL_INJECTOR,
    CopyFailure,
    FaultPlan,
    InjectedCrash,
    InjectedFault,
    PipelineError,
    RetryPolicy,
)
from .filter import Filter, FilterContext
from .graph import FilterGraph, StreamEdge
from .obs import Trace, Tracer, snapshot_run
from .scheduling import CopyState, make_policy

__all__ = ["LocalRuntime", "RunResult", "WAKEUPS"]

#: Watchdog granularity while blocked on a queue (seconds).  With
#: ``wakeup="event"`` (default) every transition a blocked worker waits
#: on — new buffer, stream closure, copy death, abort — raises a wakeup
#: (a queue put or a ``_WAKE`` nudge), so this only bounds recovery from
#: a missed one; with ``wakeup="polled"`` blocked workers genuinely tick
#: at this granularity (the pre-event behaviour, kept for benchmarks).
_POLL = 0.05

#: Accepted ``wakeup=`` modes.
WAKEUPS = ("event", "polled")

#: No-op queue token: wakes a consumer blocked in ``get`` so it re-checks
#: stream closure immediately instead of waiting out a poll interval.
_WAKE = object()


class _Aborted(BaseException):
    """Internal unwind signal raised inside workers when the run aborts."""


class _CopyDied(Exception):
    """A copy exhausted its retries (or was crashed by injection)."""

    def __init__(self, cause: BaseException, injected: bool):
        super().__init__(str(cause))
        self.cause = cause
        self.injected = injected


@dataclass
class RunResult:
    """Outcome of one pipeline execution."""

    results: Dict[str, List[Any]]
    elapsed: float
    busy_time: Dict[Tuple[str, int], float]
    buffers_sent: Dict[str, int]
    #: Failure accounting: process() retries, buffers re-delivered to a
    #: surviving copy, and the copies that died but were recovered from.
    retries: int = 0
    reroutes: int = 0
    failed_copies: List[CopyFailure] = field(default_factory=list)
    #: Bytes put on the wire per stream (``"src:stream"``) delivering its
    #: buffers to consumers — populated by the runtimes that serialize
    #: (distributed TCP, multiprocessing pipes); empty for the threaded
    #: runtime, whose deliveries are pointer copies.
    wire_bytes: Dict[str, int] = field(default_factory=dict)
    #: Payload bytes handed over through shared-memory pool slabs per
    #: stream (``"src:stream"``) instead of being copied through a pipe —
    #: populated only by ``MPRuntime(transport="shm")``; empty elsewhere.
    #: For a shm run, ``wire_bytes`` then counts just the descriptor
    #: frames that still cross the pipe.
    shm_bytes: Dict[str, int] = field(default_factory=dict)
    #: Elastic membership (distributed runtime only): node names of the
    #: agents that joined the run live, and of the agents that left it
    #: through a *completed* graceful drain.  A drain that escalated —
    #: deadline exceeded, or the agent went silent mid-drain — is a
    #: crash: it appears in ``failed_copies``, never in
    #: ``drained_agents``.  A clean drain contributes nothing to
    #: ``retries``/``reroutes``; the pending buffers it moved off the
    #: draining copies are counted in ``rebalances`` instead.
    joined_agents: List[str] = field(default_factory=list)
    drained_agents: List[str] = field(default_factory=list)
    rebalances: int = 0
    #: Standard metrics snapshot (:func:`repro.datacutter.obs.snapshot_run`):
    #: counters/gauges/histograms derived from this run's aggregates, plus
    #: event-derived instruments when tracing was on.
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: The collected :class:`repro.datacutter.obs.Trace`, or ``None`` when
    #: tracing was disabled (the default).
    trace: Optional[Trace] = None

    def filter_busy_time(self, name: str) -> float:
        """Total busy seconds summed over all copies of a filter."""
        return sum(v for (f, _), v in self.busy_time.items() if f == name)

    def deposits(self, key: str) -> List[Any]:
        return self.results.get(key, [])


class _RunState:
    """Shared per-run coordination: abort signal and failure accounting.

    In event mode the abort also *wakes* every consumer: queues attached
    via :meth:`attach_queues` get a best-effort ``_WAKE`` nudge when the
    abort trips, so a worker blocked in ``get`` unwinds immediately
    instead of discovering the flag at its next watchdog expiry.
    """

    def __init__(self) -> None:
        self.abort = threading.Event()
        self.lock = threading.Lock()
        self.failures: List[CopyFailure] = []
        self.fatal = False
        self.retries = 0
        self.reroutes = 0
        self._wake_queues: List["queue.Queue"] = []

    def attach_queues(self, queues: List["queue.Queue"]) -> None:
        self._wake_queues.extend(queues)

    def _wake_all(self) -> None:
        for q in self._wake_queues:
            try:
                q.put_nowait(_WAKE)
            except queue.Full:
                pass  # a full queue wakes its consumer on its own

    def record_failure(self, failure: CopyFailure, fatal: bool) -> None:
        with self.lock:
            self.failures.append(failure)
            if fatal:
                self.fatal = True
        if fatal:
            self.abort.set()
            self._wake_all()

    def trigger_abort(self) -> None:
        with self.lock:
            self.fatal = True
        self.abort.set()
        self._wake_all()

    def count_retry(self) -> None:
        with self.lock:
            self.retries += 1

    def count_reroute(self) -> None:
        with self.lock:
            self.reroutes += 1


class _EdgeRouter:
    """Routes buffers of one stream edge to the consumer's copies.

    Dead consumer copies are excluded from scheduling; blocked producers
    re-check the abort signal and the dead set every :data:`_POLL`
    seconds, so no failure can leave a producer wedged on a full queue.
    """

    def __init__(
        self,
        edge: StreamEdge,
        consumer_queues: List["queue.Queue"],
        state: _RunState,
        n_producers: int,
        tracer: Optional[Tracer] = None,
        poll: float = _POLL,
    ):
        self.edge = edge
        self.policy = make_policy(edge.policy)
        self.queues = consumer_queues
        self.states = [CopyState(i) for i in range(len(consumer_queues))]
        self.lock = threading.Lock()
        self.state = state
        self.n_producers = n_producers
        self.producers_done = 0
        self.dead: set = set()  # copies that failed
        self.departed: set = set()  # copies that closed the stream cleanly
        self.sent = 0
        self.tracer = tracer
        self.poll = poll

    def mark_dead(self, copy_index: int) -> None:
        with self.lock:
            self.dead.add(copy_index)

    def producer_done(self) -> None:
        """One producer copy finished (its share of the stream is sent)."""
        with self.lock:
            self.producers_done += 1
            last = self.producers_done == self.n_producers
        if last:
            self._nudge()

    def _nudge(self) -> None:
        """Wake blocked consumers so they re-check closure immediately.

        Best-effort: a full queue wakes its consumer on its own.
        """
        for q in self.queues:
            try:
                q.put_nowait(_WAKE)
            except queue.Full:
                pass

    def try_close(self, copy_index: int) -> bool:
        """Atomically close this consumer copy's view of the stream.

        True once (a) every producer copy signalled completion and
        (b) every copy's delivery accounting has drained — nothing
        queued, nothing in flight.  The sibling condition is deliberate:
        while *any* sibling (alive or dead) still holds buffers, that
        sibling could yet fail and need this copy as a reroute target.
        Closing marks the copy *departed* under the routing lock, so a
        concurrent reroute either lands before the close (keeping the
        copy alive to process it) or picks a different survivor.
        """
        with self.lock:
            if copy_index in self.departed:
                return True
            if self.producers_done < self.n_producers:
                return False
            if any(s.queued for s in self.states):
                return False
            self.departed.add(copy_index)
            return True

    def has_survivors(self) -> bool:
        with self.lock:
            return len(self.dead | self.departed) < len(self.queues)

    def _pick(self, buffer: DataBuffer, dest_copy: Optional[int]) -> int:
        if self.policy.requires_explicit_dest():
            if dest_copy is None:
                raise RuntimeError(
                    f"stream {self.edge.stream!r} is explicit: dest_copy required"
                )
            idx = dest_copy
            if not (0 <= idx < len(self.queues)):
                raise RuntimeError(
                    f"stream {self.edge.stream!r}: dest copy {idx} out of range"
                )
            with self.lock:
                if idx in self.dead or idx in self.departed:
                    # Explicit placement is semantic (all pieces of one
                    # chunk meet at one copy); a dead destination is
                    # unrecoverable — abort the run.
                    self.state.trigger_abort()
                    raise _Aborted()
                self.states[idx].on_assign(buffer)
                self.sent += 1
            return idx
        if dest_copy is not None:
            raise RuntimeError(
                f"stream {self.edge.stream!r} is {self.edge.policy}: "
                "dest_copy only valid on explicit streams"
            )
        with self.lock:
            gone = self.dead | self.departed
            alive = [s for s in self.states if s.copy_index not in gone]
            if not alive:
                self.state.trigger_abort()
                raise _Aborted()
            idx = self.policy.choose(alive, buffer)
            self.states[idx].on_assign(buffer)
            self.sent += 1
        return idx

    def route(self, buffer: DataBuffer, dest_copy: Optional[int]) -> None:
        item = (self.edge.stream, buffer)
        while True:
            idx = self._pick(buffer, dest_copy)
            if self.tracer is not None:
                self.tracer.emit(
                    "sched.pick",
                    chunk=buffer.metadata.get("chunk"),
                    stream=self.edge.stream,
                    policy=self.edge.policy,
                    dest=idx,
                )
                buffer.metadata["_obs_enq"] = time.time()
            while True:
                if self.state.abort.is_set():
                    raise _Aborted()
                with self.lock:
                    died = idx in self.dead and dest_copy is None
                if died:
                    # Chosen copy died while we were blocked: undo the
                    # assignment and pick a survivor instead.
                    with self.lock:
                        self.states[idx].on_unassign(buffer)
                        self.sent -= 1
                    break
                try:
                    # The timeout is a watchdog: it bounds how long a
                    # producer blocked on a full queue goes without
                    # re-checking the abort flag and the dead set (a
                    # consume frees a slot and wakes the put directly).
                    self.queues[idx].put(item, timeout=self.poll)
                    return
                except queue.Full:
                    continue

    def on_consume(self, copy_index: int) -> None:
        with self.lock:
            self.states[copy_index].on_consume()
            drained = self.producers_done == self.n_producers and not any(
                s.queued for s in self.states
            )
        if drained:
            # The last in-flight buffer on this edge just completed:
            # every copy can now close, so don't make them poll for it.
            self._nudge()


class _LocalContext(FilterContext):
    def __init__(
        self,
        results: Dict[str, List[Any]],
        results_lock: threading.Lock,
        filter_name: str,
        copy_index: int,
        num_copies: int,
        out_routers: Dict[str, _EdgeRouter],
        tracer: Optional[Tracer] = None,
    ):
        super().__init__(filter_name, copy_index, num_copies)
        self._results = results
        self._results_lock = results_lock
        self._out = out_routers
        self._tracer = tracer
        self.tracing = tracer is not None

    def event(self, kind, *, dur=0.0, chunk=None, **attrs):
        if self._tracer is not None:
            self._tracer.emit(
                kind,
                filter=self.filter_name,
                copy=self.copy_index,
                dur=dur,
                chunk=chunk,
                **attrs,
            )

    def send(self, stream, payload, size_bytes=0, metadata=None, dest_copy=None):
        try:
            router = self._out[stream]
        except KeyError:
            raise RuntimeError(
                f"filter {self.filter_name!r} has no output stream {stream!r}"
            ) from None
        buf = DataBuffer(
            payload=payload, size_bytes=size_bytes, metadata=dict(metadata or {})
        )
        router.route(buf, dest_copy)

    def deposit(self, key, value):
        with self._results_lock:
            self._results.setdefault(key, []).append(value)


class LocalRuntime:
    """Executes a validated :class:`FilterGraph` with one thread per copy.

    Parameters
    ----------
    graph:
        The filter network to execute.
    max_queue:
        Bound on each copy's input queue (backpressure).
    retry:
        :class:`RetryPolicy` for failed ``process()`` calls; the default
        retries 3 times with backoff and reroutes a dead copy's buffers
        to survivors.  Pass :data:`~repro.datacutter.faults.NO_RETRY`
        to fail fast.
    faults:
        Optional :class:`FaultPlan` to inject failures for testing.
    trace:
        When true, collect :mod:`repro.datacutter.obs` trace events
        (queue waits, service spans, scheduler picks, chunk lifecycle via
        ``ctx.event``) into ``RunResult.trace``.  Off by default; the
        disabled path adds only ``is not None`` branches.
    poll_interval:
        Watchdog granularity in seconds (default 0.05).  With
        ``wakeup="event"`` it only bounds recovery from a missed wakeup;
        with ``wakeup="polled"`` it is the legacy busy-wait tick.
    wakeup:
        ``"event"`` (default) wakes blocked workers on every queue
        transition (puts, ``_WAKE`` closure nudges, abort nudges);
        ``"polled"`` restores the pre-event ticks for benchmarking.
    """

    def __init__(
        self,
        graph: FilterGraph,
        max_queue: int = 64,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
        trace: bool = False,
        poll_interval: Optional[float] = None,
        wakeup: str = "event",
    ):
        graph.validate()
        self._check_stream_names(graph)
        if wakeup not in WAKEUPS:
            raise ValueError(
                f"unknown wakeup {wakeup!r}; expected one of {WAKEUPS}"
            )
        self.graph = graph
        self.max_queue = max_queue
        self.retry = retry if retry is not None else RetryPolicy()
        self.faults = faults
        self.trace = bool(trace)
        self.poll_interval = (
            _POLL if poll_interval is None else float(poll_interval)
        )
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        self.wakeup = wakeup
        self._run_lock = threading.Lock()
        self._active_state: Optional[_RunState] = None

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Abort any in-flight run.  Idempotent.

        The threaded runtime holds no resources between runs (worker
        threads end with each ``run()``), so closing only matters for a
        run that is still executing: its shared abort flag is raised and
        ``run()`` will unwind with a :class:`PipelineError`.
        """
        state = self._active_state
        if state is not None:
            state.trigger_abort()

    def __enter__(self) -> "LocalRuntime":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    @staticmethod
    def _check_stream_names(graph: FilterGraph) -> None:
        # A consumer identifies the edge by stream name, so its input
        # streams must be distinct.
        for name in graph.filters:
            streams = [e.stream for e in graph.in_edges(name)]
            if len(streams) != len(set(streams)):
                raise ValueError(
                    f"filter {name!r} has duplicate input stream names: {streams}"
                )

    # -- retry loop --------------------------------------------------------

    def _process_with_retry(
        self, filt: Filter, stream: str, buffer: DataBuffer, ctx, injector, state
    ) -> float:
        """Run ``process()`` with injection + retry; returns busy seconds.

        Raises :class:`_CopyDied` when the copy must be given up on.
        """
        attempt = 1
        while True:
            try:
                injector.before_process(buffer, attempt)
                t0 = time.perf_counter()
                filt.process(stream, buffer, ctx)
                dt = time.perf_counter() - t0
                injector.after_process(buffer)
                return dt
            except InjectedCrash as exc:
                raise _CopyDied(exc, injected=True) from exc
            except _Aborted:
                raise
            except BaseException as exc:  # noqa: BLE001 - retried or reported
                if attempt >= self.retry.max_attempts:
                    raise _CopyDied(exc, injected=isinstance(exc, InjectedFault))
                state.count_retry()
                ctx.event("fault.retry", attempt=attempt, error=repr(exc))
                # Event-driven backoff: one wait for the whole delay,
                # interrupted immediately by the shared abort.
                if state.abort.wait(timeout=self.retry.delay(attempt)):
                    raise _Aborted()
                attempt += 1

    # -- execution ---------------------------------------------------------

    def run(self, timeout: Optional[float] = None) -> RunResult:
        # One run at a time per instance: concurrent jobs must use
        # separate runtime instances (the service's warm pool leases
        # guarantee this).  Raising beats silently interleaving two
        # jobs' deposits and trace events into one result.
        if not self._run_lock.acquire(blocking=False):
            raise RuntimeError(
                "LocalRuntime.run() is already executing; concurrent runs "
                "need separate runtime instances"
            )
        try:
            return self._run(timeout)
        finally:
            self._active_state = None
            self._run_lock.release()

    def _run(self, timeout: Optional[float] = None) -> RunResult:
        # Per-run state: nothing below survives on the instance, so a
        # finished run leaves no mutable state for the next one (or a
        # concurrent one on another instance) to trip over.
        results: Dict[str, List[Any]] = {}
        results_lock = threading.Lock()
        graph = self.graph
        if self.faults is not None:
            self.faults.validate(
                {name: spec.copies for name, spec in graph.filters.items()}
            )
        state = _RunState()
        self._active_state = state
        tracer = Tracer() if self.trace else None
        # Input queues per (filter, copy).
        queues: Dict[Tuple[str, int], queue.Queue] = {}
        for spec in graph.filters.values():
            for i in range(spec.copies):
                queues[(spec.name, i)] = queue.Queue(maxsize=self.max_queue)
        if self.wakeup == "event":
            # Abort raises a nudge in every consumer queue, so workers
            # blocked in ``get`` unwind without waiting out the watchdog.
            state.attach_queues(
                [
                    queues[(spec.name, i)]
                    for spec in graph.filters.values()
                    if graph.in_edges(spec.name)
                    for i in range(spec.copies)
                ]
            )

        # One router per edge, shared by all producer copies.
        routers: Dict[Tuple[str, str], _EdgeRouter] = {}
        for edge in graph.edges:
            consumer_queues = [
                queues[(edge.dst, i)] for i in range(graph.copies(edge.dst))
            ]
            routers[(edge.src, edge.stream)] = _EdgeRouter(
                edge,
                consumer_queues,
                state,
                n_producers=graph.copies(edge.src),
                tracer=tracer,
                poll=self.poll_interval,
            )

        busy: Dict[Tuple[str, int], float] = {}
        threads: List[threading.Thread] = []

        def worker(spec_name: str, copy_index: int) -> None:
            spec = graph.filters[spec_name]
            injector = (
                self.faults.injector_for(spec_name, copy_index)
                if self.faults is not None
                else NULL_INJECTOR
            )
            out_routers = {
                e.stream: routers[(spec_name, e.stream)]
                for e in graph.out_edges(spec_name)
            }
            in_edges = graph.in_edges(spec_name)
            in_routers = {e.stream: routers[(e.src, e.stream)] for e in in_edges}
            q = queues[(spec_name, copy_index)]
            t_busy = 0.0
            dead = False  # this copy failed but drains/reroutes its queue
            try:
                filt = spec.factory()
                ctx = _LocalContext(
                    results, results_lock, spec_name, copy_index, spec.copies,
                    out_routers, tracer,
                )
                if tracer is not None:
                    tracer.emit("copy.start", filter=spec_name, copy=copy_index)
                t0 = time.perf_counter()
                filt.initialize(ctx)
                t_busy += time.perf_counter() - t0
                if not in_edges:
                    t0 = time.perf_counter()
                    filt.generate(ctx)
                    t_busy += time.perf_counter() - t0
                else:
                    open_streams = set(in_routers)
                    while open_streams:
                        if state.abort.is_set():
                            raise _Aborted()
                        try:
                            got = q.get(timeout=self.poll_interval)
                        except queue.Empty:
                            got = _WAKE
                        if got is _WAKE:
                            # Nothing queued (or a producer-done nudge):
                            # see whether any stream can close (all
                            # producers done, nothing pending here or on
                            # a dead sibling still draining).
                            for s in list(open_streams):
                                if in_routers[s].try_close(copy_index):
                                    open_streams.discard(s)
                            continue
                        stream, item = got
                        router = in_routers[stream]
                        if tracer is not None:
                            chunk_id = item.metadata.get("chunk")
                            enq = item.metadata.pop("_obs_enq", None)
                            if enq is not None:
                                tracer.emit(
                                    "queue.wait",
                                    filter=spec_name,
                                    copy=copy_index,
                                    dur=max(time.time() - enq, 0.0),
                                    chunk=chunk_id,
                                    stream=stream,
                                )
                            tracer.emit(
                                "queue.depth",
                                filter=spec_name,
                                copy=copy_index,
                                depth=q.qsize(),
                            )
                        if dead:
                            # Drain mode: this copy is gone, but it keeps
                            # its queue moving — every buffer is handed
                            # back to the router for a surviving copy, so
                            # producers never block on a dead queue.  The
                            # re-assign happens *before* on_consume so the
                            # buffer is never invisible to try_close.
                            state.count_reroute()
                            if tracer is not None:
                                tracer.emit(
                                    "fault.reroute",
                                    filter=spec_name,
                                    copy=copy_index,
                                    chunk=item.metadata.get("chunk"),
                                    stream=stream,
                                )
                            router.route(item, None)
                            router.on_consume(copy_index)
                            continue
                        try:
                            dt = self._process_with_retry(
                                filt, stream, item, ctx, injector, state
                            )
                            t_busy += dt
                            if tracer is not None:
                                tracer.emit(
                                    "service",
                                    filter=spec_name,
                                    copy=copy_index,
                                    dur=dt,
                                    chunk=item.metadata.get("chunk"),
                                    stream=stream,
                                )
                            router.on_consume(copy_index)
                        except _CopyDied as died_exc:
                            for r in in_routers.values():
                                r.mark_dead(copy_index)
                            failure = CopyFailure(
                                filter_name=spec_name,
                                copy_index=copy_index,
                                error=repr(died_exc.cause),
                                kind="crash" if died_exc.injected else "exception",
                                injected=died_exc.injected,
                            )
                            recoverable = (
                                self.retry.reroute
                                and all(
                                    not r.policy.requires_explicit_dest()
                                    for r in in_routers.values()
                                )
                                and all(
                                    r.has_survivors() for r in in_routers.values()
                                )
                            )
                            if not recoverable:
                                state.record_failure(failure, fatal=True)
                                raise _Aborted() from died_exc
                            failure.recovered = True
                            state.record_failure(failure, fatal=False)
                            state.count_reroute()
                            if tracer is not None:
                                tracer.emit(
                                    "fault.reroute",
                                    filter=spec_name,
                                    copy=copy_index,
                                    chunk=item.metadata.get("chunk"),
                                    stream=stream,
                                )
                            router.route(item, None)
                            router.on_consume(copy_index)
                            dead = True
                if not dead:
                    t0 = time.perf_counter()
                    filt.finalize(ctx)
                    t_busy += time.perf_counter() - t0
            except _Aborted:
                pass
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                state.record_failure(
                    CopyFailure(
                        filter_name=spec_name,
                        copy_index=copy_index,
                        error="".join(
                            traceback.format_exception_only(type(exc), exc)
                        ).strip(),
                        kind="exception",
                        injected=isinstance(exc, (InjectedFault, InjectedCrash)),
                    ),
                    fatal=True,
                )
            finally:
                # Tick completion even on failure/abort: consumers must
                # never wait for a producer copy that will not send more.
                for e in graph.out_edges(spec_name):
                    routers[(spec_name, e.stream)].producer_done()
                busy[(spec_name, copy_index)] = t_busy
                if tracer is not None:
                    tracer.emit(
                        "copy.done",
                        filter=spec_name,
                        copy=copy_index,
                        busy=t_busy,
                        dead=dead,
                    )

        start = time.perf_counter()
        for spec in graph.filters.values():
            for i in range(spec.copies):
                th = threading.Thread(
                    target=worker,
                    args=(spec.name, i),
                    name=f"{spec.name}[{i}]",
                    daemon=True,
                )
                th.start()
                threads.append(th)
        deadline = None if timeout is None else start + timeout
        timed_out = False
        for th in threads:
            while th.is_alive():
                if deadline is None:
                    # No deadline to police: a plain join blocks on the
                    # thread's own exit, no tick needed.
                    th.join()
                    break
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    timed_out = True
                    state.trigger_abort()
                    deadline = None  # abort set; now join for real
                    continue
                th.join(timeout=remaining)
        elapsed = time.perf_counter() - start

        if timed_out:
            raise PipelineError(
                state.failures,
                f"pipeline did not finish within {timeout}s",
            )
        if state.fatal:
            raise PipelineError(state.failures)

        buffers_sent = {
            f"{src}:{stream}": r.sent for (src, stream), r in routers.items()
        }
        events = tracer.drain() if tracer is not None else None
        return RunResult(
            results=results,
            elapsed=elapsed,
            busy_time=busy,
            buffers_sent=buffers_sent,
            retries=state.retries,
            reroutes=state.reroutes,
            failed_copies=list(state.failures),
            metrics=snapshot_run(
                busy,
                buffers_sent,
                state.retries,
                state.reroutes,
                [(f.filter_name, f.copy_index) for f in state.failures],
                {},
                elapsed,
                events,
            ),
            trace=Trace(events) if events is not None else None,
        )

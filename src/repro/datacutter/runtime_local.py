"""Threaded local runtime: real concurrent execution of a filter graph.

Each filter copy runs in its own thread with a bounded input queue, so
producers and consumers "run concurrently and process data chunks in a
pipelined fashion" (paper Section 4.1) for real on this machine.  The
NumPy kernels release the GIL in their hot loops, so replicated texture
filters genuinely overlap.

Per-stream routing honours the configured scheduling policy
(:mod:`repro.datacutter.scheduling`), and end-of-stream markers propagate
exactly as in DataCutter: a consumer copy finishes once every producer
copy of every input stream has signalled completion and its queue is
drained.

The runtime records per-copy busy time (time spent inside
``generate``/``process``/``finalize``), giving the per-filter processing
time breakdown of the paper's Fig. 9 for real runs.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .buffers import DataBuffer, EndOfStream
from .filter import Filter, FilterContext
from .graph import FilterGraph, StreamEdge
from .scheduling import CopyState, make_policy

__all__ = ["LocalRuntime", "RunResult"]


@dataclass
class RunResult:
    """Outcome of one pipeline execution."""

    results: Dict[str, List[Any]]
    elapsed: float
    busy_time: Dict[Tuple[str, int], float]
    buffers_sent: Dict[str, int]

    def filter_busy_time(self, name: str) -> float:
        """Total busy seconds summed over all copies of a filter."""
        return sum(v for (f, _), v in self.busy_time.items() if f == name)

    def deposits(self, key: str) -> List[Any]:
        return self.results.get(key, [])


class _EdgeRouter:
    """Routes buffers of one stream edge to the consumer's copies."""

    def __init__(self, edge: StreamEdge, consumer_queues: List["queue.Queue"]):
        self.edge = edge
        self.policy = make_policy(edge.policy)
        self.queues = consumer_queues
        self.states = [CopyState(i) for i in range(len(consumer_queues))]
        self.lock = threading.Lock()
        self.sent = 0

    def route(self, buffer: DataBuffer, dest_copy: Optional[int]) -> None:
        if self.policy.requires_explicit_dest():
            if dest_copy is None:
                raise RuntimeError(
                    f"stream {self.edge.stream!r} is explicit: dest_copy required"
                )
            idx = dest_copy
        elif dest_copy is not None:
            raise RuntimeError(
                f"stream {self.edge.stream!r} is {self.edge.policy}: "
                "dest_copy only valid on explicit streams"
            )
        else:
            with self.lock:
                idx = self.policy.choose(self.states, buffer)
        if not (0 <= idx < len(self.queues)):
            raise RuntimeError(
                f"stream {self.edge.stream!r}: dest copy {idx} out of range"
            )
        with self.lock:
            self.states[idx].on_assign(buffer)
            self.sent += 1
        self.queues[idx].put((self.edge.stream, buffer))

    def on_consume(self, copy_index: int) -> None:
        with self.lock:
            self.states[copy_index].on_consume()

    def broadcast_eos(self, producer: str, producer_copy: int) -> None:
        marker = EndOfStream(producer=producer, copy_index=producer_copy)
        for q in self.queues:
            q.put((self.edge.stream, marker))


class _LocalContext(FilterContext):
    def __init__(
        self,
        runtime: "LocalRuntime",
        filter_name: str,
        copy_index: int,
        num_copies: int,
        out_routers: Dict[str, _EdgeRouter],
    ):
        super().__init__(filter_name, copy_index, num_copies)
        self._runtime = runtime
        self._out = out_routers

    def send(self, stream, payload, size_bytes=0, metadata=None, dest_copy=None):
        try:
            router = self._out[stream]
        except KeyError:
            raise RuntimeError(
                f"filter {self.filter_name!r} has no output stream {stream!r}"
            ) from None
        buf = DataBuffer(
            payload=payload, size_bytes=size_bytes, metadata=dict(metadata or {})
        )
        router.route(buf, dest_copy)

    def deposit(self, key, value):
        with self._runtime._results_lock:
            self._runtime._results.setdefault(key, []).append(value)


class LocalRuntime:
    """Executes a validated :class:`FilterGraph` with one thread per copy."""

    def __init__(self, graph: FilterGraph, max_queue: int = 64):
        graph.validate()
        self._check_stream_names(graph)
        self.graph = graph
        self.max_queue = max_queue
        self._results: Dict[str, List[Any]] = {}
        self._results_lock = threading.Lock()

    @staticmethod
    def _check_stream_names(graph: FilterGraph) -> None:
        # A consumer identifies the edge by stream name, so its input
        # streams must be distinct.
        for name in graph.filters:
            streams = [e.stream for e in graph.in_edges(name)]
            if len(streams) != len(set(streams)):
                raise ValueError(
                    f"filter {name!r} has duplicate input stream names: {streams}"
                )

    def run(self) -> RunResult:
        self._results = {}  # fresh result store per execution
        graph = self.graph
        # Input queues per (filter, copy).
        queues: Dict[Tuple[str, int], queue.Queue] = {}
        for spec in graph.filters.values():
            for i in range(spec.copies):
                queues[(spec.name, i)] = queue.Queue(maxsize=self.max_queue)

        # One router per edge, shared by all producer copies.
        routers: Dict[Tuple[str, str], _EdgeRouter] = {}
        for edge in graph.edges:
            consumer_queues = [
                queues[(edge.dst, i)] for i in range(graph.copies(edge.dst))
            ]
            routers[(edge.src, edge.stream)] = _EdgeRouter(edge, consumer_queues)

        busy: Dict[Tuple[str, int], float] = {}
        errors: List[BaseException] = []
        err_lock = threading.Lock()
        threads: List[threading.Thread] = []

        def worker(spec_name: str, copy_index: int) -> None:
            spec = graph.filters[spec_name]
            filt = spec.factory()
            out_routers = {
                e.stream: routers[(spec_name, e.stream)]
                for e in graph.out_edges(spec_name)
            }
            ctx = _LocalContext(
                self, spec_name, copy_index, spec.copies, out_routers
            )
            in_edges = graph.in_edges(spec_name)
            eos_needed = {e.stream: graph.copies(e.src) for e in in_edges}
            eos_seen = {e.stream: 0 for e in in_edges}
            in_routers = {e.stream: routers[(e.src, e.stream)] for e in in_edges}
            q = queues[(spec_name, copy_index)]
            t_busy = 0.0
            try:
                t0 = time.perf_counter()
                filt.initialize(ctx)
                t_busy += time.perf_counter() - t0
                if not in_edges:
                    t0 = time.perf_counter()
                    filt.generate(ctx)
                    t_busy += time.perf_counter() - t0
                else:
                    open_streams = set(eos_needed)
                    while open_streams:
                        stream, item = q.get()
                        if isinstance(item, EndOfStream):
                            eos_seen[stream] += 1
                            if eos_seen[stream] == eos_needed[stream]:
                                open_streams.discard(stream)
                            continue
                        t0 = time.perf_counter()
                        filt.process(stream, item, ctx)
                        t_busy += time.perf_counter() - t0
                        in_routers[stream].on_consume(copy_index)
                t0 = time.perf_counter()
                filt.finalize(ctx)
                t_busy += time.perf_counter() - t0
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                with err_lock:
                    errors.append(exc)
            finally:
                for e in graph.out_edges(spec_name):
                    routers[(spec_name, e.stream)].broadcast_eos(
                        spec_name, copy_index
                    )
                busy[(spec_name, copy_index)] = t_busy

        start = time.perf_counter()
        for spec in graph.filters.values():
            for i in range(spec.copies):
                th = threading.Thread(
                    target=worker, args=(spec.name, i), name=f"{spec.name}[{i}]"
                )
                th.start()
                threads.append(th)
        for th in threads:
            th.join()
        elapsed = time.perf_counter() - start

        if errors:
            raise RuntimeError(
                f"{len(errors)} filter copies failed; first: {errors[0]!r}"
            ) from errors[0]

        buffers_sent = {
            f"{src}:{stream}": r.sent for (src, stream), r in routers.items()
        }
        return RunResult(
            results=self._results,
            elapsed=elapsed,
            busy_time=busy,
            buffers_sent=buffers_sent,
        )

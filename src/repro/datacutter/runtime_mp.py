"""Multiprocessing runtime: one OS process per filter copy.

The closest local analog of DataCutter's deployment model: filter copies
are separate processes (as the paper's filters are separate executables
on cluster nodes) and every buffer crossing a stream is genuinely
serialized through an OS pipe — so, unlike the threaded runtime, the
sparse co-occurrence representation actually shrinks inter-filter
traffic here, and replicated texture filters scale past the GIL.

Semantics (stream policies, explicit routing, end-of-stream protocol,
result deposits) match :class:`~repro.datacutter.runtime_local.LocalRuntime`
exactly; both execute the same :class:`~repro.datacutter.graph.FilterGraph`.

Buffers cross the pipes framed by the same wire codec the distributed
TCP runtime uses (:mod:`repro.datacutter.net.codec`): ndarray payloads
travel as out-of-band buffers instead of being pickled in-band, and each
edge counts the bytes it moved, reported as ``RunResult.wire_bytes``.

With ``transport="shm"`` the pipes stop carrying payloads at all:
ndarray payloads above a size threshold are written once into a
reference-counted shared-memory slab pool
(:mod:`repro.datacutter.net.shm`) and the frame crossing the pipe
shrinks to a header plus slab descriptor; consumers map the slab and
rebuild the arrays zero-copy.  Payload bytes handed over this way are
accounted separately as ``RunResult.shm_bytes``, and the pool's
occupancy/hit-rate snapshot lands in ``RunResult.metrics``.  The pool
is created by the parent before forking and unconditionally destroyed
(slabs unlinked) when the run ends — normal completion, aborts, and
silently-dead children alike — so ``/dev/shm`` never accumulates
segments across runs.

Fault tolerance matches the threaded runtime too, with the extra failure
mode real deployments have: a child can die without saying goodbye.  The
parent therefore watches every child's exitcode while it collects control
messages; a child that exits without its terminal message gets a
synthesized :class:`CopyFailure` (``kind="exitcode"``) and the shared
abort flag unblocks everyone — ``run()`` raises a structured
:class:`PipelineError` in bounded time instead of hanging on
``results_q.get()``.  Recoverable failures are handled child-side: a copy
whose ``process()`` exhausts its retries marks itself dead in the shared
edge state (so producers stop picking it), reroutes its in-hand buffer,
and keeps draining its queue — re-delivering everything to surviving
copies — until its input streams close.  End-of-stream is router-level,
as in the threaded runtime: shared ``producers_done`` counters plus an
atomic departed/queued check, so a survivor can never shut down while a
dying sibling still holds buffers destined for it.

Wakeups are event-driven (``wakeup="event"``, the default): every queue
transition a blocked peer could be waiting on — a delivery, a producer
finishing its share of a stream, the last in-flight buffer of an edge
draining, the shared abort being raised — sets a per-copy
``multiprocessing.Event``, so consumers and the parent wake immediately
instead of discovering the transition at the next poll tick.  The
``poll_interval`` (``REPRO_MP_POLL_INTERVAL``, default 0.02 s) survives
only as a watchdog fallback bounding how long a *missed* wakeup could
go unnoticed; ``wakeup="polled"`` restores the pre-event behaviour (all
blocking waits tick at ``poll_interval``) and exists for benchmarking
the latency floor the events remove (``benchmarks/bench_tuning.py``).
The parent likewise stops ticking: it blocks in
``multiprocessing.connection.wait`` on the results queue and the child
sentinels at once, so both a control message and a silent child death
wake it instantly.

Online adaptation (``autotune=``, off by default): an
:class:`~repro.tuning.AdaptationBounds` instance starts a parent-side
controller thread (:class:`~repro.tuning.OnlineController`) that samples
the shared queue-depth counters mid-run and adapts per-edge credit
windows and replicated-copy activation within the configured bounds,
emitting ``tune.adjust`` obs events.  Both actuators only steer *where*
buffers of transparent streams go and how many may be outstanding —
never what is computed — so outputs stay bit-identical.

Notes
-----
* Requires a ``fork``-capable platform (Linux): filter factories may be
  closures and are called inside the child.
* Demand-driven scheduling uses shared queue-depth counters; with
  multiple producer processes the decision is approximate (reads are not
  globally serialized with deliveries), which mirrors the real
  DataCutter scheduler observing consumption asynchronously.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import threading
import time
import traceback
from multiprocessing import connection as mp_connection
from typing import Any, Dict, List, Optional, Tuple

from .buffers import DataBuffer
from .faults import (
    NULL_INJECTOR,
    CopyFailure,
    FaultPlan,
    InjectedCrash,
    InjectedFault,
    PipelineError,
    RetryPolicy,
)
from .filter import FilterContext
from .graph import FilterGraph, StreamEdge
from .net import shm
from .obs import Trace, Tracer, snapshot_run
from .runtime_local import RunResult

__all__ = ["MPRuntime", "TRANSPORTS", "WAKEUPS"]

TRANSPORTS = ("pipe", "shm")
WAKEUPS = ("event", "polled")

_CTRL_DONE = "__copy_done__"
_CTRL_ERROR = "__copy_error__"
_CTRL_FAILED = "__copy_failed__"
_CTRL_DEPOSIT = "__deposit__"

#: Watchdog granularity (seconds).  With ``wakeup="event"`` (default)
#: every transition a blocked peer waits on raises a wakeup event, so
#: this only bounds how long a *missed* wakeup could go unnoticed; with
#: ``wakeup="polled"`` every blocking wait genuinely ticks at this
#: interval (the pre-event latency floor).  Overridable per run via
#: ``MPRuntime(poll_interval=...)`` or globally via the
#: ``REPRO_MP_POLL_INTERVAL`` environment variable.
_POLL = float(os.environ.get("REPRO_MP_POLL_INTERVAL", "0.02"))
#: Event-mode parent watchdog: the parent is woken by the results queue
#: and child sentinels directly, so its fallback tick can be long.
_PARENT_WATCHDOG = 1.0
#: How long after a child exits the parent waits for its (possibly still
#: buffered) terminal message before declaring it silently dead.
_EXIT_GRACE = 2.0
#: Exit status used for injected hard kills (mimics an uncaught signal).
_HARD_EXIT = 19


class _Aborted(BaseException):
    """Internal unwind signal raised in children when the run aborts."""


class _CopyDied(Exception):
    def __init__(self, cause: BaseException, injected: bool):
        super().__init__(str(cause))
        self.cause = cause
        self.injected = injected


class _SharedAbort:
    """Cross-process abort flag with event-driven wakeup.

    Keeps the ``abort.value`` read/write contract of the plain
    ``ctx.Value`` it replaces, but raising it also sets an event (so
    retry backoffs can block on :meth:`wait` instead of sleeping in poll
    ticks) and every per-copy wakeup event attached before the fork (so
    consumers blocked on their input wait unblock immediately).
    """

    def __init__(self, ctx):
        self._flag = ctx.Value("i", 0)
        self._event = ctx.Event()
        self._wakeups: List[Any] = []

    def attach_wakeups(self, events: List[Any]) -> None:
        """Register events to set on abort (call before forking)."""
        self._wakeups.extend(events)

    @property
    def value(self) -> int:
        return self._flag.value

    @value.setter
    def value(self, v: int) -> None:
        self._flag.value = v
        if v:
            self._event.set()
            for ev in self._wakeups:
                ev.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until aborted (True) or the timeout elapses (False)."""
        return self._event.wait(timeout)


class _SharedEdge:
    """Cross-process routing state for one stream edge.

    ``wake`` (event mode) holds one ``ctx.Event`` per consumer copy of
    the destination filter — shared by every edge into that filter —
    set on each transition a blocked consumer could be waiting on.
    ``credit`` / ``active`` exist only when online adaptation is on: a
    soft per-consumer outstanding-buffer bound and an activation mask
    the controller thread adjusts mid-run (both are advisory — routing
    falls back to every alive copy rather than stall the stream).
    """

    def __init__(
        self,
        edge: StreamEdge,
        num_consumers: int,
        max_queue: int,
        ctx,
        n_producers: int,
        pool: Optional[shm.ShmPool] = None,
        poll: float = _POLL,
        wake: Optional[List[Any]] = None,
        autotune: bool = False,
    ):
        self.edge = edge
        self.num_consumers = num_consumers
        self.n_producers = n_producers
        self.pool = pool
        self.poll = poll
        self.wake = wake
        self.max_queue = max_queue
        if autotune and edge.policy != "explicit":
            self.credit = ctx.Value("l", max_queue)
            self.active = ctx.Array("i", [1] * num_consumers)
        else:
            self.credit = None
            self.active = None
        self.queues = [ctx.Queue(maxsize=max_queue) for _ in range(num_consumers)]
        self.lock = ctx.Lock()
        # Shared per-consumer depth and assignment counters.
        self.queued = ctx.Array("l", [0] * num_consumers)
        self.assigned = ctx.Array("l", [0] * num_consumers)
        # 1 where the consumer copy has been declared dead.
        self.dead = ctx.Array("i", [0] * num_consumers)
        # 1 where the consumer copy closed the stream cleanly.
        self.departed = ctx.Array("i", [0] * num_consumers)
        # Producer copies that finished sending (router-level EOS).
        self.producers_done = ctx.Value("l", 0)
        self.rr_next = ctx.Value("l", 0)
        self.sent = ctx.Value("l", 0)
        self.rerouted = ctx.Value("l", 0)
        self.wire = ctx.Value("l", 0)
        # Payload bytes handed over via pool slabs instead of the pipe.
        self.shm = ctx.Value("l", 0)

    def mark_dead(self, idx: int) -> None:
        with self.lock:
            self.dead[idx] = 1
        # Siblings may be able to close now that this copy no longer
        # counts as a live reroute target; have them re-check.
        self._wake_all()

    def _wake_all(self) -> None:
        if self.wake is not None:
            for ev in self.wake:
                ev.set()

    def producer_done(self) -> None:
        """One producer copy finished (its share of the stream is sent)."""
        with self.lock:
            self.producers_done.value += 1
        # Wake every consumer so it re-checks closure immediately instead
        # of discovering the EOS at its next watchdog tick.
        self._wake_all()

    def try_close(self, idx: int) -> bool:
        """Atomically close consumer copy ``idx``'s view of the stream.

        True once every producer copy is done and every copy's delivery
        accounting drained to zero.  The sibling condition is deliberate:
        while *any* sibling (alive or dead) still holds buffers, that
        sibling could yet fail and need this copy as a reroute target.
        The close marks the copy departed under the routing lock, so it
        can never race a concurrent re-delivery.
        """
        with self.lock:
            if self.departed[idx]:
                return True
            if self.producers_done.value < self.n_producers:
                return False
            for j in range(self.num_consumers):
                if self.queued[j]:
                    return False
            self.departed[idx] = 1
            return True

    def has_survivors(self) -> bool:
        with self.lock:
            return any(
                self.dead[i] == 0 and self.departed[i] == 0
                for i in range(self.num_consumers)
            )

    def choose(self, buffer: DataBuffer, abort) -> Optional[int]:
        """Pick a consumer copy, or ``None`` when the controller's credit
        window has every candidate at its limit (the caller waits for a
        consume and retries — a soft bound, never an abort)."""
        policy = self.edge.policy
        with self.lock:
            alive = [
                i
                for i in range(self.num_consumers)
                if self.dead[i] == 0 and self.departed[i] == 0
            ]
            if not alive:
                abort.value = 1
                raise _Aborted()
            cand = alive
            if self.active is not None:
                # Controller-deactivated copies take no new assignments;
                # if it deactivated everyone alive, ignore the mask
                # rather than stall the stream.
                act = [i for i in alive if self.active[i]]
                if act:
                    cand = act
            if self.credit is not None:
                limit = self.credit.value
                fit = [i for i in cand if self.queued[i] < limit]
                if not fit:
                    return None
                cand = fit
            if policy == "round_robin":
                idx = cand[self.rr_next.value % len(cand)]
                self.rr_next.value += 1
            elif policy == "demand_driven":
                idx = min(cand, key=lambda i: (self.queued[i], self.assigned[i], i))
            else:
                raise RuntimeError(
                    f"stream {self.edge.stream!r} is explicit: dest_copy required"
                )
            self.queued[idx] += 1
            self.assigned[idx] += 1
            self.sent.value += 1
        return idx

    def assign_explicit(self, idx: int, abort) -> None:
        if not (0 <= idx < self.num_consumers):
            raise RuntimeError(
                f"stream {self.edge.stream!r}: dest copy {idx} out of range"
            )
        with self.lock:
            if self.dead[idx] or self.departed[idx]:
                # Explicit placement is semantic (all pieces of one chunk
                # meet at one copy); a dead destination is unrecoverable.
                abort.value = 1
                raise _Aborted()
            self.queued[idx] += 1
            self.assigned[idx] += 1
            self.sent.value += 1

    def unassign(self, idx: int) -> None:
        with self.lock:
            self.queued[idx] -= 1
            self.assigned[idx] -= 1
            self.sent.value -= 1

    def on_consume(self, idx: int) -> None:
        with self.lock:
            self.queued[idx] -= 1
            drained = self.producers_done.value >= self.n_producers and not any(
                self.queued[j] for j in range(self.num_consumers)
            )
        if drained:
            # The last in-flight buffer on this edge just completed:
            # every copy can now close, so don't make them wait out a
            # watchdog tick to notice.
            self._wake_all()

    def deliver(
        self, buffer: DataBuffer, dest_copy: Optional[int], abort, tracer=None
    ) -> None:
        """Abort-aware routed put; repicks if the chosen copy dies."""
        explicit = self.edge.policy == "explicit"
        if tracer is not None:
            # Enqueue timestamp rides inside the frame so the consumer
            # process can measure queue wait across the pipe.
            buffer.metadata["_obs_enq"] = time.time()
        # Frame once: the same bytes fit whichever copy wins the re-pick.
        # Large ndarray payloads land in a pool slab (one copy, consumer
        # maps it zero-copy); the frame then carries only the descriptor.
        item, wire_n, shm_n = shm.dumps((self.edge.stream, buffer), self.pool)
        while True:
            if explicit:
                if dest_copy is None:
                    raise RuntimeError(
                        f"stream {self.edge.stream!r} is explicit: "
                        "dest_copy required"
                    )
                idx = dest_copy
                self.assign_explicit(idx, abort)
            else:
                if dest_copy is not None:
                    raise RuntimeError(
                        f"stream {self.edge.stream!r} is {self.edge.policy}: "
                        "dest_copy only valid on explicit streams"
                    )
                idx = self.choose(buffer, abort)
                if idx is None:
                    # Every candidate is at the adaptive credit limit:
                    # wait (bounded, abort-aware) for a consume to free
                    # a slot, then re-pick.
                    if abort.value or abort.wait(timeout=min(self.poll, 0.05)):
                        raise _Aborted()
                    continue
            if tracer is not None:
                tracer.emit(
                    "sched.pick",
                    chunk=buffer.metadata.get("chunk"),
                    stream=self.edge.stream,
                    policy=self.edge.policy,
                    dest=idx,
                )
            while True:
                if abort.value:
                    # Undo the claim from choose()/assign_explicit():
                    # a leaked positive depth counter would make an
                    # idle consumer block on a frame that never lands.
                    self.unassign(idx)
                    raise _Aborted()
                if not explicit and self.dead[idx]:
                    # Died while we were blocked: undo and re-pick.
                    self.unassign(idx)
                    with self.lock:
                        self.rerouted.value += 1
                    break
                try:
                    # Bounded, not `poll`: a full queue (backpressure,
                    # or a silently dead consumer) must re-check abort
                    # and copy death promptly — the semaphore wait
                    # cannot be interrupted by either.
                    self.queues[idx].put(item, timeout=min(self.poll, 0.05))
                    if self.wake is not None:
                        self.wake[idx].set()
                    with self.lock:
                        self.wire.value += wire_n
                        self.shm.value += shm_n
                    if tracer is not None:
                        tracer.emit(
                            "wire.frame",
                            chunk=buffer.metadata.get("chunk"),
                            stream=self.edge.stream,
                            bytes=wire_n,
                            dest=idx,
                        )
                        if shm_n:
                            tracer.emit(
                                "shm.frame",
                                chunk=buffer.metadata.get("chunk"),
                                stream=self.edge.stream,
                                bytes=shm_n,
                                dest=idx,
                            )
                    return
                except queue_mod.Full:
                    continue

    def reroute(self, buffer: DataBuffer, abort, tracer=None) -> None:
        with self.lock:
            self.rerouted.value += 1
        self.deliver(buffer, None, abort, tracer)


class _MPContext(FilterContext):
    def __init__(
        self,
        filter_name,
        copy_index,
        num_copies,
        out_edges,
        results_q,
        abort,
        tracer=None,
    ):
        super().__init__(filter_name, copy_index, num_copies)
        self._out = out_edges
        self._results_q = results_q
        self._abort = abort
        self._tracer = tracer
        self.tracing = tracer is not None

    def event(self, kind, *, dur=0.0, chunk=None, **attrs):
        if self._tracer is not None:
            self._tracer.emit(
                kind,
                filter=self.filter_name,
                copy=self.copy_index,
                dur=dur,
                chunk=chunk,
                **attrs,
            )

    def send(self, stream, payload, size_bytes=0, metadata=None, dest_copy=None):
        try:
            shared = self._out[stream]
        except KeyError:
            raise RuntimeError(
                f"filter {self.filter_name!r} has no output stream {stream!r}"
            ) from None
        buf = DataBuffer(
            payload=payload, size_bytes=size_bytes, metadata=dict(metadata or {})
        )
        shared.deliver(buf, dest_copy, self._abort, self._tracer)

    def deposit(self, key, value):
        self._results_q.put((_CTRL_DEPOSIT, key, value))


def _copy_main(
    graph: FilterGraph,
    spec_name: str,
    copy_index: int,
    in_edges: Dict[str, _SharedEdge],
    out_edges: Dict[str, _SharedEdge],
    results_q,
    abort,
    retry: RetryPolicy,
    faults: Optional[FaultPlan],
    trace: bool = False,
    pool: Optional[shm.ShmPool] = None,
    poll: float = _POLL,
    wake=None,
) -> None:
    """Child-process entry point for one filter copy.

    ``wake`` (event mode) is this copy's wakeup event: producers set it
    after every delivery and on every edge transition, so the input wait
    below blocks on it instead of ticking over the queues at ``poll``
    granularity.  ``None`` selects the polled legacy path.
    """
    spec = graph.filters[spec_name]
    injector = (
        faults.injector_for(spec_name, copy_index)
        if faults is not None
        else NULL_INJECTOR
    )
    # Per-child tracer: events batch locally and ride home on the
    # terminal control message, so tracing adds no per-buffer IPC.
    tracer = Tracer() if trace else None
    t_busy = 0.0
    retries = 0
    reroutes = 0
    terminal_sent = False
    dead_failure: Optional[CopyFailure] = None

    def process_with_retry(filt, stream, buffer, ctx) -> float:
        nonlocal retries
        attempt = 1
        while True:
            try:
                injector.before_process(buffer, attempt)
                t0 = time.perf_counter()
                filt.process(stream, buffer, ctx)
                dt = time.perf_counter() - t0
                injector.after_process(buffer)
                return dt
            except InjectedCrash as exc:
                if exc.hard:
                    # A real crash: no cleanup, no control message, no
                    # EOS — the parent's exitcode watcher must catch it.
                    os._exit(_HARD_EXIT)
                raise _CopyDied(exc, injected=True) from exc
            except _Aborted:
                raise
            except BaseException as exc:  # noqa: BLE001 - retried or reported
                if attempt >= retry.max_attempts:
                    raise _CopyDied(exc, injected=isinstance(exc, InjectedFault))
                retries += 1
                if tracer is not None:
                    tracer.emit(
                        "fault.retry",
                        filter=spec_name,
                        copy=copy_index,
                        attempt=attempt,
                        error=repr(exc),
                    )
                # Event-driven backoff: sleeps the whole delay in one
                # wait that the shared abort interrupts immediately.
                if abort.wait(timeout=retry.delay(attempt)):
                    raise _Aborted()
                attempt += 1

    try:
        filt = spec.factory()
        ctx = _MPContext(
            spec_name, copy_index, spec.copies, out_edges, results_q, abort, tracer
        )
        if tracer is not None:
            tracer.emit("copy.start", filter=spec_name, copy=copy_index)
        t0 = time.perf_counter()
        filt.initialize(ctx)
        t_busy += time.perf_counter() - t0
        if not in_edges:
            t0 = time.perf_counter()
            filt.generate(ctx)
            t_busy += time.perf_counter() - t0
        else:
            open_streams = set(in_edges)
            while open_streams:
                if abort.value:
                    raise _Aborted()
                # Sweep each open input edge's queue for this copy:
                # non-blocking in event mode (the wakeup event is the
                # blocking point), a rotating poll-tick get otherwise.
                item = None
                for stream in list(open_streams):
                    q = in_edges[stream].queues[copy_index]
                    try:
                        item = (
                            q.get_nowait()
                            if wake is not None
                            else q.get(timeout=poll)
                        )
                    except queue_mod.Empty:
                        continue
                    break
                if item is None:
                    # Nothing queued: see whether any stream can close
                    # (all producers done, nothing pending here or on a
                    # dead sibling still draining).
                    closed = False
                    for stream in list(open_streams):
                        if in_edges[stream].try_close(copy_index):
                            open_streams.discard(stream)
                            closed = True
                    if closed or not open_streams or wake is None:
                        continue
                    # Event mode: decide how to block.  A positive shared
                    # depth counter means a frame for this copy is still
                    # in flight through that queue's feeder pipe (the
                    # counter is bumped before the put) — block on that
                    # pipe, which wakes the instant the bytes land.
                    pending = [
                        s
                        for s in open_streams
                        if in_edges[s].queued[copy_index] > 0
                    ]
                    if pending:
                        # Bounded, not `poll`: the frame normally lands
                        # within microseconds, and if the counter lies
                        # (producer hard-killed between its claim and
                        # its put) the loop must re-check abort/EOS
                        # promptly rather than sit out the watchdog.
                        try:
                            item = in_edges[pending[0]].queues[
                                copy_index
                            ].get(timeout=min(poll, 0.05))
                        except queue_mod.Empty:
                            continue
                    else:
                        # Truly idle: wait on the wakeup event.  The
                        # no-lost-wakeup protocol is clear *first*, then
                        # re-check everything the event guards: a
                        # producer bumps counters before setting the
                        # event, so state changed before the clear is
                        # visible in the re-check, and state changed
                        # after it re-raises the event and the wait
                        # returns immediately.  The watchdog timeout
                        # only bounds the impossible case.
                        wake.clear()
                        ready = any(
                            in_edges[s].queued[copy_index]
                            for s in open_streams
                        )
                        reclosed = False
                        for stream in list(open_streams):
                            if in_edges[stream].try_close(copy_index):
                                open_streams.discard(stream)
                                reclosed = True
                        if not ready and not reclosed and open_streams:
                            if abort.value:
                                raise _Aborted()
                            wake.wait(timeout=max(poll, 0.05))
                        continue
                stream, payload = shm.loads(item, pool)
                shared = in_edges[stream]
                if tracer is not None:
                    chunk_id = payload.metadata.get("chunk")
                    enq = payload.metadata.pop("_obs_enq", None)
                    if enq is not None:
                        tracer.emit(
                            "queue.wait",
                            filter=spec_name,
                            copy=copy_index,
                            dur=max(time.time() - enq, 0.0),
                            chunk=chunk_id,
                            stream=stream,
                        )
                    tracer.emit(
                        "queue.depth",
                        filter=spec_name,
                        copy=copy_index,
                        depth=int(shared.queued[copy_index]),
                    )
                if dead_failure is not None:
                    # Drain mode: this copy is gone, but it keeps its
                    # queue moving — every buffer is re-delivered to a
                    # surviving copy, so producers never block on a dead
                    # queue.  Re-deliver *before* on_consume so the
                    # buffer is never invisible to try_close.
                    reroutes += 1
                    if tracer is not None:
                        tracer.emit(
                            "fault.reroute",
                            filter=spec_name,
                            copy=copy_index,
                            chunk=payload.metadata.get("chunk"),
                            stream=stream,
                        )
                    shared.reroute(payload, abort, tracer)
                    shared.on_consume(copy_index)
                    continue
                try:
                    dt = process_with_retry(filt, stream, payload, ctx)
                    t_busy += dt
                    if tracer is not None:
                        tracer.emit(
                            "service",
                            filter=spec_name,
                            copy=copy_index,
                            dur=dt,
                            chunk=payload.metadata.get("chunk"),
                            stream=stream,
                        )
                    shared.on_consume(copy_index)
                except _CopyDied as died:
                    for e in in_edges.values():
                        e.mark_dead(copy_index)
                    failure = CopyFailure(
                        filter_name=spec_name,
                        copy_index=copy_index,
                        error=repr(died.cause),
                        kind="crash" if died.injected else "exception",
                        injected=died.injected,
                    )
                    recoverable = (
                        retry.reroute
                        and all(
                            e.edge.policy != "explicit" for e in in_edges.values()
                        )
                        and all(e.has_survivors() for e in in_edges.values())
                    )
                    if not recoverable:
                        results_q.put(
                            (_CTRL_FAILED, failure, t_busy, retries, reroutes,
                             tracer.drain() if tracer is not None else [])
                        )
                        terminal_sent = True
                        abort.value = 1
                        raise _Aborted() from died
                    failure.recovered = True
                    dead_failure = failure
                    reroutes += 1
                    if tracer is not None:
                        tracer.emit(
                            "fault.reroute",
                            filter=spec_name,
                            copy=copy_index,
                            chunk=payload.metadata.get("chunk"),
                            stream=stream,
                        )
                    shared.reroute(payload, abort, tracer)
                    shared.on_consume(copy_index)
        if dead_failure is None:
            t0 = time.perf_counter()
            filt.finalize(ctx)
            t_busy += time.perf_counter() - t0
    except _Aborted:
        return  # parent already knows (or set the abort itself)
    except BaseException:  # noqa: BLE001 - reported to parent
        results_q.put((_CTRL_ERROR, spec_name, copy_index, traceback.format_exc()))
        terminal_sent = True
    finally:
        # Tick router-level EOS (never blocks), then report completion.
        # Consumers must never wait for a producer copy that is gone.
        for e in graph.out_edges(spec_name):
            out_edges[e.stream].producer_done()
        if not terminal_sent and not abort.value:
            if tracer is not None:
                tracer.emit(
                    "copy.done",
                    filter=spec_name,
                    copy=copy_index,
                    busy=t_busy,
                    dead=dead_failure is not None,
                )
            events = tracer.drain() if tracer is not None else []
            if dead_failure is not None:
                results_q.put(
                    (_CTRL_FAILED, dead_failure, t_busy, retries, reroutes, events)
                )
            else:
                results_q.put(
                    (_CTRL_DONE, spec_name, copy_index, t_busy, retries, events)
                )


class MPRuntime:
    """Executes a filter graph with one process per filter copy.

    Accepts the same ``retry`` / ``faults`` parameters as
    :class:`~repro.datacutter.runtime_local.LocalRuntime`.

    Parameters
    ----------
    transport:
        ``"pipe"`` (default) frames every payload through the OS pipe;
        ``"shm"`` hands large ndarray payloads over via a shared-memory
        slab pool and pipes only descriptors (see
        :mod:`repro.datacutter.net.shm`).
    shm_segments / shm_segment_bytes / shm_threshold:
        Pool geometry for ``transport="shm"`` — slab count, slab size,
        and the payload size below which frames stay in-band.
    shm_pool:
        An externally owned :class:`~repro.datacutter.net.shm.ShmPool`
        to use instead of creating (and destroying) one per run.  The
        caller keeps ownership: the pool survives ``run()`` so warm
        reuse across jobs skips the slab allocation, and the caller must
        eventually destroy it (``close()`` on this runtime does *not*).
        Only valid with ``transport="shm"``.
    poll_interval:
        Watchdog granularity in seconds; defaults to the
        ``REPRO_MP_POLL_INTERVAL`` environment variable (0.02s).  With
        ``wakeup="event"`` it only bounds recovery from a missed wakeup;
        with ``wakeup="polled"`` it is the legacy busy-wait tick.
    wakeup:
        ``"event"`` (default) blocks the parent and every child on
        event-driven wakeups raised at each queue transition;
        ``"polled"`` restores the pre-event busy-wait ticks (kept for
        benchmarking the latency floor).
    autotune:
        ``None`` (default) disables online adaptation.  Otherwise an
        :class:`repro.tuning.controller.AdaptationBounds` (or any object
        with the same attributes): a parent-side controller thread
        samples per-edge queue depths mid-run and adapts credit windows
        and replicated-copy activation within those bounds, emitting
        ``tune.adjust`` obs events.  Outputs stay bit-identical — the
        actuators only steer *routing* of transparent streams, never
        what is computed.
    """

    def __init__(
        self,
        graph: FilterGraph,
        max_queue: int = 16,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
        trace: bool = False,
        transport: str = "pipe",
        shm_segments: int = 32,
        shm_segment_bytes: int = 32 << 20,
        shm_threshold: int = 64 << 10,
        shm_pool: Optional[shm.ShmPool] = None,
        poll_interval: Optional[float] = None,
        wakeup: str = "event",
        autotune=None,
    ):
        graph.validate()
        for name in graph.filters:
            streams = [e.stream for e in graph.in_edges(name)]
            if len(streams) != len(set(streams)):
                raise ValueError(
                    f"filter {name!r} has duplicate input stream names: {streams}"
                )
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
            )
        if shm_pool is not None and transport != "shm":
            raise ValueError("shm_pool= requires transport='shm'")
        if wakeup not in WAKEUPS:
            raise ValueError(
                f"unknown wakeup {wakeup!r}; expected one of {WAKEUPS}"
            )
        self.graph = graph
        self.max_queue = max_queue
        self.retry = retry if retry is not None else RetryPolicy()
        self.faults = faults
        self.trace = bool(trace)
        self.transport = transport
        self.shm_segments = int(shm_segments)
        self.shm_segment_bytes = int(shm_segment_bytes)
        self.shm_threshold = int(shm_threshold)
        # Only None means "use the default": an explicit 0 (or any other
        # non-positive value) must reach the validation below, not be
        # silently swallowed by truthiness.
        self.poll_interval = (
            _POLL if poll_interval is None else float(poll_interval)
        )
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        self.wakeup = wakeup
        self.autotune = autotune
        self.shm_pool = shm_pool
        self._run_lock = threading.Lock()
        self._procs: List[Tuple[mp.Process, str, int]] = []
        self._abort = None

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Abort any in-flight run and reap its child processes.

        Idempotent, and safe to call from another thread while ``run()``
        is blocked: the abort flag unwedges every child, leftovers are
        terminated, and ``run()`` raises a structured
        :class:`PipelineError`.  An externally supplied ``shm_pool``
        stays alive (its owner destroys it); a per-run pool is already
        destroyed by ``run()``'s own unwind.
        """
        abort = self._abort
        if abort is not None:
            abort.value = 1
        for p, _, _ in list(self._procs):
            p.join(timeout=5)
            if p.is_alive():
                p.terminate()
                p.join(timeout=5)

    def __enter__(self) -> "MPRuntime":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def run(self, timeout: Optional[float] = None) -> RunResult:
        if not self._run_lock.acquire(blocking=False):
            raise RuntimeError(
                "MPRuntime.run() is already executing; concurrent runs "
                "need separate runtime instances"
            )
        try:
            return self._run_guarded(timeout)
        finally:
            self._abort = None
            self._procs = []
            self._run_lock.release()

    def _run_guarded(self, timeout: Optional[float]) -> RunResult:
        graph = self.graph
        if self.faults is not None:
            self.faults.validate(
                {name: spec.copies for name, spec in graph.filters.items()}
            )
        ctx = mp.get_context("fork")
        pool: Optional[shm.ShmPool] = self.shm_pool
        owned = pool is None and self.transport == "shm"
        if owned:
            pool = shm.ShmPool(
                ctx,
                segments=self.shm_segments,
                segment_bytes=self.shm_segment_bytes,
                threshold=self.shm_threshold,
            )
        try:
            return self._run(ctx, pool, timeout)
        except BaseException:
            # Anything that escapes the run — PipelineError, but also a
            # KeyboardInterrupt or an unexpected parent-side failure —
            # must not strand children: raise the shared abort and reap
            # whatever is still alive before propagating.
            self.close()
            raise
        finally:
            # Unconditional: normal completion, PipelineError aborts, and
            # the exitcode-watcher path for silently dead children all
            # land here, so /dev/shm never accumulates segments.  A pool
            # handed in by the caller (warm reuse across jobs) is the
            # caller's to destroy.
            if owned and pool is not None:
                pool.destroy()

    def _run(
        self,
        ctx,
        pool: Optional[shm.ShmPool],
        timeout: Optional[float],
    ) -> RunResult:
        graph = self.graph
        results_q = ctx.Queue()
        abort = _SharedAbort(ctx)
        self._abort = abort

        event_mode = self.wakeup == "event"
        # One wakeup event per (filter, copy) with inputs: producers on
        # any of its in-edges set it after each transition, so an idle
        # copy blocks on its event instead of ticking over its queues.
        wake_events: Dict[Tuple[str, int], Any] = {}
        if event_mode:
            for spec in graph.filters.values():
                if graph.in_edges(spec.name):
                    for i in range(spec.copies):
                        wake_events[(spec.name, i)] = ctx.Event()
            abort.attach_wakeups(list(wake_events.values()))

        edges: Dict[Tuple[str, str], _SharedEdge] = {}
        for edge in graph.edges:
            wake = (
                [
                    wake_events[(edge.dst, i)]
                    for i in range(graph.copies(edge.dst))
                ]
                if event_mode
                else None
            )
            edges[(edge.src, edge.stream)] = _SharedEdge(
                edge,
                graph.copies(edge.dst),
                self.max_queue,
                ctx,
                n_producers=graph.copies(edge.src),
                pool=pool,
                poll=self.poll_interval,
                wake=wake,
                autotune=self.autotune is not None,
            )

        procs: List[Tuple[mp.Process, str, int]] = []
        start = time.perf_counter()
        for spec in graph.filters.values():
            in_edges = {
                e.stream: edges[(e.src, e.stream)] for e in graph.in_edges(spec.name)
            }
            out_edges = {
                e.stream: edges[(spec.name, e.stream)]
                for e in graph.out_edges(spec.name)
            }
            for i in range(spec.copies):
                p = ctx.Process(
                    target=_copy_main,
                    args=(graph, spec.name, i, in_edges, out_edges, results_q,
                          abort, self.retry, self.faults, self.trace,
                          pool, self.poll_interval,
                          wake_events.get((spec.name, i))),
                    name=f"{spec.name}[{i}]",
                )
                p.start()
                procs.append((p, spec.name, i))
        self._procs = procs

        controller = None
        if self.autotune is not None:
            from repro.tuning.controller import OnlineController

            controller = OnlineController(
                {f"{src}:{stream}": e for (src, stream), e in edges.items()},
                self.autotune,
                abort,
            )
            controller.start()

        results: Dict[str, List[Any]] = {}
        busy: Dict[Tuple[str, int], float] = {}
        all_events: List[Any] = []
        failures: List[CopyFailure] = []
        total_retries = 0
        drain_reroutes = 0
        fatal = False
        timed_out = False
        terminal: set = set()  # (name, idx) that sent DONE/FAILED/ERROR
        exited_at: Dict[Tuple[str, int], float] = {}
        deadline = None if timeout is None else start + timeout

        # Event mode blocks on the results queue's underlying pipe plus
        # every live child's sentinel, so a control message or a child
        # death wakes the parent instantly; _PARENT_WATCHDOG only bounds
        # the deadline/grace bookkeeping below.  Children already in
        # their exit-grace window are excluded from the waitables (their
        # sentinel stays permanently ready and would busy-loop the
        # wait); the timeout is clamped to the earliest grace expiry
        # instead.
        reader = (
            getattr(results_q, "_reader", None) if event_mode else None
        )

        while len(terminal) < len(procs):
            if reader is not None:
                wait_timeout = _PARENT_WATCHDOG
                if deadline is not None:
                    wait_timeout = min(
                        wait_timeout,
                        max(deadline - time.perf_counter(), 0.0),
                    )
                if exited_at:
                    first = min(exited_at.values())
                    wait_timeout = min(
                        wait_timeout,
                        max(first + _EXIT_GRACE - time.monotonic(), 0.0),
                    )
                waitables: List[Any] = [reader]
                for p, name, idx in procs:
                    key = (name, idx)
                    if (
                        key not in terminal
                        and key not in exited_at
                        and p.exitcode is None
                    ):
                        waitables.append(p.sentinel)
                if wait_timeout > 0:
                    mp_connection.wait(waitables, timeout=wait_timeout)
                try:
                    msg = results_q.get_nowait()
                except queue_mod.Empty:
                    msg = None
            else:
                try:
                    msg = results_q.get(timeout=self.poll_interval)
                except queue_mod.Empty:
                    msg = None
            if msg is not None:
                kind = msg[0]
                if kind == _CTRL_DEPOSIT:
                    _, key, value = msg
                    results.setdefault(key, []).append(value)
                elif kind == _CTRL_DONE:
                    _, name, idx, t_busy, retries, events = msg
                    busy[(name, idx)] = t_busy
                    total_retries += retries
                    all_events.extend(events)
                    terminal.add((name, idx))
                elif kind == _CTRL_FAILED:
                    _, failure, t_busy, retries, reroutes, events = msg
                    busy[(failure.filter_name, failure.copy_index)] = t_busy
                    total_retries += retries
                    drain_reroutes += reroutes
                    all_events.extend(events)
                    failures.append(failure)
                    terminal.add((failure.filter_name, failure.copy_index))
                    if not failure.recovered:
                        fatal = True
                elif kind == _CTRL_ERROR:
                    _, name, idx, tb = msg
                    failures.append(
                        CopyFailure(
                            filter_name=name,
                            copy_index=idx,
                            error=tb.strip(),
                            kind="exception",
                        )
                    )
                    terminal.add((name, idx))
                    fatal = True
            # Watch for children that died without a terminal message
            # (hard kill, segfault, os._exit): synthesize their failure.
            now = time.monotonic()
            for p, name, idx in procs:
                key = (name, idx)
                if key in terminal or p.exitcode is None:
                    continue
                first_seen = exited_at.setdefault(key, now)
                if now - first_seen >= _EXIT_GRACE:
                    failures.append(
                        CopyFailure(
                            filter_name=name,
                            copy_index=idx,
                            error=(
                                f"process exited with code {p.exitcode} "
                                "without reporting completion"
                            ),
                            kind="exitcode",
                            exitcode=p.exitcode,
                        )
                    )
                    terminal.add(key)
                    fatal = True
            if fatal:
                abort.value = 1
                break
            if deadline is not None and time.perf_counter() > deadline:
                timed_out = True
                abort.value = 1
                break

        if controller is not None:
            controller.stop()
            all_events.extend(controller.drain_events())

        if abort.value:
            # Give children a moment to observe the abort, then reap.
            for p, _, _ in procs:
                p.join(timeout=5)
            for p, _, _ in procs:
                if p.is_alive():
                    p.terminate()
                    p.join(timeout=5)
        else:
            # Normal completion: drain any deposits still in flight.
            for p, _, _ in procs:
                p.join(timeout=10)
                if p.is_alive():
                    p.terminate()
            while True:
                try:
                    msg = results_q.get_nowait()
                except queue_mod.Empty:
                    break
                if msg[0] == _CTRL_DEPOSIT:
                    _, key, value = msg
                    results.setdefault(key, []).append(value)
        elapsed = time.perf_counter() - start

        if timed_out:
            raise PipelineError(
                failures, f"pipeline did not finish within {timeout}s"
            )
        if fatal:
            raise PipelineError(failures)

        buffers_sent = {
            f"{src}:{stream}": e.sent.value for (src, stream), e in edges.items()
        }
        wire_bytes = {
            f"{src}:{stream}": e.wire.value for (src, stream), e in edges.items()
        }
        shm_bytes = (
            {f"{src}:{stream}": e.shm.value for (src, stream), e in edges.items()}
            if pool is not None
            else {}
        )
        reroutes = sum(e.rerouted.value for e in edges.values())
        events = all_events if self.trace else None
        return RunResult(
            results=results,
            elapsed=elapsed,
            busy_time=busy,
            buffers_sent=buffers_sent,
            retries=total_retries,
            reroutes=reroutes,
            failed_copies=failures,
            wire_bytes=wire_bytes,
            shm_bytes=shm_bytes,
            metrics=snapshot_run(
                busy,
                buffers_sent,
                total_retries,
                reroutes,
                [(f.filter_name, f.copy_index) for f in failures],
                wire_bytes,
                elapsed,
                events,
                shm_bytes=shm_bytes if pool is not None else None,
                shm_pool=pool.stats() if pool is not None else None,
            ),
            trace=Trace(events) if events is not None else None,
        )

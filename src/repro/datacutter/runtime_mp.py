"""Multiprocessing runtime: one OS process per filter copy.

The closest local analog of DataCutter's deployment model: filter copies
are separate processes (as the paper's filters are separate executables
on cluster nodes) and every buffer crossing a stream is genuinely
serialized through an OS pipe — so, unlike the threaded runtime, the
sparse co-occurrence representation actually shrinks inter-filter
traffic here, and replicated texture filters scale past the GIL.

Semantics (stream policies, explicit routing, end-of-stream protocol,
result deposits) match :class:`~repro.datacutter.runtime_local.LocalRuntime`
exactly; both execute the same :class:`~repro.datacutter.graph.FilterGraph`.

Notes
-----
* Requires a ``fork``-capable platform (Linux): filter factories may be
  closures and are called inside the child.
* Demand-driven scheduling uses shared queue-depth counters; with
  multiple producer processes the decision is approximate (reads are not
  globally serialized with deliveries), which mirrors the real
  DataCutter scheduler observing consumption asynchronously.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
import traceback
from typing import Any, Dict, List, Optional, Tuple

from .buffers import DataBuffer, EndOfStream
from .filter import FilterContext
from .graph import FilterGraph, StreamEdge
from .runtime_local import RunResult

__all__ = ["MPRuntime"]

_CTRL_DONE = "__copy_done__"
_CTRL_ERROR = "__copy_error__"
_CTRL_DEPOSIT = "__deposit__"


class _SharedEdge:
    """Cross-process routing state for one stream edge."""

    def __init__(self, edge: StreamEdge, num_consumers: int, max_queue: int, ctx):
        self.edge = edge
        self.num_consumers = num_consumers
        self.queues = [ctx.Queue(maxsize=max_queue) for _ in range(num_consumers)]
        self.lock = ctx.Lock()
        # Shared per-consumer depth and assignment counters.
        self.queued = ctx.Array("l", [0] * num_consumers)
        self.assigned = ctx.Array("l", [0] * num_consumers)
        self.rr_next = ctx.Value("l", 0)
        self.sent = ctx.Value("l", 0)

    def choose(self, buffer: DataBuffer) -> int:
        policy = self.edge.policy
        with self.lock:
            if policy == "round_robin":
                idx = self.rr_next.value % self.num_consumers
                self.rr_next.value += 1
            elif policy == "demand_driven":
                depths = [
                    (self.queued[i], self.assigned[i], i)
                    for i in range(self.num_consumers)
                ]
                idx = min(depths)[2]
            else:
                raise RuntimeError(
                    f"stream {self.edge.stream!r} is explicit: dest_copy required"
                )
            self.queued[idx] += 1
            self.assigned[idx] += 1
            self.sent.value += 1
        return idx

    def assign_explicit(self, idx: int) -> None:
        if not (0 <= idx < self.num_consumers):
            raise RuntimeError(
                f"stream {self.edge.stream!r}: dest copy {idx} out of range"
            )
        with self.lock:
            self.queued[idx] += 1
            self.assigned[idx] += 1
            self.sent.value += 1

    def on_consume(self, idx: int) -> None:
        with self.lock:
            self.queued[idx] -= 1


class _MPContext(FilterContext):
    def __init__(self, filter_name, copy_index, num_copies, out_edges, results_q):
        super().__init__(filter_name, copy_index, num_copies)
        self._out = out_edges
        self._results_q = results_q

    def send(self, stream, payload, size_bytes=0, metadata=None, dest_copy=None):
        try:
            shared = self._out[stream]
        except KeyError:
            raise RuntimeError(
                f"filter {self.filter_name!r} has no output stream {stream!r}"
            ) from None
        buf = DataBuffer(
            payload=payload, size_bytes=size_bytes, metadata=dict(metadata or {})
        )
        if shared.edge.policy == "explicit":
            if dest_copy is None:
                raise RuntimeError(
                    f"stream {stream!r} is explicit: dest_copy required"
                )
            idx = dest_copy
            shared.assign_explicit(idx)
        elif dest_copy is not None:
            raise RuntimeError(
                f"stream {stream!r} is {shared.edge.policy}: dest_copy only "
                "valid on explicit streams"
            )
        else:
            idx = shared.choose(buf)
        shared.queues[idx].put((stream, buf))

    def deposit(self, key, value):
        self._results_q.put((_CTRL_DEPOSIT, key, value))


def _copy_main(
    graph: FilterGraph,
    spec_name: str,
    copy_index: int,
    in_edges: Dict[str, _SharedEdge],
    out_edges: Dict[str, _SharedEdge],
    results_q,
) -> None:
    """Child-process entry point for one filter copy."""
    spec = graph.filters[spec_name]
    t_busy = 0.0
    failed = False
    try:
        filt = spec.factory()
        ctx = _MPContext(spec_name, copy_index, spec.copies, out_edges, results_q)
        eos_needed = {e.stream: graph.copies(e.src) for e in graph.in_edges(spec_name)}
        eos_seen = {stream: 0 for stream in eos_needed}

        t0 = time.perf_counter()
        filt.initialize(ctx)
        t_busy += time.perf_counter() - t0
        if not eos_needed:
            t0 = time.perf_counter()
            filt.generate(ctx)
            t_busy += time.perf_counter() - t0
        else:
            open_streams = set(eos_needed)
            while open_streams:
                # Poll each open input edge's queue for this copy.
                item = None
                for stream in list(open_streams):
                    shared = in_edges[stream]
                    try:
                        item = shared.queues[copy_index].get(timeout=0.01)
                    except queue_mod.Empty:
                        continue
                    break
                if item is None:
                    continue
                stream, payload = item
                if isinstance(payload, EndOfStream):
                    eos_seen[stream] += 1
                    if eos_seen[stream] == eos_needed[stream]:
                        open_streams.discard(stream)
                    continue
                t0 = time.perf_counter()
                filt.process(stream, payload, ctx)
                t_busy += time.perf_counter() - t0
                in_edges[stream].on_consume(copy_index)
        t0 = time.perf_counter()
        filt.finalize(ctx)
        t_busy += time.perf_counter() - t0
    except BaseException:  # noqa: BLE001 - reported to parent
        failed = True
        results_q.put((_CTRL_ERROR, spec_name, copy_index, traceback.format_exc()))
    finally:
        # EOS to all downstream copies, then report completion.  The put
        # is bounded so a crashed consumer cannot wedge this producer.
        for e in graph.out_edges(spec_name):
            shared = out_edges[e.stream]
            marker = EndOfStream(producer=spec_name, copy_index=copy_index)
            for q in shared.queues:
                try:
                    q.put((e.stream, marker), timeout=30)
                except queue_mod.Full:
                    pass
        if not failed:
            results_q.put((_CTRL_DONE, spec_name, copy_index, t_busy))


class MPRuntime:
    """Executes a filter graph with one process per filter copy."""

    def __init__(self, graph: FilterGraph, max_queue: int = 16):
        graph.validate()
        for name in graph.filters:
            streams = [e.stream for e in graph.in_edges(name)]
            if len(streams) != len(set(streams)):
                raise ValueError(
                    f"filter {name!r} has duplicate input stream names: {streams}"
                )
        self.graph = graph
        self.max_queue = max_queue

    def run(self, timeout: Optional[float] = None) -> RunResult:
        graph = self.graph
        ctx = mp.get_context("fork")
        results_q = ctx.Queue()

        edges: Dict[Tuple[str, str], _SharedEdge] = {}
        for edge in graph.edges:
            edges[(edge.src, edge.stream)] = _SharedEdge(
                edge, graph.copies(edge.dst), self.max_queue, ctx
            )

        procs: List[mp.Process] = []
        total_copies = 0
        start = time.perf_counter()
        for spec in graph.filters.values():
            in_edges = {
                e.stream: edges[(e.src, e.stream)] for e in graph.in_edges(spec.name)
            }
            out_edges = {
                e.stream: edges[(spec.name, e.stream)]
                for e in graph.out_edges(spec.name)
            }
            for i in range(spec.copies):
                p = ctx.Process(
                    target=_copy_main,
                    args=(graph, spec.name, i, in_edges, out_edges, results_q),
                    name=f"{spec.name}[{i}]",
                )
                p.start()
                procs.append(p)
                total_copies += 1

        results: Dict[str, List[Any]] = {}
        busy: Dict[Tuple[str, int], float] = {}
        errors: List[str] = []
        done = 0
        deadline = None if timeout is None else start + timeout
        while done < total_copies:
            remaining = None if deadline is None else max(0.1, deadline - time.perf_counter())
            try:
                msg = results_q.get(timeout=remaining)
            except queue_mod.Empty:
                for p in procs:
                    p.terminate()
                raise TimeoutError(f"pipeline did not finish within {timeout}s")
            kind = msg[0]
            if kind == _CTRL_DEPOSIT:
                _, key, value = msg
                results.setdefault(key, []).append(value)
            elif kind == _CTRL_DONE:
                _, name, idx, t_busy = msg
                busy[(name, idx)] = t_busy
                done += 1
            elif kind == _CTRL_ERROR:
                _, name, idx, tb = msg
                errors.append(f"{name}[{idx}]:\n{tb}")
                done += 1

        for p in procs:
            p.join(timeout=10)
            if p.is_alive():
                p.terminate()
        elapsed = time.perf_counter() - start

        if errors:
            raise RuntimeError(
                f"{len(errors)} filter copies failed; first:\n{errors[0]}"
            )
        buffers_sent = {
            f"{src}:{stream}": e.sent.value for (src, stream), e in edges.items()
        }
        return RunResult(
            results=results,
            elapsed=elapsed,
            busy_time=busy,
            buffers_sent=buffers_sent,
        )

"""Buffer scheduling policies for transparent filter copies.

When a stream fans out to several transparent copies of a consumer
filter, the DataCutter scheduler decides which copy receives each buffer
(paper Section 4.1):

* **round robin** — copies take turns, so each receives roughly the same
  number of buffers;
* **demand driven** — buffers go "to the transparent filter copies that
  can process them the fastest", tracked through buffer consumption: the
  copy with the fewest unconsumed (queued, in-flight) buffers wins.

Both runtimes consult the same policy objects through the
:class:`CopyState` view, so scheduling behaviour — the subject of the
paper's Fig. 11 experiment — is identical in real and simulated runs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional

from .buffers import DataBuffer

__all__ = [
    "CopyState",
    "SchedulingPolicy",
    "RoundRobinPolicy",
    "DemandDrivenPolicy",
    "ExplicitPolicy",
    "make_policy",
]


@dataclass
class CopyState:
    """Scheduler-visible state of one consumer copy."""

    copy_index: int
    queued: int = 0  # buffers delivered but not yet consumed
    assigned: int = 0  # total buffers ever assigned
    assigned_bytes: int = 0

    def on_assign(self, buffer: DataBuffer) -> None:
        self.queued += 1
        self.assigned += 1
        self.assigned_bytes += buffer.size_bytes

    def on_consume(self) -> None:
        if self.queued <= 0:
            raise RuntimeError(f"copy {self.copy_index} consumed more than assigned")
        self.queued -= 1

    def on_unassign(self, buffer: DataBuffer) -> None:
        """Undo :meth:`on_assign` for a buffer that was never delivered
        (its copy died while the producer was blocked on the full queue)."""
        if self.queued <= 0 or self.assigned <= 0:
            raise RuntimeError(f"copy {self.copy_index} unassign underflow")
        self.queued -= 1
        self.assigned -= 1
        self.assigned_bytes -= buffer.size_bytes


class SchedulingPolicy(abc.ABC):
    """Chooses the consumer copy for each buffer on one stream edge."""

    name: str = "abstract"

    @abc.abstractmethod
    def choose(self, copies: List[CopyState], buffer: DataBuffer) -> int:
        """Return the copy index that should receive ``buffer``."""

    def requires_explicit_dest(self) -> bool:
        return False


class RoundRobinPolicy(SchedulingPolicy):
    """Cycle through copies; each receives ~the same number of buffers."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, copies: List[CopyState], buffer: DataBuffer) -> int:
        if not copies:
            raise ValueError("no consumer copies")
        idx = self._next % len(copies)
        self._next += 1
        return copies[idx].copy_index


class DemandDrivenPolicy(SchedulingPolicy):
    """Send to the copy with the fewest unconsumed buffers.

    A copy that drains its queue quickly (fast node) keeps its queue
    short and therefore attracts more buffers — the consumption-rate
    behaviour of the DataCutter demand-driven scheduler.  Ties break by
    fewest total assigned buffers, then lowest copy index (deterministic).
    """

    name = "demand_driven"

    def choose(self, copies: List[CopyState], buffer: DataBuffer) -> int:
        if not copies:
            raise ValueError("no consumer copies")
        best = min(copies, key=lambda c: (c.queued, c.assigned, c.copy_index))
        return best.copy_index


class ExplicitPolicy(SchedulingPolicy):
    """Producer addresses the destination copy itself (paper 4.1).

    Needed where data placement is semantic — e.g. every piece of one
    RFR-to-IIC chunk must reach the *same* IIC copy to be stitched.
    """

    name = "explicit"

    def choose(self, copies: List[CopyState], buffer: DataBuffer) -> int:
        raise RuntimeError(
            "explicit streams require dest_copy on every send; the "
            "scheduler must not be consulted"
        )

    def requires_explicit_dest(self) -> bool:
        return True


_POLICIES = {
    "round_robin": RoundRobinPolicy,
    "demand_driven": DemandDrivenPolicy,
    "explicit": ExplicitPolicy,
}


def make_policy(name: str) -> SchedulingPolicy:
    """Instantiate a policy by name (fresh state per stream edge)."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {name!r}; valid: {sorted(_POLICIES)}"
        ) from None

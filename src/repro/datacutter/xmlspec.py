"""XML descriptions of filter networks.

DataCutter applications express the filter network as an XML document
(paper Section 4.3).  The schema used here::

    <filtergraph>
      <filter name="RFR" type="raw_file_reader" copies="4"/>
      <filter name="IIC" type="input_image_constructor" copies="1"/>
      <stream name="rfr2iic" src="RFR" dst="IIC" policy="explicit"/>
    </filtergraph>

``type`` keys into a registry of filter factories supplied by the
application (the filter *implementations* are code; the XML only wires
them together).  Factories receive no arguments, so parameterized filters
are registered as closures.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Callable, Dict

from .filter import Filter
from .graph import FilterGraph

__all__ = ["graph_from_xml", "graph_to_xml"]

FilterFactory = Callable[[], Filter]


def graph_from_xml(doc: str, registry: Dict[str, FilterFactory]) -> FilterGraph:
    """Build a :class:`FilterGraph` from an XML document.

    ``registry`` maps each ``type`` attribute to a filter factory.
    """
    try:
        root = ET.fromstring(doc)
    except ET.ParseError as exc:
        raise ValueError(f"invalid filter-graph XML: {exc}") from exc
    if root.tag != "filtergraph":
        raise ValueError(f"expected <filtergraph> root, got <{root.tag}>")
    graph = FilterGraph()
    # Record type names so the graph can be serialized back.
    graph._xml_types: Dict[str, str] = {}  # type: ignore[attr-defined]
    for el in root.iter("filter"):
        name = el.get("name")
        ftype = el.get("type")
        if not name or not ftype:
            raise ValueError("<filter> requires name and type attributes")
        if ftype not in registry:
            raise ValueError(
                f"filter type {ftype!r} not in registry; known: {sorted(registry)}"
            )
        copies = int(el.get("copies", "1"))
        graph.add_filter(name, registry[ftype], copies=copies)
        graph._xml_types[name] = ftype  # type: ignore[attr-defined]
    for el in root.iter("stream"):
        name = el.get("name")
        src = el.get("src")
        dst = el.get("dst")
        if not name or not src or not dst:
            raise ValueError("<stream> requires name, src and dst attributes")
        graph.connect(src, name, dst, policy=el.get("policy", "demand_driven"))
    graph.validate()
    return graph


def graph_to_xml(graph: FilterGraph) -> str:
    """Serialize a graph (built by :func:`graph_from_xml`) back to XML."""
    types = getattr(graph, "_xml_types", {})
    root = ET.Element("filtergraph")
    for spec in graph.filters.values():
        ET.SubElement(
            root,
            "filter",
            name=spec.name,
            type=types.get(spec.name, spec.name),
            copies=str(spec.copies),
        )
    for edge in graph.edges:
        ET.SubElement(
            root,
            "stream",
            name=edge.stream,
            src=edge.src,
            dst=edge.dst,
            policy=edge.policy,
        )
    return ET.tostring(root, encoding="unicode")

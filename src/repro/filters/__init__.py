"""The eight application filters of the Haralick pipeline (Section 4.3).

Input filters: :class:`RawFileReader` (RFR), :class:`InputImageConstructor`
(IIC).  Texture filters: :class:`HaralickMatrixProducer` (HMP, combined) or
the split :class:`HaralickCoMatrixCalculator` (HCC) +
:class:`HaralickParameterCalculator` (HPC).  Output filters:
:class:`UnstitchedOutput` (USO), :class:`HaralickImageConstructor` (HIC),
:class:`JPGImageWriter` (JIW).
"""

from .hcc import HaralickCoMatrixCalculator
from .hic import HaralickImageConstructor
from .hmp import HaralickMatrixProducer
from .hpc import HaralickParameterCalculator
from .iic import InputImageConstructor
from .jiw import JPGImageWriter, normalize_volume
from .messages import (
    FeaturePortion,
    MatrixPacket,
    ParameterVolume,
    SlicePortion,
    TextureChunk,
    TextureParams,
    iic_copy_for_chunk,
)
from .rfr import RawFileReader, inplane_blocks
from .uso import UnstitchedOutput, combine_uso_outputs, read_uso_records

__all__ = [
    "RawFileReader",
    "InputImageConstructor",
    "HaralickMatrixProducer",
    "HaralickCoMatrixCalculator",
    "HaralickParameterCalculator",
    "UnstitchedOutput",
    "HaralickImageConstructor",
    "JPGImageWriter",
    "normalize_volume",
    "TextureParams",
    "SlicePortion",
    "TextureChunk",
    "MatrixPacket",
    "FeaturePortion",
    "ParameterVolume",
    "iic_copy_for_chunk",
    "inplane_blocks",
    "combine_uso_outputs",
    "read_uso_records",
]

"""HCC — HaralickCoMatrixCalculator (paper Section 4.3.2).

Computes only the co-occurrence matrices of the ROIs in each arriving
chunk.  Matrices are packed into output buffers and shipped to the HPC
filter whenever a fraction of the chunk (default 1/8 — Section 5.1) has
been processed, so parameter computation pipelines behind matrix
computation.

With ``params.sparse`` the matrices travel in the sparse triplet form,
which "can greatly reduce the data traffic leaving the HCC filter"
(Section 4.4.1) — the mechanism behind Fig. 7(b).
"""

from __future__ import annotations

import time

from ..core.backends import resolve_scan_kernel
from ..core.cooccurrence import check_levels
from ..core.sparse import batch_sparse_from_dense
from ..datacutter.buffers import DataBuffer
from ..datacutter.filter import Filter, FilterContext
from .messages import MatrixPacket, TextureChunk, TextureParams, trace_headers

__all__ = ["HaralickCoMatrixCalculator"]


class HaralickCoMatrixCalculator(Filter):
    """Co-occurrence-matrix-only texture filter (split pipeline stage 1)."""

    name = "HCC"

    def __init__(self, params: TextureParams, out_stream: str = "hcc2hpc"):
        self.params = params
        self.out_stream = out_stream

    def process(self, stream: str, buffer: DataBuffer, ctx: FilterContext) -> None:
        tc = buffer.payload
        if not isinstance(tc, TextureChunk):
            raise TypeError(f"HCC expected TextureChunk, got {type(tc).__name__}")
        p = self.params
        q = p.quantize(tc.data)
        check_levels(q, p.levels)  # once per chunk, not per kernel call
        # The whole quantized chunk goes to the scan kernel in one call;
        # chunk-at-once backends (megabatch, gpu) see every ROI at once
        # and packetization only slices their accumulator into views.
        scan, fallback = resolve_scan_kernel(p.kernel)
        batch = p.packet_rois(tc.chunk)
        tracing = ctx.tracing
        if fallback and tracing:
            ctx.event("kernel.fallback", chunk=tc.chunk.index, **fallback)
        t_cooc = 0.0
        t_mark = time.perf_counter() if tracing else 0.0
        for start, mats in scan(
            q, p.roi, p.levels, distance=p.distance, batch=batch, validate=False
        ):
            if p.sparse:
                packet = MatrixPacket(
                    chunk=tc.chunk, start=start, sparse=batch_sparse_from_dense(mats)
                )
            else:
                packet = MatrixPacket(chunk=tc.chunk, start=start, dense=mats)
            if tracing:
                # Matrix production time: the scan plus any sparse
                # conversion, excluding downstream send.
                now = time.perf_counter()
                t_cooc += now - t_mark
            ctx.send(
                self.out_stream,
                packet,
                size_bytes=packet.wire_bytes(p.levels),
                metadata=trace_headers(
                    tc.chunk, kind="matrices", count=packet.count
                ),
            )
            if tracing:
                t_mark = time.perf_counter()
        if tracing:
            ctx.event("chunk.cooccur", dur=t_cooc, chunk=tc.chunk.index)

"""HIC — HaralickImageConstructor, the output stitch (paper Section 4.3.3).

Uses the positional information in arriving feature portions to place
parameter values into the full 4D output dataset of each Haralick
parameter.  Once every parameter volume is completely assembled, each is
forwarded (with its min/max for normalization) to the next filter — the
JIW image writer — and deposited in the runtime result store for
programmatic consumers.

HIC runs as a single copy: it holds the global output volumes.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..chunks.chunking import ChunkSpec
from ..chunks.stitch import OutputStitcher
from ..core.roi import ROISpec
from ..datacutter.buffers import DataBuffer
from ..datacutter.filter import Filter, FilterContext
from .messages import FeaturePortion, ParameterVolume

__all__ = ["HaralickImageConstructor"]


class HaralickImageConstructor(Filter):
    """Stitches feature portions into complete parameter volumes."""

    name = "HIC"

    def __init__(
        self,
        dataset_shape: Tuple[int, ...],
        roi_shape: Tuple[int, ...],
        features: Sequence[str],
        out_stream: Optional[str] = "hic2jiw",
        deposit_key: str = "volumes",
    ):
        self.roi = ROISpec(roi_shape)
        self.stitcher = OutputStitcher(dataset_shape, self.roi, features)
        self.out_stream = out_stream
        self.deposit_key = deposit_key
        # Per-chunk accumulation of flat feature values until full.
        self._partial: Dict[Tuple[int, ...], Dict[str, np.ndarray]] = {}
        self._filled: Dict[Tuple[int, ...], int] = {}
        self._chunks: Dict[Tuple[int, ...], ChunkSpec] = {}
        # At-least-once delivery dedup: portion positions already merged
        # per chunk, and chunks already placed into the stitcher.
        self._seen_starts: Dict[Tuple[int, ...], set] = {}
        self._placed: set = set()

    def process(self, stream: str, buffer: DataBuffer, ctx: FilterContext) -> None:
        portion = buffer.payload
        if not isinstance(portion, FeaturePortion):
            raise TypeError(f"HIC expected FeaturePortion, got {type(portion).__name__}")
        chunk = portion.chunk
        key = chunk.index
        if key in self._placed or portion.start in self._seen_starts.get(key, ()):
            return  # re-delivered portion (at-least-once): already merged
        local_grid = tuple(
            s - r + 1 for s, r in zip(chunk.shape, self.roi.shape)
        )
        npos = int(np.prod(local_grid))
        if key not in self._partial:
            self._partial[key] = {
                name: np.zeros(npos) for name in self.stitcher.features
            }
            self._filled[key] = 0
            self._chunks[key] = chunk
        store = self._partial[key]
        count = portion.count
        for name in self.stitcher.features:
            if name not in portion.values:
                raise ValueError(f"portion missing feature {name!r}")
            store[name][portion.start : portion.start + count] = portion.values[name]
        self._seen_starts.setdefault(key, set()).add(portion.start)
        self._filled[key] += count
        if self._filled[key] > npos:
            raise RuntimeError(f"chunk {key}: received more values than positions")
        if self._filled[key] == npos:
            local = {
                name: arr.reshape(local_grid) for name, arr in store.items()
            }
            t0 = time.perf_counter() if ctx.tracing else 0.0
            self.stitcher.place(self._chunks[key], local)
            if ctx.tracing:
                own = self._chunks[key].local_own_slices(self.roi)
                records = 1
                for s in own:
                    records *= s.stop - s.start
                ctx.event(
                    "chunk.write",
                    dur=time.perf_counter() - t0,
                    chunk=key,
                    records=int(records) * len(self.stitcher.features),
                )
            self._placed.add(key)
            self._seen_starts.pop(key, None)
            del self._partial[key], self._filled[key], self._chunks[key]

    def finalize(self, ctx: FilterContext) -> None:
        if self._partial:
            raise RuntimeError(
                f"HIC: input ended with {len(self._partial)} incomplete chunks"
            )
        volumes = self.stitcher.result()
        for name, vol in volumes.items():
            vmin, vmax = self.stitcher.minmax(name)
            if self.out_stream is not None:
                pv = ParameterVolume(feature=name, volume=vol, vmin=vmin, vmax=vmax)
                ctx.send(
                    self.out_stream,
                    pv,
                    size_bytes=pv.nbytes,
                    metadata={"kind": "volume", "feature": name},
                )
        ctx.deposit(self.deposit_key, volumes)

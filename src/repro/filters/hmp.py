"""HMP — HaralickMatrixProducer (paper Section 4.3.2).

The combined texture filter: for each ROI in an arriving chunk it
computes the co-occurrence matrix *and* the selected Haralick parameters
in one place, with no inter-filter communication between the two
operations.  Output is a stream of feature portions.

``use_sparse=True`` routes the per-matrix feature computation through the
sparse representation, reproducing the paper's Fig. 7(a) configuration
where the sparse form only adds conversion overhead (there is no
communication between matrix and parameter computation to save).
"""

from __future__ import annotations

import time

from ..core.backends import resolve_scan_kernel
from ..core.cooccurrence import check_levels
from ..core.features import haralick_features
from ..core.features_sparse import batch_features_from_sparse
from ..core.sparse import batch_sparse_from_dense
from ..datacutter.buffers import DataBuffer
from ..datacutter.filter import Filter, FilterContext
from .messages import FeaturePortion, TextureChunk, TextureParams, trace_headers

__all__ = ["HaralickMatrixProducer"]


class HaralickMatrixProducer(Filter):
    """Combined co-occurrence + parameter computation filter."""

    name = "HMP"

    def __init__(
        self,
        params: TextureParams,
        out_stream: str = "tex2out",
    ):
        self.params = params
        self.out_stream = out_stream

    def process(self, stream: str, buffer: DataBuffer, ctx: FilterContext) -> None:
        tc = buffer.payload
        if not isinstance(tc, TextureChunk):
            raise TypeError(f"HMP expected TextureChunk, got {type(tc).__name__}")
        p = self.params
        q = p.quantize(tc.data)
        check_levels(q, p.levels)  # once per chunk, not per kernel call
        # The whole quantized chunk goes to the scan kernel in one call;
        # chunk-at-once backends (megabatch, gpu) see every ROI at once
        # and packetization only slices their accumulator into views.
        scan, fallback = resolve_scan_kernel(p.kernel)
        batch = p.packet_rois(tc.chunk)
        # When tracing, split the chunk's busy time into co-occurrence
        # scan time (the generator) and parameter time, summed over
        # packets and emitted as one span each per chunk.
        tracing = ctx.tracing
        if fallback and tracing:
            ctx.event("kernel.fallback", chunk=tc.chunk.index, **fallback)
        t_cooc = t_feat = 0.0
        t_mark = time.perf_counter() if tracing else 0.0
        for start, mats in scan(
            q, p.roi, p.levels, distance=p.distance, batch=batch, validate=False
        ):
            if tracing:
                now = time.perf_counter()
                t_cooc += now - t_mark
                t_mark = now
            if p.sparse:
                # Sparse path inside one filter: pay the conversion, then
                # compute parameters for the whole packet in one batch.
                sparse_mats = batch_sparse_from_dense(mats)
                vals = batch_features_from_sparse(sparse_mats, p.features)
            else:
                vals = haralick_features(mats, p.features)
            if tracing:
                now = time.perf_counter()
                t_feat += now - t_mark
            portion = FeaturePortion(chunk=tc.chunk, start=start, values=vals)
            ctx.send(
                self.out_stream,
                portion,
                size_bytes=portion.nbytes,
                metadata=trace_headers(
                    tc.chunk, kind="features", count=portion.count
                ),
            )
            if tracing:
                t_mark = time.perf_counter()
        if tracing:
            ctx.event("chunk.cooccur", dur=t_cooc, chunk=tc.chunk.index)
            ctx.event("chunk.features", dur=t_feat, chunk=tc.chunk.index)

"""HPC — HaralickParameterCalculator (paper Section 4.3.2).

Computes the user-selected Haralick parameters from the co-occurrence
matrices received from HCC filters.  Dense packets go through the
vectorized batch kernel; sparse packets are "processed directly from the
sparse form, and no conversion back to a co-occurrence array is needed"
(Section 4.4.1).
"""

from __future__ import annotations

import time

from ..core.features import haralick_features
from ..core.features_sparse import batch_features_from_sparse
from ..datacutter.buffers import DataBuffer
from ..datacutter.filter import Filter, FilterContext
from .messages import FeaturePortion, MatrixPacket, TextureParams, trace_headers

__all__ = ["HaralickParameterCalculator"]


class HaralickParameterCalculator(Filter):
    """Parameter-only texture filter (split pipeline stage 2)."""

    name = "HPC"

    def __init__(self, params: TextureParams, out_stream: str = "tex2out"):
        self.params = params
        self.out_stream = out_stream

    def process(self, stream: str, buffer: DataBuffer, ctx: FilterContext) -> None:
        packet = buffer.payload
        if not isinstance(packet, MatrixPacket):
            raise TypeError(f"HPC expected MatrixPacket, got {type(packet).__name__}")
        p = self.params
        t0 = time.perf_counter() if ctx.tracing else 0.0
        if packet.sparse is not None:
            vals = batch_features_from_sparse(packet.sparse, p.features)
        else:
            vals = haralick_features(packet.dense, p.features)
        if ctx.tracing:
            # One span per packet: HPC never sees whole chunks.
            ctx.event(
                "chunk.features",
                dur=time.perf_counter() - t0,
                chunk=packet.chunk.index,
                start=packet.start,
            )
        portion = FeaturePortion(chunk=packet.chunk, start=packet.start, values=vals)
        ctx.send(
            self.out_stream,
            portion,
            size_bytes=portion.nbytes,
            metadata=trace_headers(
                packet.chunk, kind="features", count=portion.count
            ),
        )

"""IIC — InputImageConstructor, the input stitch (paper Section 4.3.1).

Collects slice portions from the RFR filters into temporary buffers,
reorganizes them into complete 4D IIC-to-TEXTURE chunks, and forwards
each chunk to the texture-analysis filters as soon as it is fully
assembled.

IIC copies are *explicit*: all pieces of one chunk must meet at the same
copy (paper Section 5.2), so producers address copies by
``iic_copy_for_chunk``.  Each copy therefore only tracks the chunks
assigned to it.

When a :class:`~repro.regions.RegionStore` is attached, every assembled
chunk is staged into the region hierarchy and every new assembly starts
by *resolving* the chunk's extent against it: planes fully covered by
previously staged regions (the ghost/overlap planes shared with
IIC-to-TEXTURE neighbours, and — across warm-pool runs — whole chunks)
are prefilled instead of waiting for RFR traffic, whose re-deliveries
for those planes are then dropped by the dedup path.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence, Tuple

from ..chunks.chunking import ChunkSpec
from ..chunks.stitch import ChunkAssembler
from ..datacutter.buffers import DataBuffer
from ..datacutter.filter import Filter, FilterContext
from .messages import SlicePortion, TextureChunk, iic_copy_for_chunk, trace_headers

__all__ = ["InputImageConstructor"]


class InputImageConstructor(Filter):
    """Stitches slice portions into texture chunks."""

    name = "IIC"

    def __init__(
        self,
        chunks: Sequence[ChunkSpec],
        out_stream: str = "iic2tex",
        region_store=None,
    ):
        self.all_chunks = list(chunks)
        self.out_stream = out_stream
        #: Optional :class:`repro.regions.RegionStore` for staging
        #: assembled chunks and serving overlap regions (see module doc).
        self._region_store = region_store
        self._assemblers: Dict[int, ChunkAssembler] = {}
        self._pending_planes: Dict[int, Dict[Tuple[int, int], "object"]] = {}
        self._my_chunks: Dict[int, ChunkSpec] = {}
        self._emitted = 0
        # At-least-once delivery dedup: planes already handed to the
        # assembler and chunks already emitted (re-delivered portions for
        # either are silently dropped, keeping duplicates idempotent).
        self._seen_planes: Dict[int, set] = {}
        self._emitted_chunks: set = set()
        #: First-portion arrival time per chunk (assembly latency for the
        #: ``chunk.stitch`` trace span).
        self._t_first: Dict[int, float] = {}

    def initialize(self, ctx: FilterContext) -> None:
        for li, chunk in enumerate(self.all_chunks):
            if iic_copy_for_chunk(li, ctx.num_copies) == ctx.copy_index:
                self._my_chunks[li] = chunk

    def _assembler(self, li: int, ctx: FilterContext) -> ChunkAssembler:
        if li not in self._assemblers:
            asm = self._assemblers[li] = ChunkAssembler(self._my_chunks[li])
            self._t_first[li] = time.perf_counter()
            self._prefill(li, asm, ctx)
        return self._assemblers[li]

    def _prefill(self, li: int, asm: ChunkAssembler, ctx: FilterContext) -> None:
        """Serve fully-covered planes of a new assembly from the store.

        Resolves the chunk's extent against the region hierarchy; every
        ``(t, z)`` plane whose in-plane region is completely covered by
        staged neighbours is added to the assembler up front and marked
        seen, so the RFR deliveries for it are dropped as duplicates.
        """
        store = self._region_store
        if store is None:
            return
        from ..regions import CHUNK_TEMPLATE, chunk_extent

        if store.template(CHUNK_TEMPLATE) is None:
            return  # nothing staged yet under the chunk template
        import numpy as np

        chunk = self._my_chunks[li]
        extent = chunk_extent(chunk)
        hits = store.resolve(CHUNK_TEMPLATE, extent)
        if not hits:
            return
        buf = np.zeros(extent.shape, dtype=hits[0].data.dtype)
        covered = np.zeros(extent.shape, dtype=bool)
        for hit in hits:
            sel = hit.overlap.slices_in(extent)
            buf[sel] = hit.overlap_data
            covered[sel] = True
            if ctx.tracing:
                ctx.event(
                    "region.hit",
                    chunk=chunk.index,
                    tier=hit.tier,
                    bytes=int(hit.overlap.num_voxels * buf.itemsize),
                )
        seen = self._seen_planes.setdefault(li, set())
        for tt in range(extent.shape[3]):
            for zz in range(extent.shape[2]):
                if covered[:, :, zz, tt].all():
                    t_g, z_g = chunk.lo[3] + tt, chunk.lo[2] + zz
                    asm.add_plane(t_g, z_g, buf[:, :, zz, tt])
                    seen.add((t_g, z_g))

    def process(self, stream: str, buffer: DataBuffer, ctx: FilterContext) -> None:
        portion = buffer.payload
        if not isinstance(portion, SlicePortion):
            raise TypeError(f"IIC expected SlicePortion, got {type(portion).__name__}")
        for li, chunk in self._my_chunks.items():
            if not (
                chunk.lo[3] <= portion.t < chunk.hi[3]
                and chunk.lo[2] <= portion.z < chunk.hi[2]
            ):
                continue
            if li in self._emitted_chunks:
                continue  # duplicate delivery for an already-emitted chunk
            # Require the portion to cover the chunk's in-plane region
            # fully (whole-slice reads always do; in-plane blocks that
            # only partially cover are accumulated per plane).
            cx0, cx1 = chunk.lo[0], chunk.hi[0]
            cy0, cy1 = chunk.lo[1], chunk.hi[1]
            if portion.x0 >= cx1 or portion.x1 <= cx0:
                continue
            if portion.y0 >= cy1 or portion.y1 <= cy0:
                continue
            # Creating the assembler may prefill planes (or the whole
            # chunk) from the region store, so emit-readiness must be
            # checked before and after merging this portion.
            asm = self._assembler(li, ctx)
            if asm.is_complete:
                self._emit(li, ctx)
                continue
            if (portion.t, portion.z) in self._seen_planes.get(li, ()):
                continue  # this plane already reached the assembler
            if portion.x0 <= cx0 and portion.x1 >= cx1 and portion.y0 <= cy0 and portion.y1 >= cy1:
                plane = portion.data[
                    cx0 - portion.x0 : cx1 - portion.x0,
                    cy0 - portion.y0 : cy1 - portion.y0,
                ]
                asm.add_plane(portion.t, portion.z, plane)
                self._seen_planes.setdefault(li, set()).add((portion.t, portion.z))
            else:
                self._accumulate_partial(li, chunk, portion)
            if asm.is_complete:
                self._emit(li, ctx)

    # -- partial in-plane portions ----------------------------------------

    def _accumulate_partial(
        self, li: int, chunk: ChunkSpec, portion: SlicePortion
    ) -> None:
        """Accumulate sub-plane rectangles until a full plane is covered."""
        import numpy as np

        key = (portion.t, portion.z)
        store = self._pending_planes.setdefault(li, {})
        cx0, cx1 = chunk.lo[0], chunk.hi[0]
        cy0, cy1 = chunk.lo[1], chunk.hi[1]
        if key not in store:
            store[key] = {
                "data": np.zeros((cx1 - cx0, cy1 - cy0), dtype=portion.data.dtype),
                "covered": np.zeros((cx1 - cx0, cy1 - cy0), dtype=bool),
            }
        entry = store[key]
        ix0, ix1 = max(portion.x0, cx0), min(portion.x1, cx1)
        iy0, iy1 = max(portion.y0, cy0), min(portion.y1, cy1)
        entry["data"][ix0 - cx0 : ix1 - cx0, iy0 - cy0 : iy1 - cy0] = portion.data[
            ix0 - portion.x0 : ix1 - portion.x0, iy0 - portion.y0 : iy1 - portion.y0
        ]
        entry["covered"][ix0 - cx0 : ix1 - cx0, iy0 - cy0 : iy1 - cy0] = True
        if entry["covered"].all():
            # The assembler exists by now: process() creates it before
            # routing any portion here.
            self._assemblers[li].add_plane(portion.t, portion.z, entry["data"])
            self._seen_planes.setdefault(li, set()).add(key)
            del store[key]

    def _stage(self, chunk: ChunkSpec, data, ctx: FilterContext) -> None:
        """Stage one assembled chunk so neighbours/reruns can resolve it."""
        from ..regions import CHUNK_TEMPLATE, chunk_extent, ensure_chunk_template

        store = self._region_store
        ensure_chunk_template(store, data.dtype)
        report = store.stage(CHUNK_TEMPLATE, chunk_extent(chunk), data, copy=True)
        if ctx.tracing:
            ctx.event(
                "region.stage",
                chunk=chunk.index,
                tier=report.tier or "dropped",
                bytes=report.nbytes,
                tier_bytes=report.tier_bytes,
            )
            for ev in report.evictions:
                ctx.event("region.evict", chunk=chunk.index, src=ev.src, dst=ev.dst)

    def _emit(self, li: int, ctx: FilterContext) -> None:
        chunk = self._my_chunks[li]
        data = self._assemblers.pop(li).result()
        if self._region_store is not None:
            self._stage(chunk, data, ctx)
        tc = TextureChunk(chunk=chunk, data=data)
        if ctx.tracing:
            t0 = self._t_first.pop(li, None)
            ctx.event(
                "chunk.stitch",
                dur=time.perf_counter() - t0 if t0 is not None else 0.0,
                chunk=chunk.index,
                bytes=tc.nbytes,
            )
        ctx.send(
            self.out_stream,
            tc,
            size_bytes=tc.nbytes,
            metadata=trace_headers(
                chunk, kind="chunk", n_rois=chunk.num_rois
            ),
        )
        self._emitted += 1
        self._emitted_chunks.add(li)
        self._seen_planes.pop(li, None)

    def finalize(self, ctx: FilterContext) -> None:
        unfinished = [li for li, asm in self._assemblers.items() if not asm.is_complete]
        if unfinished or any(self._pending_planes.values()):
            raise RuntimeError(
                f"IIC copy {ctx.copy_index}: input ended with incomplete "
                f"chunks {sorted(unfinished)[:8]}"
            )

"""JIW — JPGImageWriter (paper Section 4.3.3).

Receives assembled parameter volumes with their min/max, normalizes each
value into ``[0, 1]`` (zero -> black, one -> white), converts the 4D data
into a series of 2D grayscale images and writes them to disk.

Substitution note (see DESIGN.md): the paper writes JPEG; no JPEG codec
is available offline, so images are written as binary PGM — the identical
normalize-and-write pipeline with a different container.  The class keeps
the paper's name.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from ..data.formats import write_pgm
from ..datacutter.buffers import DataBuffer
from ..datacutter.filter import Filter, FilterContext
from .messages import ParameterVolume

__all__ = ["JPGImageWriter", "normalize_volume"]


def normalize_volume(volume: np.ndarray, vmin: float, vmax: float) -> np.ndarray:
    """Scale values into [0, 1] using the global parameter min/max.

    A constant volume (``vmin == vmax``) maps to all-black, matching the
    "zero results in a black pixel" convention.
    """
    if vmax < vmin:
        raise ValueError(f"vmax {vmax} < vmin {vmin}")
    if vmax == vmin:
        return np.zeros_like(volume, dtype=np.float64)
    return np.clip((volume - vmin) / (vmax - vmin), 0.0, 1.0)


class JPGImageWriter(Filter):
    """Writes normalized parameter volumes as 2D grayscale image series."""

    name = "JIW"

    def __init__(self, output_dir: str):
        self.output_dir = output_dir

    def initialize(self, ctx: FilterContext) -> None:
        os.makedirs(self.output_dir, exist_ok=True)

    def process(self, stream: str, buffer: DataBuffer, ctx: FilterContext) -> None:
        pv = buffer.payload
        if not isinstance(pv, ParameterVolume):
            raise TypeError(f"JIW expected ParameterVolume, got {type(pv).__name__}")
        if pv.volume.ndim != 4:
            raise ValueError(f"JIW expects 4D volumes, got {pv.volume.ndim}D")
        norm = normalize_volume(pv.volume, pv.vmin, pv.vmax)
        feature_dir = os.path.join(self.output_dir, pv.feature)
        os.makedirs(feature_dir, exist_ok=True)
        written = 0
        _, _, nz, nt = norm.shape
        for t in range(nt):
            for z in range(nz):
                path = os.path.join(feature_dir, f"t{t:04d}_z{z:04d}.pgm")
                write_pgm(path, norm[:, :, z, t])
                written += 1
        ctx.deposit(
            "images",
            {"feature": pv.feature, "dir": feature_dir, "count": written},
        )

"""Payload types and shared parameters for the application filters.

Every stream in the Haralick pipeline carries one of the dataclasses
below.  ``TextureParams`` bundles the analysis parameters every texture
filter needs; the paper's experimental defaults (Section 5.1) are the
dataclass defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..chunks.chunking import ChunkSpec
from ..core.backends import DEFAULT_KERNEL, get_kernel
from ..core.features import PAPER_FEATURES, feature_index
from ..core.roi import ROISpec
from ..core.sparse import SparseCooc

__all__ = [
    "TextureParams",
    "SlicePortion",
    "TextureChunk",
    "MatrixPacket",
    "FeaturePortion",
    "ParameterVolume",
    "iic_copy_for_chunk",
    "texture_wire_bytes",
    "trace_headers",
]


def trace_headers(chunk: Optional[ChunkSpec] = None, **extra) -> Dict[str, object]:
    """Buffer-metadata headers that let trace events follow a chunk.

    The ``"chunk"`` key is the chunk's grid index (a tuple) — the
    chunk's identity in :mod:`repro.datacutter.obs` events.  It rides in
    ``DataBuffer.metadata``, so it crosses process and socket boundaries
    with the buffer and lets every runtime stamp queue/service/scheduler
    events with the chunk they concern.
    """
    headers: Dict[str, object] = dict(extra)
    if chunk is not None:
        headers["chunk"] = tuple(chunk.index)
    return headers


@dataclass(frozen=True)
class TextureParams:
    """Analysis parameters shared by all texture filters.

    ``intensity_range`` fixes the global requantization window so that
    every chunk is quantized identically regardless of which filter copy
    processes it.  ``packet_fraction`` is the fraction of a chunk's ROIs
    per HCC output packet (the paper sends a packet whenever 1/8 of a
    chunk has been processed).  ``kernel`` selects the co-occurrence
    scan backend (:data:`repro.core.backends.KERNELS`); all backends are
    bit-identical, so it is purely a performance knob.
    """

    roi_shape: Tuple[int, ...] = (5, 5, 5, 3)
    levels: int = 32
    features: Tuple[str, ...] = PAPER_FEATURES
    distance: int = 1
    intensity_range: Tuple[float, float] = (0.0, 65535.0)
    packet_fraction: float = 1.0 / 8.0
    sparse: bool = False
    kernel: str = DEFAULT_KERNEL

    def __post_init__(self) -> None:
        for name in self.features:
            feature_index(name)
        if not self.features:
            raise ValueError("at least one feature required")
        if not (0 < self.packet_fraction <= 1):
            raise ValueError("packet_fraction must be in (0, 1]")
        lo, hi = self.intensity_range
        if hi <= lo:
            raise ValueError(f"invalid intensity range [{lo}, {hi}]")
        ROISpec(self.roi_shape)  # validates
        get_kernel(self.kernel)  # validates

    @property
    def roi(self) -> ROISpec:
        return ROISpec(self.roi_shape)

    def packet_rois(self, chunk: ChunkSpec) -> int:
        """ROIs per matrix/feature packet for one chunk."""
        total = chunk.num_rois
        return max(1, int(np.ceil(total * self.packet_fraction)))

    def quantize(self, data: np.ndarray) -> np.ndarray:
        from ..core.quantization import quantize_linear

        lo, hi = self.intensity_range
        return quantize_linear(data, self.levels, lo=lo, hi=hi)


@dataclass
class SlicePortion:
    """A 2D sub-rectangle of one slice file (RFR -> IIC traffic)."""

    t: int
    z: int
    x0: int
    x1: int
    y0: int
    y1: int
    data: np.ndarray

    def __post_init__(self) -> None:
        if self.data.shape != (self.x1 - self.x0, self.y1 - self.y0):
            raise ValueError(
                f"portion data shape {self.data.shape} != declared "
                f"({self.x1 - self.x0}, {self.y1 - self.y0})"
            )

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)


@dataclass
class TextureChunk:
    """A fully assembled IIC-to-TEXTURE chunk (IIC -> HMP/HCC traffic)."""

    chunk: ChunkSpec
    data: np.ndarray

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)


@dataclass
class MatrixPacket:
    """A batch of co-occurrence matrices (HCC -> HPC traffic).

    Exactly one of ``dense`` / ``sparse`` is set, matching the full or
    sparse matrix representation under evaluation (paper Section 4.4.1).
    ``start`` is the flat index of the first ROI position in the chunk's
    local raster-scan order.
    """

    chunk: ChunkSpec
    start: int
    dense: Optional[np.ndarray] = None
    sparse: Optional[List[SparseCooc]] = None

    def __post_init__(self) -> None:
        if (self.dense is None) == (self.sparse is None):
            raise ValueError("exactly one of dense/sparse must be set")

    @property
    def count(self) -> int:
        return len(self.sparse) if self.sparse is not None else self.dense.shape[0]

    def wire_bytes(self, levels: int) -> int:
        """Serialized size for the network cost model."""
        if self.sparse is not None:
            return sum(sp.wire_bytes() for sp in self.sparse)
        # Full form: G*G 2-byte counts per matrix (ROI pair counts fit
        # comfortably in 16 bits for the paper's ROI sizes).
        return self.count * levels * levels * 2


@dataclass
class FeaturePortion:
    """Haralick parameter values for a run of ROI positions
    (HMP/HPC -> output-filter traffic)."""

    chunk: ChunkSpec
    start: int
    values: Dict[str, np.ndarray]

    def __post_init__(self) -> None:
        lengths = {v.shape for v in self.values.values()}
        if len(lengths) > 1:
            raise ValueError(f"inconsistent value lengths: {lengths}")

    @property
    def count(self) -> int:
        return next(iter(self.values.values())).shape[0] if self.values else 0

    @property
    def nbytes(self) -> int:
        return sum(int(v.nbytes) for v in self.values.values())


def iic_copy_for_chunk(chunk_linear_index: int, num_iic_copies: int) -> int:
    """Which IIC copy assembles a given chunk.

    Pieces of the same chunk must meet at one copy (paper Section 5.2:
    this is why IIC copies are *explicit*); chunks round-robin over the
    copies so each IIC handles a similar share.
    """
    if num_iic_copies < 1:
        raise ValueError("need at least one IIC copy")
    return chunk_linear_index % num_iic_copies


def texture_wire_bytes(portion_nbytes: int) -> int:
    """Wire size of a feature portion (float64 values + positions)."""
    return portion_nbytes


@dataclass
class ParameterVolume:
    """A complete stitched 4D output volume for one Haralick parameter
    (HIC -> JIW traffic), with the min/max the JIW filter needs for
    normalization (paper Section 4.3.3)."""

    feature: str
    volume: np.ndarray
    vmin: float
    vmax: float

    @property
    def nbytes(self) -> int:
        return int(self.volume.nbytes)

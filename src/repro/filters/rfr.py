"""RFR — RAWFileReader (paper Section 4.3.1).

Reads raw image data local to one storage node and streams it to the
input-stitch (IIC) filters.  One RFR copy runs per storage node; copy
``k`` owns node ``k``'s slice files.

Slices are read in RFR-to-IIC chunks: by default a whole slice per read
(no intra-slice seeks — Section 5.1), optionally partitioned in-plane for
very large slices.  Each portion is sent *explicitly* to every IIC copy
that assembles a texture chunk intersecting it.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from ..chunks.chunking import ChunkSpec
from ..datacutter.filter import Filter, FilterContext
from ..storage.dataset import DiskDataset4D
from .messages import SlicePortion, iic_copy_for_chunk

__all__ = ["RawFileReader", "inplane_blocks"]


def inplane_blocks(
    slice_shape: Tuple[int, int], block_shape: Optional[Tuple[int, int]]
) -> List[Tuple[int, int, int, int]]:
    """Partition a slice's (x, y) extent into read blocks.

    ``None`` means one block covering the whole slice.  Returns
    ``(x0, x1, y0, y1)`` rectangles.
    """
    nx, ny = slice_shape
    if block_shape is None:
        return [(0, nx, 0, ny)]
    bx, by = block_shape
    if bx < 1 or by < 1:
        raise ValueError(f"invalid in-plane block shape {block_shape}")
    blocks = []
    for x0 in range(0, nx, bx):
        for y0 in range(0, ny, by):
            blocks.append((x0, min(x0 + bx, nx), y0, min(y0 + by, ny)))
    return blocks


class RawFileReader(Filter):
    """Reads this storage node's slices and routes portions to IIC copies."""

    name = "RFR"

    def __init__(
        self,
        dataset_root: str,
        chunks: Sequence[ChunkSpec],
        num_iic_copies: int,
        node: Optional[int] = None,
        out_stream: str = "rfr2iic",
        inplane_block: Optional[Tuple[int, int]] = None,
    ):
        self.dataset_root = dataset_root
        self.node = node  # None: copy k serves storage node k
        self.chunks = list(chunks)
        self.num_iic_copies = num_iic_copies
        self.out_stream = out_stream
        self.inplane_block = inplane_block
        self._dataset: Optional[DiskDataset4D] = None

    def initialize(self, ctx: FilterContext) -> None:
        self._dataset = DiskDataset4D.open(self.dataset_root)
        if self.node is None:
            self.node = ctx.copy_index
        if self.node >= self._dataset.num_nodes:
            raise ValueError(
                f"RFR copy for node {self.node}, dataset has "
                f"{self._dataset.num_nodes} storage nodes"
            )

    def _destinations(self, t: int, z: int, rect) -> List[int]:
        """IIC copies needing this slice rectangle, deduplicated."""
        x0, x1, y0, y1 = rect
        dests = []
        for li, chunk in enumerate(self.chunks):
            if not (chunk.lo[3] <= t < chunk.hi[3] and chunk.lo[2] <= z < chunk.hi[2]):
                continue
            # In-plane intersection with the chunk's (x, y) region.
            if x0 >= chunk.hi[0] or x1 <= chunk.lo[0]:
                continue
            if y0 >= chunk.hi[1] or y1 <= chunk.lo[1]:
                continue
            dest = iic_copy_for_chunk(li, self.num_iic_copies)
            if dest not in dests:
                dests.append(dest)
        return dests

    def generate(self, ctx: FilterContext) -> None:
        ds = self._dataset
        assert ds is not None, "initialize() not called"
        blocks = inplane_blocks(ds.slice_shape, self.inplane_block)
        for t, z in ds.slices_on_node(self.node):
            for rect in blocks:
                dests = self._destinations(t, z, rect)
                if not dests:
                    continue  # no chunk needs this region
                x0, x1, y0, y1 = rect
                if ctx.tracing:
                    t0 = time.perf_counter()
                    data = ds.read_slice_region(t, z, x0, x1, y0, y1)
                    ctx.event(
                        "chunk.read",
                        dur=time.perf_counter() - t0,
                        t=t,
                        z=z,
                        bytes=int(data.nbytes),
                    )
                else:
                    data = ds.read_slice_region(t, z, x0, x1, y0, y1)
                portion = SlicePortion(t=t, z=z, x0=x0, x1=x1, y0=y0, y1=y1, data=data)
                for dest in dests:
                    ctx.send(
                        self.out_stream,
                        portion,
                        size_bytes=portion.nbytes,
                        metadata={"kind": "slice", "t": t, "z": z},
                        dest_copy=dest,
                    )

"""USO — UnstitchedOutput (paper Section 4.3.3).

Writes Haralick parameter streams straight to disk: each copy opens one
file per parameter and appends ``(position, value)`` records as portions
arrive.  Postprocessing applications (computer-aided diagnosis) consume
these files; :func:`read_uso_records` and :func:`combine_uso_outputs`
reconstruct full volumes from any number of USO copies' files.

Only *owned* positions are written — overlap-region duplicates computed
by neighbouring chunks are dropped here, so the union of all records
covers every output position exactly once.

Record format (little-endian): ``ndim`` uint32 coordinates + 1 float64.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..chunks.chunking import flat_to_global, owned_flat_mask
from ..core.roi import ROISpec
from ..datacutter.buffers import DataBuffer
from ..datacutter.filter import Filter, FilterContext
from .messages import FeaturePortion

__all__ = ["UnstitchedOutput", "read_uso_records", "combine_uso_outputs"]


class UnstitchedOutput(Filter):
    """Streams parameter records to per-feature files."""

    name = "USO"

    def __init__(self, output_dir: str, roi_shape: Tuple[int, ...]):
        self.output_dir = output_dir
        self.roi = ROISpec(roi_shape)
        self._files: Dict[str, "object"] = {}
        self._counts: Dict[str, int] = {}
        # At-least-once delivery dedup: (chunk index, portion start)
        # already written — re-delivered portions would otherwise write
        # duplicate records and combine_uso_outputs would reject them.
        self._seen: set = set()

    def initialize(self, ctx: FilterContext) -> None:
        os.makedirs(self.output_dir, exist_ok=True)

    def _file(self, feature: str, ctx: FilterContext):
        if feature not in self._files:
            path = os.path.join(
                self.output_dir, f"{feature}_copy{ctx.copy_index:03d}.uso"
            )
            self._files[feature] = open(path, "wb")
            self._counts[feature] = 0
        return self._files[feature]

    def process(self, stream: str, buffer: DataBuffer, ctx: FilterContext) -> None:
        portion = buffer.payload
        if not isinstance(portion, FeaturePortion):
            raise TypeError(f"USO expected FeaturePortion, got {type(portion).__name__}")
        dedup_key = (portion.chunk.index, portion.start)
        if dedup_key in self._seen:
            return
        self._seen.add(dedup_key)
        mask = owned_flat_mask(portion.chunk, self.roi)
        count = portion.count
        owned = mask[portion.start : portion.start + count]
        if not owned.any():
            return
        flat = np.arange(portion.start, portion.start + count)[owned]
        coords = flat_to_global(portion.chunk, self.roi, flat).astype("<u4")
        t0 = time.perf_counter() if ctx.tracing else 0.0
        for feature, values in portion.values.items():
            fh = self._file(feature, ctx)
            vals = np.asarray(values, dtype="<f8")[owned]
            rec = np.empty(
                coords.shape[0],
                dtype=[("pos", "<u4", (coords.shape[1],)), ("val", "<f8")],
            )
            rec["pos"] = coords
            rec["val"] = vals
            fh.write(rec.tobytes())
            self._counts[feature] += coords.shape[0]
        if ctx.tracing:
            ctx.event(
                "chunk.write",
                dur=time.perf_counter() - t0,
                chunk=portion.chunk.index,
                records=int(coords.shape[0]) * len(portion.values),
            )

    def finalize(self, ctx: FilterContext) -> None:
        for feature, fh in self._files.items():
            fh.close()
            ctx.deposit(
                "uso_files",
                {
                    "feature": feature,
                    "path": os.path.join(
                        self.output_dir, f"{feature}_copy{ctx.copy_index:03d}.uso"
                    ),
                    "records": self._counts[feature],
                },
            )


def read_uso_records(path: str, ndim: int = 4) -> Tuple[np.ndarray, np.ndarray]:
    """Read one USO file; returns ``(coords (n, ndim), values (n,))``."""
    dtype = np.dtype([("pos", "<u4", (ndim,)), ("val", "<f8")])
    with open(path, "rb") as fh:
        raw = fh.read()
    if len(raw) % dtype.itemsize:
        raise ValueError(f"{path}: truncated USO file")
    rec = np.frombuffer(raw, dtype=dtype)
    return rec["pos"].astype(np.int64), rec["val"].copy()


def combine_uso_outputs(
    paths: List[str], out_shape: Tuple[int, ...]
) -> np.ndarray:
    """Rebuild one parameter volume from all USO copies' files.

    Raises if any output position is missing or written twice.
    """
    volume = np.full(out_shape, np.nan)
    seen = np.zeros(out_shape, dtype=bool)
    for path in paths:
        coords, vals = read_uso_records(path, ndim=len(out_shape))
        idx = tuple(coords.T)
        if seen[idx].any():
            raise ValueError(f"{path}: duplicate output positions")
        volume[idx] = vals
        seen[idx] = True
    if not seen.all():
        raise ValueError(
            f"USO outputs incomplete: {int((~seen).sum())} positions missing"
        )
    return volume

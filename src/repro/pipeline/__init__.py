"""End-to-end parallel analysis: configs, graph builders, drivers."""

from .builder import build_graph, plan_chunks
from .config import AnalysisConfig, clip_chunk_shape
from .report import filter_breakdown, format_breakdown, format_metrics
from .run import (
    PipelineResult,
    PreparedPipeline,
    build_runtime,
    execute_pipeline,
    prepare_pipeline,
    run_pipeline,
)
from .sequential import iter_chunk_features, transform_disk_dataset

__all__ = [
    "AnalysisConfig",
    "clip_chunk_shape",
    "build_graph",
    "plan_chunks",
    "filter_breakdown",
    "format_breakdown",
    "format_metrics",
    "PipelineResult",
    "PreparedPipeline",
    "build_runtime",
    "execute_pipeline",
    "prepare_pipeline",
    "run_pipeline",
    "iter_chunk_features",
    "transform_disk_dataset",
]

"""Filter-graph builders for the two pipeline variants.

``build_graph`` wires the end-to-end network of paper Figs. 4 and 5:

* HMP variant::

      RFR x S --explicit--> IIC x I --sched--> HMP x N ----> output
* split variant::

      RFR x S --explicit--> IIC x I --sched--> HCC x C --sched--> HPC x P ----> output

where the output stage is HIC(+JIW) or USO according to the config.
"""

from __future__ import annotations

from typing import List, Tuple

from ..chunks.chunking import ChunkSpec, partition
from ..datacutter.graph import FilterGraph
from ..filters.hcc import HaralickCoMatrixCalculator
from ..filters.hic import HaralickImageConstructor
from ..filters.hmp import HaralickMatrixProducer
from ..filters.hpc import HaralickParameterCalculator
from ..filters.iic import InputImageConstructor
from ..filters.jiw import JPGImageWriter
from ..filters.rfr import RawFileReader
from ..filters.uso import UnstitchedOutput
from ..storage.dataset import DiskDataset4D
from .config import AnalysisConfig, clip_chunk_shape

__all__ = ["build_graph", "plan_chunks"]


def plan_chunks(
    dataset_shape: Tuple[int, ...], config: AnalysisConfig
) -> List[ChunkSpec]:
    """IIC-to-TEXTURE chunk plan for a dataset under this config."""
    roi = config.texture.roi
    chunk_shape = clip_chunk_shape(
        config.texture_chunk_shape, dataset_shape, config.texture.roi_shape
    )
    return partition(dataset_shape, roi, chunk_shape)


def build_graph(
    dataset: DiskDataset4D,
    config: AnalysisConfig,
    region_store=None,
) -> FilterGraph:
    """Build the filter network for one run over an opened dataset.

    ``region_store`` (a :class:`repro.regions.RegionStore`) is captured
    by the IIC filter factory: every run built from this graph stages
    its assembled chunks there and resolves ghost/overlap regions from
    it.  Passing a store shared across runs (as the service's warm
    pools do) makes re-assembly of unchanged chunks a pure region hit.
    """
    chunks = plan_chunks(dataset.shape, config)
    params = config.texture
    graph = FilterGraph()
    root = dataset.root
    n_iic = config.num_iic_copies

    graph.add_filter(
        "RFR",
        lambda: RawFileReader(
            dataset_root=root,
            chunks=chunks,
            num_iic_copies=n_iic,
            inplane_block=config.rfr_inplane_block,
        ),
        copies=dataset.num_nodes,
    )
    graph.add_filter(
        "IIC",
        lambda: InputImageConstructor(chunks=chunks, region_store=region_store),
        copies=n_iic,
    )
    graph.connect("RFR", "rfr2iic", "IIC", policy="explicit")

    if config.variant == "hmp":
        graph.add_filter(
            "HMP",
            lambda: HaralickMatrixProducer(params),
            copies=config.num_texture_copies,
        )
        graph.connect("IIC", "iic2tex", "HMP", policy=config.scheduling)
        tex_out = "HMP"
    else:
        graph.add_filter(
            "HCC",
            lambda: HaralickCoMatrixCalculator(params),
            copies=config.num_hcc_copies,
        )
        graph.add_filter(
            "HPC",
            lambda: HaralickParameterCalculator(params),
            copies=config.num_hpc_copies,
        )
        graph.connect("IIC", "iic2tex", "HCC", policy=config.scheduling)
        graph.connect("HCC", "hcc2hpc", "HPC", policy=config.scheduling)
        tex_out = "HPC"

    if config.output == "uso":
        graph.add_filter(
            "USO",
            lambda: UnstitchedOutput(config.output_dir, params.roi_shape),
            copies=config.num_uso_copies,
        )
        graph.connect(tex_out, "tex2out", "USO", policy=config.scheduling)
    else:
        with_images = config.output == "images"
        graph.add_filter(
            "HIC",
            lambda: HaralickImageConstructor(
                dataset_shape=dataset.shape,
                roi_shape=params.roi_shape,
                features=params.features,
                out_stream="hic2jiw" if with_images else None,
            ),
        )
        graph.connect(tex_out, "tex2out", "HIC", policy=config.scheduling)
        if with_images:
            graph.add_filter("JIW", lambda: JPGImageWriter(config.output_dir))
            graph.connect("HIC", "hic2jiw", "JIW")

    graph.validate()
    return graph

"""Configuration of one parallel Haralick texture analysis run.

Defaults reproduce the paper's experimental setup (Section 5.1):
5x5x5x3 ROI, 32 grey levels, the four expensive parameters,
50x50x32x32 IIC-to-TEXTURE chunks, whole-slice RFR-to-IIC chunks,
demand-driven buffer scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..datacutter.faults import RetryPolicy
from ..filters.messages import TextureParams
from ..regions.hierarchy import StagingPolicy

__all__ = ["AnalysisConfig", "clip_chunk_shape"]

VARIANTS = ("hmp", "split")
OUTPUTS = ("volumes", "images", "uso")


def clip_chunk_shape(
    chunk_shape: Tuple[int, ...],
    dataset_shape: Tuple[int, ...],
    roi_shape: Tuple[int, ...],
) -> Tuple[int, ...]:
    """Clip a requested chunk shape to the dataset, keeping ROIs viable."""
    out = []
    for c, s, r in zip(chunk_shape, dataset_shape, roi_shape):
        out.append(max(min(c, s), r))
    return tuple(out)


@dataclass(frozen=True)
class AnalysisConfig:
    """Everything a parallel run needs besides the dataset itself.

    Attributes
    ----------
    texture:
        Kernel parameters (ROI, grey levels, features, sparse mode...).
    variant:
        ``"hmp"`` for the combined filter, ``"split"`` for HCC + HPC
        (paper Figs. 4 and 5).
    texture_chunk_shape:
        Target IIC-to-TEXTURE chunk dimensions; clipped per dataset.
    num_texture_copies:
        HMP copies (``variant="hmp"``).
    num_hcc_copies, num_hpc_copies:
        Split-variant copy counts.  The paper keeps HCC:HPC near 4:1
        because HCC is 4-5x more expensive (Section 5.2).
    num_iic_copies, num_uso_copies:
        Stitch and output copy counts.
    scheduling:
        Buffer scheduling policy for the texture streams
        (``"demand_driven"`` or ``"round_robin"``).
    output:
        ``"volumes"`` deposits stitched volumes (HIC),
        ``"images"`` additionally writes PGM series (HIC + JIW),
        ``"uso"`` streams records to disk files (USO).
    output_dir:
        Directory for ``"images"`` / ``"uso"`` outputs.
    retry:
        Fault-tolerance policy for failed ``process()`` calls
        (:class:`~repro.datacutter.faults.RetryPolicy`); ``None`` uses
        the runtime default (3 attempts with backoff, reroute enabled).
    staging:
        Region-staging policy (:class:`~repro.regions.StagingPolicy`).
        When set, assembled IIC-to-TEXTURE chunks are staged through a
        :class:`~repro.regions.RegionStore` whose hierarchy this policy
        configures, and overlapping ghost regions are resolved from it
        instead of recomputed.  ``None`` (default) disables the region
        data layer entirely.
    """

    texture: TextureParams = field(default_factory=TextureParams)
    variant: str = "hmp"
    texture_chunk_shape: Tuple[int, ...] = (50, 50, 32, 32)
    rfr_inplane_block: Optional[Tuple[int, int]] = None
    num_texture_copies: int = 1
    num_hcc_copies: int = 1
    num_hpc_copies: int = 1
    num_iic_copies: int = 1
    num_uso_copies: int = 1
    scheduling: str = "demand_driven"
    output: str = "volumes"
    output_dir: Optional[str] = None
    retry: Optional[RetryPolicy] = None
    staging: Optional[StagingPolicy] = None

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise ValueError(f"variant must be one of {VARIANTS}, got {self.variant!r}")
        if self.output not in OUTPUTS:
            raise ValueError(f"output must be one of {OUTPUTS}, got {self.output!r}")
        if self.scheduling not in ("demand_driven", "round_robin"):
            raise ValueError(f"unsupported scheduling {self.scheduling!r}")
        for n in (
            self.num_texture_copies,
            self.num_hcc_copies,
            self.num_hpc_copies,
            self.num_iic_copies,
            self.num_uso_copies,
        ):
            if n < 1:
                raise ValueError("all copy counts must be >= 1")
        if len(self.texture_chunk_shape) != len(self.texture.roi_shape):
            raise ValueError("chunk shape dimensionality != ROI dimensionality")
        if self.output in ("images", "uso") and not self.output_dir:
            raise ValueError(f"output={self.output!r} requires output_dir")

    def with_copies(self, **kwargs) -> "AnalysisConfig":
        """Convenience: derive a config with different copy counts."""
        return replace(self, **kwargs)

    def paper_hcc_hpc_split(self, total_nodes: int) -> Tuple[int, int]:
        """The paper's 4:1 HCC:HPC node split (Section 5.2).

        E.g. 16 nodes -> 13 HCC + 3 HPC.
        """
        if total_nodes < 2:
            return 1, 1
        hpc = max(1, round(total_nodes / 5))
        return total_nodes - hpc, hpc

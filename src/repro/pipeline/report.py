"""Per-filter timing reports (the measurement behind paper Fig. 9)."""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..datacutter.obs import parse_metric_key
from ..datacutter.runtime_local import RunResult

__all__ = [
    "filter_breakdown",
    "format_breakdown",
    "format_metrics",
    "failure_summary",
]


def filter_breakdown(run: RunResult) -> Dict[str, Dict[str, float]]:
    """Summarize busy time per filter across its copies.

    Returns ``{filter: {copies, total, mean, max}}`` where ``total`` sums
    all copies' busy seconds, ``mean``/``max`` are per-copy statistics
    (the paper's Fig. 9 plots the per-filter processing time; ``max``
    approximates the critical-path contribution of a replicated filter).

    Built from the run's :mod:`repro.datacutter.obs` metrics snapshot
    (the ``busy_seconds{filter=...}`` histograms observe one value per
    copy), falling back to raw ``run.busy_time`` for results that carry
    no metrics.
    """
    hists = (run.metrics or {}).get("histograms", {})
    out: Dict[str, Dict[str, float]] = {}
    for key, h in hists.items():
        name, labels = parse_metric_key(key)
        if name != "busy_seconds" or "filter" not in labels:
            continue
        out[labels["filter"]] = {
            "copies": float(h["count"]),
            "total": h["sum"],
            "mean": h["mean"],
            "max": h["max"],
        }
    if out:
        return out
    per_filter: Dict[str, List[float]] = {}
    for (name, _copy), busy in run.busy_time.items():
        per_filter.setdefault(name, []).append(busy)
    for name, times in per_filter.items():
        out[name] = {
            "copies": float(len(times)),
            "total": sum(times),
            "mean": sum(times) / len(times),
            "max": max(times),
        }
    return out


def failure_summary(run: RunResult) -> Dict[str, object]:
    """Fault-tolerance accounting for one run.

    Returns ``{retries, reroutes, failed_copies, recovered_copies,
    failures}`` where ``failures`` is a list of human-readable per-copy
    failure descriptions.
    """
    return {
        "retries": run.retries,
        "reroutes": run.reroutes,
        "failed_copies": len(run.failed_copies),
        "recovered_copies": sum(1 for f in run.failed_copies if f.recovered),
        "failures": [f.describe() for f in run.failed_copies],
    }


def format_breakdown(run: RunResult, order: Tuple[str, ...] = ()) -> str:
    """Human-readable per-filter timing table (plus failure accounting)."""
    stats = filter_breakdown(run)
    names = [n for n in order if n in stats] + sorted(
        n for n in stats if n not in order
    )
    lines = [
        f"{'filter':<8} {'copies':>6} {'total(s)':>10} {'mean(s)':>10} {'max(s)':>10}"
    ]
    for name in names:
        s = stats[name]
        lines.append(
            f"{name:<8} {int(s['copies']):>6} {s['total']:>10.4f} "
            f"{s['mean']:>10.4f} {s['max']:>10.4f}"
        )
    lines.append(f"elapsed wall-clock: {run.elapsed:.4f}s")
    if run.retries or run.reroutes or run.failed_copies:
        lines.append(
            f"fault tolerance: {run.retries} retries, {run.reroutes} "
            f"rerouted buffers, {len(run.failed_copies)} failed copies"
        )
        for f in run.failed_copies:
            status = "recovered" if f.recovered else "fatal"
            lines.append(f"  [{status}] {f.describe()}")
    return "\n".join(lines)


def format_metrics(run: RunResult) -> str:
    """Flat, sorted dump of the run's metrics snapshot.

    One ``name{labels} = value`` line per instrument — counters as
    plain numbers, gauges as ``value (max ...)``, histograms as
    ``count/sum/mean/max``.
    """
    m = run.metrics or {}
    lines: List[str] = []
    for key in sorted(m.get("counters", {})):
        lines.append(f"{key} = {m['counters'][key]:g}")
    for key in sorted(m.get("gauges", {})):
        g = m["gauges"][key]
        lines.append(f"{key} = {g['value']:g} (max {g['max']:g})")
    for key in sorted(m.get("histograms", {})):
        h = m["histograms"][key]
        lines.append(
            f"{key} = count {h['count']} / sum {h['sum']:.6g} / "
            f"mean {h['mean']:.6g} / max {h['max']:.6g}"
        )
    return "\n".join(lines)

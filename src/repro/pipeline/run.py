"""End-to-end drivers for parallel Haralick texture analysis.

``run_pipeline`` executes the full filter network on the threaded local
runtime against a disk-resident dataset and returns the stitched output
volumes plus execution statistics.  It is the parallel counterpart of
:func:`repro.core.analysis.haralick_transform` and produces numerically
identical feature volumes.
"""

from __future__ import annotations

import glob
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from ..core.roi import valid_positions_shape
from ..datacutter.faults import FaultPlan, RetryPolicy
from ..datacutter.obs import Trace, format_summary, resolve_trace_mode
from ..datacutter.runtime_local import LocalRuntime, RunResult
from ..datacutter.runtime_mp import MPRuntime
from ..filters.uso import combine_uso_outputs
from ..storage.dataset import DiskDataset4D
from .builder import build_graph
from .config import AnalysisConfig

__all__ = ["PipelineResult", "run_pipeline"]


@dataclass
class PipelineResult:
    """Outcome of one parallel analysis run."""

    volumes: Dict[str, np.ndarray]
    run: RunResult
    config: AnalysisConfig

    @property
    def elapsed(self) -> float:
        return self.run.elapsed

    @property
    def trace(self) -> Optional[Trace]:
        """Trace events collected when the run was launched with tracing."""
        return self.run.trace

    @property
    def metrics(self) -> Dict[str, Dict[str, object]]:
        """Metrics snapshot of the underlying run."""
        return self.run.metrics


def _volumes_from_uso(
    dataset: DiskDataset4D, config: AnalysisConfig
) -> Dict[str, np.ndarray]:
    roi = config.texture.roi
    out_shape = valid_positions_shape(dataset.shape, roi)
    volumes = {}
    for name in config.texture.features:
        # Anchor the glob on the exact feature name: "asm_copy*" would
        # also swallow part files of a feature named "asm_mean".
        paths = sorted(
            glob.glob(os.path.join(config.output_dir, f"{name}_copy[0-9]*.uso"))
        )
        if not paths:
            raise FileNotFoundError(f"no USO output files for feature {name!r}")
        volumes[name] = combine_uso_outputs(paths, out_shape)
    return volumes


def run_pipeline(
    dataset_root: str,
    config: Optional[AnalysisConfig] = None,
    max_queue: int = 64,
    runtime: str = "threads",
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
    hosts: Optional[List[str]] = None,
    trace: Union[bool, str, None] = None,
    trace_out: Optional[str] = None,
    transport: str = "pipe",
    shm_segments: Optional[int] = None,
    shm_segment_bytes: Optional[int] = None,
    shm_threshold: Optional[int] = None,
    elastic: bool = False,
    schedule: Optional[list] = None,
    heartbeat_timeout: Optional[float] = None,
    run_timeout: Optional[float] = None,
) -> PipelineResult:
    """Run the parallel pipeline over a disk-resident dataset.

    Parameters
    ----------
    dataset_root:
        Directory of a dataset written by
        :func:`repro.storage.write_dataset`.
    config:
        Run configuration; paper defaults if omitted.
    max_queue:
        Bound on each filter copy's input queue (backpressure).
    runtime:
        ``"threads"`` (default, :class:`LocalRuntime`),
        ``"processes"`` (:class:`MPRuntime` — one OS process per filter
        copy, buffers serialized between them), or ``"distributed"``
        (:class:`~repro.datacutter.net.DistRuntime` — one worker agent
        per host, buffers framed over TCP by the zero-copy wire codec).
    retry:
        Fault-tolerance policy; overrides ``config.retry``.  ``None``
        falls back to the config's, then to the runtime default.
    faults:
        Optional :class:`~repro.datacutter.faults.FaultPlan` injecting
        failures (testing / resilience experiments).
    hosts:
        Distributed runtime only: one entry per worker agent.  Loopback
        entries spawn local agent processes, so ``["127.0.0.1"] * 3``
        (the default) runs the full TCP stack on this machine.
    trace:
        Observability mode (see :mod:`repro.datacutter.obs`).  ``None``
        or ``False`` disables tracing (near-zero overhead); ``True`` or
        ``"events"`` collects events on ``result.trace``; ``"chrome"``
        additionally writes a Chrome/Perfetto trace file; ``"jsonl"``
        writes flat JSON lines; ``"live"`` prints a terminal summary
        after the run.
    trace_out:
        Output path for the ``"chrome"`` / ``"jsonl"`` modes (defaults
        to ``trace.json`` / ``trace.jsonl``).
    transport:
        ``runtime="processes"`` only: ``"pipe"`` (default) copies every
        payload through OS pipes; ``"shm"`` hands large ndarray payloads
        over via a shared-memory slab pool — the pipe then carries only
        descriptors, and the run reports ``RunResult.shm_bytes``.
    shm_segments / shm_segment_bytes / shm_threshold:
        ``transport="shm"`` pool geometry overrides (slab count, slab
        size, minimum payload size for the slab path); ``None`` keeps
        the :class:`MPRuntime` defaults.
    elastic:
        Distributed runtime only: keep the head's listener open so
        agents can join the run live (``DistRuntime.add_agent`` / a
        scheduled :class:`~repro.datacutter.faults.JoinAgent`).
    schedule:
        Distributed runtime only: a list of
        :class:`~repro.datacutter.faults.JoinAgent` /
        :class:`~repro.datacutter.faults.DrainAgent` membership actions
        fired at their ``at`` offsets after dispatch starts.
    heartbeat_timeout:
        Distributed runtime only: seconds of agent silence before it is
        declared dead.  ``None`` reads ``REPRO_DIST_HEARTBEAT_TIMEOUT``
        and falls back to 5 seconds.
    run_timeout:
        Wall-clock bound on the run itself (any runtime); the run
        aborts with :class:`~repro.datacutter.faults.PipelineError`
        when exceeded.  ``None`` (default) means unbounded.

    Returns
    -------
    :class:`PipelineResult` with one stitched volume per feature.
    """
    config = config or AnalysisConfig()
    mode = resolve_trace_mode(trace)
    if trace_out is not None and mode not in ("chrome", "jsonl"):
        raise ValueError("trace_out= requires trace='chrome' or 'jsonl'")
    if hosts is not None and runtime != "distributed":
        raise ValueError(f"hosts= only applies to runtime='distributed', "
                         f"not {runtime!r}")
    if transport != "pipe" and runtime != "processes":
        raise ValueError(f"transport={transport!r} only applies to "
                         f"runtime='processes', not {runtime!r}")
    if runtime != "distributed":
        if elastic:
            raise ValueError("elastic= only applies to "
                             "runtime='distributed'")
        if schedule:
            raise ValueError("schedule= only applies to "
                             "runtime='distributed'")
        if heartbeat_timeout is not None:
            raise ValueError("heartbeat_timeout= only applies to "
                             "runtime='distributed'")
    dataset = DiskDataset4D.open(dataset_root)
    graph = build_graph(dataset, config)
    retry = retry if retry is not None else config.retry
    tracing = mode is not None
    if runtime == "threads":
        run = LocalRuntime(
            graph, max_queue=max_queue, retry=retry, faults=faults,
            trace=tracing,
        ).run(timeout=run_timeout)
    elif runtime == "processes":
        shm_kwargs = {
            k: v
            for k, v in (
                ("shm_segments", shm_segments),
                ("shm_segment_bytes", shm_segment_bytes),
                ("shm_threshold", shm_threshold),
            )
            if v is not None
        }
        run = MPRuntime(
            graph, max_queue=max_queue, retry=retry, faults=faults,
            trace=tracing, transport=transport, **shm_kwargs,
        ).run(timeout=run_timeout)
    elif runtime == "distributed":
        from ..datacutter.net import DistRuntime

        run = DistRuntime(
            graph,
            hosts=hosts if hosts is not None else ["127.0.0.1"] * 3,
            max_queue=max_queue,
            retry=retry,
            faults=faults,
            trace=tracing,
            elastic=elastic,
            schedule=schedule,
            heartbeat_timeout=heartbeat_timeout,
        ).run(timeout=run_timeout)
    else:
        raise ValueError(f"unknown runtime {runtime!r}")

    if run.trace is not None:
        if mode == "chrome":
            run.trace.to_chrome(trace_out or "trace.json")
        elif mode == "jsonl":
            run.trace.to_jsonl(trace_out or "trace.jsonl")
        elif mode == "live":
            print(format_summary(run.trace.events))

    if config.output == "uso":
        volumes = _volumes_from_uso(dataset, config)
    else:
        deposits = run.deposits("volumes")
        if len(deposits) != 1:
            raise RuntimeError(
                f"expected exactly one stitched volume set, got {len(deposits)}"
            )
        volumes = deposits[0]
    return PipelineResult(volumes=volumes, run=run, config=config)

"""End-to-end drivers for parallel Haralick texture analysis.

``run_pipeline`` executes the full filter network on the threaded local
runtime against a disk-resident dataset and returns the stitched output
volumes plus execution statistics.  It is the parallel counterpart of
:func:`repro.core.analysis.haralick_transform` and produces numerically
identical feature volumes.

The driver is factored into three phases so long-lived callers — most
importantly the warm runtime pools of :mod:`repro.service` — can hold on
to the expensive middle state instead of rebuilding it per request:

* **build** — :func:`prepare_pipeline` opens the dataset and wires the
  validated filter graph; :func:`build_runtime` constructs (and
  validates the arguments of) the execution backend for that graph.
* **execute** — :func:`execute_pipeline` runs a built runtime once and
  stitches the output volumes.  A runtime may be executed many times;
  each ``run()`` is fully self-contained.
* **teardown** — every runtime is a context manager; ``close()``
  aborts anything in flight and releases child processes, sockets and
  shared-memory segments.  ``run_pipeline`` drives its runtime inside a
  ``with`` block, so no exception path can leak them.
"""

from __future__ import annotations

import glob
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from ..core.roi import valid_positions_shape
from ..datacutter.faults import FaultPlan, RetryPolicy
from ..datacutter.graph import FilterGraph
from ..datacutter.obs import Trace, format_summary, resolve_trace_mode
from ..datacutter.runtime_local import LocalRuntime, RunResult
from ..datacutter.runtime_mp import MPRuntime
from ..filters.uso import combine_uso_outputs
from ..regions import RegionStore
from ..storage.dataset import DiskDataset4D
from .builder import build_graph
from .config import AnalysisConfig

__all__ = [
    "PipelineResult",
    "PreparedPipeline",
    "prepare_pipeline",
    "build_runtime",
    "execute_pipeline",
    "run_pipeline",
]

RUNTIMES = ("threads", "processes", "distributed")


@dataclass
class PipelineResult:
    """Outcome of one parallel analysis run."""

    volumes: Dict[str, np.ndarray]
    run: RunResult
    config: AnalysisConfig

    @property
    def elapsed(self) -> float:
        return self.run.elapsed

    @property
    def trace(self) -> Optional[Trace]:
        """Trace events collected when the run was launched with tracing."""
        return self.run.trace

    @property
    def metrics(self) -> Dict[str, Dict[str, object]]:
        """Metrics snapshot of the underlying run."""
        return self.run.metrics


@dataclass
class PreparedPipeline:
    """The build-phase product: an opened dataset plus its wired graph.

    Immutable across executions — the same prepared pipeline can back
    any number of runs (the graph's filter factories construct fresh
    filter instances per run).  The one piece of mutable state is the
    optional ``region_store``: filter factories capture it, so chunks
    staged by one execution are resolvable by the next — that is what
    makes warm-pool reruns region hits.  Call :meth:`close` (or close
    the store) when the pipeline is retired.
    """

    dataset: DiskDataset4D
    graph: FilterGraph
    config: AnalysisConfig
    region_store: Optional["RegionStore"] = None

    def close(self) -> None:
        if self.region_store is not None:
            self.region_store.close()


def prepare_pipeline(
    dataset_root: str,
    config: Optional[AnalysisConfig] = None,
    region_store: Optional["RegionStore"] = None,
) -> PreparedPipeline:
    """Build phase: open the dataset and wire the validated filter graph.

    When ``config.staging`` is set and no explicit ``region_store`` is
    given, a store is created from that policy and owned by the returned
    pipeline (closed by :meth:`PreparedPipeline.close`).
    """
    config = config or AnalysisConfig()
    dataset = DiskDataset4D.open(dataset_root)
    if region_store is None and config.staging is not None:
        region_store = RegionStore.from_policy(config.staging)
    graph = build_graph(dataset, config, region_store=region_store)
    return PreparedPipeline(
        dataset=dataset, graph=graph, config=config, region_store=region_store
    )


def _validate_backend_kwargs(
    runtime, transport, hosts, elastic, schedule, heartbeat_timeout
) -> None:
    """Cross-argument rules shared by build_runtime and run_pipeline.

    run_pipeline applies them *before* preparing the dataset, so a bad
    argument combination is reported even when the dataset or config
    would also fail to validate.
    """
    if hosts is not None and runtime != "distributed":
        raise ValueError(f"hosts= only applies to runtime='distributed', "
                         f"not {runtime!r}")
    if transport != "pipe" and runtime != "processes":
        raise ValueError(f"transport={transport!r} only applies to "
                         f"runtime='processes', not {runtime!r}")
    if runtime != "distributed":
        if elastic:
            raise ValueError("elastic= only applies to "
                             "runtime='distributed'")
        if schedule:
            raise ValueError("schedule= only applies to "
                             "runtime='distributed'")
        if heartbeat_timeout is not None:
            raise ValueError("heartbeat_timeout= only applies to "
                             "runtime='distributed'")


def _resolve_autotune(autotune):
    """Normalize an ``autotune=`` argument to bounds or ``None``.

    ``None``/``False`` disable online adaptation (the default); ``True``
    enables it with stock :class:`~repro.tuning.AdaptationBounds`; an
    ``AdaptationBounds`` instance is used as-is.
    """
    if autotune is None or autotune is False:
        return None
    from ..tuning import AdaptationBounds

    if autotune is True:
        return AdaptationBounds()
    if isinstance(autotune, AdaptationBounds):
        return autotune
    raise ValueError(
        f"autotune= must be True/False/None or AdaptationBounds, "
        f"got {autotune!r}"
    )


def build_runtime(
    graph: FilterGraph,
    runtime: str = "threads",
    max_queue: int = 64,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
    trace: bool = False,
    transport: str = "pipe",
    shm_segments: Optional[int] = None,
    shm_segment_bytes: Optional[int] = None,
    shm_threshold: Optional[int] = None,
    shm_pool=None,
    hosts: Optional[List[str]] = None,
    elastic: bool = False,
    schedule: Optional[list] = None,
    heartbeat_timeout: Optional[float] = None,
    poll_interval: Optional[float] = None,
    wakeup: Optional[str] = None,
    autotune=None,
):
    """Build phase: construct the execution backend for a wired graph.

    Validates the cross-argument rules (``transport=`` only for the
    processes runtime, ``hosts=``/``elastic=``/... only for the
    distributed one) and returns a runtime object ready to ``run()``.
    The returned runtime is a context manager; callers that do not hold
    it in a pool should drive it inside a ``with`` block.

    ``poll_interval`` sets the watchdog granularity of every blocking
    wait (all three backends); ``wakeup`` selects event-driven (default)
    or legacy polled wakeups (threads/processes); ``autotune`` enables
    the online controller (processes runtime only — see
    :mod:`repro.tuning`).
    """
    _validate_backend_kwargs(
        runtime, transport, hosts, elastic, schedule, heartbeat_timeout
    )
    bounds = _resolve_autotune(autotune)
    if bounds is not None and runtime != "processes":
        raise ValueError(
            "autotune= requires runtime='processes' (the online "
            "controller adapts MPRuntime edges)"
        )
    if wakeup is not None and runtime == "distributed":
        raise ValueError(
            "wakeup= only applies to the threads/processes runtimes"
        )
    if runtime == "threads":
        return LocalRuntime(
            graph, max_queue=max_queue, retry=retry, faults=faults,
            trace=trace, poll_interval=poll_interval,
            **({"wakeup": wakeup} if wakeup is not None else {}),
        )
    if runtime == "processes":
        shm_kwargs = {
            k: v
            for k, v in (
                ("shm_segments", shm_segments),
                ("shm_segment_bytes", shm_segment_bytes),
                ("shm_threshold", shm_threshold),
                ("shm_pool", shm_pool),
            )
            if v is not None
        }
        if wakeup is not None:
            shm_kwargs["wakeup"] = wakeup
        return MPRuntime(
            graph, max_queue=max_queue, retry=retry, faults=faults,
            trace=trace, transport=transport, poll_interval=poll_interval,
            autotune=bounds, **shm_kwargs,
        )
    if runtime == "distributed":
        from ..datacutter.net import DistRuntime

        return DistRuntime(
            graph,
            hosts=hosts if hosts is not None else ["127.0.0.1"] * 3,
            max_queue=max_queue,
            retry=retry,
            faults=faults,
            trace=trace,
            elastic=elastic,
            schedule=schedule,
            heartbeat_timeout=heartbeat_timeout,
            poll_interval=poll_interval,
        )
    raise ValueError(f"unknown runtime {runtime!r}")


def _volumes_from_uso(
    dataset: DiskDataset4D, config: AnalysisConfig
) -> Dict[str, np.ndarray]:
    roi = config.texture.roi
    out_shape = valid_positions_shape(dataset.shape, roi)
    volumes = {}
    for name in config.texture.features:
        # Anchor the glob on the exact feature name: "asm_copy*" would
        # also swallow part files of a feature named "asm_mean".
        paths = sorted(
            glob.glob(os.path.join(config.output_dir, f"{name}_copy[0-9]*.uso"))
        )
        if not paths:
            raise FileNotFoundError(f"no USO output files for feature {name!r}")
        volumes[name] = combine_uso_outputs(paths, out_shape)
    return volumes


def collect_volumes(
    prepared: PreparedPipeline, run: RunResult
) -> Dict[str, np.ndarray]:
    """Stitch one run's output volumes according to the config's mode."""
    if prepared.config.output == "uso":
        return _volumes_from_uso(prepared.dataset, prepared.config)
    deposits = run.deposits("volumes")
    if len(deposits) != 1:
        raise RuntimeError(
            f"expected exactly one stitched volume set, got {len(deposits)}"
        )
    return deposits[0]


def execute_pipeline(
    prepared: PreparedPipeline,
    rt,
    run_timeout: Optional[float] = None,
    trace: Union[bool, str, None] = None,
    trace_out: Optional[str] = None,
) -> PipelineResult:
    """Execute phase: run a built runtime once and stitch its outputs.

    ``trace`` here only selects the *exporter* for the events the
    runtime collected (the runtime itself must have been built with
    ``trace=True`` for any events to exist); ``None`` leaves the trace
    attached to the result without exporting.
    """
    mode = resolve_trace_mode(trace)
    run = rt.run(timeout=run_timeout)
    if run.trace is not None:
        if mode == "chrome":
            run.trace.to_chrome(trace_out or "trace.json")
        elif mode == "jsonl":
            run.trace.to_jsonl(trace_out or "trace.jsonl")
        elif mode == "live":
            print(format_summary(run.trace.events))
    volumes = collect_volumes(prepared, run)
    return PipelineResult(volumes=volumes, run=run, config=prepared.config)


def run_pipeline(
    dataset_root: str,
    config: Optional[AnalysisConfig] = None,
    max_queue: int = 64,
    runtime: str = "threads",
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
    hosts: Optional[List[str]] = None,
    trace: Union[bool, str, None] = None,
    trace_out: Optional[str] = None,
    transport: str = "pipe",
    shm_segments: Optional[int] = None,
    shm_segment_bytes: Optional[int] = None,
    shm_threshold: Optional[int] = None,
    elastic: bool = False,
    schedule: Optional[list] = None,
    heartbeat_timeout: Optional[float] = None,
    run_timeout: Optional[float] = None,
    profile=None,
    poll_interval: Optional[float] = None,
    wakeup: Optional[str] = None,
    autotune=None,
) -> PipelineResult:
    """Run the parallel pipeline over a disk-resident dataset.

    One-shot composition of the three phases: prepare the dataset and
    graph, build the runtime, execute it once inside a ``with`` block
    (so the runtime is torn down on every exception path), and stitch
    the outputs.  Long-lived callers that want to reuse the build
    products across many executions use the phase functions directly —
    see :class:`repro.service.AnalysisService`.

    Parameters
    ----------
    dataset_root:
        Directory of a dataset written by
        :func:`repro.storage.write_dataset`.
    config:
        Run configuration; paper defaults if omitted.
    max_queue:
        Bound on each filter copy's input queue (backpressure).
    runtime:
        ``"threads"`` (default, :class:`LocalRuntime`),
        ``"processes"`` (:class:`MPRuntime` — one OS process per filter
        copy, buffers serialized between them), or ``"distributed"``
        (:class:`~repro.datacutter.net.DistRuntime` — one worker agent
        per host, buffers framed over TCP by the zero-copy wire codec).
    retry:
        Fault-tolerance policy; overrides ``config.retry``.  ``None``
        falls back to the config's, then to the runtime default.
    faults:
        Optional :class:`~repro.datacutter.faults.FaultPlan` injecting
        failures (testing / resilience experiments).
    hosts:
        Distributed runtime only: one entry per worker agent.  Loopback
        entries spawn local agent processes, so ``["127.0.0.1"] * 3``
        (the default) runs the full TCP stack on this machine.
    trace:
        Observability mode (see :mod:`repro.datacutter.obs`).  ``None``
        or ``False`` disables tracing (near-zero overhead); ``True`` or
        ``"events"`` collects events on ``result.trace``; ``"chrome"``
        additionally writes a Chrome/Perfetto trace file; ``"jsonl"``
        writes flat JSON lines; ``"live"`` prints a terminal summary
        after the run.
    trace_out:
        Output path for the ``"chrome"`` / ``"jsonl"`` modes (defaults
        to ``trace.json`` / ``trace.jsonl``).
    transport:
        ``runtime="processes"`` only: ``"pipe"`` (default) copies every
        payload through OS pipes; ``"shm"`` hands large ndarray payloads
        over via a shared-memory slab pool — the pipe then carries only
        descriptors, and the run reports ``RunResult.shm_bytes``.
    shm_segments / shm_segment_bytes / shm_threshold:
        ``transport="shm"`` pool geometry overrides (slab count, slab
        size, minimum payload size for the slab path); ``None`` keeps
        the :class:`MPRuntime` defaults.
    elastic:
        Distributed runtime only: keep the head's listener open so
        agents can join the run live (``DistRuntime.add_agent`` / a
        scheduled :class:`~repro.datacutter.faults.JoinAgent`).
    schedule:
        Distributed runtime only: a list of
        :class:`~repro.datacutter.faults.JoinAgent` /
        :class:`~repro.datacutter.faults.DrainAgent` membership actions
        fired at their ``at`` offsets after dispatch starts.
    heartbeat_timeout:
        Distributed runtime only: seconds of agent silence before it is
        declared dead.  ``None`` reads ``REPRO_DIST_HEARTBEAT_TIMEOUT``
        and falls back to 5 seconds.
    run_timeout:
        Wall-clock bound on the run itself (any runtime); the run
        aborts with :class:`~repro.datacutter.faults.PipelineError`
        when exceeded.  ``None`` (default) means unbounded.
    profile:
        A :class:`~repro.tuning.TuningProfile` (or a path to one saved
        by ``repro tune``).  The profile's chunk shape / copy counts /
        kernel are applied to ``config``, and its transport / queue
        bound / runtime fill in any of those arguments still at their
        defaults (arguments you pass explicitly always win).
    poll_interval:
        Watchdog granularity (seconds) for every blocking wait in the
        chosen runtime.  With event-driven wakeups (the default) this
        only bounds how long a *missed* wakeup could stall progress, so
        large values are safe; under ``wakeup="polled"`` it is the
        latency floor of every queue hand-off.
    wakeup:
        ``"event"`` (default) or ``"polled"`` — threads/processes
        runtimes only.  ``"polled"`` restores the legacy fixed-tick
        busy-wait loops; it exists for benchmarking the latency delta
        (see ``benchmarks/bench_tuning.py``).
    autotune:
        ``True`` or an :class:`~repro.tuning.AdaptationBounds` enables
        the online controller (processes runtime only): a sampler
        thread reads queue-depth gauges mid-run and adapts per-edge
        credit windows and active-copy masks within bounds, emitting
        ``tune.adjust`` events.  Off by default; outputs stay
        bit-identical either way.

    Returns
    -------
    :class:`PipelineResult` with one stitched volume per feature.
    """
    mode = resolve_trace_mode(trace)
    if trace_out is not None and mode not in ("chrome", "jsonl"):
        raise ValueError("trace_out= requires trace='chrome' or 'jsonl'")
    if profile is not None:
        from ..tuning import TuningProfile, load_profile

        prof = (
            profile
            if isinstance(profile, TuningProfile)
            else load_profile(profile)
        )
        config = prof.apply(config if config is not None else AnalysisConfig())
        pk = prof.runtime_kwargs()
        # Profile values only fill arguments the caller left at their
        # defaults — explicit arguments always win.
        if "runtime" in pk and runtime == "threads":
            runtime = pk["runtime"]
        if "transport" in pk and transport == "pipe":
            transport = pk["transport"]
        if "max_queue" in pk and max_queue == 64:
            max_queue = pk["max_queue"]
    _validate_backend_kwargs(
        runtime, transport, hosts, elastic, schedule, heartbeat_timeout
    )
    prepared = prepare_pipeline(dataset_root, config)
    retry = retry if retry is not None else prepared.config.retry
    rt = build_runtime(
        prepared.graph,
        runtime=runtime,
        max_queue=max_queue,
        retry=retry,
        faults=faults,
        trace=mode is not None,
        transport=transport,
        shm_segments=shm_segments,
        shm_segment_bytes=shm_segment_bytes,
        shm_threshold=shm_threshold,
        hosts=hosts,
        elastic=elastic,
        schedule=schedule,
        heartbeat_timeout=heartbeat_timeout,
        poll_interval=poll_interval,
        wakeup=wakeup,
        autotune=autotune,
    )
    try:
        with rt:
            return execute_pipeline(
                prepared, rt, run_timeout=run_timeout, trace=trace,
                trace_out=trace_out,
            )
    finally:
        # One-shot runs own their region store (if config.staging asked
        # for one); long-lived callers manage PreparedPipeline.close().
        prepared.close()

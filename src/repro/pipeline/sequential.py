"""Sequential out-of-core analysis of a disk-resident dataset.

For users without a cluster (or threads): processes a dataset chunk by
chunk in one process, holding at most one IIC-to-TEXTURE chunk plus the
output volumes in memory.  Numerically identical to both the in-memory
``haralick_transform`` and the parallel pipelines; useful as a baseline
and for datasets that merely exceed RAM rather than patience.

Both entry points take an optional :class:`~repro.datacutter.obs.Tracer`
and emit the same chunk-lifecycle events (``chunk.read`` →
``chunk.stitch`` → ``chunk.cooccur``/``chunk.features`` →
``chunk.write``) as the parallel runtimes, under the synthetic filter
name ``"SEQ"`` — so one trace schema describes every execution mode.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..chunks.chunking import ChunkSpec
from ..chunks.stitch import OutputStitcher
from ..core.raster import raster_scan
from ..datacutter.obs import Tracer
from ..regions import RegionStore, read_chunk_staged
from ..storage.dataset import DiskDataset4D
from .builder import plan_chunks
from .config import AnalysisConfig

__all__ = ["transform_disk_dataset", "iter_chunk_features"]

#: Filter name stamped on sequential trace events.
SEQ_FILTER = "SEQ"


def _read_chunk(dataset: DiskDataset4D, chunk: ChunkSpec) -> np.ndarray:
    return dataset.read_chunk(
        (chunk.lo[0], chunk.hi[0]),
        (chunk.lo[1], chunk.hi[1]),
        (chunk.lo[2], chunk.hi[2]),
        (chunk.lo[3], chunk.hi[3]),
    )


def iter_chunk_features(
    dataset: DiskDataset4D,
    config: AnalysisConfig,
    tracer: Optional[Tracer] = None,
    region_store: Optional[RegionStore] = None,
) -> Iterator[Tuple[ChunkSpec, Dict[str, np.ndarray]]]:
    """Yield ``(chunk, local feature volumes)`` one chunk at a time.

    The local volumes cover the chunk's full scan grid (including
    overlap positions); use :meth:`ChunkSpec.local_own_slices` to select
    the owned region.  Memory high-water mark is one chunk's input plus
    its outputs.

    With a ``region_store``, chunk input is read through
    :func:`repro.regions.read_chunk_staged`: ghost voxels shared with
    already-staged neighbour chunks are served from the store's tier
    hierarchy and only the uncovered remainder touches disk — in
    raster order every chunk after the first resolves its overlap, so
    disk bytes drop below a plain chunk-by-chunk sweep.
    """
    params = config.texture

    def emit(kind: str, chunk: ChunkSpec, dur: float, **attrs) -> None:
        if tracer is not None:
            tracer.emit(
                kind, filter=SEQ_FILTER, copy=0, dur=dur,
                chunk=chunk.index, **attrs,
            )

    for chunk in plan_chunks(dataset.shape, config):
        t0 = time.perf_counter()
        if region_store is not None:
            data, staged = read_chunk_staged(dataset, chunk, region_store)
            if tracer is not None:
                for tier, nbytes in staged.hit_bytes_by_tier.items():
                    tracer.emit(
                        "region.hit", filter=SEQ_FILTER, copy=0,
                        chunk=chunk.index, tier=tier, bytes=int(nbytes),
                    )
                tracer.emit(
                    "region.stage", filter=SEQ_FILTER, copy=0,
                    chunk=chunk.index, tier=staged.staged_tier or "dropped",
                    bytes=int(data.nbytes),
                    tier_bytes=region_store.occupancy(),
                )
        else:
            data = _read_chunk(dataset, chunk)
        emit("chunk.read", chunk, time.perf_counter() - t0,
             bytes=int(data.nbytes))
        # Quantization stands in for the parallel IIC's assembly step:
        # it is the last thing that happens to the input chunk before
        # the texture scan.
        t0 = time.perf_counter()
        q = params.quantize(data)
        emit("chunk.stitch", chunk, time.perf_counter() - t0,
             bytes=int(q.nbytes))
        t0 = time.perf_counter()
        local = raster_scan(
            q,
            params.roi,
            params.levels,
            features=params.features,
            distance=params.distance,
            kernel=params.kernel,
        )
        dt = time.perf_counter() - t0
        # raster_scan fuses co-occurrence and feature computation; split
        # the span evenly so both lifecycle stages appear per chunk.
        emit("chunk.cooccur", chunk, dt / 2.0)
        emit("chunk.features", chunk, dt / 2.0)
        yield chunk, local


def transform_disk_dataset(
    dataset_root: str,
    config: Optional[AnalysisConfig] = None,
    tracer: Optional[Tracer] = None,
    region_store: Optional[RegionStore] = None,
) -> Dict[str, np.ndarray]:
    """Full sequential out-of-core run; returns stitched feature volumes.

    ``config.staging`` (or an explicit ``region_store``) routes chunk
    reads through the region data layer; a store created here from the
    config is closed before returning.
    """
    config = config or AnalysisConfig()
    dataset = DiskDataset4D.open(dataset_root)
    owned_store = None
    if region_store is None and config.staging is not None:
        region_store = owned_store = RegionStore.from_policy(config.staging)
    try:
        return _transform(dataset, config, tracer, region_store)
    finally:
        if owned_store is not None:
            owned_store.close()


def _transform(
    dataset: DiskDataset4D,
    config: AnalysisConfig,
    tracer: Optional[Tracer],
    region_store: Optional[RegionStore],
) -> Dict[str, np.ndarray]:
    stitcher = OutputStitcher(
        dataset.shape, config.texture.roi, config.texture.features
    )
    for chunk, local in iter_chunk_features(
        dataset, config, tracer=tracer, region_store=region_store
    ):
        t0 = time.perf_counter()
        stitcher.place(chunk, local)
        if tracer is not None:
            own = chunk.local_own_slices(config.texture.roi)
            records = 1
            for s in own:
                records *= s.stop - s.start
            tracer.emit(
                "chunk.write",
                filter=SEQ_FILTER,
                copy=0,
                dur=time.perf_counter() - t0,
                chunk=chunk.index,
                records=int(records) * len(config.texture.features),
            )
    return stitcher.result()

"""Sequential out-of-core analysis of a disk-resident dataset.

For users without a cluster (or threads): processes a dataset chunk by
chunk in one process, holding at most one IIC-to-TEXTURE chunk plus the
output volumes in memory.  Numerically identical to both the in-memory
``haralick_transform`` and the parallel pipelines; useful as a baseline
and for datasets that merely exceed RAM rather than patience.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..chunks.chunking import ChunkSpec
from ..chunks.stitch import OutputStitcher
from ..core.raster import raster_scan
from ..storage.dataset import DiskDataset4D
from .builder import plan_chunks
from .config import AnalysisConfig

__all__ = ["transform_disk_dataset", "iter_chunk_features"]


def _read_chunk(dataset: DiskDataset4D, chunk: ChunkSpec) -> np.ndarray:
    return dataset.read_chunk(
        (chunk.lo[0], chunk.hi[0]),
        (chunk.lo[1], chunk.hi[1]),
        (chunk.lo[2], chunk.hi[2]),
        (chunk.lo[3], chunk.hi[3]),
    )


def iter_chunk_features(
    dataset: DiskDataset4D, config: AnalysisConfig
) -> Iterator[Tuple[ChunkSpec, Dict[str, np.ndarray]]]:
    """Yield ``(chunk, local feature volumes)`` one chunk at a time.

    The local volumes cover the chunk's full scan grid (including
    overlap positions); use :meth:`ChunkSpec.local_own_slices` to select
    the owned region.  Memory high-water mark is one chunk's input plus
    its outputs.
    """
    params = config.texture
    for chunk in plan_chunks(dataset.shape, config):
        data = _read_chunk(dataset, chunk)
        q = params.quantize(data)
        local = raster_scan(
            q,
            params.roi,
            params.levels,
            features=params.features,
            distance=params.distance,
            kernel=params.kernel,
        )
        yield chunk, local


def transform_disk_dataset(
    dataset_root: str, config: Optional[AnalysisConfig] = None
) -> Dict[str, np.ndarray]:
    """Full sequential out-of-core run; returns stitched feature volumes."""
    config = config or AnalysisConfig()
    dataset = DiskDataset4D.open(dataset_root)
    stitcher = OutputStitcher(
        dataset.shape, config.texture.roi, config.texture.features
    )
    for chunk, local in iter_chunk_features(dataset, config):
        stitcher.place(chunk, local)
    return stitcher.result()

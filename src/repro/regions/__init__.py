"""Region-template data layer: named 4-D regions over a storage hierarchy.

The package follows the Region Templates design (Teodoro et al., same
Saltz/Kurc lineage as the source paper): callers address data by
*(template name, extent)* instead of by buffer, and an explicit storage
hierarchy — RAM → shared-memory slabs → disk spill → remote stub —
decides where the bytes live under pluggable staging/eviction policies.
See ``docs/data-layer.md`` for the guided tour.
"""

from .hierarchy import (
    DROPPED,
    Eviction,
    StageReport,
    StagingPolicy,
    StorageHierarchy,
    format_staging,
    parse_staging,
)
from .staging import (
    CHUNK_TEMPLATE,
    StagedRead,
    chunk_extent,
    ensure_chunk_template,
    read_chunk_staged,
)
from .store import RegionStore, ResolveHit, StoreStats
from .template import RegionExtent, RegionTemplate, region_key
from .tiers import (
    TIER_DISK,
    TIER_RAM,
    TIER_REMOTE,
    TIER_SHM,
    DiskTier,
    InMemoryRemoteClient,
    RamTier,
    RemoteStorageClient,
    RemoteTier,
    ShmTier,
    StorageTier,
)

__all__ = [
    "RegionExtent",
    "RegionTemplate",
    "region_key",
    "StorageTier",
    "RamTier",
    "ShmTier",
    "DiskTier",
    "RemoteTier",
    "RemoteStorageClient",
    "InMemoryRemoteClient",
    "TIER_RAM",
    "TIER_SHM",
    "TIER_DISK",
    "TIER_REMOTE",
    "StagingPolicy",
    "parse_staging",
    "format_staging",
    "StorageHierarchy",
    "StageReport",
    "Eviction",
    "DROPPED",
    "RegionStore",
    "ResolveHit",
    "StoreStats",
    "StagedRead",
    "chunk_extent",
    "ensure_chunk_template",
    "read_chunk_staged",
    "CHUNK_TEMPLATE",
]

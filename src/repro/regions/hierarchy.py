"""The multi-level storage hierarchy and its staging/eviction policy.

A :class:`StorageHierarchy` stacks tiers fastest-first (RAM → shm →
disk → remote) and moves payloads between them under an explicit
policy:

* **stage** — a region is placed in the highest tier that takes it; a
  full tier makes room by evicting its least-recently-used region and
  *demoting* it one level down (spill), cascading until a tier has room
  or the last tier drops the victim.
* **fetch** — tiers are probed top-down; a hit below the top can be
  *promoted* back up (``promote_on_hit``), paying one copy now to make
  the next fetch a RAM hit.
* **evict** — explicit removal, used when a caller knows a region is
  dead.

The policy is a small frozen dataclass (:class:`StagingPolicy`) so it
can ride inside :class:`repro.pipeline.AnalysisConfig` and hash into
the service's pool keys; :func:`parse_staging` turns the CLI's
``--staging ram=64M,disk=1G`` spec into one.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .tiers import (
    DiskTier,
    RamTier,
    RemoteStorageClient,
    RemoteTier,
    ShmTier,
    StorageTier,
)

__all__ = [
    "StagingPolicy",
    "parse_staging",
    "format_staging",
    "StorageHierarchy",
    "StageReport",
    "Eviction",
    "DROPPED",
]

#: Destination label of an eviction that fell off the last tier.
DROPPED = "dropped"

_UNITS = {"": 1, "k": 1 << 10, "m": 1 << 20, "g": 1 << 30, "t": 1 << 40}


def _parse_bytes(text: str) -> int:
    m = re.fullmatch(r"(\d+(?:\.\d+)?)\s*([kKmMgGtT]?)[bB]?", text.strip())
    if not m:
        raise ValueError(f"cannot parse byte size {text!r}")
    return int(float(m.group(1)) * _UNITS[m.group(2).lower()])


@dataclass(frozen=True)
class StagingPolicy:
    """Tier budgets and movement rules of one hierarchy.

    ``ram_bytes`` is the top-tier budget (the out-of-core knob: cap it
    below the dataset size and staging spills instead of growing).
    ``shm_bytes``/``disk_bytes`` of 0 disable that tier; ``disk_bytes``
    ``None`` means unbounded spill.  ``spill_dir`` overrides the disk
    tier's root directory.  ``promote_on_hit`` copies lower-tier hits
    back into RAM; ``eviction`` picks the victim order (``lru`` or
    ``fifo``).
    """

    ram_bytes: int = 256 << 20
    shm_bytes: int = 0
    disk_bytes: Optional[int] = None
    spill_dir: Optional[str] = None
    shm_segment_bytes: int = 32 << 20
    promote_on_hit: bool = True
    eviction: str = "lru"

    def __post_init__(self) -> None:
        if self.ram_bytes < 0 or self.shm_bytes < 0:
            raise ValueError("tier budgets must be >= 0")
        if self.disk_bytes is not None and self.disk_bytes < 0:
            raise ValueError("disk_bytes must be >= 0 or None")
        if self.eviction not in ("lru", "fifo"):
            raise ValueError(f"unknown eviction policy {self.eviction!r}")


def parse_staging(spec: str) -> StagingPolicy:
    """Parse a CLI staging spec: ``ram=64M,shm=off,disk=1G,dir=/x,...``.

    Keys: ``ram``/``shm``/``disk`` (byte sizes; ``off``/``0`` disables,
    ``disk=unbounded`` removes the disk cap), ``dir`` (spill directory),
    ``evict`` (``lru``/``fifo``), ``promote`` (``on``/``off``).
    """
    kwargs: Dict[str, Any] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        if not sep:
            raise ValueError(f"bad --staging entry {part!r} (want key=value)")
        key, value = key.strip().lower(), value.strip()
        if key == "ram":
            kwargs["ram_bytes"] = _parse_bytes(value)
        elif key == "shm":
            kwargs["shm_bytes"] = 0 if value.lower() == "off" else _parse_bytes(value)
        elif key == "disk":
            if value.lower() in ("off",):
                kwargs["disk_bytes"] = 0
            elif value.lower() in ("unbounded", "auto"):
                kwargs["disk_bytes"] = None
            else:
                kwargs["disk_bytes"] = _parse_bytes(value)
        elif key == "dir":
            kwargs["spill_dir"] = value
        elif key == "evict":
            kwargs["eviction"] = value.lower()
        elif key == "promote":
            kwargs["promote_on_hit"] = value.lower() not in ("off", "false", "0")
        else:
            raise ValueError(f"unknown --staging key {key!r}")
    return StagingPolicy(**kwargs)


def format_staging(policy: StagingPolicy) -> str:
    """Inverse of :func:`parse_staging` (canonical, not round-trip exact)."""
    parts = [f"ram={policy.ram_bytes}"]
    parts.append(f"shm={policy.shm_bytes if policy.shm_bytes else 'off'}")
    if policy.disk_bytes is None:
        parts.append("disk=unbounded")
    else:
        parts.append(f"disk={policy.disk_bytes if policy.disk_bytes else 'off'}")
    if policy.spill_dir:
        parts.append(f"dir={policy.spill_dir}")
    if policy.eviction != "lru":
        parts.append(f"evict={policy.eviction}")
    if not policy.promote_on_hit:
        parts.append("promote=off")
    return ",".join(parts)


@dataclass(frozen=True)
class Eviction:
    """One region displaced during a stage: demoted or dropped."""

    key: str
    src: str
    dst: str  # a tier name, or DROPPED
    nbytes: int


@dataclass
class StageReport:
    """Where a stage landed and what it displaced."""

    key: str
    tier: Optional[str]  # None: nothing could take it (dropped)
    nbytes: int
    evictions: List[Eviction]
    #: Occupancy after the stage, tier name -> bytes used.
    tier_bytes: Dict[str, int]


class StorageHierarchy:
    """Ordered tiers plus the demotion/promotion machinery.

    Thread-safe; one lock guards placement and the per-tier recency
    index.  Build from a :class:`StagingPolicy` (:meth:`from_policy`) or
    pass explicit tiers for tests.
    """

    def __init__(
        self,
        tiers: List[StorageTier],
        promote_on_hit: bool = True,
        eviction: str = "lru",
    ):
        if not tiers:
            raise ValueError("hierarchy needs at least one tier")
        names = [t.name for t in tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names: {names}")
        self.tiers = list(tiers)
        self.promote_on_hit = promote_on_hit
        if eviction not in ("lru", "fifo"):
            raise ValueError(f"unknown eviction policy {eviction!r}")
        self.eviction = eviction
        self._lock = threading.RLock()
        # Per-tier placement index in recency order (oldest first);
        # key -> nbytes.  FIFO simply never refreshes recency.
        self._index: List["OrderedDict[str, int]"] = [OrderedDict() for _ in tiers]
        self._closed = False

    @classmethod
    def from_policy(
        cls,
        policy: StagingPolicy,
        remote: Optional[RemoteStorageClient] = None,
    ) -> "StorageHierarchy":
        tiers: List[StorageTier] = [RamTier(policy.ram_bytes)]
        if policy.shm_bytes:
            tiers.append(
                ShmTier(
                    policy.shm_bytes,
                    segment_bytes=min(policy.shm_segment_bytes, policy.shm_bytes),
                )
            )
        if policy.disk_bytes is None or policy.disk_bytes:
            tiers.append(DiskTier(policy.disk_bytes, root=policy.spill_dir))
        if remote is not None:
            tiers.append(RemoteTier(remote))
        return cls(
            tiers,
            promote_on_hit=policy.promote_on_hit,
            eviction=policy.eviction,
        )

    # -- placement ---------------------------------------------------------

    def _victim(self, level: int) -> Optional[str]:
        index = self._index[level]
        return next(iter(index)) if index else None

    def _place(
        self, key: str, arr: np.ndarray, level: int, evictions: List[Eviction]
    ) -> Optional[str]:
        """Place into ``level`` or below, evicting/demoting as needed."""
        if level >= len(self.tiers):
            return None
        tier = self.tiers[level]
        while not tier.put(key, arr):
            victim = self._victim(level)
            if victim is None:
                # Empty and still refusing: the payload exceeds the
                # tier's whole budget — try one level down directly.
                return self._place(key, arr, level + 1, evictions)
            self._demote(victim, level, evictions)
        self._index[level][key] = arr.nbytes
        return tier.name

    def _demote(self, key: str, level: int, evictions: List[Eviction]) -> None:
        tier = self.tiers[level]
        nbytes = self._index[level].pop(key)
        data = tier.get(key)
        tier.remove(key)
        dst = None
        if data is not None:
            dst = self._place(key, data, level + 1, evictions)
        evictions.append(
            Eviction(key=key, src=tier.name, dst=dst or DROPPED, nbytes=nbytes)
        )

    def put(self, key: str, arr: np.ndarray) -> StageReport:
        """Stage one region into the highest tier that takes it."""
        arr = np.ascontiguousarray(arr)
        with self._lock:
            self.remove(key)
            evictions: List[Eviction] = []
            tier = self._place(key, arr, 0, evictions)
            return StageReport(
                key=key,
                tier=tier,
                nbytes=arr.nbytes,
                evictions=evictions,
                tier_bytes=self.occupancy(),
            )

    def get(self, key: str) -> Tuple[Optional[np.ndarray], Optional[str]]:
        """Fetch one region: ``(array, tier name)`` or ``(None, None)``."""
        with self._lock:
            for level, tier in enumerate(self.tiers):
                if key not in self._index[level]:
                    continue
                data = tier.get(key)
                if data is None:  # pragma: no cover - index out of sync
                    del self._index[level][key]
                    continue
                if self.eviction == "lru":
                    self._index[level].move_to_end(key)
                if level > 0 and self.promote_on_hit:
                    del self._index[level][key]
                    tier.remove(key)
                    promoted = self._place(key, data, 0, [])
                    return data, promoted or tier.name
                return data, tier.name
            return None, None

    def remove(self, key: str) -> bool:
        with self._lock:
            for level, tier in enumerate(self.tiers):
                if key in self._index[level]:
                    del self._index[level][key]
                    tier.remove(key)
                    return True
            return False

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return any(key in idx for idx in self._index)

    # -- introspection / lifecycle -----------------------------------------

    def occupancy(self) -> Dict[str, int]:
        """Tier name -> payload bytes currently staged."""
        return {t.name: t.bytes_used for t in self.tiers}

    def entries(self) -> Dict[str, int]:
        """Tier name -> number of staged regions."""
        with self._lock:
            return {
                t.name: len(idx) for t, idx in zip(self.tiers, self._index)
            }

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "tiers": [
                    {
                        "name": t.name,
                        "capacity_bytes": t.capacity_bytes,
                        "bytes_used": t.bytes_used,
                        "entries": len(idx),
                    }
                    for t, idx in zip(self.tiers, self._index)
                ],
                "promote_on_hit": self.promote_on_hit,
                "eviction": self.eviction,
            }

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for tier in self.tiers:
                tier.close()
            for idx in self._index:
                idx.clear()

    def __enter__(self) -> "StorageHierarchy":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

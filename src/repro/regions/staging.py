"""Staged chunk reads: serve overlap from the store, read only the rest.

:func:`read_chunk_staged` is the sequential runtime's replacement for
``DiskDataset4D.read_chunk``.  Adjacent IIC→TEXTURE chunks overlap by
``ROI - 1`` voxels per dimension (paper Eqs. 1–2); a plain read fetches
those ghost voxels from disk again for every chunk.  The staged read
first resolves the target extent against the region store, copies every
overlapping staged region into the output buffer, and then reads only
the still-uncovered part of each (z, t) plane — a per-plane bounding box
of the uncovered cells, via ``read_slice_region``.  The assembled chunk
is staged back so the *next* chunk's ghost region finds it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .store import RegionStore
from .template import RegionExtent, RegionTemplate

__all__ = ["StagedRead", "chunk_extent", "read_chunk_staged", "CHUNK_TEMPLATE"]

#: Template name under which assembled IIC→TEXTURE chunks are staged.
CHUNK_TEMPLATE = "iic2tex"


def chunk_extent(chunk) -> RegionExtent:
    """The 4-D input extent of a :class:`~repro.chunks.ChunkSpec`."""
    return RegionExtent(tuple(chunk.lo), tuple(chunk.hi))


@dataclass
class StagedRead:
    """Accounting for one staged chunk read."""

    extent: RegionExtent
    hits: int = 0
    hit_voxels: int = 0
    hit_bytes_by_tier: Dict[str, int] = field(default_factory=dict)
    read_bytes: int = 0
    planes_read: int = 0
    planes_skipped: int = 0
    staged_tier: Optional[str] = None

    @property
    def hit_fraction(self) -> float:
        """Fraction of the chunk's voxels served from the store."""
        return self.hit_voxels / max(1, self.extent.num_voxels)


def ensure_chunk_template(
    store: RegionStore, dtype: np.dtype, name: str = CHUNK_TEMPLATE
) -> RegionTemplate:
    return store.register(RegionTemplate(name=name, ndim=4, dtype=str(np.dtype(dtype))))


def _uncovered_bbox(mask2d: np.ndarray) -> Optional[Tuple[int, int, int, int]]:
    """Bounding box (x0, x1, y0, y1) of the ``False`` cells, or ``None``."""
    uncovered = ~mask2d
    xs = np.flatnonzero(uncovered.any(axis=1))
    if xs.size == 0:
        return None
    ys = np.flatnonzero(uncovered.any(axis=0))
    return int(xs[0]), int(xs[-1]) + 1, int(ys[0]), int(ys[-1]) + 1


def read_chunk_staged(
    dataset,
    chunk,
    store: RegionStore,
    template: str = CHUNK_TEMPLATE,
    stage_result: bool = True,
) -> Tuple[np.ndarray, StagedRead]:
    """Read one chunk through the region store.

    Returns ``(data, report)`` where ``data`` is bit-identical to
    ``dataset.read_chunk(...)`` over the same extent: staged regions are
    snapshots of the same dataset bytes, and any cell both staged and
    re-read gets the same value either way.
    """
    extent = chunk_extent(chunk)
    dtype = np.dtype({1: np.uint8, 2: np.uint16, 4: np.uint32}[dataset.bytes_per_pixel])
    ensure_chunk_template(store, dtype, template)
    report = StagedRead(extent=extent)

    buf = np.zeros(extent.shape, dtype=dtype)
    covered = np.zeros(extent.shape, dtype=bool)
    for hit in store.resolve(template, extent):
        sel = hit.overlap.slices_in(extent)
        buf[sel] = hit.overlap_data
        covered[sel] = True
        report.hits += 1
        report.hit_voxels += hit.overlap.num_voxels
        report.hit_bytes_by_tier[hit.tier] = (
            report.hit_bytes_by_tier.get(hit.tier, 0)
            + hit.overlap.num_voxels * dtype.itemsize
        )

    (x0, x1), (y0, y1), (z0, z1), (t0, t1) = (
        (extent.lo[d], extent.hi[d]) for d in range(4)
    )
    before = dataset.stats.bytes_read
    for tt in range(t0, t1):
        for zz in range(z0, z1):
            mask2d = covered[:, :, zz - z0, tt - t0]
            bbox = _uncovered_bbox(mask2d)
            if bbox is None:
                report.planes_skipped += 1
                continue
            bx0, bx1, by0, by1 = bbox
            buf[bx0:bx1, by0:by1, zz - z0, tt - t0] = dataset.read_slice_region(
                tt, zz, x0 + bx0, x0 + bx1, y0 + by0, y0 + by1
            )
            report.planes_read += 1
    report.read_bytes = dataset.stats.bytes_read - before

    if stage_result:
        stage = store.stage(template, extent, buf, copy=True)
        report.staged_tier = stage.tier
    return buf, report

"""The region store: templates + extents + a storage hierarchy.

:class:`RegionStore` is the data layer's front door.  Callers think in
*templates* (named families of regions) and *extents* (4-D boxes in
dataset coordinates); the store maps those onto flat keys in a
:class:`~repro.regions.hierarchy.StorageHierarchy` and keeps the extent
index needed to answer geometric queries:

* :meth:`stage` — place one region (a chunk, a ghost slab, a cached
  feature block) into the hierarchy under its extent.
* :meth:`get` — exact-extent fetch.
* :meth:`resolve` — the overlap query: every staged region intersecting
  a target extent, with the intersection boxes, so ghost regions of
  IIC→TEXTURE chunks are *served* from previously staged neighbours
  instead of re-read or recomputed.

The store is thread-safe and keeps per-tier hit/stage counters so the
obs layer and the benchmarks can report reuse without instrumenting
callers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .hierarchy import StageReport, StorageHierarchy, StagingPolicy
from .template import RegionExtent, RegionTemplate, region_key

__all__ = ["RegionStore", "ResolveHit", "StoreStats"]


@dataclass(frozen=True)
class ResolveHit:
    """One staged region overlapping a resolve target."""

    extent: RegionExtent  # the staged region's full extent
    overlap: RegionExtent  # intersection with the target
    data: np.ndarray  # the staged region's full payload (read-only)
    tier: str  # tier the payload was served from

    @property
    def overlap_data(self) -> np.ndarray:
        """The payload restricted to the overlapping box."""
        return self.data[self.overlap.slices_in(self.extent)]


@dataclass
class StoreStats:
    stages: int = 0
    staged_bytes: int = 0
    hits: int = 0
    hit_bytes: int = 0
    misses: int = 0
    evictions: int = 0
    drops: int = 0
    hits_by_tier: Dict[str, int] = field(default_factory=dict)
    stages_by_tier: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "stages": self.stages,
            "staged_bytes": self.staged_bytes,
            "hits": self.hits,
            "hit_bytes": self.hit_bytes,
            "misses": self.misses,
            "evictions": self.evictions,
            "drops": self.drops,
            "hits_by_tier": dict(self.hits_by_tier),
            "stages_by_tier": dict(self.stages_by_tier),
        }


class RegionStore:
    """Named region templates over one storage hierarchy."""

    def __init__(self, hierarchy: StorageHierarchy):
        self.hierarchy = hierarchy
        self._lock = threading.RLock()
        self._templates: Dict[str, RegionTemplate] = {}
        # template name -> {flat key -> extent} for the overlap query.
        self._extents: Dict[str, Dict[str, RegionExtent]] = {}
        self.stats = StoreStats()

    @classmethod
    def from_policy(cls, policy: StagingPolicy, remote=None) -> "RegionStore":
        return cls(StorageHierarchy.from_policy(policy, remote=remote))

    # -- templates ---------------------------------------------------------

    def register(self, template: RegionTemplate) -> RegionTemplate:
        """Register a template; re-registering the same one is a no-op."""
        with self._lock:
            existing = self._templates.get(template.name)
            if existing is not None:
                if existing != template:
                    raise ValueError(
                        f"template {template.name!r} already registered "
                        f"with different parameters"
                    )
                return existing
            self._templates[template.name] = template
            self._extents[template.name] = {}
            return template

    def template(self, name: str) -> Optional[RegionTemplate]:
        with self._lock:
            return self._templates.get(name)

    def _require(self, name: str, extent: RegionExtent) -> RegionTemplate:
        tmpl = self._templates.get(name)
        if tmpl is None:
            raise KeyError(f"unknown region template {name!r}")
        tmpl.validate(extent)
        return tmpl

    # -- staging -----------------------------------------------------------

    def stage(
        self,
        name: str,
        extent: RegionExtent,
        data: np.ndarray,
        copy: bool = True,
    ) -> StageReport:
        """Stage one region instance under ``name`` at ``extent``.

        ``copy=True`` (the default) snapshots the payload so the caller
        may keep mutating its buffer; pass ``copy=False`` only when the
        array is handed over for good.
        """
        with self._lock:
            tmpl = self._require(name, extent)
            if tuple(data.shape) != extent.shape:
                raise ValueError(
                    f"payload shape {tuple(data.shape)} != extent shape "
                    f"{extent.shape}"
                )
            if tmpl.dtype is not None and str(data.dtype) != tmpl.dtype:
                raise ValueError(
                    f"template {name!r} is {tmpl.dtype}, payload is {data.dtype}"
                )
            payload = np.array(data, copy=True) if copy else np.ascontiguousarray(data)
            payload.flags.writeable = False
            key = region_key(name, extent)
            report = self.hierarchy.put(key, payload)
            self.stats.stages += 1
            self.stats.staged_bytes += report.nbytes
            if report.tier is not None:
                self._extents[name][key] = extent
                self.stats.stages_by_tier[report.tier] = (
                    self.stats.stages_by_tier.get(report.tier, 0) + 1
                )
            else:
                self._extents[name].pop(key, None)
            for ev in report.evictions:
                self.stats.evictions += 1
                if ev.dst == "dropped":
                    self.stats.drops += 1
                    self._forget_key(ev.key)
            return report

    def _forget_key(self, key: str) -> None:
        tname = key.split("|", 1)[0]
        index = self._extents.get(tname)
        if index is not None:
            index.pop(key, None)

    # -- queries -----------------------------------------------------------

    def get(self, name: str, extent: RegionExtent) -> Optional[ResolveHit]:
        """Exact-extent fetch, or ``None`` on miss."""
        with self._lock:
            self._require(name, extent)
            key = region_key(name, extent)
            if key not in self._extents[name]:
                self.stats.misses += 1
                return None
            data, tier = self.hierarchy.get(key)
            if data is None:  # dropped under us
                self._extents[name].pop(key, None)
                self.stats.misses += 1
                return None
            self._record_hit(tier, data.nbytes)
            return ResolveHit(extent=extent, overlap=extent, data=data, tier=tier)

    def resolve(self, name: str, target: RegionExtent) -> List[ResolveHit]:
        """Every staged region of ``name`` overlapping ``target``.

        This is the ghost-region query: the caller copies each hit's
        ``overlap_data`` into its buffer and only reads/computes what is
        left uncovered.  Index entries whose payload was silently
        dropped from the hierarchy are pruned as they are discovered.
        """
        with self._lock:
            self._require(name, target)
            hits: List[ResolveHit] = []
            index = self._extents[name]
            for key, extent in list(index.items()):
                overlap = extent.intersect(target)
                if overlap is None:
                    continue
                data, tier = self.hierarchy.get(key)
                if data is None:
                    index.pop(key, None)
                    continue
                self._record_hit(tier, overlap.num_voxels * data.itemsize)
                hits.append(
                    ResolveHit(extent=extent, overlap=overlap, data=data, tier=tier)
                )
            if not hits:
                self.stats.misses += 1
            return hits

    def _record_hit(self, tier: Optional[str], nbytes: int) -> None:
        tier = tier or "ram"
        self.stats.hits += 1
        self.stats.hit_bytes += int(nbytes)
        self.stats.hits_by_tier[tier] = self.stats.hits_by_tier.get(tier, 0) + 1

    def __contains__(self, item: Tuple[str, RegionExtent]) -> bool:
        name, extent = item
        with self._lock:
            return region_key(name, extent) in self._extents.get(name, {})

    # -- eviction / lifecycle ----------------------------------------------

    def evict(self, name: str, extent: RegionExtent) -> bool:
        with self._lock:
            self._require(name, extent)
            key = region_key(name, extent)
            self._extents[name].pop(key, None)
            return self.hierarchy.remove(key)

    def clear(self, name: Optional[str] = None) -> None:
        """Drop every region of ``name`` (or of every template)."""
        with self._lock:
            names = [name] if name is not None else list(self._extents)
            for tname in names:
                for key in list(self._extents.get(tname, {})):
                    self._extents[tname].pop(key, None)
                    self.hierarchy.remove(key)

    def occupancy(self) -> Dict[str, int]:
        return self.hierarchy.occupancy()

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "templates": sorted(self._templates),
                "regions": {n: len(idx) for n, idx in self._extents.items()},
                "occupancy": self.occupancy(),
                "hierarchy": self.hierarchy.stats(),
                "counters": self.stats.as_dict(),
            }

    def close(self) -> None:
        with self._lock:
            self.hierarchy.close()
            for idx in self._extents.values():
                idx.clear()

    def __enter__(self) -> "RegionStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

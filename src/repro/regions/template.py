"""Region templates: named, typed containers addressing N-D extents.

Following the Region Templates abstraction (Teodoro et al., same
Saltz/Kurc lineage as the source paper), a *region template* is a named
container for data regions of one kind — e.g. the assembled
IIC-to-TEXTURE chunks of one dataset — whose instances are addressed by
an explicit N-D extent (``[lo_d, hi_d)`` per dimension) rather than by
an opaque key.  Addressing by extent is what lets the data layer answer
*geometric* queries: "which staged regions overlap this chunk?" is the
question behind ghost/overlap reuse (:meth:`repro.regions.RegionStore.
resolve`), and no flat key-value cache can answer it.

This module holds only the addressing vocabulary; where region payloads
physically live is the storage hierarchy's business
(:mod:`repro.regions.hierarchy`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["RegionExtent", "RegionTemplate", "region_key"]


@dataclass(frozen=True)
class RegionExtent:
    """A half-open N-D box ``[lo_d, hi_d)`` in global dataset coordinates."""

    lo: Tuple[int, ...]
    hi: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ValueError(f"lo/hi dimensionality mismatch: {self.lo} vs {self.hi}")
        if not self.lo:
            raise ValueError("extent must have at least one dimension")
        for l, h in zip(self.lo, self.hi):
            if h <= l:
                raise ValueError(f"empty or inverted extent: {self.lo}..{self.hi}")
        object.__setattr__(self, "lo", tuple(int(v) for v in self.lo))
        object.__setattr__(self, "hi", tuple(int(v) for v in self.hi))

    @property
    def ndim(self) -> int:
        return len(self.lo)

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def num_voxels(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    def intersect(self, other: "RegionExtent") -> Optional["RegionExtent"]:
        """The overlapping box, or ``None`` when the extents are disjoint."""
        if other.ndim != self.ndim:
            raise ValueError(f"dimensionality mismatch: {self.ndim} vs {other.ndim}")
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        if any(h <= l for l, h in zip(lo, hi)):
            return None
        return RegionExtent(lo, hi)

    def contains(self, other: "RegionExtent") -> bool:
        return all(
            sl <= ol and oh <= sh
            for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def slices_in(self, outer: "RegionExtent") -> Tuple[slice, ...]:
        """Slicing tuple selecting this extent inside ``outer``'s array.

        ``outer`` must contain ``self``; the result indexes an array of
        shape ``outer.shape``.
        """
        if not outer.contains(self):
            raise ValueError(f"{self} not contained in {outer}")
        return tuple(
            slice(l - ol, h - ol) for l, h, ol in zip(self.lo, self.hi, outer.lo)
        )

    def key(self) -> str:
        """Canonical string form, stable across processes and runs."""
        return ",".join(f"{l}:{h}" for l, h in zip(self.lo, self.hi))

    def __str__(self) -> str:  # compact for events/logs
        return self.key()


@dataclass(frozen=True)
class RegionTemplate:
    """Descriptor of one named family of regions.

    ``name`` scopes keys (two templates never collide in the hierarchy);
    ``ndim`` pins the dimensionality of every extent staged under the
    template; ``dtype`` (a numpy dtype string, optional) pins the element
    type so a store can reject mixed-type stages early.
    """

    name: str
    ndim: int = 4
    dtype: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name or "|" in self.name:
            raise ValueError(f"invalid template name {self.name!r}")
        if self.ndim < 1:
            raise ValueError("ndim must be >= 1")

    def validate(self, extent: RegionExtent) -> None:
        if extent.ndim != self.ndim:
            raise ValueError(
                f"template {self.name!r} is {self.ndim}-D, extent {extent} "
                f"is {extent.ndim}-D"
            )


def region_key(template_name: str, extent: RegionExtent) -> str:
    """Flat storage key of one region instance: ``name|lo:hi,...``."""
    return f"{template_name}|{extent.key()}"

"""Storage tiers: where region payloads physically live.

A tier is a dumb byte store with a capacity; staging order, eviction and
demotion between tiers are the hierarchy's business
(:class:`repro.regions.hierarchy.StorageHierarchy`).  Four tiers ship:

* :class:`RamTier` — plain in-process arrays, the fastest tier.
* :class:`ShmTier` — payloads parked in ``multiprocessing.shared_memory``
  slabs via the transport's :class:`~repro.datacutter.net.shm.ShmPool`
  (one slab per region), so staged regions survive outside the Python
  heap and are visible to forked children of the staging process.
* :class:`DiskTier` — ``.npy`` spill files in a per-session directory,
  the out-of-core tier.  Cleanup is crash-safe twice over: the session
  directory is removed by ``close()`` and by an ``atexit`` hook, and
  every tier construction sweeps session directories left behind by
  dead processes (kill -9 leaves no way to run our own cleanup, so the
  *next* session does it).
* :class:`RemoteTier` — a stub interface for remote storage nodes: the
  tier serializes regions to bytes and delegates to a pluggable
  :class:`RemoteStorageClient`.  No network client ships yet;
  :class:`InMemoryRemoteClient` stands in for tests and local use.

``put`` returns ``False`` when the tier cannot take the payload at its
current occupancy — the hierarchy reacts by evicting or demoting; tiers
themselves never block and never evict.
"""

from __future__ import annotations

import abc
import atexit
import hashlib
import io
import os
import re
import secrets
import shutil
import tempfile
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "StorageTier",
    "RamTier",
    "ShmTier",
    "DiskTier",
    "RemoteTier",
    "RemoteStorageClient",
    "InMemoryRemoteClient",
    "TIER_RAM",
    "TIER_SHM",
    "TIER_DISK",
    "TIER_REMOTE",
]

TIER_RAM = "ram"
TIER_SHM = "shm"
TIER_DISK = "disk"
TIER_REMOTE = "remote"


class StorageTier(abc.ABC):
    """One level of the staging hierarchy (see module docstring)."""

    #: Tier label used in events, metrics and policy specs.
    name: str = "tier"
    #: Byte budget; ``None`` means unbounded.
    capacity_bytes: Optional[int] = None

    @abc.abstractmethod
    def put(self, key: str, arr: np.ndarray) -> bool:
        """Store one region; ``False`` when it does not fit right now."""

    @abc.abstractmethod
    def get(self, key: str) -> Optional[np.ndarray]:
        """Fetch a stored region (a read-only array), or ``None``."""

    @abc.abstractmethod
    def remove(self, key: str) -> None:
        """Drop a region; missing keys are a no-op."""

    @property
    @abc.abstractmethod
    def bytes_used(self) -> int:
        """Payload bytes currently stored."""

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def close(self) -> None:
        """Release every resource the tier holds (idempotent)."""


def _readonly(arr: np.ndarray) -> np.ndarray:
    arr.flags.writeable = False
    return arr


class RamTier(StorageTier):
    """In-process arrays; the top of every hierarchy."""

    name = TIER_RAM

    def __init__(self, capacity_bytes: Optional[int] = None):
        self.capacity_bytes = capacity_bytes
        self._entries: Dict[str, np.ndarray] = {}
        self._bytes = 0

    def put(self, key: str, arr: np.ndarray) -> bool:
        self.remove(key)
        cap = self.capacity_bytes
        if cap is not None and self._bytes + arr.nbytes > cap:
            return False
        self._entries[key] = arr
        self._bytes += arr.nbytes
        return True

    def get(self, key: str) -> Optional[np.ndarray]:
        return self._entries.get(key)

    def remove(self, key: str) -> None:
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old.nbytes

    @property
    def bytes_used(self) -> int:
        return self._bytes

    def close(self) -> None:
        self._entries.clear()
        self._bytes = 0


class ShmTier(StorageTier):
    """Regions parked in pooled shared-memory slabs.

    Reuses the zero-copy transport's :class:`ShmPool` slab allocator
    (one region per slab, so ``segment_bytes`` bounds the largest region
    this tier takes).  The pool registers its segments with the
    ``multiprocessing`` resource tracker, which unlinks them at process
    exit even after a crash — the same guarantee the shm transport's
    ``/dev/shm`` leak gate pins in CI.
    """

    name = TIER_SHM

    def __init__(
        self,
        capacity_bytes: int,
        segment_bytes: int = 32 << 20,
    ):
        import multiprocessing as mp

        from ..datacutter.net.shm import ShmPool

        segments = max(1, int(capacity_bytes) // int(segment_bytes))
        self.capacity_bytes = segments * int(segment_bytes)
        self.segment_bytes = int(segment_bytes)
        # threshold=1: the tier decides placement, not payload size.
        self._pool = ShmPool(
            mp.get_context("fork"),
            segments=segments,
            segment_bytes=int(segment_bytes),
            threshold=1,
        )
        # key -> (slot, nbytes, shape, dtype str)
        self._entries: Dict[str, Tuple[int, int, Tuple[int, ...], str]] = {}
        self._bytes = 0

    def put(self, key: str, arr: np.ndarray) -> bool:
        self.remove(key)
        data = np.ascontiguousarray(arr)
        slot = self._pool.acquire(data.nbytes)
        if slot is None:
            return False  # larger than a slab, or no free slab
        self._pool.view(slot, 0, data.nbytes)[:] = data.reshape(-1).view(np.uint8)
        self._entries[key] = (slot, data.nbytes, data.shape, str(data.dtype))
        self._bytes += data.nbytes
        return True

    def get(self, key: str) -> Optional[np.ndarray]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        slot, nbytes, shape, dtype = entry
        raw = self._pool.view(slot, 0, nbytes)
        # Copy out: the slab is recycled on remove(), so handing out a
        # view would dangle.  Promotion to RAM copies anyway.
        return _readonly(
            np.frombuffer(bytes(raw), dtype=np.dtype(dtype)).reshape(shape)
        )

    def remove(self, key: str) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._pool.release(entry[0])
            self._bytes -= entry[1]

    @property
    def bytes_used(self) -> int:
        return self._bytes

    def close(self) -> None:
        self._entries.clear()
        self._bytes = 0
        self._pool.destroy()


#: Session-directory pattern for the stale sweep: spill-<pid>-<token>.
_SESSION_RE = re.compile(r"^spill-(\d+)-[0-9a-f]+$")


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


class DiskTier(StorageTier):
    """Local-disk spill: one ``.npy`` file per region.

    Files live in ``<root>/spill-<pid>-<token>/``; ``root`` defaults to
    ``$TMPDIR/repro-regions``.  Construction sweeps sibling session
    directories whose owning pid is dead (crash-safe cleanup for spills
    orphaned by ``kill -9``), ``close()`` removes this session's
    directory, and an ``atexit`` hook covers interpreter exit without
    ``close()``.
    """

    name = TIER_DISK

    def __init__(
        self,
        capacity_bytes: Optional[int] = None,
        root: Optional[str] = None,
    ):
        self.capacity_bytes = capacity_bytes
        self.root = root or os.path.join(tempfile.gettempdir(), "repro-regions")
        os.makedirs(self.root, exist_ok=True)
        self._sweep_stale()
        self.session_dir = os.path.join(
            self.root, f"spill-{os.getpid()}-{secrets.token_hex(4)}"
        )
        os.makedirs(self.session_dir)
        self._entries: Dict[str, Tuple[str, int]] = {}  # key -> (path, nbytes)
        self._bytes = 0
        self._closed = False
        self._atexit = atexit.register(self.close)

    def _sweep_stale(self) -> None:
        for name in os.listdir(self.root):
            m = _SESSION_RE.match(name)
            if m and not _pid_alive(int(m.group(1))):
                shutil.rmtree(os.path.join(self.root, name), ignore_errors=True)

    def put(self, key: str, arr: np.ndarray) -> bool:
        self.remove(key)
        cap = self.capacity_bytes
        if cap is not None and self._bytes + arr.nbytes > cap:
            return False
        path = os.path.join(
            self.session_dir, hashlib.sha1(key.encode()).hexdigest() + ".npy"
        )
        np.save(path, np.ascontiguousarray(arr))
        self._entries[key] = (path, arr.nbytes)
        self._bytes += arr.nbytes
        return True

    def get(self, key: str) -> Optional[np.ndarray]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        return _readonly(np.load(entry[0]))

    def remove(self, key: str) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            try:
                os.unlink(entry[0])
            except FileNotFoundError:
                pass
            self._bytes -= entry[1]

    @property
    def bytes_used(self) -> int:
        return self._bytes

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._entries.clear()
        self._bytes = 0
        shutil.rmtree(self.session_dir, ignore_errors=True)
        try:
            atexit.unregister(self._atexit)
        except Exception:  # pragma: no cover - interpreter shutdown
            pass


class RemoteStorageClient(abc.ABC):
    """Transport interface a :class:`RemoteTier` delegates to.

    The network client for real remote storage nodes is future work;
    the interface is fixed now so the hierarchy, the staging policies
    and the eviction cascade are already written against it.
    """

    @abc.abstractmethod
    def put_object(self, key: str, data: bytes) -> None:
        """Store one serialized region under ``key``."""

    @abc.abstractmethod
    def get_object(self, key: str) -> Optional[bytes]:
        """Fetch a serialized region, or ``None`` when absent."""

    @abc.abstractmethod
    def delete_object(self, key: str) -> None:
        """Drop one region; missing keys are a no-op."""

    def close(self) -> None:
        """Release the client's connections (idempotent)."""


class InMemoryRemoteClient(RemoteStorageClient):
    """Dict-backed stand-in for a remote storage node (tests, demos)."""

    def __init__(self) -> None:
        self.objects: Dict[str, bytes] = {}

    def put_object(self, key: str, data: bytes) -> None:
        self.objects[key] = data

    def get_object(self, key: str) -> Optional[bytes]:
        return self.objects.get(key)

    def delete_object(self, key: str) -> None:
        self.objects.pop(key, None)


class RemoteTier(StorageTier):
    """Bottom tier: regions serialized out to a remote storage client."""

    name = TIER_REMOTE

    def __init__(
        self,
        client: RemoteStorageClient,
        capacity_bytes: Optional[int] = None,
    ):
        self.client = client
        self.capacity_bytes = capacity_bytes
        self._entries: Dict[str, int] = {}  # key -> nbytes
        self._bytes = 0

    def put(self, key: str, arr: np.ndarray) -> bool:
        self.remove(key)
        cap = self.capacity_bytes
        if cap is not None and self._bytes + arr.nbytes > cap:
            return False
        buf = io.BytesIO()
        np.save(buf, np.ascontiguousarray(arr))
        self.client.put_object(key, buf.getvalue())
        self._entries[key] = arr.nbytes
        self._bytes += arr.nbytes
        return True

    def get(self, key: str) -> Optional[np.ndarray]:
        if key not in self._entries:
            return None
        raw = self.client.get_object(key)
        if raw is None:
            return None
        return _readonly(np.load(io.BytesIO(raw)))

    def remove(self, key: str) -> None:
        nbytes = self._entries.pop(key, None)
        if nbytes is not None:
            self.client.delete_object(key)
            self._bytes -= nbytes

    @property
    def bytes_used(self) -> int:
        return self._bytes

    def close(self) -> None:
        self._entries.clear()
        self._bytes = 0
        self.client.close()

"""Declarative chaos/elasticity scenario suite for the real runtimes.

A *scenario* is a small declarative spec — JSON (always) or YAML (when
PyYAML happens to be installed) — describing one distributed run under
membership churn and injected faults: how many agents start, which join
or drain at which offsets, which links are degraded, which agents crash,
and what the run must still guarantee afterwards.  The runner executes
the spec against the real :class:`~repro.datacutter.net.DistRuntime`
over loopback agents, checks the feature volumes bit-identical against
the in-process sequential baseline, evaluates the spec's expectations
(joins/drains attributed, reroutes bounded, failures recovered), and
emits a machine-readable JSON report for CI.

Entry points: ``tools/run_scenarios.py`` on the command line, or
:func:`run_scenario` / :func:`run_suite` from code.  Specs shipped with
the repository live in ``scenarios/``.
"""

from .spec import ScenarioSpec, load_scenario, load_scenarios
from .runner import ScenarioResult, run_scenario, run_suite, write_report

__all__ = [
    "ScenarioSpec",
    "ScenarioResult",
    "load_scenario",
    "load_scenarios",
    "run_scenario",
    "run_suite",
    "write_report",
]

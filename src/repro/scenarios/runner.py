"""Execute scenario specs against the real distributed runtime.

Each scenario gets a fresh working directory: a synthetic phantom is
generated from the spec's seed and written as a disk-resident dataset,
the sequential baseline (quantize + in-process Haralick transform) is
computed from the same volume, and then the distributed pipeline runs
over loopback agents with the spec's membership schedule and fault plan
installed.  Afterwards the runner checks

* **bit identity** — every feature volume equals the sequential
  baseline exactly (``==``, not allclose): churn and recovered faults
  must be invisible in the output;
* **attribution** — planned drains appear in ``RunResult.drained_agents``
  and contribute no reroutes, joins in ``joined_agents``, crashes in
  ``failed_copies`` with ``recovered`` set;
* the spec's explicit :class:`~repro.scenarios.spec.Expectation` bounds.

Results aggregate into a JSON report (one object per scenario with its
checks, counters and timings) that CI uploads as an artifact.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..core.analysis import HaralickConfig, haralick_transform
from ..core.quantization import quantize_linear
from ..data.synthetic import PhantomConfig, generate_phantom
from ..filters.messages import TextureParams
from ..pipeline.config import AnalysisConfig
from ..pipeline.run import run_pipeline
from ..storage.dataset import write_dataset
from .spec import ScenarioSpec

__all__ = ["ScenarioResult", "run_scenario", "run_suite", "write_report"]


@dataclass
class Check:
    """One named pass/fail assertion inside a scenario."""

    name: str
    ok: bool
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "ok": self.ok, "detail": self.detail}


@dataclass
class ScenarioResult:
    """Outcome of one scenario run."""

    spec: ScenarioSpec
    passed: bool
    checks: List[Check] = field(default_factory=list)
    counters: Dict[str, Any] = field(default_factory=dict)
    elapsed: float = 0.0
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.spec.to_dict(),
            "passed": self.passed,
            "checks": [c.to_dict() for c in self.checks],
            "counters": self.counters,
            "elapsed": self.elapsed,
            "error": self.error,
        }


def _config(spec: ScenarioSpec) -> AnalysisConfig:
    params = TextureParams(
        roi_shape=spec.roi,
        levels=spec.levels,
        features=spec.features,
        intensity_range=(0.0, 65535.0),
    )
    return AnalysisConfig(
        texture=params,
        variant="hmp",
        texture_chunk_shape=spec.chunk_shape,
        num_texture_copies=spec.texture_copies,
        num_iic_copies=spec.iic_copies,
    )


def _reference(vol, spec: ScenarioSpec) -> Dict[str, np.ndarray]:
    q = quantize_linear(vol.data, spec.levels, lo=0.0, hi=65535.0)
    return haralick_transform(
        q,
        HaralickConfig(
            roi_shape=spec.roi, levels=spec.levels, features=spec.features
        ),
        quantized=True,
    )


def _evaluate(spec: ScenarioSpec, result, reference) -> List[Check]:
    checks: List[Check] = []
    run = result.run
    expect = spec.expect

    if expect.bit_identical:
        for name in spec.features:
            got, want = result.volumes[name], reference[name]
            same = got.shape == want.shape and bool(np.all(got == want))
            checks.append(
                Check(
                    f"bit_identical[{name}]",
                    same,
                    "" if same else (
                        f"{int(np.sum(got != want))} of {want.size} voxels "
                        f"differ"
                    ),
                )
            )

    if expect.joined is not None:
        n = len(run.joined_agents)
        checks.append(
            Check(
                "joined",
                n == expect.joined,
                f"joined_agents={run.joined_agents}",
            )
        )
    if expect.drained is not None:
        n = len(run.drained_agents)
        checks.append(
            Check(
                "drained",
                n == expect.drained,
                f"drained_agents={run.drained_agents}",
            )
        )
        # Attribution: a clean drain is membership churn, not a fault —
        # a drained agent's name must never show up as a failed copy.
        if run.drained_agents:
            tainted = sorted(
                {
                    f"{f.filter_name}[{f.copy_index}]"
                    for f in run.failed_copies
                }
            )
            checks.append(
                Check(
                    "drain_not_a_failure",
                    expect.failures != "none" or not run.failed_copies,
                    f"failed_copies={tainted}" if tainted else "",
                )
            )

    if expect.min_reroutes is not None:
        checks.append(
            Check(
                "min_reroutes",
                run.reroutes >= expect.min_reroutes,
                f"reroutes={run.reroutes} < {expect.min_reroutes}",
            )
        )
    if expect.max_reroutes is not None:
        checks.append(
            Check(
                "max_reroutes",
                run.reroutes <= expect.max_reroutes,
                f"reroutes={run.reroutes} > {expect.max_reroutes}",
            )
        )
    if expect.min_rebalances is not None:
        checks.append(
            Check(
                "min_rebalances",
                run.rebalances >= expect.min_rebalances,
                f"rebalances={run.rebalances}",
            )
        )

    if expect.failures == "none":
        checks.append(
            Check(
                "no_failures",
                not run.failed_copies,
                f"failed_copies={run.failed_copies}",
            )
        )
    elif expect.failures == "recovered":
        ok = bool(run.failed_copies) and all(
            f.recovered for f in run.failed_copies
        )
        checks.append(
            Check(
                "failures_recovered",
                ok,
                f"failed_copies={run.failed_copies}",
            )
        )
    return checks


def run_scenario(
    spec: ScenarioSpec, workdir: Optional[str] = None
) -> ScenarioResult:
    """Run one scenario end to end; never raises for a failing run."""
    own_dir = workdir is None
    if own_dir:
        workdir = tempfile.mkdtemp(prefix=f"scenario-{spec.name}-")
    t0 = time.perf_counter()
    try:
        vol = generate_phantom(PhantomConfig(shape=spec.shape, seed=spec.seed))
        root = os.path.join(workdir, "dataset")
        write_dataset(vol, root, num_nodes=spec.storage_nodes)
        reference = _reference(vol, spec)
        result = run_pipeline(
            root,
            _config(spec),
            runtime="distributed",
            hosts=["127.0.0.1"] * spec.agents,
            max_queue=spec.max_queue,
            faults=spec.fault_plan(),
            elastic=spec.elastic,
            schedule=list(spec.schedule),
            heartbeat_timeout=spec.heartbeat_timeout,
        )
        checks = _evaluate(spec, result, reference)
        run = result.run
        counters = {
            "retries": run.retries,
            "reroutes": run.reroutes,
            "rebalances": run.rebalances,
            "joined_agents": list(run.joined_agents),
            "drained_agents": list(run.drained_agents),
            "failed_copies": [
                f"{f.filter_name}[{f.copy_index}]" for f in run.failed_copies
            ],
            "run_elapsed": run.elapsed,
        }
        return ScenarioResult(
            spec=spec,
            passed=all(c.ok for c in checks),
            checks=checks,
            counters=counters,
            elapsed=time.perf_counter() - t0,
        )
    except Exception:  # noqa: BLE001 - a crashed scenario is a failed one
        return ScenarioResult(
            spec=spec,
            passed=False,
            elapsed=time.perf_counter() - t0,
            error=traceback.format_exc().strip(),
        )
    finally:
        if own_dir:
            shutil.rmtree(workdir, ignore_errors=True)


def run_suite(
    specs: List[ScenarioSpec], verbose: bool = True
) -> List[ScenarioResult]:
    """Run scenarios in order (each gets a fresh working directory)."""
    results = []
    for spec in specs:
        if verbose:
            print(f"[scenario] {spec.name} ...", flush=True)
        res = run_scenario(spec)
        if verbose:
            status = "PASS" if res.passed else "FAIL"
            print(f"[scenario] {spec.name}: {status} ({res.elapsed:.1f}s)")
            for c in res.checks:
                if not c.ok:
                    print(f"[scenario]   failed check {c.name}: {c.detail}")
            if res.error:
                print(f"[scenario]   error: {res.error.splitlines()[-1]}")
        results.append(res)
    return results


def write_report(results: List[ScenarioResult], path: str) -> Dict[str, Any]:
    """Write the aggregate JSON report; returns the report object."""
    report = {
        "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "total": len(results),
        "passed": sum(1 for r in results if r.passed),
        "failed": sum(1 for r in results if not r.passed),
        "scenarios": [r.to_dict() for r in results],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return report

"""Scenario spec model and loaders.

The on-disk format is deliberately plain: one JSON (or YAML) object per
scenario, all fields optional except ``name``.  Everything the runner
needs — dataset geometry, pipeline configuration, agent count,
membership schedule, fault plan, expectations — is derived from the one
spec, so a scenario file is a complete, reproducible description of a
chaos experiment.

::

    {
      "name": "drain_under_load",
      "description": "one agent leaves mid-run; output stays identical",
      "seed": 11,
      "agents": 3,
      "schedule": [{"action": "drain", "at": 0.3, "agent": 1}],
      "faults": [{"kind": "delay_buffers", "filter": "HMP", "delay": 0.02}],
      "expect": {"drained": 1, "max_reroutes": 0, "failures": "none"}
    }

JSON is always supported; ``.yaml``/``.yml`` files additionally work
when PyYAML is importable (it is an optional dependency — the shipped
suite is JSON so CI needs nothing extra).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..datacutter.faults import (
    CrashAgent,
    CrashCopy,
    DelayBuffers,
    DelayConnection,
    DrainAgent,
    DropBuffers,
    DropDeliveries,
    FailProcess,
    FaultPlan,
    JoinAgent,
    MembershipAction,
)

__all__ = ["ScenarioSpec", "Expectation", "load_scenario", "load_scenarios"]


@dataclass
class Expectation:
    """What a scenario run must satisfy to pass.

    ``failures`` is ``"none"`` (default: no copy failures at all),
    ``"recovered"`` (failures happened and every one was recovered) or
    ``"any"`` (no constraint).  Count fields are exact when set.
    """

    bit_identical: bool = True
    joined: Optional[int] = None
    drained: Optional[int] = None
    min_reroutes: Optional[int] = None
    max_reroutes: Optional[int] = None
    min_rebalances: Optional[int] = None
    failures: str = "none"

    def __post_init__(self) -> None:
        if self.failures not in ("none", "recovered", "any"):
            raise ValueError(
                f"expect.failures must be none|recovered|any, "
                f"got {self.failures!r}"
            )


#: fault-spec "kind" -> (dataclass, {json key: constructor arg})
_FAULT_KINDS = {
    "crash_copy": (
        CrashCopy,
        {"filter": "filter_name", "copy": "copy_index"},
    ),
    "fail_process": (
        FailProcess,
        {"filter": "filter_name", "copy": "copy_index"},
    ),
    "delay_buffers": (
        DelayBuffers,
        {"filter": "filter_name", "copy": "copy_index"},
    ),
    "drop_buffers": (
        DropBuffers,
        {"filter": "filter_name", "copy": "copy_index"},
    ),
    "crash_agent": (CrashAgent, {}),
    "delay_connection": (DelayConnection, {}),
    "drop_deliveries": (DropDeliveries, {}),
}


def _parse_fault(d: Dict[str, Any]) -> Any:
    d = dict(d)
    kind = d.pop("kind", None)
    if kind not in _FAULT_KINDS:
        raise ValueError(
            f"unknown fault kind {kind!r} "
            f"(known: {sorted(_FAULT_KINDS)})"
        )
    cls, renames = _FAULT_KINDS[kind]
    kwargs = {renames.get(k, k): v for k, v in d.items()}
    return cls(**kwargs)


def _parse_action(d: Dict[str, Any]) -> MembershipAction:
    d = dict(d)
    action = d.pop("action", None)
    if action == "join":
        return JoinAgent(**d)
    if action == "drain":
        return DrainAgent(**d)
    raise ValueError(f"unknown schedule action {action!r} (join|drain)")


@dataclass
class ScenarioSpec:
    """One declarative chaos scenario (see module docstring)."""

    name: str
    description: str = ""
    seed: int = 0
    # dataset geometry (synthetic phantom, written to disk per run)
    shape: Tuple[int, int, int, int] = (14, 12, 6, 4)
    storage_nodes: int = 2
    # pipeline configuration
    roi: Tuple[int, int, int, int] = (3, 3, 3, 2)
    levels: int = 8
    features: Tuple[str, ...] = ("asm", "contrast")
    chunk_shape: Tuple[int, int, int, int] = (4, 4, 3, 2)
    texture_copies: int = 4
    iic_copies: int = 2
    # runtime shape
    agents: int = 3
    elastic: bool = False
    max_queue: int = 64
    heartbeat_timeout: Optional[float] = None
    timeout: float = 120.0
    # churn + chaos
    schedule: List[MembershipAction] = field(default_factory=list)
    faults: List[Any] = field(default_factory=list)
    expect: Expectation = field(default_factory=Expectation)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        if self.agents < 1:
            raise ValueError("agents must be >= 1")
        if any(isinstance(a, JoinAgent) for a in self.schedule):
            if not self.elastic:
                raise ValueError(
                    f"scenario {self.name!r} schedules a join but is not "
                    f"elastic"
                )

    def fault_plan(self) -> Optional[FaultPlan]:
        if not self.faults:
            return None
        plan = FaultPlan(seed=self.seed)
        for f in self.faults:
            plan.add(f)
        return plan

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ScenarioSpec":
        d = dict(d)
        for key in ("shape", "roi", "chunk_shape"):
            if key in d:
                d[key] = tuple(d[key])
        if "features" in d:
            d["features"] = tuple(d["features"])
        d["schedule"] = [_parse_action(a) for a in d.get("schedule", [])]
        d["faults"] = [_parse_fault(f) for f in d.get("faults", [])]
        d["expect"] = Expectation(**d.get("expect", {}))
        unknown = set(d) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(
                f"scenario {d.get('name', '?')!r} has unknown fields "
                f"{sorted(unknown)}"
            )
        return cls(**d)

    def to_dict(self) -> Dict[str, Any]:
        """Spec summary for the JSON report (not a loader round-trip)."""
        return {
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "agents": self.agents,
            "elastic": self.elastic,
            "schedule": [
                {
                    "action": "join" if isinstance(a, JoinAgent) else "drain",
                    "at": a.at,
                }
                for a in self.schedule
            ],
            "faults": [type(f).__name__ for f in self.faults],
        }


def load_scenario(path: str) -> ScenarioSpec:
    """Load one scenario spec from a ``.json``/``.yaml``/``.yml`` file."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    if path.endswith((".yaml", ".yml")):
        try:
            import yaml  # type: ignore
        except ImportError as exc:  # pragma: no cover - env dependent
            raise RuntimeError(
                f"{path}: YAML scenarios need PyYAML installed; the "
                f"shipped suite is JSON, which always works"
            ) from exc
        data = yaml.safe_load(text)
    else:
        data = json.loads(text)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected one scenario object")
    try:
        return ScenarioSpec.from_dict(data)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{path}: {exc}") from exc


def load_scenarios(directory: str) -> List[ScenarioSpec]:
    """Load every scenario file in a directory, sorted by file name."""
    specs = []
    for entry in sorted(os.listdir(directory)):
        if entry.endswith((".json", ".yaml", ".yml")):
            specs.append(load_scenario(os.path.join(directory, entry)))
    if not specs:
        raise ValueError(f"no scenario files in {directory}")
    return specs

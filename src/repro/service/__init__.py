"""Always-on multi-tenant analysis service (ISSUE 7).

Turns the one-shot :func:`repro.pipeline.run_pipeline` driver into a
long-lived service: an async job API with admission control and
weighted per-tenant fairness, warm runtime pools that amortize dataset
opens, graph builds and shared-memory slab allocation across jobs, a
content-addressed per-feature result cache, and request batching that
packs overlapping submissions into one pipeline pass.  A JSON-lines TCP
server/client pair (``repro serve`` / ``repro submit``) fronts the same
API over the network.

Quick start::

    from repro.service import AnalysisService, AnalysisRequest

    with AnalysisService() as svc:
        job = svc.submit(AnalysisRequest(dataset_root="study/"))
        volumes = job.result(timeout=120).volumes
"""

from .cache import ResultCache, result_key, volume_fingerprint
from .client import ServiceClient, ServiceClientError, decode_volume
from .fair_queue import AdmissionError, FairQueue
from .jobs import AnalysisRequest, JobError, JobHandle, JobResult, JobStatus
from .pool import PoolLease, RuntimePool, RuntimeProfile
from .server import ServiceServer, request_from_payload
from .service import AnalysisService, ServiceConfig

__all__ = [
    "AdmissionError",
    "AnalysisRequest",
    "AnalysisService",
    "FairQueue",
    "JobError",
    "JobHandle",
    "JobResult",
    "JobStatus",
    "PoolLease",
    "ResultCache",
    "RuntimePool",
    "RuntimeProfile",
    "ServiceClient",
    "ServiceClientError",
    "ServiceConfig",
    "ServiceServer",
    "decode_volume",
    "request_from_payload",
    "result_key",
    "volume_fingerprint",
]

"""Content-addressed result cache for the analysis service.

Two cooperating pieces:

* :func:`volume_fingerprint` — a content hash over every file of a
  disk-resident dataset (node index files plus slice files), memoized
  per file by ``(size, mtime_ns)`` so repeated fingerprints of an
  unchanged dataset cost a handful of ``stat()`` calls instead of a
  re-read.  Rewriting a dataset in place changes the fingerprint, so a
  stale cache entry can never be served for new bytes.

* :class:`ResultCache` — an LRU cache of stitched feature volumes,
  bounded by payload bytes, with one entry **per feature** rather than
  per feature *set*.  A job asking for ``(asm, idm)`` fills two entries;
  a later job asking for ``(idm, entropy)`` reuses ``idm`` and only
  computes ``entropy``.

The cache key (:func:`result_key`) is the full identity of one feature
volume::

    v=<dataset content hash>/roi=5x5x5x3/levels=32/range=0,65535/dist=1/f=asm

Everything that changes the numbers is in the key; everything that is
guaranteed bit-identical across choices stays out of it.  Variant
(hmp/split), kernel backend, sparse mode, chunk shape, copy counts,
scheduling policy and runtime are all excluded **deliberately**: the
repo's conformance and property suites pin all of them to bit-identical
outputs, so including them would only fragment the cache.  The
direction set needs no explicit component because it is the fixed
canonical half-space set for the dataset's dimensionality, scaled by
``distance`` — which is in the key.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..filters.messages import TextureParams

__all__ = ["volume_fingerprint", "result_key", "ResultCache"]


# -- dataset fingerprinting -------------------------------------------------

# path -> ((size, mtime_ns), sha256 hex); guarded by _FP_LOCK.
_FILE_HASHES: Dict[str, Tuple[Tuple[int, int], str]] = {}
_FP_LOCK = threading.Lock()


def _file_digest(path: str) -> str:
    st = os.stat(path)
    sig = (st.st_size, st.st_mtime_ns)
    with _FP_LOCK:
        hit = _FILE_HASHES.get(path)
        if hit is not None and hit[0] == sig:
            return hit[1]
    h = hashlib.sha256()
    with open(path, "rb") as f:
        for block in iter(lambda: f.read(1 << 20), b""):
            h.update(block)
    digest = h.hexdigest()
    with _FP_LOCK:
        _FILE_HASHES[path] = (sig, digest)
    return digest


def volume_fingerprint(dataset_root: str) -> str:
    """Content hash of a disk-resident dataset (all files, sorted walk).

    Per-file digests are memoized by ``(size, mtime_ns)``, so the steady
    -state cost for an unchanged dataset is one ``stat()`` per file.
    """
    root = os.path.realpath(dataset_root)
    h = hashlib.sha256()
    seen = False
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root)
            h.update(rel.encode())
            h.update(b"\0")
            h.update(_file_digest(path).encode())
            h.update(b"\n")
            seen = True
    if not seen:
        raise FileNotFoundError(f"no dataset files under {dataset_root!r}")
    return h.hexdigest()


def result_key(volume_hash: str, params: TextureParams, feature: str) -> str:
    """Cache key for one feature volume (see module docstring)."""
    roi = "x".join(str(r) for r in params.roi_shape)
    lo, hi = params.intensity_range
    return (
        f"v={volume_hash}/roi={roi}/levels={params.levels}"
        f"/range={lo:g},{hi:g}/dist={params.distance}/f={feature}"
    )


# -- the LRU cache ----------------------------------------------------------


class ResultCache:
    """Byte-bounded LRU cache of feature volumes, with optional spill.

    Stored arrays are marked read-only and handed back without copying —
    every consumer of a pipeline result treats volumes as immutable, and
    the read-only flag turns an accidental in-place edit into an error
    instead of silent cross-tenant corruption.

    With spill enabled (``spill_bytes`` and/or ``spill_dir``), entries
    displaced from the in-RAM bound are demoted to a
    :class:`~repro.regions.DiskTier` instead of dropped, and a RAM miss
    that finds the entry on disk promotes it back (counted in both
    ``hits`` and ``disk_hits``).  Entries larger than ``max_bytes`` —
    refused outright without spill — go straight to disk.  The disk tier
    inherits the region layer's crash-safe cleanup (per-session spill
    directory, stale-session sweep, ``atexit`` hook).
    """

    def __init__(
        self,
        max_bytes: int = 256 << 20,
        spill_dir: Optional[str] = None,
        spill_bytes: Optional[int] = None,
    ):
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        if spill_bytes is not None and spill_bytes < 0:
            raise ValueError("spill_bytes must be >= 0 or None")
        self.max_bytes = max_bytes
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self._disk = None
        self._disk_keys: "OrderedDict[str, int]" = OrderedDict()
        if spill_dir is not None or (spill_bytes is not None and spill_bytes > 0):
            from ..regions.tiers import DiskTier

            self._disk = DiskTier(spill_bytes, root=spill_dir)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.puts = 0
        self.spills = 0
        self.disk_hits = 0

    def get(self, key: str) -> Optional[np.ndarray]:
        with self._lock:
            vol = self._entries.get(key)
            if vol is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return vol
            if self._disk is not None and key in self._disk_keys:
                vol = self._disk.get(key)
                if vol is not None:
                    self.hits += 1
                    self.disk_hits += 1
                    # Promote: hot again, so buy it a RAM slot (which may
                    # in turn spill the coldest RAM entry back down).
                    self._disk.remove(key)
                    self._disk_keys.pop(key, None)
                    self._admit(key, vol)
                    return vol
                self._disk_keys.pop(key, None)
            self.misses += 1
            return None

    def _spill(self, key: str, vol: np.ndarray) -> None:
        """Demote one entry to the disk tier, making room if bounded."""
        assert self._disk is not None
        self._disk_keys.pop(key, None)
        while not self._disk.put(key, vol):
            if not self._disk_keys:
                return  # larger than the whole spill budget: drop
            victim, _ = self._disk_keys.popitem(last=False)
            self._disk.remove(victim)
        self._disk_keys[key] = vol.nbytes
        self.spills += 1

    def _admit(self, key: str, vol: np.ndarray) -> None:
        """Insert into RAM, displacing LRU entries to disk (or dropping)."""
        if vol.nbytes > self.max_bytes:
            # Larger than the whole RAM bound: not worth thrashing.
            # Without spill this refuses the entry (legacy semantics).
            if self._disk is not None:
                self._spill(key, vol)
                self.puts += 1
            return
        self._entries[key] = vol
        self._bytes += vol.nbytes
        self.puts += 1
        while self._bytes > self.max_bytes and self._entries:
            evicted_key, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.nbytes
            self.evictions += 1
            if self._disk is not None:
                self._spill(evicted_key, evicted)

    def put(self, key: str, volume: np.ndarray) -> None:
        vol = np.ascontiguousarray(volume)
        vol.flags.writeable = False
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            if self._disk is not None and key in self._disk_keys:
                self._disk.remove(key)
                self._disk_keys.pop(key, None)
            self._admit(key, vol)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries or key in self._disk_keys

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries) + len(self._disk_keys)

    @property
    def bytes_used(self) -> int:
        """In-RAM payload bytes (spilled entries are not RAM)."""
        with self._lock:
            return self._bytes

    @property
    def disk_bytes_used(self) -> int:
        with self._lock:
            return self._disk.bytes_used if self._disk is not None else 0

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            if self._disk is not None:
                for key in list(self._disk_keys):
                    self._disk.remove(key)
                self._disk_keys.clear()

    def close(self) -> None:
        """Release the spill directory (idempotent; RAM entries survive)."""
        with self._lock:
            if self._disk is not None:
                self._disk.close()
                self._disk = None
                self._disk_keys.clear()

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / total) if total else 0.0,
                "puts": self.puts,
                "evictions": self.evictions,
                "spill_enabled": self._disk is not None,
                "spills": self.spills,
                "disk_hits": self.disk_hits,
                "disk_entries": len(self._disk_keys),
                "disk_bytes": (
                    self._disk.bytes_used if self._disk is not None else 0
                ),
            }

"""Content-addressed result cache for the analysis service.

Two cooperating pieces:

* :func:`volume_fingerprint` — a content hash over every file of a
  disk-resident dataset (node index files plus slice files), memoized
  per file by ``(size, mtime_ns)`` so repeated fingerprints of an
  unchanged dataset cost a handful of ``stat()`` calls instead of a
  re-read.  Rewriting a dataset in place changes the fingerprint, so a
  stale cache entry can never be served for new bytes.

* :class:`ResultCache` — an LRU cache of stitched feature volumes,
  bounded by payload bytes, with one entry **per feature** rather than
  per feature *set*.  A job asking for ``(asm, idm)`` fills two entries;
  a later job asking for ``(idm, entropy)`` reuses ``idm`` and only
  computes ``entropy``.

The cache key (:func:`result_key`) is the full identity of one feature
volume::

    v=<dataset content hash>/roi=5x5x5x3/levels=32/range=0,65535/dist=1/f=asm

Everything that changes the numbers is in the key; everything that is
guaranteed bit-identical across choices stays out of it.  Variant
(hmp/split), kernel backend, sparse mode, chunk shape, copy counts,
scheduling policy and runtime are all excluded **deliberately**: the
repo's conformance and property suites pin all of them to bit-identical
outputs, so including them would only fragment the cache.  The
direction set needs no explicit component because it is the fixed
canonical half-space set for the dataset's dimensionality, scaled by
``distance`` — which is in the key.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..filters.messages import TextureParams

__all__ = ["volume_fingerprint", "result_key", "ResultCache"]


# -- dataset fingerprinting -------------------------------------------------

# path -> ((size, mtime_ns), sha256 hex); guarded by _FP_LOCK.
_FILE_HASHES: Dict[str, Tuple[Tuple[int, int], str]] = {}
_FP_LOCK = threading.Lock()


def _file_digest(path: str) -> str:
    st = os.stat(path)
    sig = (st.st_size, st.st_mtime_ns)
    with _FP_LOCK:
        hit = _FILE_HASHES.get(path)
        if hit is not None and hit[0] == sig:
            return hit[1]
    h = hashlib.sha256()
    with open(path, "rb") as f:
        for block in iter(lambda: f.read(1 << 20), b""):
            h.update(block)
    digest = h.hexdigest()
    with _FP_LOCK:
        _FILE_HASHES[path] = (sig, digest)
    return digest


def volume_fingerprint(dataset_root: str) -> str:
    """Content hash of a disk-resident dataset (all files, sorted walk).

    Per-file digests are memoized by ``(size, mtime_ns)``, so the steady
    -state cost for an unchanged dataset is one ``stat()`` per file.
    """
    root = os.path.realpath(dataset_root)
    h = hashlib.sha256()
    seen = False
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root)
            h.update(rel.encode())
            h.update(b"\0")
            h.update(_file_digest(path).encode())
            h.update(b"\n")
            seen = True
    if not seen:
        raise FileNotFoundError(f"no dataset files under {dataset_root!r}")
    return h.hexdigest()


def result_key(volume_hash: str, params: TextureParams, feature: str) -> str:
    """Cache key for one feature volume (see module docstring)."""
    roi = "x".join(str(r) for r in params.roi_shape)
    lo, hi = params.intensity_range
    return (
        f"v={volume_hash}/roi={roi}/levels={params.levels}"
        f"/range={lo:g},{hi:g}/dist={params.distance}/f={feature}"
    )


# -- the LRU cache ----------------------------------------------------------


class ResultCache:
    """Byte-bounded LRU cache of feature volumes.

    Stored arrays are marked read-only and handed back without copying —
    every consumer of a pipeline result treats volumes as immutable, and
    the read-only flag turns an accidental in-place edit into an error
    instead of silent cross-tenant corruption.
    """

    def __init__(self, max_bytes: int = 256 << 20):
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.puts = 0

    def get(self, key: str) -> Optional[np.ndarray]:
        with self._lock:
            vol = self._entries.get(key)
            if vol is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return vol

    def put(self, key: str, volume: np.ndarray) -> None:
        vol = np.ascontiguousarray(volume)
        vol.flags.writeable = False
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            if vol.nbytes > self.max_bytes:
                return  # larger than the whole cache: not worth thrashing
            self._entries[key] = vol
            self._bytes += vol.nbytes
            self.puts += 1
            while self._bytes > self.max_bytes and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.evictions += 1

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / total) if total else 0.0,
                "puts": self.puts,
                "evictions": self.evictions,
            }

"""Client for the JSON-lines service protocol (``repro serve``).

Thin and dependency-free: one persistent TCP connection, one JSON
object per line in each direction.  ``repro submit`` is a CLI wrapper
around this class; tests drive it in-process against a
:class:`~repro.service.server.ServiceServer`.
"""

from __future__ import annotations

import base64
import json
import socket
from typing import Any, Dict, Optional

import numpy as np

__all__ = ["ServiceClient", "ServiceClientError", "decode_volume"]


class ServiceClientError(RuntimeError):
    """A request the server answered with ``ok: false``."""

    def __init__(self, response: Dict[str, Any]):
        super().__init__(response.get("error", "request failed"))
        self.kind = response.get("kind", "unknown")
        self.response = response


def decode_volume(entry: Dict[str, Any]) -> np.ndarray:
    """Rebuild a feature volume from its wire form (needs ``data``)."""
    if "data" not in entry:
        raise ValueError("volume entry carries no data (request arrays=True)")
    raw = base64.b64decode(entry["data"])
    vol = np.frombuffer(raw, dtype=np.dtype(entry["dtype"]))
    return vol.reshape(tuple(entry["shape"]))


class ServiceClient:
    """Talks to one :class:`~repro.service.server.ServiceServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7461,
                 timeout: Optional[float] = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._stream = self._sock.makefile("rwb")

    def _rpc(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        self._stream.write(json.dumps(msg).encode() + b"\n")
        self._stream.flush()
        line = self._stream.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        resp = json.loads(line)
        if not resp.get("ok"):
            raise ServiceClientError(resp)
        return resp

    # -- ops ---------------------------------------------------------------

    def ping(self) -> bool:
        return bool(self._rpc({"op": "ping"}).get("pong"))

    def submit(self, **payload: Any) -> str:
        """Submit a job (payload fields per ``request_from_payload``)."""
        return self._rpc({"op": "submit", "request": payload})["job"]

    def status(self, job_id: str) -> str:
        return self._rpc({"op": "status", "job": job_id})["status"]

    def result(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        arrays: bool = False,
    ) -> Dict[str, Any]:
        """Wait for and fetch one job's result (raises on failure).

        With ``arrays=True`` the ``volumes`` entries are decoded to
        ndarrays; otherwise they stay summaries.
        """
        resp = self._rpc(
            {"op": "result", "job": job_id, "timeout": timeout,
             "arrays": arrays}
        )
        if arrays:
            resp["volumes"] = {
                name: decode_volume(entry)
                for name, entry in resp["volumes"].items()
            }
        return resp

    def cancel(self, job_id: str) -> bool:
        return bool(self._rpc({"op": "cancel", "job": job_id})["cancelled"])

    def stats(self) -> Dict[str, Any]:
        return self._rpc({"op": "stats"})["stats"]

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        try:
            self._stream.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

"""Admission control and weighted fair scheduling for the job queue.

The queue implements classic weighted fair queuing (start-time fair
queuing over a virtual clock): each tenant holds a FIFO of its own
jobs, and every job is stamped at admission with a virtual finish time

    vft = max(global_vclock, tenant_last_vft) + cost / weight

(``cost`` is 1 per job).  Workers always pop the job with the smallest
finish tag among the tenant queue heads, and the global clock advances
to that tag.  A weight-2 tenant therefore drains twice as fast as a
weight-1 tenant under saturation, an idle tenant's first job is never
penalized for its idle period (the ``max`` with the global clock), and
within one tenant order is strictly FIFO.

Admission control is a hard bound on queued jobs: :meth:`FairQueue.push`
raises :class:`AdmissionError` — with a human-readable reason — instead
of growing without bound or silently blocking the submitter.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Dict, List, Mapping, Optional

from .jobs import JobHandle

__all__ = ["AdmissionError", "FairQueue"]


class AdmissionError(RuntimeError):
    """A job was rejected at submission; ``reason`` says why."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class _TenantQueue:
    __slots__ = ("weight", "jobs", "last_vft")

    def __init__(self, weight: float):
        self.weight = weight
        self.jobs: "deque[JobHandle]" = deque()
        self.last_vft = 0.0


class FairQueue:
    """Bounded multi-tenant job queue with weighted fair ordering."""

    def __init__(
        self,
        max_queued: int = 64,
        weights: Optional[Mapping[str, float]] = None,
        default_weight: float = 1.0,
    ):
        if max_queued < 1:
            raise ValueError("max_queued must be >= 1")
        if default_weight <= 0:
            raise ValueError("default_weight must be > 0")
        for tenant, w in (weights or {}).items():
            if w <= 0:
                raise ValueError(f"weight for tenant {tenant!r} must be > 0")
        self.max_queued = max_queued
        self.default_weight = default_weight
        self._weights = dict(weights or {})
        self._cond = threading.Condition()
        self._tenants: Dict[str, _TenantQueue] = {}
        self._vclock = 0.0
        self._depth = 0
        self._closed = False

    # -- admission ---------------------------------------------------------

    def push(self, job: JobHandle) -> None:
        """Admit a job or raise :class:`AdmissionError` with a reason."""
        with self._cond:
            if self._closed:
                raise AdmissionError("service is shut down")
            if self._depth >= self.max_queued:
                raise AdmissionError(
                    f"queue saturated ({self._depth}/{self.max_queued} "
                    f"jobs queued); retry later or raise max_queued"
                )
            tq = self._tenants.get(job.tenant)
            if tq is None:
                weight = self._weights.get(job.tenant, self.default_weight)
                tq = self._tenants[job.tenant] = _TenantQueue(weight)
            start = max(self._vclock, tq.last_vft)
            job._vft = start + 1.0 / tq.weight
            tq.last_vft = job._vft
            tq.jobs.append(job)
            self._depth += 1
            job._dequeue = self._remove_by_id
            self._cond.notify()

    # -- dispatch ----------------------------------------------------------

    def pop(self, timeout: Optional[float] = None) -> Optional[JobHandle]:
        """Pop the fair-schedule head; None on timeout or close."""
        with self._cond:
            while True:
                job = self._pop_locked()
                if job is not None:
                    return job
                if self._closed:
                    return None
                if not self._cond.wait(timeout):
                    return None

    def _pop_locked(self) -> Optional[JobHandle]:
        best: Optional[_TenantQueue] = None
        for tq in self._tenants.values():
            if tq.jobs and (best is None or tq.jobs[0]._vft < best.jobs[0]._vft):
                best = tq
        if best is None:
            return None
        job = best.jobs.popleft()
        self._depth -= 1
        if job._vft > self._vclock:
            self._vclock = job._vft
        return job

    def take_matching(
        self, match: Callable[[JobHandle], bool], limit: int
    ) -> List[JobHandle]:
        """Remove up to ``limit`` queued jobs for which ``match`` is true.

        Used for request batching: a worker that popped a job pulls its
        co-batchable siblings (same dataset/parameters, any tenant) out
        of the queue in fair (finish-tag) order, so one pipeline pass
        serves all of them.  Finish tags were fixed at admission, so the
        remaining jobs' relative order is untouched.
        """
        out: List[JobHandle] = []
        if limit <= 0:
            return out
        with self._cond:
            candidates: List[JobHandle] = []
            for tq in self._tenants.values():
                candidates.extend(j for j in tq.jobs if match(j))
            candidates.sort(key=lambda j: j._vft)
            for job in candidates[:limit]:
                self._tenants[job.tenant].jobs.remove(job)
                self._depth -= 1
                out.append(job)
        return out

    def _remove_by_id(self, job_id: str) -> bool:
        """Pull a still-queued job out (cancellation); False if gone."""
        with self._cond:
            for tq in self._tenants.values():
                for job in tq.jobs:
                    if job.id == job_id:
                        tq.jobs.remove(job)
                        self._depth -= 1
                        return True
        return False

    # -- introspection / lifecycle -----------------------------------------

    def depth(self) -> int:
        with self._cond:
            return self._depth

    def depths(self) -> Dict[str, int]:
        with self._cond:
            return {t: len(tq.jobs) for t, tq in self._tenants.items()}

    def weight_of(self, tenant: str) -> float:
        with self._cond:
            tq = self._tenants.get(tenant)
            if tq is not None:
                return tq.weight
            return self._weights.get(tenant, self.default_weight)

    def drain(self) -> List[JobHandle]:
        """Remove and return everything still queued (shutdown path)."""
        with self._cond:
            out: List[JobHandle] = []
            for tq in self._tenants.values():
                out.extend(tq.jobs)
                tq.jobs.clear()
            self._depth = 0
            return out

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def stats(self) -> Dict[str, Any]:
        with self._cond:
            return {
                "depth": self._depth,
                "max_queued": self.max_queued,
                "per_tenant": {
                    t: {"queued": len(tq.jobs), "weight": tq.weight}
                    for t, tq in self._tenants.items()
                },
            }

"""Job types for the analysis service: requests, handles, results.

A :class:`JobHandle` is the caller's view of one submitted analysis —
a small thread-safe state machine (``queued -> running -> done |
failed``, with ``cancelled`` reachable from ``queued``).  The service
resolves it from a worker thread; callers block on :meth:`JobHandle.result`
or poll :attr:`JobHandle.status` from any thread.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..datacutter.faults import FaultPlan, RetryPolicy
from ..datacutter.obs import Trace
from ..pipeline.config import AnalysisConfig
from .pool import RuntimeProfile

__all__ = ["JobStatus", "AnalysisRequest", "JobResult", "JobHandle", "JobError"]


class JobStatus:
    """String states of one job (plain strings: JSON- and wire-safe)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    ALL = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
    #: States a job can never leave.
    TERMINAL = (DONE, FAILED, CANCELLED)


class JobError(RuntimeError):
    """Raised by :meth:`JobHandle.result` for failed or cancelled jobs."""


@dataclass
class AnalysisRequest:
    """Everything one analysis job needs.

    ``config.output`` must be ``"volumes"`` — the service returns
    stitched feature volumes, it does not write image/USO files on
    behalf of remote tenants.

    ``faults`` (fault-injection runs) opt the job out of the result
    cache and of request batching: injected failures are a property of
    one run, so neither its outputs nor its runtime pass may be shared
    with unsuspecting co-tenants.
    """

    dataset_root: str
    config: AnalysisConfig = field(default_factory=AnalysisConfig)
    tenant: str = "default"
    profile: RuntimeProfile = field(default_factory=RuntimeProfile)
    retry: Optional[RetryPolicy] = None
    faults: Optional[FaultPlan] = None
    trace: bool = False
    use_cache: bool = True
    batchable: bool = True
    run_timeout: Optional[float] = None


@dataclass
class JobResult:
    """Outcome of one completed job.

    ``cached`` / ``computed`` partition the requested features by where
    their volume came from; ``batch_size`` counts the jobs packed into
    the pipeline pass that produced the computed ones (1 = solo run,
    0 = served entirely from cache).
    """

    job_id: str
    volumes: Dict[str, np.ndarray]
    cached: Tuple[str, ...]
    computed: Tuple[str, ...]
    elapsed: float
    queue_wait: float
    batch_size: int
    trace: Optional[Trace] = None

    @property
    def cache_hit(self) -> bool:
        """True when at least one feature was served from the cache."""
        return bool(self.cached)

    @property
    def from_cache_only(self) -> bool:
        return not self.computed


class JobHandle:
    """Caller-facing view of one submitted job."""

    def __init__(self, job_id: str, request: AnalysisRequest):
        self.id = job_id
        self.request = request
        self.tenant = request.tenant
        self.submitted_at = time.time()
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._status = JobStatus.QUEUED
        self._result: Optional[JobResult] = None
        self._error: Optional[BaseException] = None
        # Set by the queue so cancel() can pull a still-queued job out.
        self._dequeue = None
        # Virtual finish tag stamped at admission (fair queue ordering).
        self._vft = 0.0

    # -- caller API --------------------------------------------------------

    @property
    def status(self) -> str:
        return self._status

    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._done.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> JobResult:
        """Block for and return the result; raise for failure/cancel."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"job {self.id} still {self._status} after {timeout}s"
            )
        if self._status == JobStatus.DONE:
            assert self._result is not None
            return self._result
        if self._status == JobStatus.CANCELLED:
            raise JobError(f"job {self.id} was cancelled")
        err = self._error
        raise JobError(f"job {self.id} failed: {err}") from err

    @property
    def error(self) -> Optional[BaseException]:
        return self._error

    def cancel(self) -> bool:
        """Cancel the job if it has not started running yet.

        Returns True when the job transitioned to ``cancelled``; a job
        already running (or finished) is not preempted and False comes
        back.
        """
        with self._lock:
            if self._status != JobStatus.QUEUED:
                return False
            dequeue = self._dequeue
            if dequeue is not None and not dequeue(self.id):
                return False  # a worker claimed it first
            self._status = JobStatus.CANCELLED
        self._done.set()
        return True

    # -- service-side transitions ------------------------------------------

    def _start(self) -> bool:
        """queued -> running; False when the job was cancelled first."""
        with self._lock:
            if self._status != JobStatus.QUEUED:
                return False
            self._status = JobStatus.RUNNING
            return True

    def _finish(self, result: JobResult) -> None:
        with self._lock:
            if self._status in JobStatus.TERMINAL:
                return
            self._status = JobStatus.DONE
            self._result = result
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        with self._lock:
            if self._status in JobStatus.TERMINAL:
                return
            self._status = JobStatus.FAILED
            self._error = error
        self._done.set()

    def _cancel_from_service(self) -> None:
        """Force-cancel (service shutdown with the job still queued)."""
        with self._lock:
            if self._status in JobStatus.TERMINAL:
                return
            self._status = JobStatus.CANCELLED
        self._done.set()

    def __repr__(self) -> str:
        return (
            f"JobHandle(id={self.id!r}, tenant={self.tenant!r}, "
            f"status={self._status!r})"
        )

"""Warm runtime pools: build pipeline state once, run it many times.

One pool entry holds the full build-phase product for one
``(dataset, analysis config, runtime profile)`` combination: the opened
:class:`~repro.storage.dataset.DiskDataset4D`, the wired and validated
:class:`~repro.datacutter.graph.FilterGraph`, the constructed runtime
object, and — for the shared-memory transport — an externally owned
:class:`~repro.datacutter.net.shm.ShmPool` whose slab allocation is the
single most expensive piece of multiprocess-runtime setup.  Jobs lease
an entry, run it, and hand it back; the build work is paid once per
distinct configuration instead of once per job.

When the entry's config enables region staging (``config.staging``),
the prepared pipeline also carries a
:class:`~repro.regions.RegionStore` shared across every run on the
entry — chunk-granular caching: the second job on a warm entry finds
all of its IIC-to-TEXTURE chunks already staged and assembles them as
pure region hits instead of re-reading the dataset.

Leases serialize: one runtime executes one run at a time (the runtimes
themselves enforce this with their run guards), so a lease blocks until
the entry is free.  Distinct entries run concurrently.

A job that fails while holding a lease **poisons** the entry: the pool
discards it (tearing the runtime down, destroying the warm shm pool)
rather than leasing possibly wedged state to the next tenant.  Eviction
is LRU over idle entries when the pool exceeds ``max_entries``; a leased
entry is never evicted under a running job.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..datacutter.faults import FaultPlan, RetryPolicy
from ..datacutter.net import shm
from ..pipeline.config import AnalysisConfig
from ..pipeline.run import PreparedPipeline, build_runtime, prepare_pipeline

__all__ = ["RuntimeProfile", "RuntimePool", "PoolLease"]


@dataclass(frozen=True)
class RuntimeProfile:
    """Hashable description of how to build an execution backend.

    Mirrors the backend-selection arguments of
    :func:`repro.pipeline.build_runtime`; being frozen and hashable it
    doubles as (part of) the pool key, so two jobs asking for the same
    backend shape land on the same warm entry.
    """

    runtime: str = "threads"
    max_queue: int = 64
    transport: str = "pipe"
    shm_segments: Optional[int] = None
    shm_segment_bytes: Optional[int] = None
    shm_threshold: Optional[int] = None
    hosts: Optional[Tuple[str, ...]] = None
    elastic: bool = False
    heartbeat_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        from ..pipeline.run import RUNTIMES

        if self.runtime not in RUNTIMES:
            raise ValueError(
                f"runtime must be one of {RUNTIMES}, got {self.runtime!r}"
            )
        if self.hosts is not None and not isinstance(self.hosts, tuple):
            object.__setattr__(self, "hosts", tuple(self.hosts))

    @property
    def warm_shm(self) -> bool:
        """True when entries of this profile carry a reusable ShmPool."""
        return self.runtime == "processes" and self.transport == "shm"


class _PoolEntry:
    __slots__ = (
        "key", "prepared", "runtime", "shm_pool", "mutex",
        "uses", "last_used", "poisoned",
    )

    def __init__(self, key, prepared, runtime, shm_pool):
        self.key = key
        self.prepared: PreparedPipeline = prepared
        self.runtime = runtime
        self.shm_pool: Optional[shm.ShmPool] = shm_pool
        self.mutex = threading.Lock()
        self.uses = 0
        self.last_used = 0
        self.poisoned = False

    def teardown(self) -> None:
        try:
            self.runtime.close()
        finally:
            # Releases the entry's region store (staged chunks, spill
            # files, shm slabs) along with the warm transport pool.
            self.prepared.close()
            if self.shm_pool is not None:
                self.shm_pool.destroy()
                self.shm_pool = None


class PoolLease:
    """Context manager handed to a worker for one run on one entry."""

    def __init__(self, pool: "RuntimePool", entry: _PoolEntry, reused: bool):
        self._pool = pool
        self._entry = entry
        self.reused = reused

    @property
    def prepared(self) -> PreparedPipeline:
        return self._entry.prepared

    @property
    def runtime(self):
        return self._entry.runtime

    def poison(self) -> None:
        """Mark the leased entry unfit for reuse (job failed on it)."""
        self._entry.poisoned = True

    def __enter__(self) -> "PoolLease":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._entry.poisoned = True
        self._pool._release(self._entry)
        return False


class RuntimePool:
    """LRU pool of warm ``(prepared pipeline, runtime)`` entries."""

    def __init__(self, max_entries: int = 4):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: Dict[Any, _PoolEntry] = {}
        self._use_seq = itertools.count(1)
        self._closed = False
        self.builds = 0
        self.reuses = 0
        self.evictions = 0
        self.discards = 0

    # -- keying ------------------------------------------------------------

    @staticmethod
    def entry_key(
        dataset_root: str,
        config: AnalysisConfig,
        profile: RuntimeProfile,
        trace: bool,
        retry: Optional[RetryPolicy],
        faults: Optional[FaultPlan],
    ) -> Tuple:
        """Everything that feeds the build phase, hashable.

        ``faults`` is keyed by identity: fault plans are mutable builder
        objects, and two distinct plans must never share an entry even
        if they currently describe the same faults.
        """
        return (
            os.path.realpath(dataset_root),
            config,
            profile,
            bool(trace),
            retry,
            id(faults) if faults is not None else None,
        )

    # -- lease / release ---------------------------------------------------

    def lease(
        self,
        dataset_root: str,
        config: AnalysisConfig,
        profile: Optional[RuntimeProfile] = None,
        trace: bool = False,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
    ) -> PoolLease:
        """Lease a warm entry, building it on first use.

        Blocks while another job runs on the same entry (one run per
        runtime instance); distinct entries lease independently.
        """
        profile = profile or RuntimeProfile()
        key = self.entry_key(dataset_root, config, profile, trace, retry, faults)
        while True:
            with self._lock:
                if self._closed:
                    raise RuntimeError("runtime pool is closed")
                entry = self._entries.get(key)
                if entry is None:
                    entry = self._build(
                        key, dataset_root, config, profile, trace, retry, faults
                    )
                    self._entries[key] = entry
                    self.builds += 1
                    # Stamp recency now so capacity eviction below never
                    # picks the entry we are about to lease.
                    entry.last_used = next(self._use_seq)
                    reused = False
                    self._evict_over_capacity()
                else:
                    self.reuses += 1
                    reused = True
            entry.mutex.acquire()
            if entry.poisoned:
                # A previous holder failed on it after we looked it up;
                # retire it and build a fresh entry on the next pass.
                self._retire_locked(entry)
                entry.mutex.release()
                continue
            entry.uses += 1
            entry.last_used = next(self._use_seq)
            return PoolLease(self, entry, reused)

    def _build(
        self, key, dataset_root, config, profile, trace, retry, faults
    ) -> _PoolEntry:
        prepared = prepare_pipeline(dataset_root, config)
        shm_pool = None
        if profile.warm_shm:
            geometry = {
                k: v
                for k, v in (
                    ("segments", profile.shm_segments),
                    ("segment_bytes", profile.shm_segment_bytes),
                    ("threshold", profile.shm_threshold),
                )
                if v is not None
            }
            shm_pool = shm.ShmPool(mp.get_context("fork"), **geometry)
        try:
            runtime = build_runtime(
                prepared.graph,
                runtime=profile.runtime,
                max_queue=profile.max_queue,
                retry=retry if retry is not None else config.retry,
                faults=faults,
                trace=trace,
                transport=profile.transport,
                shm_pool=shm_pool,
                hosts=list(profile.hosts) if profile.hosts else None,
                elastic=profile.elastic,
                heartbeat_timeout=profile.heartbeat_timeout,
            )
        except BaseException:
            if shm_pool is not None:
                shm_pool.destroy()
            raise
        return _PoolEntry(key, prepared, runtime, shm_pool)

    def _release(self, entry: _PoolEntry) -> None:
        if entry.poisoned:
            self._retire_locked(entry)
        entry.mutex.release()

    def _retire_locked(self, entry: _PoolEntry) -> None:
        """Remove + tear down a poisoned entry; caller holds its mutex.

        Teardown is idempotent, so a lease-waiter that acquires the
        mutex after the failing holder retired the entry simply retires
        it again (a no-op) and rebuilds.
        """
        with self._lock:
            if self._entries.get(entry.key) is entry:
                del self._entries[entry.key]
                self.discards += 1
        entry.teardown()

    def _evict_over_capacity(self) -> None:
        """LRU-evict idle entries beyond capacity (caller holds _lock)."""
        while len(self._entries) > self.max_entries:
            idle = [
                e for e in self._entries.values()
                if not e.mutex.locked() and not e.poisoned
            ]
            if not idle:
                return  # everything is running; allow temporary overflow
            victim = min(idle, key=lambda e: e.last_used)
            del self._entries[victim.key]
            self.evictions += 1
            # A lease-waiter that looked the victim up before this point
            # must not run on it: poisoned makes it retire and rebuild.
            victim.poisoned = True
            victim.teardown()

    # -- lifecycle / introspection -----------------------------------------

    def close(self) -> None:
        """Tear down every entry (waits for in-flight leases)."""
        with self._lock:
            self._closed = True
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            with entry.mutex:
                entry.poisoned = True
                entry.teardown()

    def __enter__(self) -> "RuntimePool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "builds": self.builds,
                "reuses": self.reuses,
                "evictions": self.evictions,
                "discards": self.discards,
            }

"""JSON-lines TCP front end for :class:`AnalysisService`.

One request per line, one response per line — the same framing the
``repro submit`` client and :class:`~repro.service.client.ServiceClient`
speak.  The protocol is deliberately tiny (submit / status / result /
cancel / stats / ping) and fully JSON: feature volumes travel either as
summaries (shape, dtype, min/max/mean, content sha256) or, on request,
as base64-encoded raw bytes.

This is an operational front end for trusted networks, not a hardened
public endpoint: there is no authentication, and tenants are
self-declared.
"""

from __future__ import annotations

import base64
import hashlib
import json
import socket
import threading
from typing import Any, Dict, Optional

import numpy as np

from ..filters.messages import TextureParams
from ..pipeline.config import AnalysisConfig
from .fair_queue import AdmissionError
from .jobs import AnalysisRequest, JobStatus
from .pool import RuntimeProfile
from .service import AnalysisService

__all__ = ["ServiceServer", "request_from_payload", "encode_volume"]


def request_from_payload(payload: Dict[str, Any]) -> AnalysisRequest:
    """Build an :class:`AnalysisRequest` from a wire payload dict."""
    known = {
        "dataset", "tenant", "features", "levels", "roi", "distance",
        "intensity_range", "variant", "copies", "runtime", "transport",
        "max_queue", "trace", "use_cache", "batchable", "run_timeout",
    }
    unknown = set(payload) - known
    if unknown:
        raise ValueError(f"unknown request fields: {sorted(unknown)}")
    if "dataset" not in payload:
        raise ValueError("request needs a 'dataset' field")
    texture_kwargs: Dict[str, Any] = {}
    if "features" in payload:
        texture_kwargs["features"] = tuple(payload["features"])
    if "levels" in payload:
        texture_kwargs["levels"] = int(payload["levels"])
    if "roi" in payload:
        texture_kwargs["roi_shape"] = tuple(int(r) for r in payload["roi"])
    if "distance" in payload:
        texture_kwargs["distance"] = int(payload["distance"])
    if "intensity_range" in payload:
        lo, hi = payload["intensity_range"]
        texture_kwargs["intensity_range"] = (float(lo), float(hi))
    config_kwargs: Dict[str, Any] = {"texture": TextureParams(**texture_kwargs)}
    if "variant" in payload:
        config_kwargs["variant"] = payload["variant"]
    if "copies" in payload:
        config_kwargs["num_texture_copies"] = int(payload["copies"])
    profile_kwargs: Dict[str, Any] = {}
    if "runtime" in payload:
        profile_kwargs["runtime"] = payload["runtime"]
    if "transport" in payload:
        profile_kwargs["transport"] = payload["transport"]
    if "max_queue" in payload:
        profile_kwargs["max_queue"] = int(payload["max_queue"])
    return AnalysisRequest(
        dataset_root=payload["dataset"],
        config=AnalysisConfig(**config_kwargs),
        tenant=str(payload.get("tenant", "default")),
        profile=RuntimeProfile(**profile_kwargs),
        trace=bool(payload.get("trace", False)),
        use_cache=bool(payload.get("use_cache", True)),
        batchable=bool(payload.get("batchable", True)),
        run_timeout=payload.get("run_timeout"),
    )


def encode_volume(vol: np.ndarray, arrays: bool) -> Dict[str, Any]:
    """Wire form of one feature volume (summary, plus bytes if asked)."""
    out: Dict[str, Any] = {
        "shape": list(vol.shape),
        "dtype": str(vol.dtype),
        "min": float(vol.min()),
        "max": float(vol.max()),
        "mean": float(vol.mean()),
        "sha256": hashlib.sha256(np.ascontiguousarray(vol).tobytes()).hexdigest(),
    }
    if arrays:
        out["data"] = base64.b64encode(
            np.ascontiguousarray(vol).tobytes()
        ).decode("ascii")
    return out


class ServiceServer:
    """Serves one :class:`AnalysisService` over a JSON-lines TCP socket."""

    def __init__(
        self,
        service: AnalysisService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(16)
        self.host, self.port = self._sock.getsockname()[:2]
        self._closed = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-service-accept", daemon=True
        )
        self._accept_thread.start()

    # -- connection handling -----------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # socket closed
            threading.Thread(
                target=self._serve_conn, args=(conn,), daemon=True
            ).start()

    def _serve_conn(self, conn: socket.socket) -> None:
        with conn, conn.makefile("rwb") as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    msg = json.loads(line)
                    resp = self._dispatch(msg)
                except AdmissionError as exc:
                    resp = {"ok": False, "kind": "admission", "error": str(exc)}
                except (ValueError, KeyError, TypeError) as exc:
                    resp = {"ok": False, "kind": "invalid", "error": str(exc)}
                except Exception as exc:
                    resp = {"ok": False, "kind": "internal", "error": str(exc)}
                stream.write(json.dumps(resp).encode() + b"\n")
                stream.flush()

    # -- ops ---------------------------------------------------------------

    def _dispatch(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        op = msg.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "submit":
            request = request_from_payload(msg.get("request", {}))
            job = self.service.submit(request)
            return {"ok": True, "job": job.id, "status": job.status}
        if op == "status":
            job_id = msg["job"]
            return {"ok": True, "job": job_id,
                    "status": self.service.status(job_id)}
        if op == "result":
            return self._op_result(msg)
        if op == "cancel":
            job_id = msg["job"]
            return {"ok": True, "job": job_id,
                    "cancelled": self.service.cancel(job_id)}
        if op == "stats":
            return {"ok": True, "stats": self.service.stats()}
        raise ValueError(f"unknown op {op!r}")

    def _op_result(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        job_id = msg["job"]
        handle = self.service._handle(job_id)
        timeout = msg.get("timeout")
        if not handle.wait(timeout):
            return {"ok": False, "kind": "timeout", "job": job_id,
                    "status": handle.status,
                    "error": f"job {job_id} not finished"}
        if handle.status != JobStatus.DONE:
            return {"ok": False, "kind": "job", "job": job_id,
                    "status": handle.status,
                    "error": str(handle.error or handle.status)}
        result = handle.result()
        arrays = bool(msg.get("arrays", False))
        return {
            "ok": True,
            "job": job_id,
            "status": JobStatus.DONE,
            "cached": list(result.cached),
            "computed": list(result.computed),
            "elapsed": result.elapsed,
            "queue_wait": result.queue_wait,
            "batch_size": result.batch_size,
            "volumes": {
                name: encode_volume(vol, arrays)
                for name, vol in sorted(result.volumes.items())
            },
        }

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "ServiceServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

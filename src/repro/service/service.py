"""The always-on analysis service: jobs in, feature volumes out.

:class:`AnalysisService` is the long-lived, multi-tenant front end to
the parallel pipeline.  One process hosts one service; tenants submit
:class:`~repro.service.jobs.AnalysisRequest`\\ s and get back
:class:`~repro.service.jobs.JobHandle`\\ s they can poll, block on or
cancel.  Between the queue and the pipeline sit the three subsystems
this module wires together:

* a :class:`~repro.service.fair_queue.FairQueue` — bounded admission
  (reject with a reason, never block the submitter) and weighted fair
  ordering across tenants;
* a :class:`~repro.service.pool.RuntimePool` of warm runtimes — the
  dataset open, graph build/validation and (for the shm transport) slab
  allocation are paid once per distinct configuration;
* a :class:`~repro.service.cache.ResultCache` — content-addressed
  per-feature volumes, so duplicate work is served in microseconds and
  overlapping feature sets only compute the difference.

Workers additionally **batch**: when a popped job's dataset and
parameters match other queued jobs (any tenant), the worker pulls them
in and executes one pipeline pass over the union of the missing
features, then deals each job its requested slice of the results.

Every result is bit-identical to a one-shot
:func:`repro.pipeline.run_pipeline` call with the same request — the
cache key covers exactly the parameters that determine the numbers, and
batching only ever widens the feature set, which the pipeline computes
per-feature independently.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from ..datacutter.obs import MetricsRegistry
from ..pipeline.config import AnalysisConfig
from ..pipeline.run import execute_pipeline
from ..regions import StagingPolicy
from .cache import ResultCache, result_key, volume_fingerprint
from .fair_queue import AdmissionError, FairQueue
from .jobs import AnalysisRequest, JobHandle, JobResult, JobStatus
from .pool import RuntimePool, RuntimeProfile

__all__ = ["ServiceConfig", "AnalysisService"]


@dataclass
class ServiceConfig:
    """Tunables of one :class:`AnalysisService` instance."""

    #: Worker threads executing jobs (one pipeline pass each at a time).
    workers: int = 2
    #: Hard bound on queued jobs; beyond it submissions are rejected.
    max_queued: int = 64
    #: Per-tenant fair-share weights; unlisted tenants get the default.
    tenant_weights: Mapping[str, float] = field(default_factory=dict)
    default_weight: float = 1.0
    #: Pack co-batchable queued jobs into one pipeline pass (<= batch_max).
    batching: bool = True
    batch_max: int = 8
    #: Result cache budget in payload bytes; 0 disables caching.
    cache_bytes: int = 256 << 20
    #: Disk budget for result-cache spill; entries displaced from the
    #: in-RAM bound demote to disk instead of dropping.  ``None`` with
    #: no spill dir disables spill (legacy behaviour); 0 disables too.
    cache_spill_bytes: Optional[int] = None
    #: Spill directory override (default: $TMPDIR/repro-regions).
    #: Setting only this enables unbounded spill.
    cache_spill_dir: Optional[str] = None
    #: Default region-staging policy applied to jobs whose config does
    #: not set one: warm pool entries then share a chunk-granular
    #: :class:`~repro.regions.RegionStore` across jobs.  ``None`` leaves
    #: request configs untouched.
    staging: Optional[StagingPolicy] = None
    #: Warm runtime entries kept alive across jobs.
    pool_entries: int = 4
    #: Worker poll interval while the queue is empty, seconds.
    poll: float = 0.05

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.batch_max < 1:
            raise ValueError("batch_max must be >= 1")


class AnalysisService:
    """Always-on multi-tenant front end to the parallel pipeline."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.metrics = MetricsRegistry()
        self.cache = ResultCache(
            max_bytes=self.config.cache_bytes,
            spill_dir=self.config.cache_spill_dir,
            spill_bytes=self.config.cache_spill_bytes,
        )
        self.pool = RuntimePool(max_entries=self.config.pool_entries)
        self.queue = FairQueue(
            max_queued=self.config.max_queued,
            weights=self.config.tenant_weights,
            default_weight=self.config.default_weight,
        )
        self._jobs: Dict[str, JobHandle] = {}
        self._jobs_lock = threading.Lock()
        self._seq = 0
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{i}",
                daemon=True,
            )
            for i in range(self.config.workers)
        ]
        for t in self._workers:
            t.start()

    # -- submission --------------------------------------------------------

    def submit(
        self, request: Optional[AnalysisRequest] = None, **kwargs: Any
    ) -> JobHandle:
        """Admit one job; returns its handle or raises.

        Accepts a prebuilt :class:`AnalysisRequest` or its fields as
        keyword arguments.  Raises :class:`ValueError` for malformed
        requests and :class:`AdmissionError` when the service refuses
        the job (saturated queue, shut down).
        """
        if request is None:
            request = AnalysisRequest(**kwargs)
        elif kwargs:
            raise ValueError("pass a request object or fields, not both")
        if request.config.output != "volumes":
            raise ValueError(
                "the analysis service only supports output='volumes' "
                f"configs, got output={request.config.output!r}"
            )
        if not os.path.isdir(request.dataset_root):
            raise ValueError(
                f"dataset_root {request.dataset_root!r} is not a directory"
            )
        if self._closed:
            raise AdmissionError("service is shut down")
        with self._jobs_lock:
            self._seq += 1
            job = JobHandle(f"j-{self._seq:06d}", request)
            self._jobs[job.id] = job
        try:
            self.queue.push(job)
        except AdmissionError:
            with self._jobs_lock:
                del self._jobs[job.id]
            self.metrics.counter(
                "service_rejected", tenant=request.tenant
            ).inc()
            raise
        self.metrics.counter("service_submitted", tenant=request.tenant).inc()
        self.metrics.gauge("service_queue_depth").set(float(self.queue.depth()))
        return job

    # -- job API -----------------------------------------------------------

    def _handle(self, job_id: str) -> JobHandle:
        with self._jobs_lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job id {job_id!r}")
        return job

    def status(self, job_id: str) -> str:
        return self._handle(job_id).status

    def result(self, job_id: str, timeout: Optional[float] = None) -> JobResult:
        return self._handle(job_id).result(timeout)

    def cancel(self, job_id: str) -> bool:
        job = self._handle(job_id)
        cancelled = job.cancel()
        if cancelled:
            self._count_outcome(job)
        return cancelled

    def jobs(self) -> List[JobHandle]:
        with self._jobs_lock:
            return list(self._jobs.values())

    # -- worker side -------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self.queue.pop(timeout=self.config.poll)
            if job is None:
                if self._closed:
                    return
                continue
            try:
                self._process(job)
            except BaseException as exc:  # never kill the worker thread
                job._fail(exc)
                self._count_outcome(job)

    def _cache_split(self, job: JobHandle, fingerprint: Optional[str]):
        """Partition a job's features into (cached {name: volume}, missing)."""
        req = job.request
        if fingerprint is None or not req.use_cache:
            return {}, list(req.config.texture.features)
        cached: Dict[str, np.ndarray] = {}
        missing: List[str] = []
        for feat in req.config.texture.features:
            vol = self.cache.get(result_key(fingerprint, req.config.texture, feat))
            if vol is None:
                missing.append(feat)
            else:
                cached[feat] = vol
        self.metrics.counter("service_cache_hits").inc(len(cached))
        self.metrics.counter("service_cache_misses").inc(len(missing))
        return cached, missing

    @staticmethod
    def _batch_key(job: JobHandle):
        """Jobs with equal batch keys can share one pipeline pass.

        Everything about the run except the feature set must match —
        including the runtime profile (they run on one pooled runtime)
        and the trace flag (trace events are stamped per batch).
        """
        req = job.request
        texture = replace(req.config.texture, features=("asm",))
        return (
            os.path.realpath(req.dataset_root),
            replace(req.config, texture=texture),
            req.profile,
            req.retry,
            bool(req.trace),
            req.run_timeout,
        )

    def _process(self, primary: JobHandle) -> None:
        if not primary._start():
            return  # cancelled while queued
        self.metrics.gauge("service_queue_depth").set(float(self.queue.depth()))
        req = primary.request
        fingerprint = None
        if req.use_cache and req.faults is None and self.cache.max_bytes > 0:
            fingerprint = volume_fingerprint(req.dataset_root)
        cached, missing = self._cache_split(primary, fingerprint)

        if not missing:
            self._finish_from_cache(primary, cached)
            return

        # Pull co-batchable queued jobs into this pass (any tenant).
        batch = [(primary, cached, missing)]
        if (
            self.config.batching
            and req.batchable
            and req.faults is None
            and self.config.batch_max > 1
        ):
            key = self._batch_key(primary)
            mates = self.queue.take_matching(
                lambda j: (
                    j.request.batchable
                    and j.request.faults is None
                    and self._batch_key(j) == key
                ),
                self.config.batch_max - 1,
            )
            for mate in mates:
                if not mate._start():
                    continue  # cancelled while queued
                m_cached, m_missing = self._cache_split(mate, fingerprint)
                if not m_missing:
                    self._finish_from_cache(mate, m_cached)
                else:
                    batch.append((mate, m_cached, m_missing))

        union = sorted({feat for _, _, m in batch for feat in m})
        exec_config = replace(
            req.config, texture=replace(req.config.texture, features=tuple(union))
        )
        if exec_config.staging is None and self.config.staging is not None:
            # Service-wide default: pool entries built from this config
            # share a chunk-granular region store across jobs.  Staging
            # never changes the numbers, so the result-cache key is
            # untouched.
            exec_config = replace(exec_config, staging=self.config.staging)
        started = time.time()
        try:
            with self.pool.lease(
                req.dataset_root,
                exec_config,
                profile=req.profile,
                trace=req.trace,
                retry=req.retry,
                faults=req.faults,
            ) as lease:
                self.metrics.counter(
                    "service_pool_reuses" if lease.reused
                    else "service_pool_builds"
                ).inc()
                result = execute_pipeline(
                    lease.prepared, lease.runtime, run_timeout=req.run_timeout
                )
        except BaseException as exc:
            for job, _, _ in batch:
                job._fail(exc)
                self._count_outcome(job)
            return
        elapsed = time.time() - started
        self.metrics.counter("service_runs").inc()
        self.metrics.histogram("service_exec_seconds").observe(elapsed)
        if len(batch) > 1:
            self.metrics.counter("service_batches").inc()
            self.metrics.counter("service_batched_jobs").inc(len(batch) - 1)

        if fingerprint is not None:
            for feat, vol in result.volumes.items():
                self.cache.put(
                    result_key(fingerprint, req.config.texture, feat), vol
                )

        trace = result.trace
        if trace is not None:
            # Per-job scoping: stamp which jobs this pass served, so
            # merged/exported traces stay attributable.
            job_ids = ",".join(j.id for j, _, _ in batch)
            for ev in trace.events:
                ev.attrs.setdefault("jobs", job_ids)

        for job, j_cached, j_missing in batch:
            volumes = dict(j_cached)
            for feat in j_missing:
                volumes[feat] = result.volumes[feat]
            job._finish(
                JobResult(
                    job_id=job.id,
                    volumes=volumes,
                    cached=tuple(sorted(j_cached)),
                    computed=tuple(j_missing),
                    elapsed=elapsed,
                    queue_wait=started - job.submitted_at,
                    batch_size=len(batch),
                    trace=trace,
                )
            )
            self._count_outcome(job)

    def _finish_from_cache(
        self, job: JobHandle, cached: Dict[str, np.ndarray]
    ) -> None:
        self.metrics.counter("service_jobs_from_cache").inc()
        job._finish(
            JobResult(
                job_id=job.id,
                volumes=dict(cached),
                cached=tuple(sorted(cached)),
                computed=(),
                elapsed=0.0,
                queue_wait=time.time() - job.submitted_at,
                batch_size=0,
                trace=None,
            )
        )
        self._count_outcome(job)

    def _count_outcome(self, job: JobHandle) -> None:
        outcome = job.status
        self.metrics.counter(
            "service_jobs", outcome=outcome, tenant=job.tenant
        ).inc()
        self.metrics.histogram(
            "service_queue_wait_seconds", tenant=job.tenant
        ).observe(max(0.0, time.time() - job.submitted_at))

    # -- lifecycle / introspection -----------------------------------------

    def stats(self) -> Dict[str, Any]:
        """One JSON-safe snapshot of every subsystem."""
        return {
            "queue": self.queue.stats(),
            "cache": self.cache.stats(),
            "pool": self.pool.stats(),
            "jobs": {
                status: sum(1 for j in self.jobs() if j.status == status)
                for status in JobStatus.ALL
            },
            "metrics": self.metrics.snapshot(),
        }

    def shutdown(self, wait: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting work, drain workers, tear the pool down.

        Jobs still queued are cancelled; jobs already running finish
        (``wait=True``) before the warm pool is closed.
        """
        if self._closed:
            return
        self._closed = True
        for job in self.queue.drain():
            job._cancel_from_service()
            self._count_outcome(job)
        self.queue.close()
        if wait:
            deadline = None if timeout is None else time.time() + timeout
            for t in self._workers:
                left = None if deadline is None else max(0.0, deadline - time.time())
                t.join(left)
        self.pool.close()
        self.cache.close()

    def __enter__(self) -> "AnalysisService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False

"""Discrete-event cluster simulator (the paper's Section 5 testbeds)."""

from .clusters import MBIT, OPTERON, PIII, XEON, ClusterSpec, SimCluster
from .costmodel import PAPER_COSTS, CostModel, measure_costs
from .events import Environment, Resource, Store
from .faults import (
    NodeFailure,
    PortDegradation,
    SimFaultPlan,
    UplinkDegradation,
)
from .layouts import (
    fig10_hmp,
    fig10_split,
    fig11_layout,
    homogeneous_hmp,
    homogeneous_split,
    paper_hcc_hpc_counts,
)
from .network import NetworkModel, POINTER_COPY_TIME
from .nodes import SimNode
from .simruntime import SimPipelineSpec, SimReport, SimRuntime
from .trace import format_timeline, span_utilization
from .workload import SimWorkload, paper_workload

__all__ = [
    "ClusterSpec",
    "SimCluster",
    "PIII",
    "XEON",
    "OPTERON",
    "MBIT",
    "CostModel",
    "PAPER_COSTS",
    "measure_costs",
    "Environment",
    "Resource",
    "Store",
    "NetworkModel",
    "POINTER_COPY_TIME",
    "SimNode",
    "SimFaultPlan",
    "NodeFailure",
    "PortDegradation",
    "UplinkDegradation",
    "SimPipelineSpec",
    "SimReport",
    "SimRuntime",
    "format_timeline",
    "span_utilization",
    "SimWorkload",
    "paper_workload",
    "homogeneous_hmp",
    "homogeneous_split",
    "paper_hcc_hpc_counts",
    "fig10_hmp",
    "fig10_split",
    "fig11_layout",
]

"""Cluster presets matching the paper's testbeds (Section 5).

* **PIII** — 24 single-CPU Pentium III nodes, 512 MB, switched
  100 Mbit/s FastEthernet.
* **XEON** — 5 dual-2.4 GHz Xeon nodes, 2 GB, Gigabit switch.
* **OPTERON** — 6 dual-1.4 GHz Opteron nodes, 8 GB, Gigabit switch.

PIII connects to XEON and OPTERON through a *shared* 100 Mbit/s path;
XEON and OPTERON share a Gigabit path.  Speed factors are relative to a
PIII node (1.0); the Xeon/Opteron factors below reproduce the rough
per-core throughput ratios of the era.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .events import Environment
from .network import NetworkModel
from .nodes import SimNode

__all__ = ["ClusterSpec", "SimCluster", "PIII", "XEON", "OPTERON", "PAPER_UPLINKS", "MBIT"]

MBIT = 1e6 / 8.0  # bytes/s per Mbit/s


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of one homogeneous cluster."""

    name: str
    num_nodes: int
    cpus_per_node: int
    speed: float
    port_bw: float  # bytes/s per NIC direction
    latency: float = 1e-4

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"cluster {self.name}: need at least one node")


# Speed factors are per-core throughput relative to a PIII node on this
# (memory-bound, integer-heavy) kernel.  The 2.4 GHz Xeon is a Netburst
# core with weak per-clock throughput; the 1.4 GHz Opteron's short
# pipeline and on-die memory controller make it the faster node despite
# the lower clock — consistent with the paper's Fig. 11 observation that
# the OPTERON HCC copies drain buffers faster.
PIII = ClusterSpec("piii", 24, 1, 1.0, 100 * MBIT)
XEON = ClusterSpec("xeon", 5, 2, 1.8, 1000 * MBIT)
OPTERON = ClusterSpec("opteron", 6, 2, 2.2, 1000 * MBIT)

#: Default inter-cluster links: (cluster, cluster, bytes/s).
PAPER_UPLINKS: Tuple[Tuple[str, str, float], ...] = (
    ("piii", "xeon", 100 * MBIT),
    ("piii", "opteron", 100 * MBIT),
    ("xeon", "opteron", 1000 * MBIT),
)


class SimCluster:
    """A bound simulation testbed: environment + nodes + network."""

    def __init__(
        self,
        specs: Sequence[ClusterSpec],
        uplinks: Sequence[Tuple[str, str, float]] = (),
        env: Optional[Environment] = None,
    ):
        self.env = env or Environment()
        self.network = NetworkModel(self.env)
        self.nodes: Dict[str, SimNode] = {}
        self.specs = {s.name: s for s in specs}
        if len(self.specs) != len(specs):
            raise ValueError("duplicate cluster names")
        for spec in specs:
            for i in range(spec.num_nodes):
                node = SimNode(
                    name=f"{spec.name}{i:02d}",
                    cluster=spec.name,
                    cpus=spec.cpus_per_node,
                    speed=spec.speed,
                )
                node.bind(self.env)
                self.network.add_node(node, spec.port_bw, spec.latency)
                self.nodes[node.name] = node
        for a, b, bw in uplinks:
            if a not in self.specs or b not in self.specs:
                continue  # uplink endpoints not part of this testbed
            self.network.add_uplink(a, b, bw)

    # -- queries -----------------------------------------------------------

    def node(self, name: str) -> SimNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise KeyError(f"unknown node {name!r}") from None

    def cluster_nodes(self, cluster: str) -> List[str]:
        return sorted(n for n, node in self.nodes.items() if node.cluster == cluster)

    # -- presets -----------------------------------------------------------

    @classmethod
    def piii(cls, num_nodes: int = 24) -> "SimCluster":
        """The homogeneous PIII testbed of Section 5.2."""
        spec = ClusterSpec(
            "piii", num_nodes, PIII.cpus_per_node, PIII.speed, PIII.port_bw
        )
        return cls([spec])

    @classmethod
    def heterogeneous(
        cls, include: Sequence[str] = ("piii", "xeon", "opteron")
    ) -> "SimCluster":
        """The Section 5.3 testbed (any subset of the three clusters)."""
        all_specs = {"piii": PIII, "xeon": XEON, "opteron": OPTERON}
        unknown = set(include) - set(all_specs)
        if unknown:
            raise ValueError(f"unknown clusters {sorted(unknown)}")
        specs = [all_specs[name] for name in include]
        links = [l for l in PAPER_UPLINKS if l[0] in include and l[1] in include]
        return cls(specs, uplinks=links)

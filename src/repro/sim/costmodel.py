"""Calibrated service costs for the simulated filters.

All compute costs are expressed in *reference seconds* — wall seconds on
a speed-1.0 (PIII-class) node — and divided by the executing node's speed
factor.  The defaults are calibrated so that the relative magnitudes
match the paper's observations:

* the co-occurrence computation (HCC) is 4-5x the parameter computation
  (HPC) per ROI (Section 5.2);
* within a single HMP filter the sparse representation costs *more* than
  the full representation (conversion overhead with no communication to
  save — Fig. 7a), while the parameter computation alone is faster from
  sparse triplets than from the full matrix;
* a full co-occurrence matrix on the wire is ``G*G`` 2-byte counts,
  whereas the sparse form is ~12 + 8*nnz bytes (~1% of the full size for
  typical MRI data — Section 4.4.1).

``measure_costs`` recalibrates the per-ROI constants by timing the real
NumPy kernels of :mod:`repro.core` on sample data, preserving the
measured full/sparse and matrix/parameter ratios while anchoring the
absolute scale to the 2004 reference machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

__all__ = ["CostModel", "measure_costs", "PAPER_COSTS"]


@dataclass(frozen=True)
class CostModel:
    """Per-unit service times (reference seconds) and wire-size rules."""

    #: Co-occurrence matrix computation per ROI (the HCC/HMP kernel).
    #: ~20 us on a PIII-class node for a 5x5x5x3 ROI over 40 directions
    #: in optimized C++ with the zero-skip path.
    cooc_per_roi: float = 20e-6
    #: Haralick parameters per ROI from the full (dense) matrix
    #: (HCC:HPC cost ratio ~4.4, paper Section 5.2 reports 4-5x).
    feat_full_per_roi: float = 4.5e-6
    #: Haralick parameters per ROI directly from sparse triplets.
    feat_sparse_per_roi: float = 1.8e-6
    #: Serializing a matrix into sparse wire form at HCC (the matrix is
    #: accumulated sparsely, so this is cheap).
    sparse_convert_per_roi: float = 1.5e-6
    #: Extra cost of storing and accessing the co-occurrence matrix in
    #: sparse form *within* the combined HMP filter (paper Fig. 7a: this
    #: overhead degrades HMP performance since there is no communication
    #: to save).
    sparse_overhead_per_roi: float = 6e-6
    #: IIC reorganize/copy cost per byte (strided small copies).
    stitch_per_byte: float = 1.0 / 50e6
    #: IIC fixed cost per slice-plane copied into a chunk buffer
    #: (buffer management + strided copy setup).
    stitch_per_plane: float = 1e-3
    #: Output write cost per byte at the USO filter.
    write_per_byte: float = 1.0 / 50e6
    #: Disk streaming read bandwidth at the RFR filter (bytes/s).
    disk_read_bw: float = 30e6
    #: Disk seek cost for sub-slice reads.
    disk_seek: float = 5e-3
    #: Average non-zero entries per sparse matrix (paper: 10.7).
    avg_nnz: float = 10.7
    #: Bytes per pixel of the raw dataset.
    bytes_per_pixel: int = 2
    #: Feature-portion payload bytes per ROI per feature (float32 values;
    #: positions travel as one (chunk, start) header per packet).
    feature_bytes: int = 4

    # -- compute costs (reference seconds) ---------------------------------

    def hmp_per_roi(self, sparse: bool) -> float:
        """Full HMP work per ROI: matrices + (conversion +) parameters."""
        if sparse:
            return (
                self.cooc_per_roi
                + self.sparse_overhead_per_roi
                + self.feat_sparse_per_roi
            )
        return self.cooc_per_roi + self.feat_full_per_roi

    def hcc_per_roi(self, sparse: bool) -> float:
        """HCC work per ROI (conversion happens at the producer)."""
        return self.cooc_per_roi + (self.sparse_convert_per_roi if sparse else 0.0)

    def hpc_per_roi(self, sparse: bool) -> float:
        return self.feat_sparse_per_roi if sparse else self.feat_full_per_roi

    def read_slice_time(self, nbytes: int, seeks: int = 0) -> float:
        return nbytes / self.disk_read_bw + seeks * self.disk_seek

    def stitch_time(self, nbytes: int, planes: int = 0) -> float:
        return nbytes * self.stitch_per_byte + planes * self.stitch_per_plane

    def write_time(self, nbytes: int) -> float:
        return nbytes * self.write_per_byte

    # -- wire sizes ---------------------------------------------------------

    def matrix_wire_bytes(self, n_matrices: int, levels: int, sparse: bool) -> int:
        if sparse:
            # 8 B header + 4 B per entry (2 B packed linear position for
            # G <= 256, 2 B count) — see SparseCooc.wire_bytes.
            return int(n_matrices * (8 + 4 * self.avg_nnz))
        return n_matrices * levels * levels * 2

    def feature_wire_bytes(self, n_rois: int, n_features: int) -> int:
        return n_rois * n_features * self.feature_bytes


#: The default calibration used by the benchmark harness.
PAPER_COSTS = CostModel()


def measure_costs(
    levels: int = 32,
    roi_shape: Tuple[int, ...] = (5, 5, 5, 3),
    n_rois: int = 256,
    reference_speedup: Optional[float] = None,
    seed: int = 0,
) -> CostModel:
    """Re-derive per-ROI constants by timing the real kernels.

    Times :func:`repro.core.cooccurrence.cooccurrence_scan`,
    the dense batch feature kernel and the sparse path on synthetic
    MRI-like data, then scales everything by ``reference_speedup`` (this
    machine's speed relative to a PIII; default keeps the PAPER_COSTS
    co-occurrence anchor and preserves only the measured *ratios*).
    """
    from scipy.ndimage import gaussian_filter

    from ..core.cooccurrence import cooccurrence_scan
    from ..core.features import PAPER_FEATURES, haralick_features
    from ..core.features_sparse import features_from_sparse
    from ..core.quantization import quantize_linear
    from ..core.roi import ROISpec
    from ..core.sparse import batch_sparse_from_dense

    rng = np.random.default_rng(seed)
    shape = tuple(r + 7 for r in roi_shape)
    data = quantize_linear(
        gaussian_filter(rng.normal(size=shape), sigma=1.5), levels
    )
    roi = ROISpec(roi_shape)

    t0 = time.perf_counter()
    batches = list(cooccurrence_scan(data, roi, levels, batch=n_rois))
    t_cooc = time.perf_counter() - t0
    mats = np.concatenate([m for _, m in batches])[:n_rois]
    total = mats.shape[0]

    t0 = time.perf_counter()
    haralick_features(mats, PAPER_FEATURES)
    t_full = time.perf_counter() - t0

    t0 = time.perf_counter()
    sparse_mats = batch_sparse_from_dense(mats)
    t_convert = time.perf_counter() - t0

    t0 = time.perf_counter()
    for sp in sparse_mats:
        features_from_sparse(sp, PAPER_FEATURES)
    t_sparse = time.perf_counter() - t0

    n_scanned = sum(m.shape[0] for _, m in batches)
    per_cooc = t_cooc / n_scanned
    ratios = CostModel(
        cooc_per_roi=per_cooc,
        feat_full_per_roi=t_full / total,
        feat_sparse_per_roi=t_sparse / total,
        sparse_convert_per_roi=t_convert / total,
        avg_nnz=float(np.mean([sp.nnz for sp in sparse_mats])),
    )
    if reference_speedup is None:
        # Preserve measured ratios, anchored to the PAPER_COSTS scale.
        scale = PAPER_COSTS.cooc_per_roi / per_cooc
    else:
        scale = reference_speedup
    return replace(
        ratios,
        cooc_per_roi=ratios.cooc_per_roi * scale,
        feat_full_per_roi=ratios.feat_full_per_roi * scale,
        feat_sparse_per_roi=ratios.feat_sparse_per_roi * scale,
        sparse_convert_per_roi=ratios.sparse_convert_per_roi * scale,
    )

"""A small deterministic discrete-event simulation kernel.

Provides the minimum machinery the cluster simulator needs — simpy-style
generator processes, timeouts, FIFO stores and capacity resources — with
fully deterministic ordering (ties in time break by scheduling sequence
number).

Usage::

    env = Environment()

    def worker(env, store):
        while True:
            item = yield store.get()
            yield env.timeout(1.5)

    env.process(worker(env, store))
    env.run()
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

__all__ = ["Environment", "Event", "Timeout", "Process", "Store", "Resource"]


class Event:
    """An occurrence that processes can wait on."""

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event now; waiting processes resume this instant."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        self.env._schedule(self, delay=0.0)
        return self


class Timeout(Event):
    """An event that triggers after a fixed delay."""

    def __init__(self, env: "Environment", delay: float):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.triggered = True
        env._schedule(self, delay=delay)


class Process(Event):
    """Wraps a generator; each yielded event resumes it when triggered.

    The process event itself triggers when the generator returns, with
    the generator's return value.
    """

    def __init__(self, env: "Environment", gen: Generator):
        super().__init__(env)
        self.gen = gen
        # Bootstrap on the next tick.
        boot = Event(env)
        boot.triggered = True
        env._schedule(boot, delay=0.0)
        boot.callbacks.append(self._resume)

    def _resume(self, event: Event) -> None:
        try:
            target = self.gen.send(event.value)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(getattr(stop, "value", None))
            return
        if not isinstance(target, Event):
            raise TypeError(
                f"process yielded {type(target).__name__}; expected an Event"
            )
        target.callbacks.append(self._resume)


class Environment:
    """Event loop with a virtual clock."""

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = 0

    def _schedule(self, event: Event, delay: float) -> None:
        heapq.heappush(self._queue, (self.now + delay, self._seq, event))
        self._seq += 1

    def timeout(self, delay: float) -> Timeout:
        return Timeout(self, delay)

    def event(self) -> Event:
        return Event(self)

    def process(self, gen: Generator) -> Process:
        return Process(self, gen)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains (or the clock passes ``until``).

        Returns the final clock value.
        """
        while self._queue:
            t, _seq, event = heapq.heappop(self._queue)
            if until is not None and t > until:
                self.now = until
                heapq.heappush(self._queue, (t, _seq, event))
                return self.now
            self.now = t
            # Snapshot: callbacks appended during iteration belong to
            # re-triggered states, not this firing.
            callbacks, event.callbacks = event.callbacks, []
            for cb in callbacks:
                cb(event)
        return self.now


class Store:
    """Unbounded FIFO queue of items with blocking get."""

    def __init__(self, env: Environment):
        self.env = env
        self.items: List[Any] = []
        self._getters: List[Event] = []

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.pop(0).succeed(item)
        else:
            self.items.append(item)

    def get(self) -> Event:
        event = Event(self.env)
        if self.items:
            event.succeed(self.items.pop(0))
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self.items)


class Resource:
    """A capacity-limited resource with FIFO granting.

    ``request()`` returns an event that triggers when a slot is granted;
    ``release()`` frees one slot.  The convenience ``use(duration)``
    returns a generator that acquires, holds for ``duration``, releases.
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: List[Event] = []
        self.busy_time = 0.0  # aggregate occupancy for utilization stats
        self._last_change = 0.0

    def _account(self) -> None:
        self.busy_time += self.in_use * (self.env.now - self._last_change)
        self._last_change = self.env.now

    def request(self) -> Event:
        event = Event(self.env)
        if self.in_use < self.capacity:
            self._account()
            self.in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self.in_use <= 0:
            raise RuntimeError(f"resource {self.name!r} released when idle")
        if self._waiters:
            # Hand the slot straight to the next waiter.
            self._waiters.pop(0).succeed()
        else:
            self._account()
            self.in_use -= 1

    def use(self, duration: float) -> Generator:
        """Generator: acquire -> hold ``duration`` -> release."""
        yield self.request()
        try:
            yield self.env.timeout(duration)
        finally:
            self.release()

    def utilization(self, horizon: float) -> float:
        """Mean occupancy fraction over ``[0, horizon]``."""
        if horizon <= 0:
            return 0.0
        total = self.busy_time + self.in_use * (horizon - self._last_change)
        return total / (self.capacity * horizon)

"""Failure events for the cluster simulator.

Lets the paper's Fig. 8/10-style layout studies be re-evaluated under
degraded conditions: a node that fails mid-run (its filter copies stop
receiving work; everything queued or in flight for them is rerouted to
surviving transparent copies) and links that lose bandwidth at a given
simulated time (a flaky switch port, a saturated uplink).

Semantics mirror the real runtimes' recovery path: rerouting only works
for *transparent* streams — a failed node hosting an explicit-stream
consumer (IIC) is unrecoverable and raises ``RuntimeError``, exactly as
:class:`~repro.datacutter.runtime_local.LocalRuntime` aborts when an
explicit destination dies.

Example::

    faults = (SimFaultPlan()
              .fail_node("tex03", at=5.0)
              .degrade_uplink("piii", "xeon", at=2.0, factor=0.25))
    rep = SimRuntime(wl, spec, cluster, placement, faults=faults).run()
    rep.stream_rerouted  # buffers re-delivered after the failure
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = [
    "NodeFailure",
    "PortDegradation",
    "UplinkDegradation",
    "SimFaultPlan",
]


@dataclass(frozen=True)
class NodeFailure:
    """Node ``node`` fails at simulated time ``at`` (seconds)."""

    node: str
    at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("failure time must be >= 0")


@dataclass(frozen=True)
class PortDegradation:
    """Node ``node``'s NIC drops to ``factor`` of its bandwidth at ``at``."""

    node: str
    at: float
    factor: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("degradation time must be >= 0")
        if not (0.0 < self.factor <= 1.0):
            raise ValueError(f"factor must be in (0, 1], got {self.factor}")


@dataclass(frozen=True)
class UplinkDegradation:
    """The shared uplink between two clusters degrades at ``at``."""

    cluster_a: str
    cluster_b: str
    at: float
    factor: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("degradation time must be >= 0")
        if not (0.0 < self.factor <= 1.0):
            raise ValueError(f"factor must be in (0, 1], got {self.factor}")


class SimFaultPlan:
    """Declarative set of simulator failure events (builder-style)."""

    def __init__(self) -> None:
        self.node_failures: List[NodeFailure] = []
        self.port_degradations: List[PortDegradation] = []
        self.uplink_degradations: List[UplinkDegradation] = []

    def fail_node(self, node: str, at: float) -> "SimFaultPlan":
        self.node_failures.append(NodeFailure(node, at))
        return self

    def degrade_port(self, node: str, at: float, factor: float) -> "SimFaultPlan":
        self.port_degradations.append(PortDegradation(node, at, factor))
        return self

    def degrade_uplink(
        self, cluster_a: str, cluster_b: str, at: float, factor: float
    ) -> "SimFaultPlan":
        self.uplink_degradations.append(
            UplinkDegradation(cluster_a, cluster_b, at, factor)
        )
        return self

    def __repr__(self) -> str:
        return (
            f"SimFaultPlan(node_failures={self.node_failures!r}, "
            f"port_degradations={self.port_degradations!r}, "
            f"uplink_degradations={self.uplink_degradations!r})"
        )

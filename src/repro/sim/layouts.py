"""Standard filter layouts for the paper's experiments (Section 5).

Each helper returns a ``(SimPipelineSpec, SimCluster, Placement)`` triple
ready for :class:`~repro.sim.simruntime.SimRuntime`.

Homogeneous layouts (Section 5.2) use the PIII cluster: the dataset sits
on 4 I/O nodes, one node runs the IIC filter, one runs USO, and the
remaining nodes run texture filters.  Heterogeneous layouts reproduce the
Fig. 10 and Fig. 11 configurations exactly.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..datacutter.placement import Placement
from .clusters import SimCluster
from .simruntime import SimPipelineSpec

__all__ = [
    "homogeneous_hmp",
    "homogeneous_split",
    "homogeneous_replicated",
    "paper_hcc_hpc_counts",
    "fig10_hmp",
    "fig10_split",
    "fig11_layout",
]


def paper_hcc_hpc_counts(n_tex_nodes: int) -> Tuple[int, int]:
    """The ~4:1 HCC:HPC node split of Section 5.2 (16 -> 13 + 3)."""
    if n_tex_nodes < 2:
        return 1, 1
    hpc = max(1, round(n_tex_nodes / 5))
    return n_tex_nodes - hpc, hpc


def _piii_base(n_tex_nodes: int, num_iic: int = 1, num_uso: int = 1):
    """PIII cluster with RFR/IIC/USO placed; returns (cluster, placement,
    list of texture node names)."""
    num_io = 4
    total = num_io + num_iic + num_uso + n_tex_nodes
    cluster = SimCluster.piii(max(total, 6))
    nodes = cluster.cluster_nodes("piii")
    placement = Placement()
    placement.place_copies("RFR", nodes[:num_io])
    placement.place_copies("IIC", nodes[num_io : num_io + num_iic])
    placement.place_copies(
        "USO", nodes[num_io + num_iic : num_io + num_iic + num_uso]
    )
    tex_nodes = nodes[num_io + num_iic + num_uso : num_io + num_iic + num_uso + n_tex_nodes]
    return cluster, placement, tex_nodes


def homogeneous_hmp(
    n_tex_nodes: int, sparse: bool = False, num_iic: int = 1
) -> Tuple[SimPipelineSpec, SimCluster, Placement]:
    """Fig. 7(a) layout: one HMP copy per texture node."""
    cluster, placement, tex_nodes = _piii_base(n_tex_nodes, num_iic=num_iic)
    placement.place_copies("HMP", tex_nodes)
    spec = SimPipelineSpec(
        variant="hmp", sparse=sparse, num_tex=n_tex_nodes, num_iic=num_iic
    )
    return spec, cluster, placement


def homogeneous_split(
    n_tex_nodes: int,
    sparse: bool = True,
    overlap: bool = False,
    num_iic: int = 1,
) -> Tuple[SimPipelineSpec, SimCluster, Placement]:
    """Fig. 7(b) / Fig. 8 layouts.

    ``overlap=False``: texture nodes are split ~4:1 between HCC-only and
    HPC-only nodes (one filter per node).  ``overlap=True``: every
    texture node runs one HCC *and* one HPC copy, sharing its single CPU
    but exchanging matrices by pointer copy.
    """
    cluster, placement, tex_nodes = _piii_base(n_tex_nodes, num_iic=num_iic)
    if overlap:
        n_hcc = n_hpc = n_tex_nodes
        placement.place_copies("HCC", tex_nodes)
        placement.place_copies("HPC", tex_nodes)
    elif n_tex_nodes == 1:
        # One-node configuration: both copies co-located (Section 5.2).
        n_hcc = n_hpc = 1
        placement.place_copies("HCC", tex_nodes)
        placement.place_copies("HPC", tex_nodes)
    else:
        n_hcc, n_hpc = paper_hcc_hpc_counts(n_tex_nodes)
        placement.place_copies("HCC", tex_nodes[:n_hcc])
        placement.place_copies("HPC", tex_nodes[n_hcc:])
    spec = SimPipelineSpec(
        variant="split",
        sparse=sparse,
        num_hcc=n_hcc,
        num_hpc=n_hpc,
        num_iic=num_iic,
    )
    return spec, cluster, placement


def _fig10_base() -> Tuple[SimCluster, Placement, List[str], List[str]]:
    """Fig. 10 substrate: 4 RFR + 4 IIC + 2 USO on PIII; texture filters
    on 13 PIII nodes + 5 XEON nodes."""
    cluster = SimCluster.heterogeneous(("piii", "xeon"))
    piii = cluster.cluster_nodes("piii")
    xeon = cluster.cluster_nodes("xeon")
    placement = Placement()
    placement.place_copies("RFR", piii[:4])
    placement.place_copies("IIC", piii[4:8])
    placement.place_copies("USO", piii[8:10])
    tex_piii = piii[10:23]  # 13 PIII texture nodes
    return cluster, placement, tex_piii, xeon


def fig10_hmp(sparse: bool = False):
    """Fig. 10 HMP arm: one HMP copy per *processor* -> 13 + 10 = 23."""
    cluster, placement, tex_piii, xeon = _fig10_base()
    tex_nodes = list(tex_piii) + [n for n in xeon for _ in range(2)]
    placement.place_copies("HMP", tex_nodes)
    spec = SimPipelineSpec(
        variant="hmp", sparse=sparse, num_tex=len(tex_nodes), num_iic=4, num_uso=2
    )
    return spec, cluster, placement


def fig10_split(sparse: bool = True):
    """Fig. 10 split arm: HCC+HPC co-located on each of the 18 nodes."""
    cluster, placement, tex_piii, xeon = _fig10_base()
    tex_nodes = list(tex_piii) + list(xeon)
    placement.place_copies("HCC", tex_nodes)
    placement.place_copies("HPC", tex_nodes)
    spec = SimPipelineSpec(
        variant="split",
        sparse=sparse,
        num_hcc=len(tex_nodes),
        num_hpc=len(tex_nodes),
        num_iic=4,
        num_uso=2,
    )
    return spec, cluster, placement


def fig11_layout(scheduling: str, sparse: bool = False):
    """Fig. 11: XEON + OPTERON, RFR/IIC/HPC/USO on OPTERON, 4 HCC copies
    on each cluster, at most one filter per processor."""
    cluster = SimCluster.heterogeneous(("xeon", "opteron"))
    xeon = cluster.cluster_nodes("xeon")
    opt = cluster.cluster_nodes("opteron")
    placement = Placement()
    # OPTERON: 6 dual-CPU nodes = 12 processors for 12 filter copies.
    placement.place_copies("RFR", opt[:4])
    placement.place("IIC", 0, opt[4])
    placement.place_copies("USO", [opt[5]])
    placement.place_copies("HPC", [opt[4], opt[5]])  # second CPUs
    hcc_nodes = xeon[:4] + opt[:4]  # second CPUs on the RFR nodes
    placement.place_copies("HCC", hcc_nodes)
    spec = SimPipelineSpec(
        variant="split",
        sparse=sparse,
        scheduling=scheduling,
        num_hcc=8,
        num_hpc=2,
        num_iic=1,
        num_uso=1,
    )
    return spec, cluster, placement


def homogeneous_replicated(
    n_tex_nodes: int, sparse: bool = False, num_uso: int = 1
) -> Tuple[SimPipelineSpec, SimCluster, Placement]:
    """Paper footnote 1: dataset replicated on every node, no RFR/IIC.

    One HMP copy per texture node reads its chunks from the local
    replica; only the USO output filter remains as a separate stage.
    """
    cluster = SimCluster.piii(max(n_tex_nodes + num_uso, 2))
    nodes = cluster.cluster_nodes("piii")
    placement = Placement()
    placement.place_copies("USO", nodes[:num_uso])
    placement.place_copies("HMP", nodes[num_uso : num_uso + n_tex_nodes])
    spec = SimPipelineSpec(
        variant="hmp",
        sparse=sparse,
        num_tex=n_tex_nodes,
        num_uso=num_uso,
        replicated_input=True,
    )
    return spec, cluster, placement

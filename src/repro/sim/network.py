"""Simulated switched networks with per-port and shared-uplink contention.

Model (matching the paper's testbeds, Section 5):

* every node has a full-duplex NIC: one *out port* and one *in port*
  resource, each at the cluster's port bandwidth (switched Ethernet: two
  different node pairs can communicate in parallel; two senders to the
  same receiver contend on its in-port);
* clusters are joined by *shared uplinks* (e.g. the single 100 Mbit/s
  path between the PIII cluster and the others) — all inter-cluster
  transfers serialize on that resource;
* a transfer holds every resource on its path simultaneously for
  ``bytes / min(path bandwidths)`` seconds, then delivers after the path
  latency;
* co-located filters exchange buffers by pointer copy: a fixed tiny cost
  and no network resources (paper Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from .events import Environment, Resource
from .nodes import SimNode

__all__ = ["NetworkModel", "LinkStats", "POINTER_COPY_TIME"]

#: Cost of handing a buffer to a co-located filter (pointer copy).
POINTER_COPY_TIME = 1e-6


@dataclass
class LinkStats:
    transfers: int = 0
    bytes: int = 0


class NetworkModel:
    """Port + uplink contention model over a set of nodes."""

    def __init__(self, env: Environment):
        self.env = env
        self._out_ports: Dict[str, Resource] = {}
        self._in_ports: Dict[str, Resource] = {}
        self._port_bw: Dict[str, float] = {}
        self._latency: Dict[str, float] = {}
        self._uplinks: Dict[Tuple[str, str], Resource] = {}
        self._uplink_bw: Dict[Tuple[str, str], float] = {}
        self._uplink_latency: Dict[Tuple[str, str], float] = {}
        self.stats: Dict[str, LinkStats] = {}

    # -- topology construction -------------------------------------------

    def add_node(self, node: SimNode, port_bw: float, latency: float = 1e-4) -> None:
        """Register a node's NIC (full duplex: separate in/out ports)."""
        if node.name in self._out_ports:
            raise ValueError(f"node {node.name!r} already registered")
        self._out_ports[node.name] = Resource(self.env, 1, f"out:{node.name}")
        self._in_ports[node.name] = Resource(self.env, 1, f"in:{node.name}")
        self._port_bw[node.name] = port_bw
        self._latency[node.name] = latency

    def add_uplink(
        self, cluster_a: str, cluster_b: str, bw: float, latency: float = 5e-4
    ) -> None:
        """Join two clusters with a single shared link."""
        key = tuple(sorted((cluster_a, cluster_b)))
        if key in self._uplinks:
            raise ValueError(f"uplink {key} already exists")
        self._uplinks[key] = Resource(self.env, 1, f"uplink:{key[0]}-{key[1]}")
        self._uplink_bw[key] = bw
        self._uplink_latency[key] = latency

    def uplink_utilization(self, cluster_a: str, cluster_b: str, horizon: float) -> float:
        key = tuple(sorted((cluster_a, cluster_b)))
        return self._uplinks[key].utilization(horizon)

    # -- fault injection ---------------------------------------------------

    def degrade_port(self, node_name: str, factor: float) -> None:
        """Scale a node's NIC bandwidth by ``factor`` (0 < factor <= 1).

        Transfers already holding the port finish at the old rate; new
        transfers see the degraded bandwidth.
        """
        if not (0.0 < factor <= 1.0):
            raise ValueError(f"factor must be in (0, 1], got {factor}")
        if node_name not in self._port_bw:
            raise KeyError(f"unknown node {node_name!r}")
        self._port_bw[node_name] *= factor

    def degrade_uplink(self, cluster_a: str, cluster_b: str, factor: float) -> None:
        """Scale a shared uplink's bandwidth by ``factor``."""
        if not (0.0 < factor <= 1.0):
            raise ValueError(f"factor must be in (0, 1], got {factor}")
        key = tuple(sorted((cluster_a, cluster_b)))
        if key not in self._uplink_bw:
            raise KeyError(f"no uplink between {cluster_a!r} and {cluster_b!r}")
        self._uplink_bw[key] *= factor

    # -- transfers ---------------------------------------------------------

    def _path(
        self, src: SimNode, dst: SimNode
    ) -> Tuple[List[Resource], float, float]:
        """Resources to hold, bottleneck bandwidth, total latency."""
        resources = [self._out_ports[src.name], self._in_ports[dst.name]]
        bw = min(self._port_bw[src.name], self._port_bw[dst.name])
        latency = self._latency[src.name] + self._latency[dst.name]
        if src.cluster != dst.cluster:
            key = tuple(sorted((src.cluster, dst.cluster)))
            if key not in self._uplinks:
                raise ValueError(
                    f"no uplink between clusters {src.cluster!r} and {dst.cluster!r}"
                )
            resources.append(self._uplinks[key])
            bw = min(bw, self._uplink_bw[key])
            latency += self._uplink_latency[key]
        # Global deadlock-free acquisition order.
        resources.sort(key=lambda r: r.name)
        return resources, bw, latency

    def transfer(
        self, src: SimNode, dst: SimNode, nbytes: int, tag: str = ""
    ) -> Generator:
        """Generator performing one transfer; completes at delivery time.

        Co-located (same node) transfers cost :data:`POINTER_COPY_TIME`.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        stat = self.stats.setdefault(tag or f"{src.name}->{dst.name}", LinkStats())
        stat.transfers += 1
        stat.bytes += nbytes
        if src.name == dst.name:
            yield self.env.timeout(POINTER_COPY_TIME)
            return
        resources, bw, latency = self._path(src, dst)
        duration = nbytes / bw
        held = []
        for r in resources:
            yield r.request()
            held.append(r)
        yield self.env.timeout(duration)
        for r in reversed(held):
            r.release()
        yield self.env.timeout(latency)

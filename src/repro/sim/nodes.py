"""Simulated compute nodes.

A :class:`SimNode` owns a CPU resource (capacity = processor count) and a
relative speed factor.  Co-located filter copies contend for the CPUs —
on the single-processor PIII nodes "the CPU has to multiplex between the
two filters and its power has to be shared" (paper Section 5.2), whereas
the dual-processor XEON/OPTERON nodes run two filters truly in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .events import Environment, Resource

__all__ = ["SimNode"]


@dataclass
class SimNode:
    """One cluster node in the simulation.

    Attributes
    ----------
    name:
        Unique node identifier (e.g. ``"piii03"``).
    cluster:
        Cluster the node belongs to (``"piii"``, ``"xeon"``, ...).
    cpus:
        Number of processors.
    speed:
        Relative compute speed (PIII == 1.0); service times divide by it.
    disk_bw:
        Local disk streaming bandwidth, bytes/s.
    mem_bw:
        Memory-copy bandwidth for stitch/reorganize work, bytes/s.
    """

    name: str
    cluster: str
    cpus: int = 1
    speed: float = 1.0
    disk_bw: float = 30e6
    mem_bw: float = 200e6
    cpu: Optional[Resource] = field(default=None, repr=False)
    #: Set by a :class:`~repro.sim.faults.NodeFailure` event: a failed
    #: node's filter copies stop receiving work (routers skip them).
    failed: bool = False

    def __post_init__(self) -> None:
        if self.cpus < 1:
            raise ValueError(f"node {self.name}: cpus must be >= 1")
        if self.speed <= 0:
            raise ValueError(f"node {self.name}: speed must be > 0")

    def bind(self, env: Environment) -> None:
        """Create the CPU resource in a simulation environment."""
        self.cpu = Resource(env, capacity=self.cpus, name=f"cpu:{self.name}")

    def compute_time(self, work_seconds: float) -> float:
        """Wall time for ``work_seconds`` of reference (PIII) work."""
        return work_seconds / self.speed

"""Simulated filter-copy processes and the stream router.

Each filter copy is a DES generator process following the same loop as
the real runtime — receive, compute (holding the node's CPU), send
(holding network resources) — with service times from the
:class:`~repro.sim.costmodel.CostModel` instead of real kernels.  The
buffer scheduling policies are the *same objects* the threaded runtime
uses (:mod:`repro.datacutter.scheduling`), so round-robin and
demand-driven behave identically in both worlds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from ..datacutter.scheduling import CopyState, make_policy
from .costmodel import CostModel
from .events import Environment, Store
from .network import NetworkModel
from .nodes import SimNode
from .workload import SimWorkload

__all__ = ["SimBuffer", "SimRouter", "SimCopy", "FILTER_PROCS"]

_EOS = "__eos__"


@dataclass
class SimBuffer:
    """A simulated message: kind, wire size, and routing metadata."""

    kind: str
    nbytes: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def size_bytes(self) -> int:
        """Alias so scheduling policies see the DataBuffer interface."""
        return self.nbytes


@dataclass
class SimCopy:
    """One running copy of a filter in the simulation."""

    filter_name: str
    copy_index: int
    node: SimNode
    store: Store
    busy: float = 0.0  # service time: compute/IO incl. CPU-share waits (Fig. 9 metric)
    events: Optional[List] = None  # (t0, t1, kind) spans when tracing

    @property
    def key(self):
        return (self.filter_name, self.copy_index)

    def record(self, t0: float, t1: float, kind: str) -> None:
        """Account one service span (and trace it when enabled)."""
        self.busy += t1 - t0
        if self.events is not None:
            self.events.append((t0, t1, kind))


class SimRouter:
    """Routes buffers of one stream to the consumer filter's copies."""

    def __init__(
        self,
        env: Environment,
        network: NetworkModel,
        stream: str,
        policy_name: str,
        consumers: List[SimCopy],
        num_producer_copies: int,
        queue_cap: int = 2,
        sender_window: int = 8 * 1024 * 1024,
        prefer_local: bool = False,
    ):
        self.env = env
        self.network = network
        self.stream = stream
        self.policy_name = policy_name
        self.policy = make_policy(policy_name)
        self.consumers = consumers
        self.states = [CopyState(i) for i in range(len(consumers))]
        self.num_producer_copies = num_producer_copies
        self.queue_cap = queue_cap
        self.sender_window = sender_window
        self.prefer_local = prefer_local
        self.buffers_sent = 0
        self.bytes_sent = 0
        self.rerouted = 0  # buffers re-delivered after a node failure
        self._inflight: Dict[str, int] = {}
        self._demand_waiters: List = []
        # Demand-driven is consumer-pull: a FIFO of requests, one credit
        # per free queue slot.  A fast consumer re-requests often and so
        # receives buffers in proportion to its consumption rate — the
        # DataCutter scheduler's "buffer consumption rate" criterion.
        self._demand_fifo: List[int] = [
            i for _ in range(queue_cap) for i in range(len(consumers))
        ]

    def _wait_for_demand(self) -> Generator:
        event = self.env.event()
        self._demand_waiters.append(event)
        yield event

    def _notify_demand(self) -> None:
        waiters, self._demand_waiters = self._demand_waiters, []
        for w in waiters:
            w.succeed()

    def send(
        self, src: SimNode, buffer: SimBuffer, dest_copy: Optional[int] = None
    ) -> Generator:
        """Generator: schedule one buffer for delivery.

        Flow control, as in DataCutter:

        * transparent streams apply *consumer* backpressure — a producer
          holds the buffer until the target copy has queue room; the
          demand-driven scheduler hands buffers to consumers in the order
          they request them (consumption rate), round-robin commits to
          its turn and waits for that copy;
        * a *sender window* bounds the bytes one producer node may have
          in flight on this stream (its TCP socket buffers): a sender
          whose path is congested blocks, which is exactly what lets the
          demand-driven scheduler route around slow paths (Fig. 11);
        * on streams configured with ``prefer_local`` (HCC -> HPC), a
          consumer copy co-located with the producer is preferred
          unconditionally — co-location exists to turn this stream into
          pointer copies (Fig. 8 "Overlap", Section 5.2).

        Delivery itself is asynchronous: the filter keeps computing while
        transfers contend on network resources in FIFO order.
        """
        if self.policy.requires_explicit_dest():
            if dest_copy is None:
                raise RuntimeError(f"stream {self.stream!r} requires dest_copy")
            idx = dest_copy
            if self.consumers[idx].node.failed:
                # Explicit placement is semantic (all pieces of one chunk
                # meet at one copy): a failed destination is unrecoverable.
                raise RuntimeError(
                    f"stream {self.stream!r}: explicit destination copy "
                    f"{idx} is on failed node "
                    f"{self.consumers[idx].node.name!r}"
                )
        elif dest_copy is not None:
            raise RuntimeError(f"stream {self.stream!r} is not explicit")
        else:
            idx = self._local_consumer(src) if self.prefer_local else None
            if idx is not None and self.policy_name == "demand_driven":
                while idx not in self._demand_fifo:
                    yield from self._wait_for_demand()
                self._demand_fifo.remove(idx)
            elif idx is not None:
                while self.states[idx].queued >= self.queue_cap:
                    yield from self._wait_for_demand()
            elif self.policy_name == "demand_driven":
                idx = yield from self._pop_demand()
            else:
                alive = [
                    s
                    for s in self.states
                    if not self.consumers[s.copy_index].node.failed
                ]
                if not alive:
                    raise RuntimeError(
                        f"stream {self.stream!r}: every consumer copy is "
                        "on a failed node"
                    )
                idx = self.policy.choose(alive, buffer)  # type: ignore[arg-type]
                while self.states[idx].queued >= self.queue_cap:
                    yield from self._wait_for_demand()
        consumer = self.consumers[idx]
        # Sender window: wait until this node's in-flight bytes drop.
        if consumer.node.name != src.name:
            while self._inflight.get(src.name, 0) >= self.sender_window:
                yield from self._wait_for_demand()
            self._inflight[src.name] = self._inflight.get(src.name, 0) + buffer.nbytes
        self.states[idx].on_assign(buffer)  # type: ignore[arg-type]
        self.buffers_sent += 1
        self.bytes_sent += buffer.nbytes
        self.env.process(self._deliver(src, consumer, buffer))

    def _pop_demand(self) -> Generator:
        """Next demand credit from a surviving copy (failed credits die)."""
        while True:
            while not self._demand_fifo:
                if all(c.node.failed for c in self.consumers):
                    raise RuntimeError(
                        f"stream {self.stream!r}: every consumer copy is "
                        "on a failed node"
                    )
                yield from self._wait_for_demand()
            idx = self._demand_fifo.pop(0)
            if not self.consumers[idx].node.failed:
                return idx

    def _local_consumer(self, src: SimNode) -> Optional[int]:
        """Index of a consumer copy co-located with the producer, if any."""
        for i, c in enumerate(self.consumers):
            if c.node.name == src.name and not c.node.failed:
                return i
        return None

    def _deliver(self, src: SimNode, consumer: SimCopy, buffer: SimBuffer) -> Generator:
        yield from self.network.transfer(
            src, consumer.node, buffer.nbytes, tag=self.stream
        )
        if buffer.kind != _EOS and consumer.node.name != src.name:
            self._inflight[src.name] -= buffer.nbytes
            self._notify_demand()
        if buffer.kind != _EOS and consumer.node.failed:
            # Arrived after the node failed: re-deliver to a survivor.
            # (EOS markers still land so the EOS protocol is untouched.)
            self._unsend(consumer.copy_index, buffer)
            self.rerouted += 1
            yield from self.send(consumer.node, buffer)
            return
        consumer.store.put(buffer)

    def _unsend(self, idx: int, buffer: SimBuffer) -> None:
        """Undo the send-side accounting of an undelivered buffer."""
        self.states[idx].on_unassign(buffer)  # type: ignore[arg-type]
        self.buffers_sent -= 1
        self.bytes_sent -= buffer.nbytes

    def on_node_failed(self, node: SimNode) -> None:
        """A node failed: reroute everything queued for its copies.

        Already-queued data buffers are pulled out of the failed copies'
        stores and re-sent to surviving copies (the failed node pays the
        re-transfer, approximating the surviving producer's resend); EOS
        markers stay so the failed copy's process still terminates
        cleanly.  Future demand credits from failed copies are discarded
        in :meth:`_pop_demand`.
        """
        for copy in self.consumers:
            if copy.node.name != node.name:
                continue
            stranded = [b for b in copy.store.items if b.kind != _EOS]
            if not stranded:
                continue
            copy.store.items = [b for b in copy.store.items if b.kind == _EOS]
            for buffer in stranded:
                self._unsend(copy.copy_index, buffer)
                self.rerouted += 1
                self.env.process(self.send(copy.node, buffer))

    def recv(self, copy: SimCopy) -> Generator:
        """Generator: pop the next buffer for a consumer copy."""
        buffer = yield copy.store.get()
        if buffer.kind != _EOS:
            self.states[copy.copy_index].on_consume()
            if self.policy_name == "demand_driven":
                self._demand_fifo.append(copy.copy_index)
            self._notify_demand()
        return buffer

    def broadcast_eos(self, src: SimNode) -> None:
        """One producer copy finished: notify every consumer copy.

        The marker travels the same network path as data (zero bytes), so
        FIFO port ordering guarantees it arrives after every buffer this
        producer already handed to the runtime.
        """
        for consumer in self.consumers:
            self.env.process(self._deliver(src, consumer, SimBuffer(kind=_EOS)))


def rfr_proc(
    env: Environment,
    copy: SimCopy,
    workload: SimWorkload,
    costs: CostModel,
    out_router: SimRouter,
) -> Generator:
    """RFR: read local slices, send each to the IIC copies needing it."""
    dests_by_slice = workload.rfr_slice_destinations(len(out_router.consumers))
    for key in workload.slices_on_node(copy.copy_index):
        dests = dests_by_slice.get(key, ())
        if not dests:
            continue
        # Whole-slice sequential read from local disk (no seeks).
        t0 = env.now
        yield env.timeout(costs.read_slice_time(workload.slice_bytes))
        copy.record(t0, env.now, "read")
        buf_bytes = workload.slice_bytes
        for dest in dests:
            buffer = SimBuffer(kind="slice", nbytes=buf_bytes, meta={"slice": key})
            yield from out_router.send(copy.node, buffer, dest_copy=dest)
    out_router.broadcast_eos(copy.node)


def iic_proc(
    env: Environment,
    copy: SimCopy,
    workload: SimWorkload,
    costs: CostModel,
    in_router: SimRouter,
    out_router: SimRouter,
) -> Generator:
    """IIC: collect slice portions, emit complete texture chunks."""
    my_chunks = workload.iic_chunks_of_copy(copy.copy_index, len(in_router.consumers))
    needs = {li: workload.chunk_iic_needs[li] for li in my_chunks}
    # Which chunks each slice contributes to, restricted to this copy.
    contributes: Dict[tuple, List[int]] = {}
    for li in my_chunks:
        for key in workload.chunk_planes(workload.chunks[li]):
            contributes.setdefault(key, []).append(li)
    remaining_eos = in_router.num_producer_copies
    while remaining_eos:
        buffer = yield from in_router.recv(copy)
        if buffer.kind == _EOS:
            remaining_eos -= 1
            continue
        key = buffer.meta["slice"]
        for li in contributes.get(key, ()):
            chunk = workload.chunks[li]
            # Copy/reorganize the chunk's in-plane region of this slice.
            plane_bytes = chunk.shape[0] * chunk.shape[1] * workload.bytes_per_pixel
            t0 = env.now
            yield from copy.node.cpu.use(
                copy.node.compute_time(costs.stitch_time(plane_bytes, planes=1))
            )
            copy.record(t0, env.now, "stitch")
            needs[li] -= 1
            if needs[li] == 0:
                out = SimBuffer(
                    kind="chunk",
                    nbytes=workload.chunk_bytes(chunk),
                    meta={"chunk": li},
                )
                yield from out_router.send(copy.node, out)
    if any(v != 0 for v in needs.values()):
        raise RuntimeError(f"IIC copy {copy.copy_index}: incomplete chunks {needs}")
    out_router.broadcast_eos(copy.node)


def _texture_proc(
    env: Environment,
    copy: SimCopy,
    workload: SimWorkload,
    costs: CostModel,
    in_router: SimRouter,
    out_router: SimRouter,
    per_roi_cost: float,
    out_kind: str,
    out_bytes_fn,
) -> Generator:
    """Shared HMP/HCC loop: per chunk, compute + flush packets."""
    remaining_eos = in_router.num_producer_copies
    while remaining_eos:
        buffer = yield from in_router.recv(copy)
        if buffer.kind == _EOS:
            remaining_eos -= 1
            continue
        li = buffer.meta["chunk"]
        chunk = workload.chunks[li]
        for rois in workload.packets_per_chunk(chunk):
            t0 = env.now
            yield from copy.node.cpu.use(
                copy.node.compute_time(per_roi_cost * rois)
            )
            copy.record(t0, env.now, "compute")
            out = SimBuffer(
                kind=out_kind,
                nbytes=out_bytes_fn(rois),
                meta={"chunk": li, "rois": rois},
            )
            yield from out_router.send(copy.node, out)
    out_router.broadcast_eos(copy.node)


def hmp_proc(env, copy, workload, costs, in_router, out_router, sparse):
    return _texture_proc(
        env,
        copy,
        workload,
        costs,
        in_router,
        out_router,
        per_roi_cost=costs.hmp_per_roi(sparse),
        out_kind="features",
        out_bytes_fn=lambda rois: costs.feature_wire_bytes(
            rois, workload.num_features
        ),
    )


def hcc_proc(env, copy, workload, costs, in_router, out_router, sparse):
    return _texture_proc(
        env,
        copy,
        workload,
        costs,
        in_router,
        out_router,
        per_roi_cost=costs.hcc_per_roi(sparse),
        out_kind="matrices",
        out_bytes_fn=lambda rois: costs.matrix_wire_bytes(
            rois, workload.levels, sparse
        ),
    )


def hpc_proc(
    env: Environment,
    copy: SimCopy,
    workload: SimWorkload,
    costs: CostModel,
    in_router: SimRouter,
    out_router: SimRouter,
    sparse: bool,
) -> Generator:
    """HPC: parameters from each arriving matrix packet."""
    per_roi = costs.hpc_per_roi(sparse)
    remaining_eos = in_router.num_producer_copies
    while remaining_eos:
        buffer = yield from in_router.recv(copy)
        if buffer.kind == _EOS:
            remaining_eos -= 1
            continue
        rois = buffer.meta["rois"]
        t0 = env.now
        yield from copy.node.cpu.use(copy.node.compute_time(per_roi * rois))
        copy.record(t0, env.now, "compute")
        out = SimBuffer(
            kind="features",
            nbytes=costs.feature_wire_bytes(rois, workload.num_features),
            meta=dict(buffer.meta),
        )
        yield from out_router.send(copy.node, out)
    out_router.broadcast_eos(copy.node)


def uso_proc(
    env: Environment,
    copy: SimCopy,
    workload: SimWorkload,
    costs: CostModel,
    in_router: SimRouter,
) -> Generator:
    """USO: write each feature portion to local disk."""
    remaining_eos = in_router.num_producer_copies
    while remaining_eos:
        buffer = yield from in_router.recv(copy)
        if buffer.kind == _EOS:
            remaining_eos -= 1
            continue
        t0 = env.now
        yield env.timeout(costs.write_time(buffer.nbytes))
        copy.record(t0, env.now, "write")


FILTER_PROCS = {
    "RFR": rfr_proc,
    "IIC": iic_proc,
    "HMP": hmp_proc,
    "HCC": hcc_proc,
    "HPC": hpc_proc,
    "USO": uso_proc,
}


def tex_source_proc(
    env: Environment,
    copy: SimCopy,
    workload: SimWorkload,
    costs: CostModel,
    out_router: SimRouter,
    per_roi_cost: float,
    out_kind: str,
    out_bytes_fn,
    num_tex_copies: int,
) -> Generator:
    """Texture filter over a *replicated* dataset (paper footnote 1).

    When the dataset is small enough to be "replicated on all of the
    nodes and read into memory as a whole in order to eliminate the need
    for the IIC filter", each texture copy reads its share of the chunks
    straight from local disk — no RFR, no IIC, no input network traffic.
    Chunks are assigned round-robin by linear index.
    """
    for li, chunk in enumerate(workload.chunks):
        if li % num_tex_copies != copy.copy_index:
            continue
        t0 = env.now
        yield env.timeout(costs.read_slice_time(workload.chunk_bytes(chunk)))
        copy.record(t0, env.now, "read")
        for rois in workload.packets_per_chunk(chunk):
            t0 = env.now
            yield from copy.node.cpu.use(
                copy.node.compute_time(per_roi_cost * rois)
            )
            copy.record(t0, env.now, "compute")
            out = SimBuffer(
                kind=out_kind,
                nbytes=out_bytes_fn(rois),
                meta={"chunk": li, "rois": rois},
            )
            yield from out_router.send(copy.node, out)
    out_router.broadcast_eos(copy.node)


def hmp_source_proc(env, copy, workload, costs, out_router, sparse, num_tex):
    return tex_source_proc(
        env, copy, workload, costs, out_router,
        per_roi_cost=costs.hmp_per_roi(sparse),
        out_kind="features",
        out_bytes_fn=lambda rois: costs.feature_wire_bytes(rois, workload.num_features),
        num_tex_copies=num_tex,
    )


def hcc_source_proc(env, copy, workload, costs, out_router, sparse, num_tex):
    return tex_source_proc(
        env, copy, workload, costs, out_router,
        per_roi_cost=costs.hcc_per_roi(sparse),
        out_kind="matrices",
        out_bytes_fn=lambda rois: costs.matrix_wire_bytes(rois, workload.levels, sparse),
        num_tex_copies=num_tex,
    )

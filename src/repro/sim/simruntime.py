"""Simulated pipeline execution on a cluster model.

``SimRuntime`` instantiates the simulated filter processes over a
:class:`~repro.sim.clusters.SimCluster` according to a pipeline spec and
placement, runs the event loop to completion, and reports the makespan
plus per-filter busy times and traffic — the quantities plotted in the
paper's Figs. 7-11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..datacutter.placement import Placement
from .clusters import SimCluster
from .costmodel import CostModel, PAPER_COSTS
from .events import Store
from .faults import SimFaultPlan
from .network import LinkStats
from .simfilters import (
    SimCopy,
    SimRouter,
    hcc_proc,
    hcc_source_proc,
    hmp_proc,
    hmp_source_proc,
    hpc_proc,
    iic_proc,
    rfr_proc,
    uso_proc,
)
from .workload import SimWorkload

__all__ = ["SimPipelineSpec", "SimReport", "SimRuntime"]


@dataclass(frozen=True)
class SimPipelineSpec:
    """Structure of the simulated filter network."""

    variant: str = "hmp"  # "hmp" or "split"
    sparse: bool = False
    scheduling: str = "demand_driven"
    num_iic: int = 1
    num_tex: int = 1  # HMP copies (hmp variant)
    num_hcc: int = 1
    num_hpc: int = 1
    num_uso: int = 1
    #: Paper footnote 1: the dataset is replicated on every node and
    #: read locally, eliminating the RFR and IIC filters entirely.
    replicated_input: bool = False

    def __post_init__(self) -> None:
        if self.variant not in ("hmp", "split"):
            raise ValueError(f"unknown variant {self.variant!r}")
        for n in (self.num_iic, self.num_tex, self.num_hcc, self.num_hpc, self.num_uso):
            if n < 1:
                raise ValueError("copy counts must be >= 1")

    def filter_copy_counts(self, num_storage_nodes: int) -> Dict[str, int]:
        if self.replicated_input:
            counts = {"USO": self.num_uso}
        else:
            counts = {
                "RFR": num_storage_nodes,
                "IIC": self.num_iic,
                "USO": self.num_uso,
            }
        if self.variant == "hmp":
            counts["HMP"] = self.num_tex
        else:
            counts["HCC"] = self.num_hcc
            counts["HPC"] = self.num_hpc
        return counts


@dataclass
class SimReport:
    """Results of one simulated run."""

    makespan: float
    busy: Dict[Tuple[str, int], float]
    stream_bytes: Dict[str, int]
    stream_buffers: Dict[str, int]
    traffic: Dict[str, LinkStats]
    #: Per-copy service spans (start, end, kind); populated when the
    #: runtime was created with ``trace=True``.
    spans: Optional[Dict[Tuple[str, int], List]] = None
    #: Buffers re-delivered to surviving copies after a simulated node
    #: failure, per stream (all zero without a fault plan).
    stream_rerouted: Dict[str, int] = field(default_factory=dict)

    def filter_busy(self, name: str) -> List[float]:
        return [v for (f, _), v in sorted(self.busy.items()) if f == name]

    def filter_busy_mean(self, name: str) -> float:
        times = self.filter_busy(name)
        return sum(times) / len(times) if times else 0.0

    def filter_busy_max(self, name: str) -> float:
        times = self.filter_busy(name)
        return max(times) if times else 0.0

    def to_trace_events(self, t0: float = 0.0) -> List:
        """Export the run's spans in the shared observability schema.

        Returns :class:`repro.datacutter.obs.TraceEvent` objects (kinds
        ``chunk.read`` / ``chunk.stitch`` / ``chunk.cooccur`` /
        ``chunk.write``), so simulated runs flow through the same
        exporters — ``write_chrome_trace``, ``write_jsonl``,
        ``format_summary`` — as real ones.  Requires the runtime to have
        been created with ``trace=True``.
        """
        if self.spans is None:
            raise ValueError(
                "no spans recorded: create SimRuntime with trace=True"
            )
        from ..datacutter.obs import events_from_sim_spans

        return events_from_sim_spans(self.spans, t0=t0)


class SimRuntime:
    """Build and run one simulated pipeline execution."""

    def __init__(
        self,
        workload: SimWorkload,
        spec: SimPipelineSpec,
        cluster: SimCluster,
        placement: Placement,
        costs: CostModel = PAPER_COSTS,
        trace: bool = False,
        faults: Optional[SimFaultPlan] = None,
    ):
        self.workload = workload
        self.spec = spec
        self.cluster = cluster
        self.placement = placement
        self.costs = costs
        self.trace = trace
        self.faults = faults
        self._validate_placement()

    def _validate_placement(self) -> None:
        counts = self.spec.filter_copy_counts(self.workload.num_storage_nodes)
        for name, n in counts.items():
            for i in range(n):
                node = self.placement.node_of(name, i)  # raises if missing
                self.cluster.node(node)  # raises if unknown

    def _make_copies(self, name: str, count: int) -> List[SimCopy]:
        env = self.cluster.env
        return [
            SimCopy(
                filter_name=name,
                copy_index=i,
                node=self.cluster.node(self.placement.node_of(name, i)),
                store=Store(env),
                events=[] if self.trace else None,
            )
            for i in range(count)
        ]

    def run(self) -> SimReport:
        env = self.cluster.env
        net = self.cluster.network
        wl = self.workload
        spec = self.spec
        counts = spec.filter_copy_counts(wl.num_storage_nodes)

        copies = {name: self._make_copies(name, n) for name, n in counts.items()}
        tex_name = "HMP" if spec.variant == "hmp" else "HCC"

        routers = {}
        if not spec.replicated_input:
            r_rfr2iic = SimRouter(
                env, net, "rfr2iic", "explicit", copies["IIC"], counts["RFR"]
            )
            r_iic2tex = SimRouter(
                env, net, "iic2tex", spec.scheduling, copies[tex_name], counts["IIC"]
            )
            routers = {"rfr2iic": r_rfr2iic, "iic2tex": r_iic2tex}
        if spec.variant == "split":
            routers["hcc2hpc"] = SimRouter(
                env, net, "hcc2hpc", spec.scheduling, copies["HPC"], counts["HCC"],
                prefer_local=True,
            )
            routers["tex2uso"] = SimRouter(
                env, net, "tex2uso", spec.scheduling, copies["USO"], counts["HPC"]
            )
        else:
            routers["tex2uso"] = SimRouter(
                env, net, "tex2uso", spec.scheduling, copies["USO"], counts["HMP"]
            )

        if not spec.replicated_input:
            for copy in copies["RFR"]:
                env.process(rfr_proc(env, copy, wl, self.costs, r_rfr2iic))
            for copy in copies["IIC"]:
                env.process(
                    iic_proc(env, copy, wl, self.costs, r_rfr2iic, r_iic2tex)
                )
        if spec.variant == "hmp":
            for copy in copies["HMP"]:
                if spec.replicated_input:
                    env.process(
                        hmp_source_proc(
                            env, copy, wl, self.costs, routers["tex2uso"],
                            spec.sparse, counts["HMP"],
                        )
                    )
                else:
                    env.process(
                        hmp_proc(
                            env, copy, wl, self.costs, r_iic2tex,
                            routers["tex2uso"], spec.sparse,
                        )
                    )
        else:
            for copy in copies["HCC"]:
                if spec.replicated_input:
                    env.process(
                        hcc_source_proc(
                            env, copy, wl, self.costs, routers["hcc2hpc"],
                            spec.sparse, counts["HCC"],
                        )
                    )
                else:
                    env.process(
                        hcc_proc(
                            env, copy, wl, self.costs, r_iic2tex,
                            routers["hcc2hpc"], spec.sparse,
                        )
                    )
            for copy in copies["HPC"]:
                env.process(
                    hpc_proc(
                        env, copy, wl, self.costs, routers["hcc2hpc"],
                        routers["tex2uso"], spec.sparse,
                    )
                )
        for copy in copies["USO"]:
            env.process(uso_proc(env, copy, wl, self.costs, routers["tex2uso"]))

        if self.faults is not None:
            self._schedule_faults(env, net, routers)

        makespan = env.run()
        busy = {c.key: c.busy for group in copies.values() for c in group}
        spans = None
        if self.trace:
            spans = {c.key: c.events for group in copies.values() for c in group}
        return SimReport(
            makespan=makespan,
            busy=busy,
            stream_bytes={k: r.bytes_sent for k, r in routers.items()},
            stream_buffers={k: r.buffers_sent for k, r in routers.items()},
            traffic=dict(net.stats),
            spans=spans,
            stream_rerouted={k: r.rerouted for k, r in routers.items()},
        )

    def _schedule_faults(self, env, net, routers) -> None:
        """Turn the fault plan's events into simulation processes."""

        def fail_node(event):
            yield env.timeout(event.at)
            node = self.cluster.node(event.node)
            node.failed = True
            for router in routers.values():
                router.on_node_failed(node)

        def degrade_port(event):
            yield env.timeout(event.at)
            net.degrade_port(event.node, event.factor)

        def degrade_uplink(event):
            yield env.timeout(event.at)
            net.degrade_uplink(event.cluster_a, event.cluster_b, event.factor)

        for ev in self.faults.node_failures:
            self.cluster.node(ev.node)  # raises early if unknown
            env.process(fail_node(ev))
        for ev in self.faults.port_degradations:
            env.process(degrade_port(ev))
        for ev in self.faults.uplink_degradations:
            env.process(degrade_uplink(ev))

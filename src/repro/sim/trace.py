"""Execution traces: text Gantt rendering of a simulated run.

Enable tracing with ``SimRuntime(..., trace=True)``; every filter copy
then records its service spans ``(start, end, kind)``, exposed on the
report as ``spans``.  ``format_timeline`` renders them as an ASCII
Gantt — the quickest way to see *why* a deployment behaves as it does
(the IIC fill delay, a straggler texture copy, a saturated output
stage).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["format_timeline", "span_utilization"]

Span = Tuple[float, float, str]

_KIND_CHARS = {
    "compute": "#",
    "stitch": "s",
    "read": "r",
    "write": "w",
}


def span_utilization(spans: Sequence[Span], horizon: float) -> float:
    """Fraction of ``[0, horizon]`` covered by service spans."""
    if horizon <= 0:
        return 0.0
    total = sum(t1 - t0 for t0, t1, _ in spans)
    return min(total / horizon, 1.0)


def format_timeline(
    spans_by_copy: Dict[Tuple[str, int], List[Span]],
    makespan: float,
    width: int = 72,
    order: Sequence[str] = ("RFR", "IIC", "HMP", "HCC", "HPC", "USO"),
) -> str:
    """Render per-copy service spans as an ASCII Gantt chart.

    One row per filter copy; ``#``/``s``/``r``/``w`` mark compute /
    stitch / read / write service, ``.`` idle or blocked.
    """
    if makespan <= 0:
        raise ValueError("makespan must be positive")
    if width < 10:
        raise ValueError("width must be >= 10")

    def sort_key(item):
        (name, idx), _ = item
        try:
            rank = order.index(name)
        except ValueError:
            rank = len(order)
        return (rank, name, idx)

    lines = [f"timeline: 0 .. {makespan:.1f}s  ({makespan / width:.2f}s/col)"]
    for (name, idx), spans in sorted(spans_by_copy.items(), key=sort_key):
        row = ["."] * width
        for t0, t1, kind in spans:
            c0 = int(t0 / makespan * width)
            c1 = max(c0 + 1, int(t1 / makespan * width))
            ch = _KIND_CHARS.get(kind, "#")
            for c in range(c0, min(c1, width)):
                row[c] = ch
        util = span_utilization(spans, makespan)
        lines.append(f"{name:>4}[{idx:02d}] |{''.join(row)}| {util:5.1%}")
    lines.append("legend: # compute  s stitch  r read  w write  . idle/blocked")
    return "\n".join(lines)

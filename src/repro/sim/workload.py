"""Workload description driving the cluster simulator.

The simulator does not move real pixels — correctness of the pipeline is
established by the threaded runtime (``tests/integration``).  What it
needs is the exact *structure* of the work: how many slices live on each
storage node, how chunks partition the dataset, how many ROIs each chunk
owns, and how large each message is.  :class:`SimWorkload` derives all of
that from the same geometry code the real pipeline uses
(:mod:`repro.chunks`, :mod:`repro.storage`), so simulated runs and real
runs agree on message counts exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Tuple

from ..chunks.chunking import ChunkSpec, partition
from ..core.roi import ROISpec
from ..pipeline.config import clip_chunk_shape
from ..storage.distribution import round_robin_node, slices_for_node

__all__ = ["SimWorkload", "paper_workload"]


@dataclass(frozen=True)
class SimWorkload:
    """Geometry of one analysis run (paper Section 5.1 defaults)."""

    dataset_shape: Tuple[int, int, int, int] = (256, 256, 32, 32)
    roi_shape: Tuple[int, ...] = (5, 5, 5, 3)
    chunk_shape: Tuple[int, ...] = (50, 50, 32, 32)
    levels: int = 32
    num_features: int = 4
    num_storage_nodes: int = 4
    bytes_per_pixel: int = 2
    packet_fraction: float = 1.0 / 8.0

    def __post_init__(self) -> None:
        if self.num_storage_nodes < 1:
            raise ValueError("need at least one storage node")
        ROISpec(self.roi_shape)
        if not (0 < self.packet_fraction <= 1):
            raise ValueError("packet_fraction must be in (0, 1]")

    @property
    def roi(self) -> ROISpec:
        return ROISpec(self.roi_shape)

    @cached_property
    def chunks(self) -> List[ChunkSpec]:
        shape = clip_chunk_shape(self.chunk_shape, self.dataset_shape, self.roi_shape)
        return partition(self.dataset_shape, self.roi, shape)

    @property
    def slice_bytes(self) -> int:
        nx, ny = self.dataset_shape[0], self.dataset_shape[1]
        return nx * ny * self.bytes_per_pixel

    @property
    def num_slices(self) -> int:
        return self.dataset_shape[2]

    @property
    def num_timesteps(self) -> int:
        return self.dataset_shape[3]

    @property
    def total_rois(self) -> int:
        out = 1
        for s, r in zip(self.dataset_shape, self.roi_shape):
            out *= s - r + 1
        return out

    def slices_on_node(self, node: int) -> List[Tuple[int, int]]:
        return slices_for_node(
            node, self.num_timesteps, self.num_slices, self.num_storage_nodes
        )

    def chunk_bytes(self, chunk: ChunkSpec) -> int:
        return chunk.num_voxels * self.bytes_per_pixel

    def chunk_planes(self, chunk: ChunkSpec) -> List[Tuple[int, int]]:
        """The global ``(t, z)`` planes a chunk spans."""
        return [
            (t, z)
            for t in range(chunk.lo[3], chunk.hi[3])
            for z in range(chunk.lo[2], chunk.hi[2])
        ]

    def packets_per_chunk(self, chunk: ChunkSpec) -> List[int]:
        """ROI counts of the matrix/feature packets of one chunk.

        The HCC/HMP filters flush a packet every ``packet_fraction`` of a
        chunk (paper Section 5.1: every 1/8).
        """
        import math

        # Texture filters scan the chunk's full local grid; the last
        # packet may be short.
        total = 1
        for s, r in zip(chunk.shape, self.roi_shape):
            total *= s - r + 1
        per = max(1, math.ceil(total * self.packet_fraction))
        counts = []
        remaining = total
        while remaining > 0:
            take = min(per, remaining)
            counts.append(take)
            remaining -= take
        return counts

    @cached_property
    def chunk_iic_needs(self) -> Dict[int, int]:
        """Per chunk (linear index): number of slice portions required."""
        return {li: len(self.chunk_planes(c)) for li, c in enumerate(self.chunks)}

    def rfr_slice_destinations(self, num_iic_copies: int) -> Dict[Tuple[int, int], List[int]]:
        """For each (t, z) slice: the IIC copies needing it (deduplicated)."""
        from ..filters.messages import iic_copy_for_chunk

        out: Dict[Tuple[int, int], List[int]] = {}
        for li, chunk in enumerate(self.chunks):
            dest = iic_copy_for_chunk(li, num_iic_copies)
            for key in self.chunk_planes(chunk):
                dests = out.setdefault(key, [])
                if dest not in dests:
                    dests.append(dest)
        return out

    def iic_chunks_of_copy(self, copy: int, num_iic_copies: int) -> List[int]:
        from ..filters.messages import iic_copy_for_chunk

        return [
            li
            for li in range(len(self.chunks))
            if iic_copy_for_chunk(li, num_iic_copies) == copy
        ]


def paper_workload(scale: float = 1.0, **overrides) -> SimWorkload:
    """The Section 5.1 workload, optionally scaled down for fast tests.

    ``scale`` shrinks every dataset dimension (min 8 in-plane, 4 in z/t);
    chunk dimensions are clipped automatically.
    """
    if not (0 < scale <= 1.0):
        raise ValueError("scale must be in (0, 1]")
    nx = max(8, round(256 * scale))
    nz = max(4, round(32 * scale))
    nt = max(4, round(32 * scale))
    defaults = dict(
        dataset_shape=(nx, nx, nz, nt),
        chunk_shape=(max(8, round(50 * scale)), max(8, round(50 * scale)), nz, nt),
    )
    defaults.update(overrides)
    return SimWorkload(**defaults)

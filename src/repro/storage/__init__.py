"""Disk-resident dataset substrate (paper Section 4.2)."""

from .dataset import DiskDataset4D, IOStats, node_dir_name, write_dataset
from .distribution import assignment_table, round_robin_node, slices_for_node
from .index import INDEX_FILENAME, NodeIndex

__all__ = [
    "DiskDataset4D",
    "IOStats",
    "write_dataset",
    "node_dir_name",
    "assignment_table",
    "round_robin_node",
    "slices_for_node",
    "NodeIndex",
    "INDEX_FILENAME",
]

"""Disk-resident 4D datasets: writing, opening and reading slice files.

Layout on disk (paper Section 4.2)::

    <root>/node0000/index.json
    <root>/node0000/t0000_z0000.raw
    <root>/node0000/t0000_z0004.raw   # round-robin over 4 nodes
    <root>/node0001/...

Each 2D slice is a separate headerless raw file; a JSON index per node
maps ``(t, z)`` tuples to filenames.  Reads go through
:class:`IOStats`-instrumented helpers so tests and benchmarks can observe
disk seek/read behaviour (the motivation for the RFR-to-IIC chunk size
choice in Section 5.1: one whole slice per read avoids intra-slice seeks).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.dicomlite import read_dicom_slice, write_dicom_slice
from ..data.formats import read_raw_slice, write_raw_slice
from ..data.volume import Volume4D
from .distribution import round_robin_node, slices_for_node
from .index import NodeIndex

__all__ = ["IOStats", "DiskDataset4D", "write_dataset", "node_dir_name"]


def node_dir_name(node: int) -> str:
    return f"node{node:04d}"


def _slice_filename(t: int, z: int, file_format: str = "raw") -> str:
    ext = {"raw": "raw", "dicom": "dcm"}[file_format]
    return f"t{t:04d}_z{z:04d}.{ext}"


@dataclass
class IOStats:
    """Counters for disk activity, used by tests and cost calibration."""

    reads: int = 0
    seeks: int = 0
    bytes_read: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.seeks = 0
        self.bytes_read = 0


@dataclass
class DiskDataset4D:
    """An opened disk-resident 4D dataset distributed over storage nodes."""

    root: str
    shape: Tuple[int, int, int, int]
    bytes_per_pixel: int
    num_nodes: int
    indexes: Dict[int, NodeIndex]
    file_format: str = "raw"
    stats: IOStats = field(default_factory=IOStats)

    # -- opening ---------------------------------------------------------

    @classmethod
    def open(cls, root: str) -> "DiskDataset4D":
        """Open a dataset by loading every node index under ``root``."""
        node_dirs = sorted(
            d for d in os.listdir(root) if d.startswith("node") and
            os.path.isdir(os.path.join(root, d))
        )
        if not node_dirs:
            raise FileNotFoundError(f"no storage node directories under {root}")
        indexes: Dict[int, NodeIndex] = {}
        for d in node_dirs:
            idx = NodeIndex.load(os.path.join(root, d))
            indexes[idx.node] = idx
        first = next(iter(indexes.values()))
        if sorted(indexes) != list(range(first.num_nodes)):
            raise ValueError(
                f"incomplete dataset: found nodes {sorted(indexes)}, "
                f"expected 0..{first.num_nodes - 1}"
            )
        for idx in indexes.values():
            if (
                idx.shape != first.shape
                or idx.bytes_per_pixel != first.bytes_per_pixel
                or idx.file_format != first.file_format
            ):
                raise ValueError("inconsistent metadata across node indexes")
        return cls(
            root=root,
            shape=first.shape,
            bytes_per_pixel=first.bytes_per_pixel,
            num_nodes=first.num_nodes,
            indexes=indexes,
            file_format=first.file_format,
        )

    # -- geometry --------------------------------------------------------

    @property
    def slice_shape(self) -> Tuple[int, int]:
        return self.shape[0], self.shape[1]

    @property
    def num_slices(self) -> int:
        return self.shape[2]

    @property
    def num_timesteps(self) -> int:
        return self.shape[3]

    def node_of(self, t: int, z: int) -> int:
        return round_robin_node(t, z, self.num_slices, self.num_nodes)

    def slices_on_node(self, node: int) -> List[Tuple[int, int]]:
        return slices_for_node(node, self.num_timesteps, self.num_slices, self.num_nodes)

    def _slice_path(self, t: int, z: int) -> str:
        node = self.node_of(t, z)
        fn = self.indexes[node].filename(t, z)
        return os.path.join(self.root, node_dir_name(node), fn)

    # -- reads -----------------------------------------------------------

    def read_slice(self, t: int, z: int) -> np.ndarray:
        """Read one full 2D slice (a single sequential read, no seeks)."""
        path = self._slice_path(t, z)
        if self.file_format == "dicom":
            img, meta = read_dicom_slice(path)
            if img.shape != self.slice_shape:
                raise ValueError(
                    f"{path}: DICOM dims {img.shape} != dataset {self.slice_shape}"
                )
            if meta and (meta.get("t", t), meta.get("z", z)) != (t, z):
                raise ValueError(
                    f"{path}: DICOM position tags {meta} != index key (t={t}, z={z})"
                )
        else:
            img = read_raw_slice(path, self.slice_shape, self.bytes_per_pixel)
        self.stats.reads += 1
        self.stats.bytes_read += img.size * self.bytes_per_pixel
        return img

    def read_slice_region(
        self, t: int, z: int, x0: int, x1: int, y0: int, y1: int
    ) -> np.ndarray:
        """Read a rectangular sub-region of one slice.

        Raw slices are row-major in ``x``; a sub-rectangle therefore costs
        one seek per row (tracked in ``stats`` — this is exactly the seek
        overhead the paper avoids by sizing RFR-to-IIC chunks to a whole
        slice, Section 5.1).
        """
        nx, ny = self.slice_shape
        if not (0 <= x0 < x1 <= nx and 0 <= y0 < y1 <= ny):
            raise ValueError(f"invalid region x[{x0}:{x1}] y[{y0}:{y1}] of {nx}x{ny}")
        if x0 == 0 and x1 == nx and y0 == 0 and y1 == ny:
            return self.read_slice(t, z)
        if self.file_format == "dicom":
            # DICOM values are not seekable sub-regions: read whole slice.
            return self.read_slice(t, z)[x0:x1, y0:y1]
        path = self._slice_path(t, z)
        bpp = self.bytes_per_pixel
        dtype = {1: np.uint8, 2: np.uint16, 4: np.uint32}[bpp]
        rows = []
        with open(path, "rb") as fh:
            for x in range(x0, x1):
                fh.seek((x * ny + y0) * bpp)
                raw = fh.read((y1 - y0) * bpp)
                rows.append(np.frombuffer(raw, dtype=np.dtype(dtype).newbyteorder("<")))
                self.stats.seeks += 1
                self.stats.reads += 1
                self.stats.bytes_read += len(raw)
        return np.stack(rows).astype(dtype)

    def read_chunk(
        self,
        x: Tuple[int, int],
        y: Tuple[int, int],
        z: Tuple[int, int],
        t: Tuple[int, int],
        nodes: Optional[List[int]] = None,
    ) -> np.ndarray:
        """Read a 4D sub-volume ``[x0:x1, y0:y1, z0:z1, t0:t1]``.

        ``nodes`` restricts reading to slices stored on the given storage
        nodes (the RFR filter on one node can only see local files);
        missing slices are returned zero-filled, to be stitched with the
        other nodes' portions by the IIC filter.
        """
        (x0, x1), (y0, y1), (z0, z1), (t0, t1) = x, y, z, t
        nx, ny, nz, nt = self.shape
        if not (0 <= z0 < z1 <= nz and 0 <= t0 < t1 <= nt):
            raise ValueError(f"invalid z[{z0}:{z1}] t[{t0}:{t1}] of {nz}x{nt}")
        out = np.zeros(
            (x1 - x0, y1 - y0, z1 - z0, t1 - t0),
            dtype={1: np.uint8, 2: np.uint16, 4: np.uint32}[self.bytes_per_pixel],
        )
        nodeset = set(nodes) if nodes is not None else None
        for tt in range(t0, t1):
            for zz in range(z0, z1):
                if nodeset is not None and self.node_of(tt, zz) not in nodeset:
                    continue
                out[:, :, zz - z0, tt - t0] = self.read_slice_region(
                    tt, zz, x0, x1, y0, y1
                )
        return out

    def read_all(self) -> Volume4D:
        """Read the entire dataset into memory (small datasets only)."""
        data = self.read_chunk(
            (0, self.shape[0]), (0, self.shape[1]), (0, self.shape[2]), (0, self.shape[3])
        )
        return Volume4D(data)


def write_dataset(
    volume: Volume4D,
    root: str,
    num_nodes: int,
    bytes_per_pixel: int = 2,
    file_format: str = "raw",
) -> DiskDataset4D:
    """Distribute a 4D volume across ``num_nodes`` storage node dirs.

    Creates one slice file per 2D slice (headerless raw by default, or
    DICOM with ``file_format="dicom"``) plus an index file per node, then
    reopens and returns the dataset.
    """
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    if file_format not in ("raw", "dicom"):
        raise ValueError(f"unknown file_format {file_format!r}")
    if file_format == "dicom" and bytes_per_pixel not in (1, 2):
        raise ValueError("DICOM output supports 1 or 2 bytes per pixel")
    nx, ny, nz, nt = volume.shape
    os.makedirs(root, exist_ok=True)
    indexes = [
        NodeIndex(
            node=n,
            num_nodes=num_nodes,
            shape=volume.shape,
            bytes_per_pixel=bytes_per_pixel,
            file_format=file_format,
        )
        for n in range(num_nodes)
    ]
    for n in range(num_nodes):
        os.makedirs(os.path.join(root, node_dir_name(n)), exist_ok=True)
    for t, z, img in volume.iter_slices():
        node = round_robin_node(t, z, nz, num_nodes)
        fn = _slice_filename(t, z, file_format)
        path = os.path.join(root, node_dir_name(node), fn)
        if file_format == "dicom":
            dtype = {1: np.uint8, 2: np.uint16}[bytes_per_pixel]
            write_dicom_slice(path, np.asarray(img, dtype=dtype), t=t, z=z)
        else:
            write_raw_slice(path, img, bytes_per_pixel)
        indexes[node].add(t, z, fn)
    for n in range(num_nodes):
        indexes[n].save(os.path.join(root, node_dir_name(n)))
    return DiskDataset4D.open(root)

"""Round-robin declustering of 2D slices across storage nodes.

Paper Section 4.2: "2D image slices that make a 3D volume at a time step
are distributed across storage nodes in round robin fashion.  Each 2D
image is assigned to a single storage node and stored on disk in a
separate file."  The round robin runs in ``(t, z)`` order so that the
slices of any one 3D volume — the unit of common analysis queries — are
spread evenly over all nodes, parallelizing retrieval.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = [
    "round_robin_node",
    "assignment_table",
    "slices_for_node",
]

SliceKey = Tuple[int, int]  # (time step, slice number)


def round_robin_node(t: int, z: int, num_slices: int, num_nodes: int) -> int:
    """Storage node owning slice ``(t, z)`` of a ``num_slices``-deep volume."""
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    if num_slices < 1:
        raise ValueError(f"num_slices must be >= 1, got {num_slices}")
    if t < 0 or z < 0 or z >= num_slices:
        raise ValueError(f"invalid slice key (t={t}, z={z})")
    return (t * num_slices + z) % num_nodes


def assignment_table(
    num_timesteps: int, num_slices: int, num_nodes: int
) -> Dict[SliceKey, int]:
    """Full ``(t, z) -> node`` mapping for a dataset."""
    return {
        (t, z): round_robin_node(t, z, num_slices, num_nodes)
        for t in range(num_timesteps)
        for z in range(num_slices)
    }


def slices_for_node(
    node: int, num_timesteps: int, num_slices: int, num_nodes: int
) -> List[SliceKey]:
    """All slice keys stored on ``node``, in ``(t, z)`` order."""
    if not (0 <= node < num_nodes):
        raise ValueError(f"node {node} out of range [0, {num_nodes})")
    return [
        (t, z)
        for t in range(num_timesteps)
        for z in range(num_slices)
        if round_robin_node(t, z, num_slices, num_nodes) == node
    ]

"""Per-storage-node index files.

Paper Section 4.2: "A simple index file is created on each storage node
for the images assigned to that storage node.  In this index file, each
image file is associated with a tuple" of the time step and the slice
number within the 3D volume.

The index is a small JSON document per node directory holding the
dataset-global metadata (shape, bytes per pixel, node count) and one
``[t, z, filename]`` entry per local slice file.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["NodeIndex", "INDEX_FILENAME"]

INDEX_FILENAME = "index.json"


@dataclass
class NodeIndex:
    """Index of the slice files stored on one storage node."""

    node: int
    num_nodes: int
    shape: Tuple[int, int, int, int]  # global (nx, ny, nz, nt)
    bytes_per_pixel: int
    file_format: str = "raw"  # "raw" or "dicom"
    entries: Dict[Tuple[int, int], str] = field(default_factory=dict)

    def add(self, t: int, z: int, filename: str) -> None:
        key = (int(t), int(z))
        if key in self.entries:
            raise ValueError(f"duplicate index entry for slice {key}")
        self.entries[key] = filename

    def filename(self, t: int, z: int) -> str:
        try:
            return self.entries[(t, z)]
        except KeyError:
            raise KeyError(
                f"slice (t={t}, z={z}) is not stored on node {self.node}"
            ) from None

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return key in self.entries

    def keys(self) -> List[Tuple[int, int]]:
        return sorted(self.entries)

    def save(self, node_dir: str) -> str:
        """Write the index JSON into ``node_dir``; returns the path."""
        doc = {
            "node": self.node,
            "num_nodes": self.num_nodes,
            "shape": list(self.shape),
            "bytes_per_pixel": self.bytes_per_pixel,
            "file_format": self.file_format,
            "entries": [[t, z, fn] for (t, z), fn in sorted(self.entries.items())],
        }
        path = os.path.join(node_dir, INDEX_FILENAME)
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=1)
        return path

    @classmethod
    def load(cls, node_dir: str) -> "NodeIndex":
        path = os.path.join(node_dir, INDEX_FILENAME)
        with open(path) as fh:
            doc = json.load(fh)
        idx = cls(
            node=int(doc["node"]),
            num_nodes=int(doc["num_nodes"]),
            shape=tuple(int(s) for s in doc["shape"]),  # type: ignore[arg-type]
            bytes_per_pixel=int(doc["bytes_per_pixel"]),
            file_format=str(doc.get("file_format", "raw")),
        )
        for t, z, fn in doc["entries"]:
            idx.add(int(t), int(z), fn)
        return idx

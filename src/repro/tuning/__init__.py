"""Self-tuning layer: close the loop from the obs layer back into config.

The paper's performance hinges on hand-picked run-time parameters —
chunk shape, filter copy counts, transparent-copy placement — and this
reproduction inherited that: every knob was static per run while the
observability layer (PR 4) already recorded the queue-wait/service-time
splits needed to choose them.  Following the run-time parameter
sensitivity analysis of Scartezini et al. (PAPERS.md), this package
consumes those metrics in two loops:

**Offline** (:mod:`~repro.tuning.sweep` + :mod:`~repro.tuning.costmodel`):
``repro tune`` runs a small pilot workload across chunk shape × copy
counts × transport × kernel, consumes :class:`MetricsRegistry` snapshots
from each run, fits a simple cost model, and emits a
:class:`~repro.tuning.profile.TuningProfile` (JSON) that
``run_pipeline``/``AnalysisConfig`` load via ``--profile``.

**Online** (:mod:`~repro.tuning.controller`): a controller thread samples
queue-depth gauges mid-run and adapts per-edge credit windows and
replicated-copy activation within :class:`AdaptationBounds`, emitting
``tune.adjust`` obs events.  Off by default; bit-identity is preserved
under every adjustment because the actuators only steer *routing* of
transparent streams, never what is computed.

Both loops depend on the event-driven wakeups this PR added to the
runtimes: with the busy-wait latency floor gone, the tuner measures the
pipeline rather than poll-interval noise.
"""

from .controller import AdaptationBounds, OnlineController
from .costmodel import CostModel, fit_cost_model
from .profile import PROFILE_VERSION, TuningProfile, load_profile
from .sweep import PilotSpec, SweepResult, run_sweep

__all__ = [
    "AdaptationBounds",
    "OnlineController",
    "CostModel",
    "fit_cost_model",
    "PROFILE_VERSION",
    "TuningProfile",
    "load_profile",
    "PilotSpec",
    "SweepResult",
    "run_sweep",
]

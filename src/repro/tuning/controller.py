"""Online adaptation: a controller thread closing the obs loop mid-run.

The controller samples per-edge queue depths (the same shared counters
the ``queue.depth`` gauge reads) and steers two actuators within
configured :class:`AdaptationBounds`:

* **Credit window** — a soft per-consumer bound on outstanding buffers.
  Backlogged edges get a wider window (more pipelining); idle edges get
  a narrower one (less buffer bloat, fresher work for rerouting).
* **Copy activation** — replicated (transparent) copies of a consumer
  can be deactivated when the edge runs far below capacity, steering new
  assignments onto fewer copies (better locality) without ever touching
  in-flight buffers; they reactivate the moment backlog builds.

Every adjustment emits a ``tune.adjust`` obs event.  Decisions are
**routing-only**: a transparent stream produces bit-identical output no
matter which copy serves each buffer (the conformance suite pins this),
so adaptation can never change results — only their timing.

The controller duck-types over the runtime's edge objects (attributes
``credit``, ``active``, ``queued``, ``num_consumers``, ``max_queue``,
``lock``) instead of importing the runtime, keeping
``repro.tuning`` ← ``repro.datacutter`` a one-way dependency (the
runtime lazily imports this module only when ``autotune=`` is set).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.datacutter.obs import Tracer

__all__ = ["AdaptationBounds", "OnlineController"]


@dataclass(frozen=True)
class AdaptationBounds:
    """Bounds within which the online controller may adapt a run.

    Parameters
    ----------
    interval:
        Sampling period in seconds.  Each tick samples every adaptable
        edge once and applies at most one adjustment per knob per edge.
    min_credit / max_credit:
        Closed range for the per-edge credit window (outstanding buffers
        per consumer copy).  ``max_credit=None`` means the edge's own
        ``max_queue``.
    min_active:
        Never deactivate below this many copies per consumer.
    high_water / low_water:
        Mean-depth thresholds, as a fraction of the current credit
        window: above ``high_water`` the controller widens credit (and
        reactivates copies); below ``low_water`` it narrows credit (and
        deactivates surplus idle copies).
    """

    interval: float = 0.05
    min_credit: int = 1
    max_credit: Optional[int] = None
    min_active: int = 1
    high_water: float = 0.75
    low_water: float = 0.25

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.min_credit < 1:
            raise ValueError("min_credit must be >= 1")
        if self.max_credit is not None and self.max_credit < self.min_credit:
            raise ValueError("max_credit must be >= min_credit")
        if self.min_active < 1:
            raise ValueError("min_active must be >= 1")
        if not 0.0 <= self.low_water < self.high_water:
            raise ValueError("need 0 <= low_water < high_water")


class OnlineController:
    """Samples edge queue depths and adapts credit/activation in-bounds.

    ``edges`` maps ``"src:stream"`` labels to runtime edge objects whose
    ``credit``/``active`` shared values this controller owns for the
    duration of the run (the runtime creates them only when autotune is
    enabled, so a controller-less run carries zero overhead).  ``abort``
    is the run's shared abort flag; the controller exits on it.
    """

    def __init__(self, edges: Dict[str, Any], bounds: AdaptationBounds, abort):
        self.edges = {
            name: e
            for name, e in edges.items()
            if getattr(e, "credit", None) is not None
        }
        self.bounds = bounds
        self.abort = abort
        self.tracer = Tracer()
        self.adjustments = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="tune-controller", daemon=True
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5)

    def drain_events(self) -> List[Any]:
        return self.tracer.drain()

    # -- control loop ------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self.bounds.interval):
            if getattr(self.abort, "value", 0):
                return
            for name, edge in self.edges.items():
                try:
                    self._tick_edge(name, edge)
                except Exception:  # pragma: no cover - defensive
                    # A torn read during teardown must never take the
                    # run down; the controller is strictly advisory.
                    return

    def _tick_edge(self, name: str, edge) -> None:
        b = self.bounds
        with edge.lock:
            depths = [edge.queued[i] for i in range(edge.num_consumers)]
        credit = edge.credit.value
        mean_depth = sum(depths) / max(len(depths), 1)
        ratio = mean_depth / max(credit, 1)
        max_credit = b.max_credit if b.max_credit is not None else edge.max_queue

        if ratio > b.high_water and credit < max_credit:
            self._set_credit(name, edge, min(credit * 2, max_credit), mean_depth)
        elif ratio < b.low_water and credit > b.min_credit:
            self._set_credit(name, edge, max(credit // 2, b.min_credit), mean_depth)

        if edge.active is not None and edge.num_consumers > b.min_active:
            n_active = sum(1 for i in range(edge.num_consumers) if edge.active[i])
            if ratio > b.high_water and n_active < edge.num_consumers:
                # Backlog: bring every copy back into rotation.
                self._set_active(name, edge, edge.num_consumers, mean_depth)
            elif ratio < b.low_water:
                # Idle: concentrate new work on the busiest copies, but
                # never below min_active and never a copy still holding
                # queued buffers (it keeps draining either way — the
                # mask only gates *new* assignments).
                busy = sum(1 for d in depths if d > 0)
                target = max(b.min_active, busy)
                if target < n_active:
                    self._set_active(name, edge, target, mean_depth)

    def _set_credit(self, name: str, edge, new: int, depth: float) -> None:
        old = edge.credit.value
        if new == old:
            return
        edge.credit.value = new
        self.adjustments += 1
        self.tracer.emit(
            "tune.adjust", edge=name, knob="credit", old=old, new=new, depth=depth
        )

    def _set_active(self, name: str, edge, target: int, depth: float) -> None:
        with edge.lock:
            depths = [(edge.queued[i], i) for i in range(edge.num_consumers)]
            old = sum(1 for i in range(edge.num_consumers) if edge.active[i])
            if target == old:
                return
            # Keep the copies with the deepest queues active (they are
            # proven-scheduled); deactivate from the idle end.
            order = sorted(depths, key=lambda t: (-t[0], t[1]))
            keep = {i for _, i in order[:target]}
            for i in range(edge.num_consumers):
                edge.active[i] = 1 if i in keep else 0
        self.adjustments += 1
        self.tracer.emit(
            "tune.adjust", edge=name, knob="active", old=old, new=target, depth=depth
        )

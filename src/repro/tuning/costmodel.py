"""A simple cost model fitted to pilot-sweep measurements.

The model predicts pilot elapsed time from features derived from each
candidate's configuration and its metrics snapshot:

* total service seconds ÷ effective parallelism (the compute term),
* total queue-wait seconds (the coordination term),
* bytes moved per transport (the data-movement term),
* a per-(kernel, transport) intercept soaking up fixed costs.

Fitting is ordinary least squares (:func:`numpy.linalg.lstsq`) with
non-negative clamping on the physical coefficients — deliberately
simple, following the run-time parameter sensitivity analysis of
Scartezini et al. (PAPERS.md): a handful of interpretable terms ranks
candidates reliably on workloads this regular, and the sweep's measured
times always take precedence where they exist (the model interpolates,
it never overrules a measurement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["CostModel", "fit_cost_model", "record_features"]


def _hist_sum(snapshot: Mapping[str, Any], prefix: str) -> float:
    """Sum a histogram family's ``sum`` across label sets."""
    total = 0.0
    for key, h in (snapshot.get("histograms") or {}).items():
        if key == prefix or key.startswith(prefix + "{"):
            total += float(h.get("sum", 0.0))
    return total


def _counter_sum(snapshot: Mapping[str, Any], prefix: str) -> float:
    total = 0.0
    for key, v in (snapshot.get("counters") or {}).items():
        if key == prefix or key.startswith(prefix + "{"):
            total += float(v)
    return total


def record_features(record: Mapping[str, Any]) -> Dict[str, float]:
    """Derive the model's feature vector from one sweep record.

    ``record`` is one entry of :attr:`SweepResult.records`: the
    candidate dict plus ``elapsed`` and the run's metrics ``snapshot``.
    """
    snap = record.get("snapshot") or {}
    candidate = record.get("candidate") or {}
    copies = candidate.get("copies") or {}
    workers = max(1, sum(int(n) for n in copies.values()) or 1)
    service = _hist_sum(snap, "busy_seconds") or _hist_sum(snap, "service_seconds")
    wait = _hist_sum(snap, "queue_wait_seconds")
    moved = _counter_sum(snap, "wire_bytes") + _counter_sum(snap, "shm_bytes")
    return {
        "service_per_worker": service / workers,
        "queue_wait": wait,
        "gbytes_moved": moved / 1e9,
    }


_FEATURES = ("service_per_worker", "queue_wait", "gbytes_moved")


@dataclass
class CostModel:
    """Least-squares fit of elapsed time over the sweep's records."""

    coef: Dict[str, float]
    intercepts: Dict[Tuple[str, str], float]
    residual: float = 0.0
    n_records: int = 0
    #: Per-candidate-key measured elapsed (seconds); always preferred.
    measured: Dict[str, float] = field(default_factory=dict)

    def predict(self, record: Mapping[str, Any]) -> float:
        """Predict elapsed seconds for a sweep record."""
        key = candidate_key(record.get("candidate") or {})
        if key in self.measured:
            return self.measured[key]
        feats = record_features(record)
        cand = record.get("candidate") or {}
        base = self.intercepts.get(
            (str(cand.get("kernel")), str(cand.get("transport"))),
            min(self.intercepts.values()) if self.intercepts else 0.0,
        )
        return base + sum(self.coef[f] * feats[f] for f in _FEATURES)

    def rank(
        self, records: Sequence[Mapping[str, Any]]
    ) -> List[Tuple[float, Mapping[str, Any]]]:
        """Records sorted fastest-predicted first."""
        return sorted(
            ((self.predict(r), r) for r in records), key=lambda t: t[0]
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "coef": dict(self.coef),
            "intercepts": {
                f"{k}/{t}": v for (k, t), v in self.intercepts.items()
            },
            "residual": self.residual,
            "n_records": self.n_records,
        }


def candidate_key(candidate: Mapping[str, Any]) -> str:
    """Stable string identity of one sweep candidate."""
    chunk = candidate.get("chunk_shape")
    copies = candidate.get("copies") or {}
    return "|".join(
        [
            "x".join(str(c) for c in chunk) if chunk else "-",
            ",".join(f"{k}={copies[k]}" for k in sorted(copies)) or "-",
            str(candidate.get("transport", "-")),
            str(candidate.get("kernel", "-")),
        ]
    )


def fit_cost_model(records: Sequence[Mapping[str, Any]]) -> CostModel:
    """Fit the model to measured sweep records.

    Each record needs ``candidate``, ``elapsed`` and ``snapshot``.  With
    fewer records than free parameters the fit degenerates gracefully:
    coefficients clamp to zero and the intercepts carry the per-group
    mean elapsed, which still ranks measured candidates correctly.
    """
    if not records:
        raise ValueError("cannot fit a cost model to zero records")
    groups = sorted(
        {
            (
                str((r.get("candidate") or {}).get("kernel")),
                str((r.get("candidate") or {}).get("transport")),
            )
            for r in records
        }
    )
    g_index = {g: i for i, g in enumerate(groups)}
    n, k = len(records), len(_FEATURES) + len(groups)
    X = np.zeros((n, k))
    y = np.zeros(n)
    for row, rec in enumerate(records):
        feats = record_features(rec)
        for col, name in enumerate(_FEATURES):
            X[row, col] = feats[name]
        cand = rec.get("candidate") or {}
        g = (str(cand.get("kernel")), str(cand.get("transport")))
        X[row, len(_FEATURES) + g_index[g]] = 1.0
        y[row] = float(rec["elapsed"])
    beta, *_ = np.linalg.lstsq(X, y, rcond=None)
    # Physical terms cannot speed a run up; a negative fit is noise.
    coef = {
        name: float(max(beta[i], 0.0)) for i, name in enumerate(_FEATURES)
    }
    intercepts = {
        g: float(max(beta[len(_FEATURES) + i], 0.0))
        for g, i in g_index.items()
    }
    measured = {
        candidate_key(r.get("candidate") or {}): float(r["elapsed"])
        for r in records
    }
    model = CostModel(
        coef=coef,
        intercepts=intercepts,
        n_records=n,
        measured=measured,
    )
    # RMS residual against the raw linear prediction (not the
    # measurement shortcut, which would be trivially zero).
    raw = X @ np.concatenate(
        [
            np.array([coef[f] for f in _FEATURES]),
            np.array([intercepts[g] for g in groups]),
        ]
    )
    model.residual = float(np.sqrt(np.mean((raw - y) ** 2)))
    return model

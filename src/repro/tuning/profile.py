"""Tuning profiles: the offline tuner's durable output.

A :class:`TuningProfile` is a plain JSON document naming the knob values
the sweep selected — chunk shape, copy counts, transport, kernel,
scheduling policy, queue bound — plus provenance (the pilot workload,
every candidate's measured time, the fitted model's prediction).  It is
deliberately *declarative*: applying one produces a derived
:class:`~repro.pipeline.config.AnalysisConfig` and a set of
``run_pipeline`` keyword overrides, nothing else, so a profile tuned on
one machine is inspectable and editable anywhere.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from repro.pipeline.config import AnalysisConfig

__all__ = ["TuningProfile", "load_profile", "PROFILE_VERSION"]

PROFILE_VERSION = 1

#: Copy-count keys a profile may carry -> AnalysisConfig field names.
_COPY_FIELDS = {
    "texture": "num_texture_copies",
    "hcc": "num_hcc_copies",
    "hpc": "num_hpc_copies",
    "iic": "num_iic_copies",
    "uso": "num_uso_copies",
}


@dataclass(frozen=True)
class TuningProfile:
    """Knob values selected by the offline tuner.

    Every field except ``version`` is optional: ``None`` (or an empty
    dict) means "leave the caller's value alone", so a profile can tune
    a single knob without freezing the rest.
    """

    version: int = PROFILE_VERSION
    chunk_shape: Optional[Tuple[int, ...]] = None
    copies: Dict[str, int] = field(default_factory=dict)
    transport: Optional[str] = None
    kernel: Optional[str] = None
    scheduling: Optional[str] = None
    max_queue: Optional[int] = None
    runtime: Optional[str] = None
    #: Provenance: pilot workload descriptor, per-candidate measurements,
    #: fitted-model metadata.  Free-form, ignored by ``apply``.
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.version != PROFILE_VERSION:
            raise ValueError(
                f"unsupported profile version {self.version}; "
                f"this build reads version {PROFILE_VERSION}"
            )
        for key in self.copies:
            if key not in _COPY_FIELDS:
                raise ValueError(
                    f"unknown copies key {key!r}; "
                    f"expected one of {sorted(_COPY_FIELDS)}"
                )
        for key, n in self.copies.items():
            if int(n) < 1:
                raise ValueError(f"copies[{key!r}] must be >= 1, got {n}")

    # -- application -------------------------------------------------------

    def apply(self, config: Optional[AnalysisConfig] = None) -> AnalysisConfig:
        """Derive a config with this profile's knobs applied.

        Fields the profile does not set keep the input config's values
        (paper defaults when ``config`` is omitted).
        """
        config = config or AnalysisConfig()
        updates: Dict[str, Any] = {}
        if self.chunk_shape is not None:
            updates["texture_chunk_shape"] = tuple(self.chunk_shape)
        for key, n in self.copies.items():
            updates[_COPY_FIELDS[key]] = int(n)
        if self.scheduling is not None:
            updates["scheduling"] = self.scheduling
        if self.kernel is not None:
            updates["texture"] = replace(config.texture, kernel=self.kernel)
        return replace(config, **updates) if updates else config

    def runtime_kwargs(self) -> Dict[str, Any]:
        """Keyword overrides for ``run_pipeline`` / ``build_runtime``."""
        out: Dict[str, Any] = {}
        if self.transport is not None:
            out["transport"] = self.transport
        if self.max_queue is not None:
            out["max_queue"] = int(self.max_queue)
        if self.runtime is not None:
            out["runtime"] = self.runtime
        return out

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        d = asdict(self)
        if d["chunk_shape"] is not None:
            d["chunk_shape"] = list(d["chunk_shape"])
        return d

    def save(self, path: str) -> str:
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        return path

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "TuningProfile":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        unknown = set(d) - known
        if unknown:
            raise ValueError(
                f"unknown profile fields {sorted(unknown)}; known: {sorted(known)}"
            )
        d = dict(d)
        if d.get("chunk_shape") is not None:
            d["chunk_shape"] = tuple(int(c) for c in d["chunk_shape"])
        return cls(**d)


def load_profile(path: str) -> TuningProfile:
    """Read a :class:`TuningProfile` from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            data = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"profile {path!r} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ValueError(f"profile {path!r} must be a JSON object")
    return TuningProfile.from_dict(data)

"""Offline tuner: sweep a pilot workload and emit a tuning profile.

``run_sweep`` executes a small pilot analysis — by default a generated
phantom dataset, or any dataset the caller points it at — once per
candidate in a grid of chunk shape × copy counts × transport × kernel,
consuming each run's :class:`MetricsRegistry` snapshot (queue wait vs.
service time, buffer occupancy, bytes moved).  It fits the
:mod:`~repro.tuning.costmodel` over the measurements, verifies every
candidate produced bit-identical volumes, and returns a
:class:`SweepResult` whose :attr:`~SweepResult.profile` is the selected
:class:`~repro.tuning.profile.TuningProfile` — load it with
``run_pipeline(..., profile=...)`` or ``repro analyze --profile``.

The sweep runs with event-driven wakeups (this PR's default), so the
measured deltas reflect the pipeline, not poll-interval noise.
"""

from __future__ import annotations

import itertools
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.backends import KERNELS
from repro.pipeline.config import AnalysisConfig, clip_chunk_shape

from .costmodel import CostModel, candidate_key, fit_cost_model
from .profile import PROFILE_VERSION, TuningProfile

__all__ = ["PilotSpec", "SweepResult", "run_sweep", "default_grid"]


@dataclass(frozen=True)
class PilotSpec:
    """The pilot workload the sweep measures candidates against.

    ``dataset_root=None`` generates a small phantom into a temporary
    directory (deleted afterwards).  ``repeats`` re-runs each candidate
    and keeps the best time, damping scheduler noise.  ``base`` seeds
    the non-swept config fields (paper defaults if omitted).
    """

    dataset_root: Optional[str] = None
    phantom_shape: Tuple[int, int, int, int] = (24, 24, 8, 4)
    seed: int = 7
    repeats: int = 1
    runtime: str = "processes"
    max_queue: int = 16
    run_timeout: Optional[float] = 120.0
    base: Optional[AnalysisConfig] = None

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")
        if self.runtime not in ("threads", "processes"):
            raise ValueError(
                "pilot runtime must be 'threads' or 'processes' "
                f"(got {self.runtime!r}); the distributed runtime needs "
                "real hosts and is tuned from its own runs"
            )


def default_grid(runtime: str = "processes") -> Dict[str, Sequence[Any]]:
    """The stock candidate grid: chunk × copies × transport × kernel."""
    kernels = [k for k in ("incremental", "megabatch") if k in KERNELS]
    return {
        "chunk_shape": [(16, 16, 8, 4), (24, 24, 8, 4)],
        "copies": [{"texture": 1}, {"texture": 2}],
        "transport": (
            ["pipe", "shm"] if runtime == "processes" else [None]
        ),
        "kernel": kernels or ["batched"],
    }


@dataclass
class SweepResult:
    """Everything one sweep measured, fitted and selected."""

    records: List[Dict[str, Any]]
    model: CostModel
    profile: TuningProfile
    baseline_elapsed: float
    best_elapsed: float
    bit_identical: bool = True

    def summary(self) -> str:
        lines = [
            f"{len(self.records)} candidates, "
            f"baseline {self.baseline_elapsed:.3f}s, "
            f"best {self.best_elapsed:.3f}s "
            f"(model residual {self.model.residual:.3f}s)",
        ]
        for rec in sorted(self.records, key=lambda r: r["elapsed"]):
            lines.append(
                f"  {rec['elapsed']:8.3f}s  {candidate_key(rec['candidate'])}"
            )
        return "\n".join(lines)


def _apply_candidate(
    base: AnalysisConfig, candidate: Dict[str, Any], dataset_shape, roi_shape
) -> AnalysisConfig:
    profile = TuningProfile(
        version=PROFILE_VERSION,
        chunk_shape=clip_chunk_shape(
            candidate["chunk_shape"], dataset_shape, roi_shape
        )
        if candidate.get("chunk_shape")
        else None,
        copies=candidate.get("copies") or {},
        kernel=candidate.get("kernel"),
    )
    return profile.apply(base)


def run_sweep(
    spec: Optional[PilotSpec] = None,
    grid: Optional[Dict[str, Sequence[Any]]] = None,
    progress=None,
) -> SweepResult:
    """Run the pilot across the candidate grid and select a profile.

    ``progress`` is an optional callable taking one human-readable line
    per completed candidate (the CLI passes ``print``).
    """
    from repro.pipeline.run import run_pipeline

    spec = spec or PilotSpec()
    grid = grid or default_grid(spec.runtime)
    base = spec.base or AnalysisConfig()

    tmp = None
    root = spec.dataset_root
    if root is None:
        from repro.data.synthetic import PhantomConfig, generate_phantom
        from repro.storage.dataset import write_dataset

        tmp = tempfile.TemporaryDirectory(prefix="repro-tune-")
        root = os.path.join(tmp.name, "pilot")
        vol = generate_phantom(
            PhantomConfig(shape=spec.phantom_shape, seed=spec.seed)
        )
        write_dataset(vol, root, num_nodes=2)

    try:
        from repro.storage.dataset import DiskDataset4D

        ds = DiskDataset4D.open(root)
        dataset_shape = ds.shape

        names = sorted(grid)
        candidates = [
            dict(zip(names, combo))
            for combo in itertools.product(*(grid[n] for n in names))
        ]

        records: List[Dict[str, Any]] = []
        reference: Optional[Dict[str, np.ndarray]] = None
        bit_identical = True
        for candidate in candidates:
            config = _apply_candidate(
                base, candidate, dataset_shape, base.texture.roi_shape
            )
            kwargs: Dict[str, Any] = {}
            if candidate.get("transport") and spec.runtime == "processes":
                kwargs["transport"] = candidate["transport"]
            best = None
            for _ in range(spec.repeats):
                result = run_pipeline(
                    root,
                    config=config,
                    runtime=spec.runtime,
                    max_queue=spec.max_queue,
                    trace=True,
                    run_timeout=spec.run_timeout,
                    **kwargs,
                )
                if best is None or result.elapsed < best.elapsed:
                    best = result
            if reference is None:
                reference = best.volumes
            else:
                same = set(reference) == set(best.volumes) and all(
                    np.array_equal(reference[k], best.volumes[k])
                    for k in reference
                )
                bit_identical = bit_identical and same
            records.append(
                {
                    "candidate": dict(candidate),
                    "elapsed": best.elapsed,
                    "snapshot": best.metrics,
                }
            )
            if progress is not None:
                progress(
                    f"{candidate_key(candidate)}: {best.elapsed:.3f}s"
                )

        model = fit_cost_model(records)
        ranked = model.rank(records)
        best_pred, best_rec = ranked[0]
        winner = best_rec["candidate"]

        # Baseline = the caller's untouched defaults, measured once so
        # acceptance ("tuner-selected >= as fast as hand-picked
        # defaults") is a real comparison, not a model claim.
        baseline = run_pipeline(
            root,
            config=base,
            runtime=spec.runtime,
            max_queue=spec.max_queue,
            run_timeout=spec.run_timeout,
        )

        profile = TuningProfile(
            chunk_shape=tuple(winner["chunk_shape"])
            if winner.get("chunk_shape")
            else None,
            copies=dict(winner.get("copies") or {}),
            transport=winner.get("transport"),
            kernel=winner.get("kernel"),
            max_queue=spec.max_queue,
            runtime=spec.runtime,
            meta={
                "pilot": {
                    "dataset": spec.dataset_root or "phantom",
                    "shape": list(dataset_shape),
                    "runtime": spec.runtime,
                    "repeats": spec.repeats,
                },
                "baseline_elapsed": baseline.elapsed,
                "selected_elapsed": float(best_rec["elapsed"]),
                "model": model.to_dict(),
                "candidates": [
                    {
                        "key": candidate_key(r["candidate"]),
                        "elapsed": r["elapsed"],
                    }
                    for r in records
                ],
            },
        )
        return SweepResult(
            records=records,
            model=model,
            profile=profile,
            baseline_elapsed=baseline.elapsed,
            best_elapsed=float(best_rec["elapsed"]),
            bit_identical=bit_identical,
        )
    finally:
        if tmp is not None:
            tmp.cleanup()

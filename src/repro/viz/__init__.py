"""Radiologist-facing visualizations (paper Section 1's analysis views).

The paper motivates automation by describing how DCE-MRI is read today:
"cinematic viewing of the contrast agent flow, observation of a
color-coded representation of the vascular permeability characteristics,
and examination of the time versus intensity plots of individual
pixels."  This package renders those three views (plus montages of the
pipeline's parameter maps) with no plotting dependencies — grayscale PGM
and color PPM images, and CSV curves.
"""

from .curves import time_intensity_curve, write_curves_csv
from .montage import montage, save_montage_pgm
from .colormap import apply_colormap, save_colormap_ppm, write_ppm

__all__ = [
    "time_intensity_curve",
    "write_curves_csv",
    "montage",
    "save_montage_pgm",
    "apply_colormap",
    "save_colormap_ppm",
    "write_ppm",
]

"""Color-coded parameter maps written as binary PPM (P6) images.

The paper's radiologists inspect "a color-coded representation of the
vascular permeability characteristics"; here any scalar map (a Haralick
parameter slice, a CAD detection map) is rendered through a small
built-in colormap and written as a portable pixmap.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

__all__ = ["COLORMAPS", "apply_colormap", "write_ppm", "save_colormap_ppm"]

# Control points (position, (r, g, b)) in [0, 1]; linearly interpolated.
COLORMAPS: Dict[str, Tuple[Tuple[float, Tuple[float, float, float]], ...]] = {
    # Black-body style heat map.
    "hot": (
        (0.0, (0.0, 0.0, 0.0)),
        (0.4, (0.9, 0.0, 0.0)),
        (0.8, (1.0, 0.9, 0.0)),
        (1.0, (1.0, 1.0, 1.0)),
    ),
    # Blue -> white -> red diverging (permeability-style coding).
    "coolwarm": (
        (0.0, (0.23, 0.30, 0.75)),
        (0.5, (0.95, 0.95, 0.95)),
        (1.0, (0.71, 0.02, 0.15)),
    ),
    "gray": ((0.0, (0.0, 0.0, 0.0)), (1.0, (1.0, 1.0, 1.0))),
}


def apply_colormap(
    img: np.ndarray,
    cmap: str = "hot",
    vmin: float = None,
    vmax: float = None,
) -> np.ndarray:
    """Map a 2D scalar image to ``(h, w, 3)`` uint8 RGB."""
    img = np.asarray(img, dtype=np.float64)
    if img.ndim != 2:
        raise ValueError(f"expected a 2-D image, got {img.ndim}-D")
    try:
        points = COLORMAPS[cmap]
    except KeyError:
        raise ValueError(f"unknown colormap {cmap!r}; have {sorted(COLORMAPS)}") from None
    lo = float(img.min()) if vmin is None else float(vmin)
    hi = float(img.max()) if vmax is None else float(vmax)
    norm = np.zeros_like(img) if hi <= lo else np.clip((img - lo) / (hi - lo), 0, 1)
    xs = np.array([p for p, _ in points])
    channels = []
    for c in range(3):
        ys = np.array([rgb[c] for _, rgb in points])
        channels.append(np.interp(norm, xs, ys))
    rgb = np.stack(channels, axis=-1)
    return np.round(rgb * 255).astype(np.uint8)


def write_ppm(path: str, rgb: np.ndarray) -> None:
    """Write an ``(h, w, 3)`` uint8 array as a binary PPM (P6) file."""
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError(f"expected (h, w, 3) RGB, got shape {rgb.shape}")
    if rgb.dtype != np.uint8:
        raise ValueError(f"expected uint8 pixels, got {rgb.dtype}")
    header = f"P6\n{rgb.shape[1]} {rgb.shape[0]}\n255\n".encode("ascii")
    with open(path, "wb") as fh:
        fh.write(header)
        fh.write(np.ascontiguousarray(rgb).tobytes())


def save_colormap_ppm(
    path: str,
    img: np.ndarray,
    cmap: str = "hot",
    vmin: float = None,
    vmax: float = None,
) -> None:
    """Render a scalar 2D map through a colormap and write it as PPM."""
    write_ppm(path, apply_colormap(img, cmap=cmap, vmin=vmin, vmax=vmax))

"""Time-versus-intensity curves of individual voxels (paper Section 1)."""

from __future__ import annotations

import csv
from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = ["time_intensity_curve", "write_curves_csv"]

Voxel = Tuple[int, int, int]


def time_intensity_curve(volume: np.ndarray, voxel: Voxel) -> np.ndarray:
    """Intensity over time of one (x, y, z) voxel of a 4D volume."""
    volume = np.asarray(volume)
    if volume.ndim != 4:
        raise ValueError(f"expected a 4-D (x, y, z, t) volume, got {volume.ndim}-D")
    x, y, z = voxel
    if not (0 <= x < volume.shape[0] and 0 <= y < volume.shape[1]
            and 0 <= z < volume.shape[2]):
        raise IndexError(f"voxel {voxel} outside volume {volume.shape[:3]}")
    return volume[x, y, z, :].astype(np.float64)


def write_curves_csv(
    path: str, volume: np.ndarray, voxels: Sequence[Voxel]
) -> Dict[Voxel, np.ndarray]:
    """Write time-intensity curves of several voxels as one CSV.

    Columns: ``t`` then one ``x_y_z`` column per voxel.  Returns the
    curves keyed by voxel for programmatic use.
    """
    if not voxels:
        raise ValueError("need at least one voxel")
    curves = {tuple(v): time_intensity_curve(volume, tuple(v)) for v in voxels}
    nt = np.asarray(volume).shape[3]
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["t"] + [f"{x}_{y}_{z}" for (x, y, z) in curves])
        for t in range(nt):
            writer.writerow([t] + [f"{curves[v][t]:.6g}" for v in curves])
    return curves

"""Montages: a 4D volume laid out as a (z x t) grid of 2D slices.

The "cinematic viewing" substitute: every slice of every time step on
one canvas, normalized to a shared intensity window so enhancement over
time is visible at a glance.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..data.formats import write_pgm

__all__ = ["montage", "save_montage_pgm"]


def montage(
    volume: np.ndarray,
    vmin: Optional[float] = None,
    vmax: Optional[float] = None,
    border: int = 1,
) -> np.ndarray:
    """Lay a 4D (x, y, z, t) volume out as a normalized 2D grid.

    Rows are z slices, columns are time steps; all tiles share one
    ``[vmin, vmax]`` window (defaults to the volume's range).  Returns a
    float image in ``[0, 1]`` with ``border``-pixel separators at 0.5.
    """
    volume = np.asarray(volume, dtype=np.float64)
    if volume.ndim != 4:
        raise ValueError(f"expected a 4-D volume, got {volume.ndim}-D")
    if border < 0:
        raise ValueError("border must be >= 0")
    nx, ny, nz, nt = volume.shape
    lo = float(volume.min()) if vmin is None else float(vmin)
    hi = float(volume.max()) if vmax is None else float(vmax)
    if hi <= lo:
        norm = np.zeros_like(volume)
    else:
        norm = np.clip((volume - lo) / (hi - lo), 0.0, 1.0)
    h = nz * nx + (nz - 1) * border
    w = nt * ny + (nt - 1) * border
    canvas = np.full((h, w), 0.5)
    for z in range(nz):
        for t in range(nt):
            r = z * (nx + border)
            c = t * (ny + border)
            canvas[r : r + nx, c : c + ny] = norm[:, :, z, t]
    return canvas


def save_montage_pgm(
    path: str,
    volume: np.ndarray,
    vmin: Optional[float] = None,
    vmax: Optional[float] = None,
) -> Tuple[int, int]:
    """Write the montage as a PGM; returns the image dimensions."""
    img = montage(volume, vmin=vmin, vmax=vmax)
    write_pgm(path, img)
    return img.shape

"""Unit + integration tests for the CAD dataset and classifier."""

import numpy as np
import pytest

from repro.cad.classifier import Metrics, TextureClassifier, roc_auc
from repro.cad.dataset import TextureDataset, build_dataset, lesion_mask, roi_labels
from repro.cad.network import TrainConfig
from repro.core.analysis import HaralickConfig
from repro.data.synthetic import Lesion, PhantomConfig


def phantom_config(seed=0):
    lesion = Lesion(center=(12, 12, 5), radius=5, amplitude=0.9, uptake_rate=1.2)
    return PhantomConfig(
        shape=(24, 24, 10, 5), lesions=(lesion,), seed=seed, noise_sigma=0.01
    )


HC = HaralickConfig(roi_shape=(5, 5, 3, 2), levels=16)


class TestRocAuc:
    def test_perfect_separation(self):
        assert roc_auc(np.array([0, 0, 1, 1]), np.array([0.1, 0.2, 0.8, 0.9])) == 1.0

    def test_random_scores(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=2000)
        s = rng.random(2000)
        assert abs(roc_auc(y, s) - 0.5) < 0.05

    def test_inverted(self):
        assert roc_auc(np.array([1, 1, 0, 0]), np.array([0.1, 0.2, 0.8, 0.9])) == 0.0

    def test_ties_averaged(self):
        assert roc_auc(np.array([0, 1]), np.array([0.5, 0.5])) == pytest.approx(0.5)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([1, 1]), np.array([0.5, 0.6]))


class TestLesionMaskAndLabels:
    def test_mask_geometry(self):
        pc = phantom_config()
        mask = lesion_mask(pc)
        assert mask.shape == (24, 24, 10)
        assert mask[12, 12, 5]  # center inside
        assert not mask[0, 0, 0]
        # Volume roughly 4/3 pi r^3, clipped at boundaries.
        assert 300 < mask.sum() < 600

    def test_no_lesions_all_negative(self):
        pc = PhantomConfig(shape=(16, 16, 4, 4))
        assert not lesion_mask(pc).any()

    def test_labels_shape_matches_features(self):
        pc = phantom_config()
        labels = roi_labels(pc, HC)
        assert labels.shape == HC.output_shape(pc.shape)
        assert set(np.unique(labels)) <= {0, 1}

    def test_labels_constant_over_time(self):
        labels = roi_labels(phantom_config(), HC)
        assert np.all(labels[..., 0] == labels[..., -1])


class TestTextureDataset:
    def test_build(self):
        ds = build_dataset(phantom_config(), HC)
        grid = HC.output_shape(phantom_config().shape)
        assert ds.n == int(np.prod(grid))
        assert ds.x.shape[1] == len(HC.features)
        assert 0.05 < ds.positive_fraction < 0.5

    def test_balanced_subsample(self):
        ds = build_dataset(phantom_config(), HC)
        sub = ds.balanced_subsample(100, seed=0)
        assert sub.n == 200
        assert sub.positive_fraction == pytest.approx(0.5)

    def test_subsample_too_large(self):
        ds = build_dataset(phantom_config(), HC)
        with pytest.raises(ValueError):
            ds.balanced_subsample(10**6)

    def test_validation(self):
        with pytest.raises(ValueError):
            TextureDataset(np.zeros((3, 2)), np.zeros(4), ("a", "b"))
        with pytest.raises(ValueError):
            TextureDataset(np.zeros((3, 2)), np.zeros(3), ("a",))


class TestTextureClassifier:
    @pytest.fixture(scope="class")
    def trained(self):
        ds = build_dataset(phantom_config(seed=0), HC)
        clf = TextureClassifier(ds.feature_names, hidden=(12,), seed=0)
        clf.fit(ds.balanced_subsample(200, seed=1), TrainConfig(epochs=100, seed=0))
        return clf, ds

    def test_detects_lesions_in_training_study(self, trained):
        clf, ds = trained
        metrics = clf.evaluate(ds)
        assert metrics.auc > 0.95
        assert metrics.sensitivity > 0.85
        assert metrics.specificity > 0.85

    def test_generalizes_to_new_study(self, trained):
        clf, _ = trained
        # Same lesion geometry, different noise realization.
        ds2 = build_dataset(phantom_config(seed=9), HC)
        metrics = clf.evaluate(ds2)
        assert metrics.auc > 0.9

    def test_detection_map(self, trained):
        clf, _ = trained
        pc = phantom_config(seed=3)
        from repro.core.analysis import haralick_transform
        from repro.data.synthetic import generate_phantom

        vol = generate_phantom(pc)
        features = haralick_transform(vol.data, HC)
        pmap = clf.detection_map(features)
        assert pmap.shape == HC.output_shape(pc.shape)
        labels = roi_labels(pc, HC).astype(bool)
        assert pmap[labels].mean() > pmap[~labels].mean() + 0.2

    def test_untrained_predict_raises(self):
        clf = TextureClassifier(("asm",))
        with pytest.raises(RuntimeError):
            clf.predict_proba(np.zeros((2, 1)))

    def test_feature_mismatch_rejected(self):
        ds = build_dataset(phantom_config(), HC)
        clf = TextureClassifier(("asm", "idm"))
        with pytest.raises(ValueError):
            clf.fit(ds)

    def test_metrics_str(self):
        m = Metrics(0.9, 0.8, 0.95, 0.97, 10, 90)
        assert "sens=0.800" in str(m)
